//! Thompson construction and product-graph evaluation for RPQs.
//!
//! The standard evaluation algorithm for (2)RPQs: compile the regular
//! expression into an ε-NFA whose alphabet is (direction, label test),
//! then run a BFS over the product of the graph and the automaton. For
//! each source node the reachable `(node, state)` pairs are explored at
//! most once, giving the textbook `O(|V| · (|V| + |E|) · |Q|)` bound —
//! RPQ evaluation is NL in data complexity, the baseline the paper's
//! expressiveness ladder starts from.

use crate::regex::Rpq;
use pgq_graph::{ElementId, PropertyGraph};
use pgq_pattern::PairSet;
use pgq_value::Label;
use std::collections::{BTreeSet, VecDeque};

/// One NFA transition step.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Step {
    /// ε-move.
    Eps,
    /// Traverse an edge: forward (`true`) or backward, with an optional
    /// label requirement (`None` = any edge).
    Move { forward: bool, label: Option<Label> },
}

/// An ε-NFA compiled from an [`Rpq`].
#[derive(Debug, Clone)]
pub struct RpqAutomaton {
    /// `transitions[s]` lists `(step, target)` pairs.
    transitions: Vec<Vec<(Step, usize)>>,
    start: usize,
    accept: usize,
}

impl RpqAutomaton {
    /// Thompson construction.
    pub fn compile(r: &Rpq) -> Self {
        let mut a = RpqAutomaton {
            transitions: Vec::new(),
            start: 0,
            accept: 0,
        };
        let (s, f) = a.build(r);
        a.start = s;
        a.accept = f;
        a
    }

    /// Number of automaton states.
    pub fn state_count(&self) -> usize {
        self.transitions.len()
    }

    fn fresh(&mut self) -> usize {
        self.transitions.push(Vec::new());
        self.transitions.len() - 1
    }

    fn edge(&mut self, from: usize, step: Step, to: usize) {
        self.transitions[from].push((step, to));
    }

    fn build(&mut self, r: &Rpq) -> (usize, usize) {
        match r {
            Rpq::Epsilon => {
                let s = self.fresh();
                let f = self.fresh();
                self.edge(s, Step::Eps, f);
                (s, f)
            }
            Rpq::Label(l) => self.atom(true, Some(l.clone())),
            Rpq::Inverse(l) => self.atom(false, Some(l.clone())),
            Rpq::Any => self.atom(true, None),
            Rpq::AnyInverse => self.atom(false, None),
            Rpq::Concat(a, b) => {
                let (s1, f1) = self.build(a);
                let (s2, f2) = self.build(b);
                self.edge(f1, Step::Eps, s2);
                (s1, f2)
            }
            Rpq::Union(a, b) => {
                let s = self.fresh();
                let f = self.fresh();
                let (s1, f1) = self.build(a);
                let (s2, f2) = self.build(b);
                self.edge(s, Step::Eps, s1);
                self.edge(s, Step::Eps, s2);
                self.edge(f1, Step::Eps, f);
                self.edge(f2, Step::Eps, f);
                (s, f)
            }
            Rpq::Star(a) => {
                let s = self.fresh();
                let f = self.fresh();
                let (s1, f1) = self.build(a);
                self.edge(s, Step::Eps, s1);
                self.edge(s, Step::Eps, f);
                self.edge(f1, Step::Eps, s1);
                self.edge(f1, Step::Eps, f);
                (s, f)
            }
        }
    }

    fn atom(&mut self, forward: bool, label: Option<Label>) -> (usize, usize) {
        let s = self.fresh();
        let f = self.fresh();
        self.edge(s, Step::Move { forward, label }, f);
        (s, f)
    }

    /// All `(source, target)` node pairs connected by a path whose label
    /// word is in the language — product BFS from every source node.
    pub fn eval(&self, g: &PropertyGraph) -> PairSet {
        let mut out = PairSet::new();
        for src in g.nodes() {
            for tgt in self.reachable_from(g, src) {
                out.insert((src.clone(), tgt));
            }
        }
        out
    }

    /// Target nodes reachable from one source.
    pub fn reachable_from(&self, g: &PropertyGraph, src: &ElementId) -> BTreeSet<ElementId> {
        let mut seen: BTreeSet<(ElementId, usize)> = BTreeSet::new();
        let mut queue: VecDeque<(ElementId, usize)> = VecDeque::new();
        let mut out = BTreeSet::new();
        seen.insert((src.clone(), self.start));
        queue.push_back((src.clone(), self.start));
        while let Some((node, state)) = queue.pop_front() {
            if state == self.accept {
                out.insert(node.clone());
            }
            for (step, next_state) in &self.transitions[state] {
                match step {
                    Step::Eps => {
                        let key = (node.clone(), *next_state);
                        if seen.insert(key.clone()) {
                            queue.push_back(key);
                        }
                    }
                    Step::Move { forward, label } => {
                        let edges = if *forward {
                            g.out_edges(&node)
                        } else {
                            g.in_edges(&node)
                        };
                        for e in edges {
                            if let Some(l) = label {
                                if !g.has_label(e, l) {
                                    continue;
                                }
                            }
                            let next_node = if *forward { g.tgt(e) } else { g.src(e) }
                                .expect("edge endpoints total")
                                .clone();
                            let key = (next_node, *next_state);
                            if seen.insert(key.clone()) {
                                queue.push_back(key);
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// Evaluate an RPQ on a property graph (compile + product BFS).
pub fn eval_rpq(r: &Rpq, g: &PropertyGraph) -> PairSet {
    RpqAutomaton::compile(r).eval(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgq_graph::PropertyGraphBuilder;
    use pgq_value::Value;

    /// a --knows--> b --knows--> c --likes--> d, plus d --knows--> a.
    fn sample() -> PropertyGraph {
        let mut b = PropertyGraphBuilder::unary();
        for n in ["a", "b", "c", "d"] {
            b.node1(Value::str(n)).unwrap();
        }
        let mut add = |id: i64, s: &str, t: &str, l: &str| {
            b.edge1(Value::int(id), Value::str(s), Value::str(t))
                .unwrap();
            b.label(ElementId::unary(Value::int(id)), Value::str(l))
                .unwrap();
        };
        add(1, "a", "b", "knows");
        add(2, "b", "c", "knows");
        add(3, "c", "d", "likes");
        add(4, "d", "a", "knows");
        b.finish()
    }

    fn pair(s: &str, t: &str) -> (ElementId, ElementId) {
        (
            ElementId::unary(Value::str(s)),
            ElementId::unary(Value::str(t)),
        )
    }

    #[test]
    fn single_label_matches_edges() {
        let g = sample();
        let got = eval_rpq(&Rpq::label("knows"), &g);
        assert_eq!(
            got,
            [pair("a", "b"), pair("b", "c"), pair("d", "a")]
                .into_iter()
                .collect()
        );
    }

    #[test]
    fn epsilon_is_node_identity() {
        let g = sample();
        let got = eval_rpq(&Rpq::Epsilon, &g);
        assert_eq!(got.len(), 4);
        assert!(got.contains(&pair("a", "a")));
    }

    #[test]
    fn star_reaches_transitively() {
        let g = sample();
        let got = eval_rpq(&Rpq::label("knows").star(), &g);
        // knows* from a: a (0 steps), b, c (2 steps; c→d is likes).
        assert!(got.contains(&pair("a", "a")));
        assert!(got.contains(&pair("a", "c")));
        assert!(!got.contains(&pair("a", "d")));
    }

    #[test]
    fn concat_crosses_label_boundary() {
        let g = sample();
        let r = Rpq::label("knows").star().then(Rpq::label("likes"));
        let got = eval_rpq(&r, &g);
        assert!(got.contains(&pair("a", "d")));
        assert!(got.contains(&pair("c", "d")));
    }

    #[test]
    fn inverse_traverses_backwards() {
        let g = sample();
        let got = eval_rpq(&Rpq::inverse("knows"), &g);
        assert!(got.contains(&pair("b", "a")));
        assert!(got.contains(&pair("a", "d")));
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn two_way_round_trip() {
        let g = sample();
        // knows · knows⁻ : forward then back — returns to a node with a
        // shared "knows" predecessor.
        let r = Rpq::label("knows").then(Rpq::inverse("knows"));
        let got = eval_rpq(&r, &g);
        assert!(got.contains(&pair("a", "a")));
    }

    #[test]
    fn any_ignores_labels() {
        let g = sample();
        let got = eval_rpq(&Rpq::Any.plus(), &g);
        // The graph is a single directed cycle a→b→c→d→a: everything
        // reaches everything.
        assert_eq!(got.len(), 16);
    }

    #[test]
    fn union_is_set_union() {
        let g = sample();
        let l = eval_rpq(&Rpq::label("knows"), &g);
        let r = eval_rpq(&Rpq::label("likes"), &g);
        let u = eval_rpq(&Rpq::label("knows").or(Rpq::label("likes")), &g);
        assert_eq!(u, l.union(&r).cloned().collect());
    }

    #[test]
    fn missing_label_matches_nothing() {
        let g = sample();
        assert!(eval_rpq(&Rpq::label("absent"), &g).is_empty());
    }
}
