//! Conjunctive regular path queries (CRPQs).
//!
//! A CRPQ is a conjunction of RPQ atoms `(x_i, r_i, y_i)` over node
//! variables, with an output projection — the formalism of the paper's
//! related-work baseline [3, 4, 6]. Two evaluators are provided:
//!
//! * [`Crpq::eval`] — direct: evaluate each atom's RPQ to a pair set,
//!   then join on shared variables;
//! * [`Crpq::to_pgqro`] — a lowering into a `PGQro` query (Figure 3):
//!   one pattern call per atom over the six base-view relations, glued
//!   with `×`/`σ`/`π`. This makes the containment "CRPQ ⊆ PGQro"
//!   executable, the starting rung of the paper's expressiveness ladder.
//!
//! The lowering targets unary-identifier views (`pgView`, Definition
//! 3.2), matching the classical CRPQ setting of edge-labeled graphs.

use crate::automaton::RpqAutomaton;
use crate::regex::Rpq;
use crate::to_pattern::rpq_to_pattern;
use pgq_core::{Query, ViewOp};
use pgq_graph::{ElementId, PropertyGraph};
use pgq_pattern::{OutputPattern, Pattern};
use pgq_relational::{RelName, Relation, RowCondition};
use pgq_value::{Tuple, Var};
use std::collections::BTreeMap;
use std::fmt;

/// One CRPQ atom `(x, r, y)`: an `r`-labeled path from `μ(x)` to `μ(y)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrpqAtom {
    /// Source node variable.
    pub src: Var,
    /// The path language.
    pub regex: Rpq,
    /// Target node variable.
    pub tgt: Var,
}

impl CrpqAtom {
    /// Build an atom.
    pub fn new(src: impl Into<Var>, regex: Rpq, tgt: impl Into<Var>) -> Self {
        CrpqAtom {
            src: src.into(),
            regex,
            tgt: tgt.into(),
        }
    }
}

impl fmt::Display for CrpqAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}) -[{}]-> ({})", self.src, self.regex, self.tgt)
    }
}

/// A conjunctive regular path query `Ans(z̄) ← ⋀ᵢ (xᵢ, rᵢ, yᵢ)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Crpq {
    /// Output variables `z̄` (each must occur in some atom).
    pub head: Vec<Var>,
    /// The conjunction of path atoms.
    pub atoms: Vec<CrpqAtom>,
}

/// Static CRPQ errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrpqError {
    /// A head variable not occurring in any atom.
    UnboundHeadVar {
        /// The offending variable.
        var: Var,
    },
    /// The query has no atoms (the join would be over nothing).
    Empty,
}

impl fmt::Display for CrpqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrpqError::UnboundHeadVar { var } => write!(f, "head variable {var} unbound"),
            CrpqError::Empty => write!(f, "CRPQ with no atoms"),
        }
    }
}

impl std::error::Error for CrpqError {}

impl Crpq {
    /// Build and statically check a CRPQ.
    pub fn new<I, V>(head: I, atoms: Vec<CrpqAtom>) -> Result<Self, CrpqError>
    where
        I: IntoIterator<Item = V>,
        V: Into<Var>,
    {
        let q = Crpq {
            head: head.into_iter().map(Into::into).collect(),
            atoms,
        };
        q.check()?;
        Ok(q)
    }

    fn check(&self) -> Result<(), CrpqError> {
        if self.atoms.is_empty() {
            return Err(CrpqError::Empty);
        }
        for v in &self.head {
            if !self.atoms.iter().any(|a| a.src == *v || a.tgt == *v) {
                return Err(CrpqError::UnboundHeadVar { var: v.clone() });
            }
        }
        Ok(())
    }

    /// Direct evaluation: per-atom automaton runs joined on shared
    /// variables. Output columns follow `head` (identifiers flattened,
    /// `k` columns each on a `k`-ary-identifier graph).
    pub fn eval(&self, g: &PropertyGraph) -> Result<Relation, CrpqError> {
        self.check()?;
        let pair_sets: Vec<Vec<(ElementId, ElementId)>> = self
            .atoms
            .iter()
            .map(|a| {
                RpqAutomaton::compile(&a.regex)
                    .eval(g)
                    .into_iter()
                    .collect()
            })
            .collect();
        let mut out = Relation::empty(self.head.len() * g.id_arity());
        let mut binding: BTreeMap<Var, ElementId> = BTreeMap::new();
        self.join(&pair_sets, 0, &mut binding, &mut out);
        Ok(out)
    }

    fn join(
        &self,
        pair_sets: &[Vec<(ElementId, ElementId)>],
        depth: usize,
        binding: &mut BTreeMap<Var, ElementId>,
        out: &mut Relation,
    ) {
        if depth == self.atoms.len() {
            let mut row: Vec<pgq_value::Value> = Vec::new();
            for v in &self.head {
                row.extend(binding[v].iter().cloned());
            }
            let _ = out.insert(Tuple::new(row));
            return;
        }
        let atom = &self.atoms[depth];
        for (s, t) in &pair_sets[depth] {
            let mut added: Vec<Var> = Vec::new();
            let ok =
                bind(binding, &mut added, &atom.src, s) && bind(binding, &mut added, &atom.tgt, t);
            if ok {
                self.join(pair_sets, depth + 1, binding, out);
            }
            for v in added {
                binding.remove(&v);
            }
        }
    }

    /// Lower to a `PGQro` query over the six named base relations
    /// `views = (R1, …, R6)` in canonical order. The result query uses
    /// one `ψΩ(R̄)` pattern call per atom, products them, selects the
    /// shared-variable equalities, and projects the head — all within
    /// the Figure 3 read-only grammar (the containment CRPQ ⊆ PGQro).
    pub fn to_pgqro(&self, views: &[RelName; 6]) -> Result<Query, CrpqError> {
        self.check()?;
        let base: [Query; 6] = views.clone().map(Query::Rel);

        // One pattern call per atom: (x) ψ_r (y) with Ω = (x, y).
        let mut q: Option<Query> = None;
        for atom in &self.atoms {
            let pat = Pattern::Concat(
                Box::new(Pattern::Node(Some(atom.src.clone()))),
                Box::new(Pattern::Concat(
                    Box::new(rpq_to_pattern(&atom.regex)),
                    Box::new(Pattern::Node(Some(atom.tgt.clone()))),
                )),
            );
            let out = OutputPattern::vars(pat, [atom.src.clone(), atom.tgt.clone()])
                .expect("head vars are free in the pattern");
            let call = Query::Pattern {
                out,
                views: Box::new(base.clone()),
                op: ViewOp::Unary,
            };
            q = Some(match q {
                None => call,
                Some(acc) => Query::Product(Box::new(acc), Box::new(call)),
            });
        }
        let mut q = q.expect("checked nonempty");

        // Column of the first occurrence of each variable; equalities for
        // the rest. Atom i occupies columns 2i (src) and 2i+1 (tgt).
        let mut first: BTreeMap<&Var, usize> = BTreeMap::new();
        let mut eqs: Vec<RowCondition> = Vec::new();
        for (i, atom) in self.atoms.iter().enumerate() {
            for (v, col) in [(&atom.src, 2 * i), (&atom.tgt, 2 * i + 1)] {
                match first.get(v) {
                    None => {
                        first.insert(v, col);
                    }
                    Some(&c) => eqs.push(RowCondition::col_eq(c, col)),
                }
            }
        }
        if !eqs.is_empty() {
            q = Query::Select(RowCondition::and_all(eqs), Box::new(q));
        }
        let positions: Vec<usize> = self.head.iter().map(|v| first[v]).collect();
        Ok(Query::Project(positions, Box::new(q)))
    }
}

impl fmt::Display for Crpq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ans(")?;
        for (i, v) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ") ← ")?;
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

fn bind(
    binding: &mut BTreeMap<Var, ElementId>,
    added: &mut Vec<Var>,
    v: &Var,
    id: &ElementId,
) -> bool {
    match binding.get(v) {
        Some(existing) => existing == id,
        None => {
            binding.insert(v.clone(), id.clone());
            added.push(v.clone());
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgq_graph::PropertyGraphBuilder;
    use pgq_value::Value;

    fn triangle() -> PropertyGraph {
        // 0 -a-> 1, 1 -b-> 2, 0 -b-> 2
        let mut b = PropertyGraphBuilder::unary();
        for n in 0..3i64 {
            b.node1(Value::int(n)).unwrap();
        }
        let mut add = |id: i64, s: i64, t: i64, l: &str| {
            b.edge1(Value::int(id), Value::int(s), Value::int(t))
                .unwrap();
            b.label(ElementId::unary(Value::int(id)), Value::str(l))
                .unwrap();
        };
        add(10, 0, 1, "a");
        add(11, 1, 2, "b");
        add(12, 0, 2, "b");
        b.finish()
    }

    #[test]
    fn two_atom_join() {
        // Ans(x, z) ← (x) -a-> (y) ∧ (y) -b-> (z): only 0 -a-> 1 -b-> 2.
        let q = Crpq::new(
            ["x", "z"],
            vec![
                CrpqAtom::new("x", Rpq::label("a"), "y"),
                CrpqAtom::new("y", Rpq::label("b"), "z"),
            ],
        )
        .unwrap();
        let r = q.eval(&triangle()).unwrap();
        assert_eq!(r.len(), 1);
        assert!(r.contains(&Tuple::new(vec![Value::int(0), Value::int(2)])));
    }

    #[test]
    fn shared_target_enforces_confluence() {
        // Ans(x, y) ← (x) -b-> (z) ∧ (y) -b-> (z): pairs writing to the
        // same node via b.
        let q = Crpq::new(
            ["x", "y"],
            vec![
                CrpqAtom::new("x", Rpq::label("b"), "z"),
                CrpqAtom::new("y", Rpq::label("b"), "z"),
            ],
        )
        .unwrap();
        let r = q.eval(&triangle()).unwrap();
        // Writers into 2 via b: 1 and 0 — all four ordered pairs.
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn head_must_be_bound() {
        let e = Crpq::new(["nope"], vec![CrpqAtom::new("x", Rpq::Any, "y")]).unwrap_err();
        assert!(matches!(e, CrpqError::UnboundHeadVar { .. }));
    }

    #[test]
    fn empty_crpq_rejected() {
        assert!(matches!(Crpq::new(["x"], vec![]), Err(CrpqError::Empty)));
    }

    #[test]
    fn repeated_head_vars_allowed() {
        let q = Crpq::new(["x", "x"], vec![CrpqAtom::new("x", Rpq::label("a"), "y")]).unwrap();
        let r = q.eval(&triangle()).unwrap();
        assert!(r.contains(&Tuple::new(vec![Value::int(0), Value::int(0)])));
    }

    #[test]
    fn boolean_crpq_has_zero_columns() {
        let q = Crpq::new(
            Vec::<Var>::new(),
            vec![CrpqAtom::new("x", Rpq::label("a"), "y")],
        )
        .unwrap();
        let r = q.eval(&triangle()).unwrap();
        assert!(r.as_bool());
    }
}
