//! # pgq-rpq
//!
//! Regular path queries — RPQ, two-way 2RPQ, and conjunctive CRPQ —
//! over property graph views: the classical graph-querying formalisms
//! of the paper's related work ([3, 4, 6, 7]), implemented as a
//! baseline layer beneath the SQL/PGQ fragments.
//!
//! Three executable routes answer the same query, and the tests hold
//! them equal:
//!
//! 1. the textbook product automaton ([`automaton`]);
//! 2. the paper's pattern language, via the lowering RPQ → Figure 1
//!    pattern ([`to_pattern`]) evaluated with Figure 2 semantics;
//! 3. for CRPQs, a lowering into a full `PGQro` query ([`crpq`]) run by
//!    the `pgq-core` evaluator — the executable containment
//!    "CRPQ ⊆ PGQro" at the bottom of the expressiveness ladder.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod automaton;
pub mod crpq;
pub mod parse;
pub mod regex;
pub mod to_pattern;

pub use automaton::{eval_rpq, RpqAutomaton};
pub use crpq::{Crpq, CrpqAtom, CrpqError};
pub use parse::{parse_rpq, RpqParseError};
pub use regex::Rpq;
pub use to_pattern::rpq_to_pattern;

#[cfg(test)]
mod prop_tests {
    use super::*;
    use pgq_graph::{pg_view, PropertyGraph, ViewRelations};
    use pgq_pattern::{endpoint_pairs, eval_pattern};
    use pgq_relational::{Database, RelName, Relation};
    use pgq_value::{Tuple, Value, Var};
    use proptest::prelude::*;

    /// A random labeled graph, produced both as the six canonical
    /// relations (for the PGQro route) and as the constructed view (for
    /// the automaton/pattern routes).
    fn arb_labeled_db() -> impl Strategy<Value = (Database, PropertyGraph)> {
        (
            2i64..6,
            proptest::collection::vec((0i64..6, 0i64..6, 0usize..3), 0..12),
        )
            .prop_map(|(n, edges)| {
                let labels = ["a", "b", "c"];
                let mut nodes = Relation::empty(1);
                let mut eids = Relation::empty(1);
                let mut src = Relation::empty(2);
                let mut tgt = Relation::empty(2);
                let mut lab = Relation::empty(2);
                for i in 0..n {
                    nodes.insert(Tuple::unary(i)).unwrap();
                }
                for (j, (s, t, li)) in edges.into_iter().enumerate() {
                    let (s, t) = (s % n, t % n);
                    let id = Tuple::unary(100 + j as i64);
                    eids.insert(id.clone()).unwrap();
                    src.insert(id.concat(&Tuple::unary(s))).unwrap();
                    tgt.insert(id.concat(&Tuple::unary(t))).unwrap();
                    lab.insert(id.concat(&Tuple::unary(Value::str(labels[li]))))
                        .unwrap();
                }
                let rels = ViewRelations::new(
                    nodes.clone(),
                    eids.clone(),
                    src.clone(),
                    tgt.clone(),
                    lab.clone(),
                    Relation::empty(3),
                );
                let g = pg_view(&rels).expect("constructed view is valid");
                let db = Database::new()
                    .with_relation("N", nodes)
                    .with_relation("E", eids)
                    .with_relation("S", src)
                    .with_relation("T", tgt)
                    .with_relation("L", lab)
                    .with_relation("P", Relation::empty(3));
                (db, g)
            })
    }

    /// Random (2)RPQ expressions over labels {a, b, c}.
    fn arb_rpq(depth: u32) -> BoxedStrategy<Rpq> {
        let leaf = prop_oneof![
            prop_oneof![Just("a"), Just("b"), Just("c")].prop_map(Rpq::label),
            prop_oneof![Just("a"), Just("b")].prop_map(Rpq::inverse),
            Just(Rpq::Any),
            Just(Rpq::Epsilon),
        ];
        if depth == 0 {
            return leaf.boxed();
        }
        let sub = arb_rpq(depth - 1);
        let sub2 = arb_rpq(depth - 1);
        prop_oneof![
            3 => leaf,
            2 => (sub.clone(), sub2.clone()).prop_map(|(a, b)| a.then(b)),
            2 => (sub.clone(), sub2).prop_map(|(a, b)| a.or(b)),
            1 => sub.prop_map(Rpq::star),
        ]
        .boxed()
    }

    fn view_names() -> [RelName; 6] {
        ["N", "E", "S", "T", "L", "P"].map(RelName::new)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Route 1 ≡ route 2: the automaton agrees with the Figure 2
        /// pattern semantics through the RPQ → pattern lowering.
        #[test]
        fn automaton_matches_pattern_semantics(
            (_db, g) in arb_labeled_db(),
            r in arb_rpq(3),
        ) {
            let via_automaton = eval_rpq(&r, &g);
            let p = rpq_to_pattern(&r);
            prop_assert!(p.free_vars().is_empty());
            let via_pattern = endpoint_pairs(&eval_pattern(&p, &g).unwrap());
            prop_assert_eq!(via_automaton, via_pattern, "rpq {}", r);
        }

        /// Route 1 ≡ route 3: a two-atom CRPQ evaluated directly equals
        /// its PGQro lowering run by the core evaluator.
        #[test]
        fn crpq_direct_matches_pgqro_lowering(
            (db, g) in arb_labeled_db(),
            r1 in arb_rpq(2),
            r2 in arb_rpq(2),
        ) {
            let q = Crpq::new(
                ["x", "z"],
                vec![
                    CrpqAtom::new("x", r1, "y"),
                    CrpqAtom::new("y", r2, "z"),
                ],
            ).unwrap();
            let direct = q.eval(&g).unwrap();
            let lowered = q.to_pgqro(&view_names()).unwrap();
            prop_assert!(lowered.fragment().within(pgq_core::Fragment::Ro));
            let via_core = pgq_core::eval(&lowered, &db).unwrap();
            prop_assert_eq!(direct, via_core, "crpq {}", q);
        }

        /// display ∘ parse is the identity on RPQ expressions.
        #[test]
        fn display_parse_round_trip(r in arb_rpq(4)) {
            let rendered = r.to_string();
            let parsed = parse_rpq(&rendered).unwrap();
            // `plus`/`optional` are derived forms, so compare the
            // rendered normal forms rather than the ASTs.
            prop_assert_eq!(parsed.to_string(), rendered);
        }

        /// Boolean CRPQs agree too (zero-column corner).
        #[test]
        fn boolean_crpq_agrees(
            (db, g) in arb_labeled_db(),
            r in arb_rpq(2),
        ) {
            let q = Crpq::new(
                Vec::<Var>::new(),
                vec![CrpqAtom::new("x", r, "y")],
            ).unwrap();
            let direct = q.eval(&g).unwrap();
            let via_core = pgq_core::eval(&q.to_pgqro(&view_names()).unwrap(), &db).unwrap();
            prop_assert_eq!(direct.as_bool(), via_core.as_bool());
        }
    }
}
