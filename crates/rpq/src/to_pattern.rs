//! Lowering RPQs into the paper's pattern language (Figure 1).
//!
//! Every (2)RPQ is expressible as a core PGQ pattern: a label atom `ℓ`
//! becomes an edge atom filtered by `ℓ(e)`, inverses use the backward
//! edge atom, and the regular operators map to concatenation, `+`, and
//! unbounded repetition. This is the containment "RPQs live inside the
//! pattern-matching layer" that lets the paper treat classical RPQ
//! expressiveness results as a lower bound for `PGQro`.
//!
//! One subtlety: Figure 1 requires `fv(ψ1) = fv(ψ2)` for a union
//! `ψ1 + ψ2`, and an edge atom carrying a filter needs a variable. We
//! therefore wrap every filtered atom in a trivial repetition
//! `ψ^{1..1}`, which by Figure 1 *discards* bindings (`fv(ψ^{n..m}) =
//! ∅`). All lowered patterns are thus variable-free, and unions are
//! always well formed.

use crate::regex::Rpq;
use pgq_pattern::{Condition, Direction, Pattern, RepBound};
use pgq_value::VarGen;

/// Lower an RPQ to a variable-free core pattern. Endpoint semantics of
/// the result (Figure 2) coincide with automaton evaluation
/// ([`crate::automaton::eval_rpq`]); this is property-tested in
/// `lib.rs`.
pub fn rpq_to_pattern(r: &Rpq) -> Pattern {
    let mut vars = VarGen::new();
    lower(r, &mut vars)
}

fn lower(r: &Rpq, vars: &mut VarGen) -> Pattern {
    match r {
        Rpq::Epsilon => Pattern::Node(None),
        Rpq::Any => Pattern::Edge(None, Direction::Forward),
        Rpq::AnyInverse => Pattern::Edge(None, Direction::Backward),
        Rpq::Label(l) => labeled_edge(l.clone(), Direction::Forward, vars),
        Rpq::Inverse(l) => labeled_edge(l.clone(), Direction::Backward, vars),
        Rpq::Concat(a, b) => Pattern::Concat(Box::new(lower(a, vars)), Box::new(lower(b, vars))),
        Rpq::Union(a, b) => Pattern::Union(Box::new(lower(a, vars)), Box::new(lower(b, vars))),
        Rpq::Star(a) => Pattern::Repeat(Box::new(lower(a, vars)), 0, RepBound::Infinite),
    }
}

/// `-e->⟨ℓ(e)⟩` wrapped in `^{1..1}` to discard the binding of `e`.
fn labeled_edge(l: pgq_value::Label, dir: Direction, vars: &mut VarGen) -> Pattern {
    let e = vars.fresh("e");
    let filtered = Pattern::Filter(
        Box::new(Pattern::Edge(Some(e.clone()), dir)),
        Condition::HasLabel(e, l),
    );
    Pattern::Repeat(Box::new(filtered), 1, RepBound::Finite(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::eval_rpq;
    use pgq_graph::{ElementId, PropertyGraphBuilder};
    use pgq_pattern::{endpoint_pairs, eval_pattern};
    use pgq_value::Value;

    fn diamond() -> pgq_graph::PropertyGraph {
        // 0 -a-> 1 -b-> 3, 0 -b-> 2 -a-> 3, 3 -a-> 0
        let mut b = PropertyGraphBuilder::unary();
        for n in 0..4i64 {
            b.node1(Value::int(n)).unwrap();
        }
        let mut add = |id: i64, s: i64, t: i64, l: &str| {
            b.edge1(Value::int(id), Value::int(s), Value::int(t))
                .unwrap();
            b.label(ElementId::unary(Value::int(id)), Value::str(l))
                .unwrap();
        };
        add(10, 0, 1, "a");
        add(11, 1, 3, "b");
        add(12, 0, 2, "b");
        add(13, 2, 3, "a");
        add(14, 3, 0, "a");
        b.finish()
    }

    fn check(r: &Rpq) {
        let g = diamond();
        let via_automaton = eval_rpq(r, &g);
        let p = rpq_to_pattern(r);
        assert!(
            p.free_vars().is_empty(),
            "lowered pattern must be closed: {p:?}"
        );
        let via_pattern = endpoint_pairs(&eval_pattern(&p, &g).unwrap());
        assert_eq!(via_automaton, via_pattern, "rpq: {r}");
    }

    #[test]
    fn atoms_agree() {
        check(&Rpq::label("a"));
        check(&Rpq::label("b"));
        check(&Rpq::inverse("a"));
        check(&Rpq::Any);
        check(&Rpq::AnyInverse);
        check(&Rpq::Epsilon);
    }

    #[test]
    fn composites_agree() {
        check(&Rpq::label("a").then(Rpq::label("b")));
        check(&Rpq::label("a").or(Rpq::label("b")));
        check(&Rpq::label("a").star());
        check(&Rpq::label("a").or(Rpq::label("b")).plus());
        check(&Rpq::label("a").then(Rpq::inverse("b")).optional());
    }

    #[test]
    fn union_of_mixed_direction_atoms_is_well_formed() {
        // The whole point of the ^{1..1} wrapping: ℓ | ℓ⁻ unions atoms
        // with different fresh variables.
        check(&Rpq::label("a").or(Rpq::inverse("a")).star());
    }
}
