//! A text syntax for (2)RPQ expressions, used by examples and tests.
//!
//! ```text
//! expr   := term ('|' term)*            alternation
//! term   := factor factor*              concatenation (juxtaposition)
//!         | factor ('.' factor)*        explicit concatenation
//! factor := atom ('*' | '+' | '?')*     postfix repetition
//! atom   := label | label'^-' | '_' | '()' | '(' expr ')'
//! label  := bare identifier or 'quoted string'
//! ```
//!
//! `label^-` is the 2RPQ inverse (`⁻` also accepted), `_` matches any
//! forward edge (`_^-` any backward edge), and `()` is ε.

use crate::regex::Rpq;
use pgq_value::Value;
use std::fmt;

/// A parse failure with a byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RpqParseError {
    /// Byte offset into the source.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for RpqParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RPQ parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for RpqParseError {}

/// Parse an RPQ expression (see module docs for the grammar).
pub fn parse_rpq(src: &str) -> Result<Rpq, RpqParseError> {
    let mut p = P {
        src: src.as_bytes(),
        pos: 0,
    };
    let e = p.alternation()?;
    p.ws();
    if !p.done() {
        return Err(p.fail("trailing input"));
    }
    Ok(e)
}

struct P<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> P<'a> {
    fn done(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn fail(&self, message: &str) -> RpqParseError {
        RpqParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn alternation(&mut self) -> Result<Rpq, RpqParseError> {
        let mut acc = self.concatenation()?;
        loop {
            self.ws();
            if self.peek() == Some(b'|') {
                self.pos += 1;
                acc = acc.or(self.concatenation()?);
            } else {
                return Ok(acc);
            }
        }
    }

    fn concatenation(&mut self) -> Result<Rpq, RpqParseError> {
        let mut acc = self.postfix()?;
        loop {
            self.ws();
            if self.peek() == Some(b'.') {
                self.pos += 1;
                acc = acc.then(self.postfix()?);
                continue;
            }
            // `·` — the Display form of concatenation.
            if self.src[self.pos..].starts_with("·".as_bytes()) {
                self.pos += "·".len();
                acc = acc.then(self.postfix()?);
                continue;
            }
            // Juxtaposition: another atom starts here.
            match self.peek() {
                Some(c)
                    if c == b'('
                        || c == b'_'
                        || c == b'\''
                        || c == b'"'
                        || c.is_ascii_alphanumeric() =>
                {
                    acc = acc.then(self.postfix()?);
                }
                Some(0xce) if self.src[self.pos..].starts_with("ε".as_bytes()) => {
                    acc = acc.then(self.postfix()?);
                }
                _ => return Ok(acc),
            }
        }
    }

    fn postfix(&mut self) -> Result<Rpq, RpqParseError> {
        let mut acc = self.atom()?;
        loop {
            self.ws();
            match self.peek() {
                Some(b'*') => {
                    self.pos += 1;
                    acc = acc.star();
                }
                Some(b'+') => {
                    self.pos += 1;
                    acc = acc.plus();
                }
                Some(b'?') => {
                    self.pos += 1;
                    acc = acc.optional();
                }
                _ => return Ok(acc),
            }
        }
    }

    fn atom(&mut self) -> Result<Rpq, RpqParseError> {
        self.ws();
        // `ε` — the Display form of the empty word.
        if self.src[self.pos..].starts_with("ε".as_bytes()) {
            self.pos += "ε".len();
            return Ok(Rpq::Epsilon);
        }
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                self.ws();
                if self.peek() == Some(b')') {
                    self.pos += 1;
                    return Ok(Rpq::Epsilon);
                }
                let inner = self.alternation()?;
                self.ws();
                if self.peek() == Some(b')') {
                    self.pos += 1;
                    Ok(inner)
                } else {
                    Err(self.fail("expected `)`"))
                }
            }
            Some(b'_') => {
                self.pos += 1;
                if self.inverse_marker() {
                    Ok(Rpq::AnyInverse)
                } else {
                    Ok(Rpq::Any)
                }
            }
            Some(q @ (b'\'' | b'"')) => {
                self.pos += 1;
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c == q {
                        let label = std::str::from_utf8(&self.src[start..self.pos])
                            .map_err(|_| self.fail("non-UTF-8 label"))?
                            .to_owned();
                        self.pos += 1;
                        return Ok(self.finish_label(label));
                    }
                    self.pos += 1;
                }
                Err(self.fail("unterminated label literal"))
            }
            Some(c) if c.is_ascii_alphanumeric() => {
                let start = self.pos;
                while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
                    self.pos += 1;
                }
                let label = std::str::from_utf8(&self.src[start..self.pos])
                    .expect("ASCII identifier")
                    .to_owned();
                Ok(self.finish_label(label))
            }
            _ => Err(self.fail("expected a label, `_`, or `(`")),
        }
    }

    /// `^-` (ASCII) or `⁻` (U+207B) after a label makes it an inverse.
    fn inverse_marker(&mut self) -> bool {
        if self.src[self.pos..].starts_with(b"^-") {
            self.pos += 2;
            return true;
        }
        let sup_minus = "⁻".as_bytes();
        if self.src[self.pos..].starts_with(sup_minus) {
            self.pos += sup_minus.len();
            return true;
        }
        false
    }

    fn finish_label(&mut self, label: String) -> Rpq {
        if self.inverse_marker() {
            Rpq::Inverse(Value::str(label))
        } else {
            Rpq::Label(Value::str(label))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atoms_parse() {
        assert_eq!(parse_rpq("knows").unwrap(), Rpq::label("knows"));
        assert_eq!(parse_rpq("knows^-").unwrap(), Rpq::inverse("knows"));
        assert_eq!(parse_rpq("knows⁻").unwrap(), Rpq::inverse("knows"));
        assert_eq!(parse_rpq("_").unwrap(), Rpq::Any);
        assert_eq!(parse_rpq("_^-").unwrap(), Rpq::AnyInverse);
        assert_eq!(parse_rpq("()").unwrap(), Rpq::Epsilon);
        assert_eq!(parse_rpq("'two words'").unwrap(), Rpq::label("two words"));
    }

    #[test]
    fn postfix_operators() {
        assert_eq!(parse_rpq("a*").unwrap(), Rpq::label("a").star());
        assert_eq!(parse_rpq("a+").unwrap(), Rpq::label("a").plus());
        assert_eq!(parse_rpq("a?").unwrap(), Rpq::label("a").optional());
        // Stacked postfix applies left to right.
        assert_eq!(parse_rpq("a*+").unwrap(), Rpq::label("a").star().plus());
    }

    #[test]
    fn concatenation_both_ways() {
        let expect = Rpq::label("a").then(Rpq::label("b"));
        assert_eq!(parse_rpq("a.b").unwrap(), expect);
        assert_eq!(parse_rpq("a b").unwrap(), expect);
    }

    #[test]
    fn precedence_star_then_concat_then_union() {
        // a.b* | c  parses as  (a·(b)*) | c
        let got = parse_rpq("a.b* | c").unwrap();
        let expect = Rpq::label("a")
            .then(Rpq::label("b").star())
            .or(Rpq::label("c"));
        assert_eq!(got, expect);
    }

    #[test]
    fn parentheses_override() {
        // (a|b)* groups the union under the star.
        let got = parse_rpq("(a|b)*").unwrap();
        let expect = Rpq::label("a").or(Rpq::label("b")).star();
        assert_eq!(got, expect);
    }

    #[test]
    fn parsed_queries_evaluate() {
        use crate::automaton::eval_rpq;
        use pgq_graph::{ElementId, PropertyGraphBuilder};
        use pgq_value::Value;
        let mut b = PropertyGraphBuilder::unary();
        for i in 0..3i64 {
            b.node1(Value::int(i)).unwrap();
        }
        b.edge1(Value::int(10), Value::int(0), Value::int(1))
            .unwrap();
        b.label(ElementId::unary(Value::int(10)), Value::str("knows"))
            .unwrap();
        b.edge1(Value::int(11), Value::int(1), Value::int(2))
            .unwrap();
        b.label(ElementId::unary(Value::int(11)), Value::str("likes"))
            .unwrap();
        let g = b.finish();
        let r = parse_rpq("knows.likes | likes^-").unwrap();
        let pairs = eval_rpq(&r, &g);
        assert_eq!(pairs.len(), 2); // 0→2 via concat, 2→1 via inverse
    }

    #[test]
    fn display_round_trips() {
        // Rpq::Display prints ε, ·, ⁻, and double-quoted labels — all of
        // which the parser accepts, so display ∘ parse is the identity.
        let cases = [
            Rpq::label("a").then(Rpq::label("b")).star(),
            Rpq::inverse("knows").optional().or(Rpq::Epsilon),
            Rpq::Any.plus().then(Rpq::AnyInverse),
        ];
        for r in cases {
            assert_eq!(parse_rpq(&r.to_string()).unwrap(), r, "via {}", r);
        }
    }

    #[test]
    fn errors_carry_position() {
        let e = parse_rpq("a |").unwrap_err();
        assert!(e.message.contains("expected a label"));
        assert!(parse_rpq("(a").is_err());
        assert!(parse_rpq("'oops").is_err());
        assert!(parse_rpq("a ) b").is_err());
        assert!(parse_rpq("*a").is_err());
    }
}
