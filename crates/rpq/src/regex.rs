//! Regular path query expressions.
//!
//! The classical RPQ formalism ([3, 4, 7] in the paper's related work):
//! a regular expression over edge labels, matched against *paths* of a
//! graph. The two-way extension (2RPQ) adds inverse atoms `ℓ⁻` that
//! traverse an edge against its direction. These formalisms predate the
//! property graph model — they see only edge labels, not properties —
//! which is exactly the gap the paper's Section 1/related-work
//! discussion draws between classical RPQ theory and SQL/PGQ.

use pgq_value::Label;
use std::fmt;

/// A (two-way) regular path query over edge labels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rpq {
    /// `ℓ` — traverse one forward edge carrying label `ℓ`.
    Label(Label),
    /// `ℓ⁻` — traverse one edge carrying label `ℓ` *backwards* (the
    /// 2RPQ inverse atom).
    Inverse(Label),
    /// `_` — traverse one forward edge with any labeling.
    Any,
    /// `_⁻` — traverse one edge backwards, any labeling.
    AnyInverse,
    /// `ε` — the empty word: stay on the current node.
    Epsilon,
    /// `r1 · r2` — concatenation.
    Concat(Box<Rpq>, Box<Rpq>),
    /// `r1 | r2` — alternation.
    Union(Box<Rpq>, Box<Rpq>),
    /// `r*` — Kleene star.
    Star(Box<Rpq>),
}

impl Rpq {
    /// `ℓ` from anything label-like.
    pub fn label(l: impl Into<Label>) -> Self {
        Rpq::Label(l.into())
    }

    /// `ℓ⁻`.
    pub fn inverse(l: impl Into<Label>) -> Self {
        Rpq::Inverse(l.into())
    }

    /// `self · other`.
    pub fn then(self, other: Rpq) -> Self {
        Rpq::Concat(Box::new(self), Box::new(other))
    }

    /// `self | other`.
    pub fn or(self, other: Rpq) -> Self {
        Rpq::Union(Box::new(self), Box::new(other))
    }

    /// `self*`.
    pub fn star(self) -> Self {
        Rpq::Star(Box::new(self))
    }

    /// `self+ = self · self*`.
    pub fn plus(self) -> Self {
        self.clone().then(self.star())
    }

    /// `self? = ε | self`.
    pub fn optional(self) -> Self {
        Rpq::Epsilon.or(self)
    }

    /// Concatenate a sequence of expressions (`ε` for an empty input).
    pub fn seq<I: IntoIterator<Item = Rpq>>(parts: I) -> Self {
        parts.into_iter().reduce(Rpq::then).unwrap_or(Rpq::Epsilon)
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            Rpq::Label(_) | Rpq::Inverse(_) | Rpq::Any | Rpq::AnyInverse | Rpq::Epsilon => 1,
            Rpq::Concat(a, b) | Rpq::Union(a, b) => 1 + a.size() + b.size(),
            Rpq::Star(a) => 1 + a.size(),
        }
    }

    /// Whether any inverse atom occurs (i.e. the query is a proper
    /// 2RPQ rather than a plain RPQ).
    pub fn is_two_way(&self) -> bool {
        match self {
            Rpq::Inverse(_) | Rpq::AnyInverse => true,
            Rpq::Label(_) | Rpq::Any | Rpq::Epsilon => false,
            Rpq::Concat(a, b) | Rpq::Union(a, b) => a.is_two_way() || b.is_two_way(),
            Rpq::Star(a) => a.is_two_way(),
        }
    }
}

impl fmt::Display for Rpq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rpq::Label(l) => write!(f, "{l}"),
            Rpq::Inverse(l) => write!(f, "{l}⁻"),
            Rpq::Any => write!(f, "_"),
            Rpq::AnyInverse => write!(f, "_⁻"),
            Rpq::Epsilon => write!(f, "ε"),
            Rpq::Concat(a, b) => write!(f, "({a}·{b})"),
            Rpq::Union(a, b) => write!(f, "({a}|{b})"),
            Rpq::Star(a) => write!(f, "({a})*"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let r = Rpq::label("knows")
            .plus()
            .then(Rpq::inverse("follows").optional());
        assert!(r.is_two_way());
        assert!(r.size() >= 6);
    }

    #[test]
    fn one_way_detection() {
        let r = Rpq::label("a").then(Rpq::label("b").star()).or(Rpq::Any);
        assert!(!r.is_two_way());
    }

    #[test]
    fn seq_of_nothing_is_epsilon() {
        assert_eq!(Rpq::seq([]), Rpq::Epsilon);
    }

    #[test]
    fn display_is_parenthesized() {
        // String labels render quoted (the `Value` Display convention).
        let r = Rpq::label("a").or(Rpq::label("b")).star();
        assert_eq!(r.to_string(), "((\"a\"|\"b\"))*");
    }
}
