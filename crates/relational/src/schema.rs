//! Relation names and database schemas (Section 2.1).
//!
//! We follow the paper's *unnamed perspective*: a schema `S ⊆ R` is a
//! finite set of relation names, each with a positive arity; columns are
//! addressed positionally (`$1, $2, …` in the paper, 0-based here).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A relation name `R ∈ R`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelName(Arc<str>);

impl RelName {
    /// Creates a relation name.
    pub fn new(name: impl AsRef<str>) -> Self {
        RelName(Arc::from(name.as_ref()))
    }

    /// The textual name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for RelName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for RelName {
    fn from(s: &str) -> Self {
        RelName::new(s)
    }
}

impl From<String> for RelName {
    fn from(s: String) -> Self {
        RelName::new(s)
    }
}

/// A database schema: relation names with their arities.
///
/// The paper requires positive arities (`arity(R)` is a positive integer);
/// [`Schema::add`] enforces this.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schema {
    arities: BTreeMap<RelName, usize>,
}

impl Schema {
    /// The empty schema.
    pub fn new() -> Self {
        Schema::default()
    }

    /// Adds (or overwrites) a relation name with the given arity.
    ///
    /// # Panics
    /// Panics if `arity == 0`; the paper associates each relation name
    /// with a *positive* integer arity.
    pub fn add(&mut self, name: impl Into<RelName>, arity: usize) -> &mut Self {
        assert!(arity > 0, "schema arities must be positive");
        self.arities.insert(name.into(), arity);
        self
    }

    /// Builder-style [`Schema::add`].
    pub fn with(mut self, name: impl Into<RelName>, arity: usize) -> Self {
        self.add(name, arity);
        self
    }

    /// Arity of `name`, if declared.
    pub fn arity_of(&self, name: &RelName) -> Option<usize> {
        self.arities.get(name).copied()
    }

    /// Whether the schema declares `name`.
    pub fn contains(&self, name: &RelName) -> bool {
        self.arities.contains_key(name)
    }

    /// Iterates over `(name, arity)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&RelName, usize)> {
        self.arities.iter().map(|(n, &a)| (n, a))
    }

    /// Number of declared relation names.
    pub fn len(&self) -> usize {
        self.arities.len()
    }

    /// Whether the schema is empty.
    pub fn is_empty(&self) -> bool {
        self.arities.is_empty()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        write!(f, "{{")?;
        for (n, a) in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{n}/{a}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let s = Schema::new().with("Account", 1).with("Transfer", 5);
        assert_eq!(s.arity_of(&"Account".into()), Some(1));
        assert_eq!(s.arity_of(&"Transfer".into()), Some(5));
        assert_eq!(s.arity_of(&"Missing".into()), None);
        assert!(s.contains(&"Account".into()));
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_arity_rejected() {
        Schema::new().with("R", 0);
    }

    #[test]
    fn display_lists_sorted() {
        let s = Schema::new().with("B", 2).with("A", 1);
        assert_eq!(s.to_string(), "{A/1, B/2}");
    }

    #[test]
    fn overwrite_updates_arity() {
        let mut s = Schema::new();
        s.add("R", 2);
        s.add("R", 3);
        assert_eq!(s.arity_of(&"R".into()), Some(3));
        assert_eq!(s.len(), 1);
    }
}
