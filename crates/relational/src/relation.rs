//! Finite relations over the ordered domain (Section 2.1).
//!
//! A relation is a finite *set* of equal-arity tuples. Tuples live in a
//! `BTreeSet`, which gives set semantics, deterministic iteration order,
//! and — together with the total order on [`Value`] — the *ordered
//! structures* assumption of Remark 2.1 for free.

use crate::{RelError, RelResult};
use pgq_value::{Tuple, Value};
use std::collections::{BTreeSet, HashSet};
use std::fmt;

/// A finite set of tuples of a fixed arity.
///
/// The empty relation at any arity is representable; arity 0 is permitted
/// for *internal* results (a Boolean query result is a 0-ary relation that
/// is either `{()}` = true or `{}` = false), although schema-declared
/// relations are positive-arity.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Relation {
    arity: usize,
    tuples: BTreeSet<Tuple>,
}

impl Relation {
    /// The empty relation of the given arity.
    pub fn empty(arity: usize) -> Self {
        Relation {
            arity,
            tuples: BTreeSet::new(),
        }
    }

    /// The 0-ary relation `{()}` (Boolean *true*).
    pub fn r#true() -> Self {
        let mut r = Relation::empty(0);
        r.tuples.insert(Tuple::empty());
        r
    }

    /// The 0-ary empty relation (Boolean *false*).
    pub fn r#false() -> Self {
        Relation::empty(0)
    }

    /// Builds a relation from rows, checking that every row has `arity`.
    pub fn from_rows<I>(arity: usize, rows: I) -> RelResult<Self>
    where
        I: IntoIterator<Item = Tuple>,
    {
        let rows: Vec<Tuple> = rows.into_iter().collect();
        for t in &rows {
            if t.arity() != arity {
                return Err(RelError::ArityMismatch {
                    context: "relation insert",
                    expected: arity,
                    found: t.arity(),
                });
            }
        }
        // Collecting through `FromIterator` takes the standard
        // library's sort-and-bulk-build path — markedly faster than
        // per-row ordered inserts on the big batches the engines emit.
        Ok(Relation {
            arity,
            tuples: rows.into_iter().collect(),
        })
    }

    /// Builds a unary relation from values.
    pub fn unary<I, V>(values: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        let tuples = values.into_iter().map(|v| Tuple::unary(v.into())).collect();
        Relation { arity: 1, tuples }
    }

    /// The relation's arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Interpreting a 0-or-more-ary relation as a Boolean: non-empty = true.
    pub fn as_bool(&self) -> bool {
        !self.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.contains(t)
    }

    /// Inserts a tuple, checking its arity.
    pub fn insert(&mut self, t: Tuple) -> RelResult<bool> {
        if t.arity() != self.arity {
            return Err(RelError::ArityMismatch {
                context: "relation insert",
                expected: self.arity,
                found: t.arity(),
            });
        }
        Ok(self.tuples.insert(t))
    }

    /// Removes a tuple; `true` when it was present.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        self.tuples.remove(t)
    }

    /// Iterates over tuples in deterministic (lexicographic) order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.tuples.iter()
    }

    /// Consumes into the underlying tuple set.
    pub fn into_tuples(self) -> BTreeSet<Tuple> {
        self.tuples
    }

    /// Set union `Q ∪ Q′` (Figure 4). Arities must agree.
    pub fn union(&self, other: &Relation) -> RelResult<Relation> {
        self.check_compatible("union", other)?;
        let mut tuples = self.tuples.clone();
        tuples.extend(other.tuples.iter().cloned());
        Ok(Relation {
            arity: self.arity,
            tuples,
        })
    }

    /// Set difference `Q − Q′` (Figure 4).
    pub fn difference(&self, other: &Relation) -> RelResult<Relation> {
        self.check_compatible("difference", other)?;
        Ok(Relation {
            arity: self.arity,
            tuples: self.tuples.difference(&other.tuples).cloned().collect(),
        })
    }

    /// Set intersection (derived: `Q ∩ Q′ = Q − (Q − Q′)`), provided
    /// directly for efficiency.
    pub fn intersection(&self, other: &Relation) -> RelResult<Relation> {
        self.check_compatible("intersection", other)?;
        Ok(Relation {
            arity: self.arity,
            tuples: self.tuples.intersection(&other.tuples).cloned().collect(),
        })
    }

    /// Cartesian product `Q × Q′` (Figure 4).
    pub fn product(&self, other: &Relation) -> Relation {
        let mut tuples = BTreeSet::new();
        for a in &self.tuples {
            for b in &other.tuples {
                tuples.insert(a.concat(b));
            }
        }
        Relation {
            arity: self.arity + other.arity,
            tuples,
        }
    }

    /// Projection `π_{$i1,…,$ik}` with 0-based positions; positions may
    /// repeat and reorder (Figure 4 semantics).
    pub fn project(&self, positions: &[usize]) -> RelResult<Relation> {
        for &p in positions {
            if p >= self.arity {
                return Err(RelError::PositionOutOfRange {
                    position: p,
                    arity: self.arity,
                });
            }
        }
        let mut tuples = BTreeSet::new();
        for t in &self.tuples {
            // Indices were checked against the arity above.
            tuples.insert(t.project(positions).expect("checked positions"));
        }
        Ok(Relation {
            arity: positions.len(),
            tuples,
        })
    }

    /// Selection by an arbitrary predicate; algebra-level selections with
    /// the paper's `θ` conditions are built on top of this.
    pub fn select<F>(&self, mut pred: F) -> Relation
    where
        F: FnMut(&Tuple) -> bool,
    {
        Relation {
            arity: self.arity,
            tuples: self.tuples.iter().filter(|t| pred(t)).cloned().collect(),
        }
    }

    /// Natural join on explicit position pairs: keeps `(ā, b̄)`
    /// concatenations where `ā[i] == b̄[j]` for every `(i, j)` in `on`.
    ///
    /// This is the derived operator the paper uses when realizing
    /// parameterized unions as joins (Lemma 9.4: `ψreach(G_c̄) ⋈ σ_{p̄=c̄}(C)`).
    pub fn join_on(&self, other: &Relation, on: &[(usize, usize)]) -> RelResult<Relation> {
        for &(i, j) in on {
            if i >= self.arity {
                return Err(RelError::PositionOutOfRange {
                    position: i,
                    arity: self.arity,
                });
            }
            if j >= other.arity {
                return Err(RelError::PositionOutOfRange {
                    position: j,
                    arity: other.arity,
                });
            }
        }
        // Hash-join on the key of `on` positions.
        let mut index: std::collections::HashMap<Vec<&Value>, Vec<&Tuple>> =
            std::collections::HashMap::new();
        for b in &other.tuples {
            let key: Vec<&Value> = on.iter().map(|&(_, j)| &b[j]).collect();
            index.entry(key).or_default().push(b);
        }
        let mut tuples = BTreeSet::new();
        for a in &self.tuples {
            let key: Vec<&Value> = on.iter().map(|&(i, _)| &a[i]).collect();
            if let Some(bs) = index.get(&key) {
                for b in bs {
                    tuples.insert(a.concat(b));
                }
            }
        }
        Ok(Relation {
            arity: self.arity + other.arity,
            tuples,
        })
    }

    /// All values appearing in any tuple, merged into `acc` — the
    /// relation's contribution to the active domain `adom(D)`.
    pub fn collect_adom(&self, acc: &mut BTreeSet<Value>) {
        for t in &self.tuples {
            for v in t {
                acc.insert(v.clone());
            }
        }
    }

    /// Interprets the relation as the graph of a function
    /// `X → Y` where `X` is the first `key_arity` columns: checks that no
    /// key occurs with two distinct completions (Section 2.1, "Relations
    /// as (partial) functions"). Returns `true` for *partial* functions;
    /// use [`Relation::is_total_function_on`] for totality.
    pub fn is_partial_function(&self, key_arity: usize) -> bool {
        if key_arity > self.arity {
            return false;
        }
        let mut seen: HashSet<&[Value]> = HashSet::with_capacity(self.tuples.len());
        for t in &self.tuples {
            if !seen.insert(&t.values()[..key_arity]) {
                return false;
            }
        }
        true
    }

    /// Checks that the relation encodes a *total* function from `domain`
    /// (tuples of arity `key_arity`) — i.e. it is a partial function and
    /// every element of `domain` occurs as a key.
    pub fn is_total_function_on(&self, key_arity: usize, domain: &Relation) -> bool {
        if !self.is_partial_function(key_arity) || domain.arity() != key_arity {
            return false;
        }
        if self.tuples.len() != domain.len() {
            return false;
        }
        let keys: BTreeSet<&[Value]> = self
            .tuples
            .iter()
            .map(|t| &t.values()[..key_arity])
            .collect();
        domain.iter().all(|d| keys.contains(d.values()))
    }

    fn check_compatible(&self, op: &'static str, other: &Relation) -> RelResult<()> {
        if self.arity != other.arity {
            return Err(RelError::IncompatibleArities {
                op,
                left: self.arity,
                right: other.arity,
            });
        }
        Ok(())
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "-- {} tuple(s), arity {}", self.len(), self.arity)?;
        for t in &self.tuples {
            writeln!(f, "{t}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Relation {
    type Item = &'a Tuple;
    type IntoIter = std::collections::btree_set::Iter<'a, Tuple>;
    fn into_iter(self) -> Self::IntoIter {
        self.tuples.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgq_value::tuple;

    fn r(rows: &[&[i64]]) -> Relation {
        let arity = rows.first().map_or(0, |r| r.len());
        Relation::from_rows(
            arity,
            rows.iter()
                .map(|row| row.iter().map(|&v| Value::int(v)).collect::<Tuple>()),
        )
        .unwrap()
    }

    #[test]
    fn insert_checks_arity() {
        let mut rel = Relation::empty(2);
        assert!(rel.insert(tuple![1, 2]).unwrap());
        assert!(!rel.insert(tuple![1, 2]).unwrap()); // set semantics
        assert!(rel.insert(tuple![1]).is_err());
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn boolean_relations() {
        assert!(Relation::r#true().as_bool());
        assert!(!Relation::r#false().as_bool());
        assert_eq!(Relation::r#true().arity(), 0);
    }

    #[test]
    fn union_difference_intersection() {
        let a = r(&[&[1], &[2]]);
        let b = r(&[&[2], &[3]]);
        assert_eq!(a.union(&b).unwrap(), r(&[&[1], &[2], &[3]]));
        assert_eq!(a.difference(&b).unwrap(), r(&[&[1]]));
        assert_eq!(a.intersection(&b).unwrap(), r(&[&[2]]));
        let c = r(&[&[1, 2]]);
        assert!(a.union(&c).is_err());
        assert!(a.difference(&c).is_err());
        assert!(a.intersection(&c).is_err());
    }

    #[test]
    fn product_concatenates() {
        let a = r(&[&[1], &[2]]);
        let b = r(&[&[10, 20]]);
        let p = a.product(&b);
        assert_eq!(p.arity(), 3);
        assert_eq!(p, r(&[&[1, 10, 20], &[2, 10, 20]]));
        // Product with empty is empty.
        assert!(a.product(&Relation::empty(1)).is_empty());
    }

    #[test]
    fn projection_repeats_and_reorders() {
        let a = r(&[&[1, 2], &[3, 4]]);
        assert_eq!(a.project(&[1, 0]).unwrap(), r(&[&[2, 1], &[4, 3]]));
        assert_eq!(a.project(&[0, 0]).unwrap(), r(&[&[1, 1], &[3, 3]]));
        assert!(a.project(&[2]).is_err());
        // Projection can merge tuples (set semantics).
        let b = r(&[&[1, 2], &[1, 3]]);
        assert_eq!(b.project(&[0]).unwrap().len(), 1);
    }

    #[test]
    fn select_by_predicate() {
        let a = r(&[&[1, 1], &[1, 2]]);
        let s = a.select(|t| t[0] == t[1]);
        assert_eq!(s, r(&[&[1, 1]]));
    }

    #[test]
    fn join_on_positions() {
        let a = r(&[&[1, 10], &[2, 20]]);
        let b = r(&[&[10, 100], &[30, 300]]);
        let j = a.join_on(&b, &[(1, 0)]).unwrap();
        assert_eq!(j, r(&[&[1, 10, 10, 100]]));
        assert!(a.join_on(&b, &[(5, 0)]).is_err());
        assert!(a.join_on(&b, &[(0, 5)]).is_err());
    }

    #[test]
    fn join_on_empty_key_is_product() {
        let a = r(&[&[1], &[2]]);
        let b = r(&[&[3]]);
        assert_eq!(a.join_on(&b, &[]).unwrap(), a.product(&b));
    }

    #[test]
    fn adom_collection() {
        let a = r(&[&[1, 2], &[2, 3]]);
        let mut dom = BTreeSet::new();
        a.collect_adom(&mut dom);
        assert_eq!(
            dom.into_iter().collect::<Vec<_>>(),
            vec![Value::int(1), Value::int(2), Value::int(3)]
        );
    }

    #[test]
    fn partial_and_total_functions() {
        // {(1,10),(2,20)} is a function on key arity 1.
        let f = r(&[&[1, 10], &[2, 20]]);
        assert!(f.is_partial_function(1));
        // {(1,10),(1,20)} is not.
        let g = r(&[&[1, 10], &[1, 20]]);
        assert!(!g.is_partial_function(1));
        let dom = r(&[&[1], &[2]]);
        assert!(f.is_total_function_on(1, &dom));
        let bigger = r(&[&[1], &[2], &[3]]);
        assert!(!f.is_total_function_on(1, &bigger));
        // Key arity larger than tuple arity is rejected.
        assert!(!f.is_partial_function(3));
    }

    #[test]
    fn unary_builder() {
        let u = Relation::unary([1i64, 2, 1]);
        assert_eq!(u.len(), 2);
        assert_eq!(u.arity(), 1);
    }

    #[test]
    fn deterministic_iteration_order() {
        let a = r(&[&[3], &[1], &[2]]);
        let order: Vec<i64> = a.iter().map(|t| t[0].as_int().unwrap()).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }
}
