//! Database instances (Section 2.1) and active domains.

use crate::{RelError, RelName, RelResult, Relation, Schema};
use pgq_value::{Tuple, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A database instance `D` over a schema `S`: an assignment of a finite
/// relation to each relation name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Database {
    relations: BTreeMap<RelName, Relation>,
}

impl Database {
    /// The empty instance.
    pub fn new() -> Self {
        Database::default()
    }

    /// Inserts (or replaces) a relation under `name`.
    pub fn add_relation(&mut self, name: impl Into<RelName>, rel: Relation) -> &mut Self {
        self.relations.insert(name.into(), rel);
        self
    }

    /// Builder-style [`Database::add_relation`].
    pub fn with_relation(mut self, name: impl Into<RelName>, rel: Relation) -> Self {
        self.add_relation(name, rel);
        self
    }

    /// Looks up `R^D`.
    pub fn get(&self, name: &RelName) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Looks up `R^D`, raising a typed error when absent.
    pub fn get_required(&self, name: &RelName) -> RelResult<&Relation> {
        self.relations
            .get(name)
            .ok_or_else(|| RelError::UnknownRelation(name.clone()))
    }

    /// Inserts a single tuple into relation `name`, creating the relation
    /// with the tuple's arity if it does not exist yet.
    pub fn insert(&mut self, name: impl Into<RelName>, t: Tuple) -> RelResult<bool> {
        let name = name.into();
        let arity = t.arity();
        self.relations
            .entry(name)
            .or_insert_with(|| Relation::empty(arity))
            .insert(t)
    }

    /// Removes a single tuple from relation `name`; `false` when the
    /// relation or the tuple is absent. The relation stays registered
    /// (an emptied relation is meaningful — schemas outlive rows).
    pub fn remove(&mut self, name: &RelName, t: &Tuple) -> bool {
        self.relations.get_mut(name).is_some_and(|r| r.remove(t))
    }

    /// Iterates over `(name, relation)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&RelName, &Relation)> {
        self.relations.iter()
    }

    /// Number of relations stored.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether no relations are stored.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// The active domain `adom(D)`: all constants appearing in `D`
    /// (Section 2.1), in the fixed value order. FO quantifiers and the
    /// complements used by the FO→PGQ translation range over this set.
    pub fn active_domain(&self) -> BTreeSet<Value> {
        let mut dom = BTreeSet::new();
        for rel in self.relations.values() {
            rel.collect_adom(&mut dom);
        }
        dom
    }

    /// The active domain as a unary [`Relation`] — the query `Q_A` used
    /// as the base of complements in Theorem 6.2's translation.
    pub fn active_domain_relation(&self) -> Relation {
        Relation::unary(self.active_domain())
    }

    /// `adom(D)^k` as a relation — `A^(k)` in Theorem 6.2.
    pub fn active_domain_power(&self, k: usize) -> Relation {
        let adom = self.active_domain_relation();
        let mut acc = Relation::r#true();
        for _ in 0..k {
            acc = acc.product(&adom);
        }
        acc
    }

    /// The schema induced by the stored relations.
    pub fn schema(&self) -> Schema {
        let mut s = Schema::new();
        for (name, rel) in &self.relations {
            if rel.arity() > 0 {
                s.add(name.clone(), rel.arity());
            }
        }
        s
    }

    /// Checks this instance against a declared schema: every declared
    /// relation must be present with the declared arity.
    pub fn conforms_to(&self, schema: &Schema) -> RelResult<()> {
        for (name, arity) in schema.iter() {
            let rel = self.get_required(name)?;
            if rel.arity() != arity {
                return Err(RelError::ArityMismatch {
                    context: "schema conformance",
                    expected: arity,
                    found: rel.arity(),
                });
            }
        }
        Ok(())
    }

    /// Total number of tuples across all relations (the size measure `|D|`
    /// used in the data-complexity experiments).
    pub fn tuple_count(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, rel) in &self.relations {
            writeln!(f, "{name} {rel}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgq_value::tuple;

    #[test]
    fn insert_creates_relation() {
        let mut db = Database::new();
        assert!(db.insert("R", tuple![1, 2]).unwrap());
        assert!(!db.insert("R", tuple![1, 2]).unwrap());
        assert!(db.insert("R", tuple![1]).is_err());
        assert_eq!(db.get(&"R".into()).unwrap().len(), 1);
    }

    #[test]
    fn get_required_errors_on_missing() {
        let db = Database::new();
        assert_eq!(
            db.get_required(&"Nope".into()),
            Err(RelError::UnknownRelation("Nope".into()))
        );
    }

    #[test]
    fn active_domain_spans_all_relations() {
        let mut db = Database::new();
        db.insert("R", tuple![1, "a"]).unwrap();
        db.insert("S", tuple![true]).unwrap();
        let dom = db.active_domain();
        assert_eq!(dom.len(), 3);
        assert!(dom.contains(&Value::str("a")));
        assert_eq!(db.active_domain_relation().arity(), 1);
    }

    #[test]
    fn active_domain_power() {
        let mut db = Database::new();
        db.insert("R", tuple![1]).unwrap();
        db.insert("R", tuple![2]).unwrap();
        let sq = db.active_domain_power(2);
        assert_eq!(sq.arity(), 2);
        assert_eq!(sq.len(), 4);
        assert_eq!(db.active_domain_power(0), Relation::r#true());
    }

    #[test]
    fn schema_and_conformance() {
        let mut db = Database::new();
        db.insert("R", tuple![1, 2]).unwrap();
        let schema = db.schema();
        assert_eq!(schema.arity_of(&"R".into()), Some(2));
        assert!(db.conforms_to(&schema).is_ok());

        let wrong = Schema::new().with("R", 3);
        assert!(db.conforms_to(&wrong).is_err());
        let missing = Schema::new().with("S", 1);
        assert!(db.conforms_to(&missing).is_err());
    }

    #[test]
    fn tuple_count_sums() {
        let mut db = Database::new();
        db.insert("R", tuple![1]).unwrap();
        db.insert("R", tuple![2]).unwrap();
        db.insert("S", tuple![1, 2]).unwrap();
        assert_eq!(db.tuple_count(), 3);
    }
}
