//! Typed errors for the relational layer.
//!
//! Malformed algebra (arity mismatches, out-of-range positions, unknown
//! names) is always surfaced as an [`RelError`], never a panic: failure
//! injection tests rely on this.

use crate::RelName;
use std::fmt;

/// Errors raised while building or evaluating relational expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelError {
    /// A tuple's arity does not match the relation's declared arity.
    ArityMismatch {
        /// What was being built or evaluated.
        context: &'static str,
        /// Declared/expected arity.
        expected: usize,
        /// Arity actually supplied.
        found: usize,
    },
    /// Set operation over operands of different arities.
    IncompatibleArities {
        /// The operation (`union`, `difference`, …).
        op: &'static str,
        /// Left operand arity.
        left: usize,
        /// Right operand arity.
        right: usize,
    },
    /// A positional reference `$i` outside `1..=arity`.
    PositionOutOfRange {
        /// 0-based position used.
        position: usize,
        /// Arity of the row it was applied to.
        arity: usize,
    },
    /// A relation name absent from the database instance.
    UnknownRelation(RelName),
    /// A selection/projection used a condition outside the formal core
    /// while core-only evaluation was requested.
    NonCoreCondition(&'static str),
    /// A coded batch reached a decode boundary without the session
    /// store (and thus dictionary) it was coded against.
    MissingStore {
        /// The operation that needed the store.
        context: &'static str,
    },
    /// A dictionary code outside the dictionary it is decoded against —
    /// e.g. a code minted after the decoding snapshot was taken.
    UnknownCode {
        /// The out-of-range code.
        code: u32,
        /// What was being decoded.
        context: &'static str,
    },
    /// A fixpoint exceeded the configured iteration budget
    /// (`ExecOptions::max_fixpoint_iters`) — the safety valve against
    /// pathological inputs that would otherwise loop for a very long
    /// time before converging.
    IterationLimit {
        /// The configured iteration budget that was exhausted.
        limit: usize,
        /// Iterations actually performed before giving up (always
        /// `limit + 1`: the first round past the budget trips it).
        iterations: usize,
    },
}

impl fmt::Display for RelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelError::ArityMismatch {
                context,
                expected,
                found,
            } => write!(
                f,
                "arity mismatch in {context}: expected {expected}, found {found}"
            ),
            RelError::IncompatibleArities { op, left, right } => {
                write!(f, "{op} over incompatible arities {left} and {right}")
            }
            RelError::PositionOutOfRange { position, arity } => write!(
                f,
                "position ${} out of range for arity {arity}",
                position + 1
            ),
            RelError::UnknownRelation(n) => write!(f, "unknown relation {n}"),
            RelError::NonCoreCondition(what) => {
                write!(f, "condition uses non-core construct: {what}")
            }
            RelError::MissingStore { context } => {
                write!(
                    f,
                    "{context} requires the session store the batch was coded against"
                )
            }
            RelError::UnknownCode { code, context } => {
                write!(
                    f,
                    "code {code} not in the dictionary while decoding {context}"
                )
            }
            RelError::IterationLimit { limit, iterations } => {
                write!(
                    f,
                    "fixpoint exceeded max_fixpoint_iters = {limit} (stopped after {iterations} iterations)"
                )
            }
        }
    }
}

impl std::error::Error for RelError {}

/// Result alias for the relational layer.
pub type RelResult<T> = Result<T, RelError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = RelError::ArityMismatch {
            context: "insert",
            expected: 2,
            found: 3,
        };
        assert!(e.to_string().contains("insert"));
        let e = RelError::PositionOutOfRange {
            position: 4,
            arity: 3,
        };
        assert!(e.to_string().contains("$5"));
        let e = RelError::UnknownRelation("R".into());
        assert!(e.to_string().contains('R'));
        let e = RelError::IncompatibleArities {
            op: "union",
            left: 1,
            right: 2,
        };
        assert!(e.to_string().contains("union"));
        let e = RelError::NonCoreCondition("constant comparison");
        assert!(e.to_string().contains("non-core"));
        let e = RelError::MissingStore { context: "decode" };
        assert!(e.to_string().contains("session store"));
        let e = RelError::UnknownCode {
            code: 41,
            context: "coded batch",
        };
        assert!(e.to_string().contains("41"));
        let e = RelError::IterationLimit {
            limit: 4,
            iterations: 5,
        };
        assert!(e.to_string().contains("max_fixpoint_iters = 4"));
        assert!(e.to_string().contains("5 iterations"));
    }
}
