//! # pgq-relational
//!
//! An in-memory relational engine: schemas, finite relations with set
//! semantics, database instances, selection conditions, and a relational
//! algebra evaluator.
//!
//! This is substrate S2 of the reproduction (see DESIGN.md): the
//! "relational structures" of Section 2.1 of the paper, plus the algebra
//! layer that `PGQro` wraps around pattern matching (Figure 3/4). All
//! relations are `BTreeSet`-backed, so instances are *ordered structures*
//! (Remark 2.1) with deterministic iteration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algebra;
mod condition;
mod database;
mod error;
pub mod io;
mod relation;
mod schema;

pub use algebra::RaExpr;
pub use condition::{CmpOp, Operand, RowCondition};
pub use database::Database;
pub use error::{RelError, RelResult};
pub use io::{dump, load, LoadError};
pub use relation::Relation;
pub use schema::{RelName, Schema};

#[cfg(test)]
mod smoke {
    use super::*;
    use pgq_value::tuple;

    /// Deterministic end-to-end smoke: build a three-edge cycle, run a
    /// two-hop reachability query through the full RA pipeline (product,
    /// selection, projection — Figure 3's core operators), and check the
    /// exact answer.
    #[test]
    fn two_hop_query_over_small_db() {
        let mut db = Database::new();
        db.add_relation(
            "E",
            Relation::from_rows(2, [tuple![0, 1], tuple![1, 2], tuple![2, 0]]).unwrap(),
        );

        let q = RaExpr::rel("E")
            .product(RaExpr::rel("E"))
            .select(RowCondition::Cmp(
                Operand::Col(1),
                CmpOp::Eq,
                Operand::Col(2),
            ))
            .project([0, 3]);
        assert_eq!(q.arity(&db.schema()).unwrap(), 2);

        let two_hops = q.eval(&db).unwrap();
        let expected = Relation::from_rows(2, [tuple![0, 2], tuple![1, 0], tuple![2, 1]]).unwrap();
        assert_eq!(two_hops, expected);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use pgq_value::{Tuple, Value};
    use proptest::prelude::*;

    fn arb_rel(arity: usize) -> impl Strategy<Value = Relation> {
        prop::collection::btree_set(
            prop::collection::vec(0i64..6, arity)
                .prop_map(|vs| vs.into_iter().map(Value::int).collect::<Tuple>()),
            0..12,
        )
        .prop_map(move |ts| Relation::from_rows(arity, ts).unwrap())
    }

    proptest! {
        #[test]
        fn union_is_commutative_and_idempotent(a in arb_rel(2), b in arb_rel(2)) {
            prop_assert_eq!(a.union(&b).unwrap(), b.union(&a).unwrap());
            prop_assert_eq!(a.union(&a).unwrap(), a);
        }

        #[test]
        fn intersection_matches_derived_form(a in arb_rel(2), b in arb_rel(2)) {
            // Q ∩ Q′ = Q − (Q − Q′): the derivation used to keep the core
            // grammar minimal (Figure 3 has only ∪, −, ×, π, σ).
            let derived = a.difference(&a.difference(&b).unwrap()).unwrap();
            prop_assert_eq!(a.intersection(&b).unwrap(), derived);
        }

        #[test]
        fn difference_never_grows(a in arb_rel(1), b in arb_rel(1)) {
            let d = a.difference(&b).unwrap();
            prop_assert!(d.len() <= a.len());
            for t in d.iter() {
                prop_assert!(a.contains(t) && !b.contains(t));
            }
        }

        #[test]
        fn product_cardinality_multiplies(a in arb_rel(1), b in arb_rel(2)) {
            prop_assert_eq!(a.product(&b).len(), a.len() * b.len());
        }

        #[test]
        fn projection_distributes_over_union(a in arb_rel(3), b in arb_rel(3)) {
            let lhs = a.union(&b).unwrap().project(&[2, 0]).unwrap();
            let rhs = a.project(&[2, 0]).unwrap()
                .union(&b.project(&[2, 0]).unwrap()).unwrap();
            prop_assert_eq!(lhs, rhs);
        }

        #[test]
        fn join_on_agrees_with_product_plus_select(a in arb_rel(2), b in arb_rel(2)) {
            let joined = a.join_on(&b, &[(1, 0)]).unwrap();
            let via_sigma = a.product(&b).select(|t| t[1] == t[2]);
            prop_assert_eq!(joined, via_sigma);
        }

        #[test]
        fn dump_load_roundtrip(a in arb_rel(2), b in arb_rel(1)) {
            let db = Database::new()
                .with_relation("A", a)
                .with_relation("B", b);
            prop_assert_eq!(load(&dump(&db)).unwrap(), db);
        }

        #[test]
        fn select_true_is_identity(a in arb_rel(2)) {
            let q = RaExpr::Singleton(Tuple::empty()); // dummy to touch the API
            let _ = q.size();
            prop_assert_eq!(a.select(|_| true), a);
        }
    }
}
