//! A plain-text interchange format for database instances, used by the
//! examples and handy for debugging:
//!
//! ```text
//! # comment
//! Account(1): "IL01"
//! Transfer(5): 1, "IL01", "IL02", 1000, 250
//! ```
//!
//! One header line `Name(arity):` may be followed by inline row values;
//! further `Name: v1, v2, …` lines append rows. Values are integers,
//! `true`/`false`, or double-quoted strings (with `\"` and `\\`
//! escapes). Dump → load is the identity (property-tested in `lib.rs`).

use crate::{Database, RelName, Relation};
use pgq_value::{Tuple, Value};
use std::fmt::Write as _;

/// Serializes a database in the text format (relations and rows in
/// deterministic order).
pub fn dump(db: &Database) -> String {
    let mut out = String::new();
    for (name, rel) in db.iter() {
        let _ = writeln!(out, "{name}({}):", rel.arity());
        for row in rel.iter() {
            let cells: Vec<String> = row.iter().map(render_value).collect();
            let _ = writeln!(out, "{name}: {}", cells.join(", "));
        }
    }
    out
}

fn render_value(v: &Value) -> String {
    match v {
        Value::Int(i) => i.to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Str(s) => {
            let escaped = s.replace('\\', "\\\\").replace('"', "\\\"");
            format!("\"{escaped}\"")
        }
    }
}

/// Errors from [`load`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LoadError {}

/// Parses the text format back into a database.
pub fn load(text: &str) -> Result<Database, LoadError> {
    let mut db = Database::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = idx + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |message: String| LoadError {
            line: lineno,
            message,
        };
        let colon = line
            .find(':')
            .ok_or_else(|| err("expected `Name(arity):` or `Name: values`".into()))?;
        let (head, rest) = line.split_at(colon);
        let rest = &rest[1..];
        if let Some(open) = head.find('(') {
            // Declaration: Name(arity):
            let name = head[..open].trim();
            let arity_text = head[open + 1..].trim_end_matches(')').trim();
            let arity: usize = arity_text
                .parse()
                .map_err(|_| err(format!("bad arity {arity_text:?}")))?;
            db.add_relation(name, Relation::empty(arity));
            if !rest.trim().is_empty() {
                return Err(err("declaration lines take no inline values".into()));
            }
        } else {
            // Row: Name: v1, v2, …
            let name: RelName = head.trim().into();
            let values = parse_values(rest).map_err(&err)?;
            db.insert(name, Tuple::new(values))
                .map_err(|e| err(e.to_string()))?;
        }
    }
    Ok(db)
}

fn parse_values(text: &str) -> Result<Vec<Value>, String> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0usize;
    loop {
        while i < bytes.len() && (bytes[i] as char).is_ascii_whitespace() {
            i += 1;
        }
        if i >= bytes.len() {
            break;
        }
        match bytes[i] as char {
            '"' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i).map(|&b| b as char) {
                        None => return Err("unterminated string".into()),
                        Some('"') => {
                            i += 1;
                            break;
                        }
                        Some('\\') => {
                            match bytes.get(i + 1).map(|&b| b as char) {
                                Some('"') => s.push('"'),
                                Some('\\') => s.push('\\'),
                                other => {
                                    return Err(format!("bad escape {other:?}"));
                                }
                            }
                            i += 2;
                        }
                        Some(c) => {
                            s.push(c);
                            i += 1;
                        }
                    }
                }
                out.push(Value::Str(s));
            }
            _ => {
                let start = i;
                while i < bytes.len() && bytes[i] != b',' {
                    i += 1;
                }
                let token = text[start..i].trim();
                if token.eq_ignore_ascii_case("true") {
                    out.push(Value::Bool(true));
                } else if token.eq_ignore_ascii_case("false") {
                    out.push(Value::Bool(false));
                } else {
                    let n: i64 = token
                        .parse()
                        .map_err(|_| format!("bad literal {token:?}"))?;
                    out.push(Value::Int(n));
                }
            }
        }
        // Skip to the next comma.
        while i < bytes.len() && (bytes[i] as char).is_ascii_whitespace() {
            i += 1;
        }
        if i < bytes.len() {
            if bytes[i] != b',' {
                return Err(format!("expected `,` at byte {i}"));
            }
            i += 1;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgq_value::tuple;

    #[test]
    fn dump_then_load_is_identity() {
        let mut db = Database::new();
        db.add_relation("Empty", Relation::empty(2));
        db.insert("R", tuple![1, "a b", true]).unwrap();
        db.insert("R", tuple![-5, "quote\" and \\slash", false])
            .unwrap();
        db.insert("S", tuple!["x"]).unwrap();
        let text = dump(&db);
        let back = load(&text).unwrap();
        assert_eq!(back, db);
    }

    #[test]
    fn declarations_preserve_empty_relations() {
        let db = load("Empty(3):\n").unwrap();
        assert_eq!(db.get(&"Empty".into()).unwrap().arity(), 3);
        assert!(db.get(&"Empty".into()).unwrap().is_empty());
    }

    #[test]
    fn comments_and_blank_lines_skip() {
        let db = load("# header\n\nR: 1, 2\n").unwrap();
        assert_eq!(db.get(&"R".into()).unwrap().len(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = load("R 1 2").unwrap_err();
        assert_eq!(e.line, 1);
        let e = load("R: 1\nR: \"unterminated").unwrap_err();
        assert_eq!(e.line, 2);
        let e = load("R(x):").unwrap_err();
        assert!(e.message.contains("bad arity"));
        let e = load("R: banana").unwrap_err();
        assert!(e.message.contains("bad literal"));
        // Arity mismatch across rows.
        let e = load("R: 1, 2\nR: 1").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn string_escapes_round_trip() {
        let mut db = Database::new();
        db.insert("R", tuple!["\\", "\"", "a,b"]).unwrap();
        assert_eq!(load(&dump(&db)).unwrap(), db);
    }
}
