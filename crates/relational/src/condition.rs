//! Row conditions `θ` for selections (Figure 3).
//!
//! The formal grammar of `PGQro` selection conditions is
//! `θ := $i1 = $i2 | ¬θ | θ ∨ θ | θ ∧ θ` over tuple positions.
//! The SQL/PGQ surface language additionally compares against constants
//! and uses order comparisons; those are provided as clearly-flagged
//! extensions ([`RowCondition::is_core`] distinguishes them), matching
//! deviation note 3 in DESIGN.md.

use crate::{RelError, RelResult};
use pgq_value::{Tuple, Value};
use std::fmt;

/// One side of a comparison: a 0-based tuple position or a constant.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Operand {
    /// `$i` (0-based; the paper counts from 1).
    Col(usize),
    /// A constant — an *extension* of the formal core.
    Const(Value),
}

impl Operand {
    fn eval<'a>(&'a self, t: &'a Tuple) -> RelResult<&'a Value> {
        match self {
            Operand::Col(i) => t.get(*i).ok_or(RelError::PositionOutOfRange {
                position: *i,
                arity: t.arity(),
            }),
            Operand::Const(v) => Ok(v),
        }
    }
}

/// Comparison operators. Only `Eq` belongs to the formal core grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>` (extension; expressible as `¬(=)` but convenient).
    Ne,
    /// `<` (extension; uses the total value order).
    Lt,
    /// `<=` (extension).
    Le,
    /// `>` (extension).
    Gt,
    /// `>=` (extension).
    Ge,
}

impl CmpOp {
    fn apply(self, a: &Value, b: &Value) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// A selection condition over one tuple.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RowCondition {
    /// A comparison between two operands.
    Cmp(Operand, CmpOp, Operand),
    /// `¬θ`
    Not(Box<RowCondition>),
    /// `θ ∧ θ′`
    And(Box<RowCondition>, Box<RowCondition>),
    /// `θ ∨ θ′`
    Or(Box<RowCondition>, Box<RowCondition>),
    /// Constant truth (neutral element for [`RowCondition::and_all`]).
    True,
}

impl RowCondition {
    /// The core-grammar condition `$i = $j` (0-based).
    pub fn col_eq(i: usize, j: usize) -> Self {
        RowCondition::Cmp(Operand::Col(i), CmpOp::Eq, Operand::Col(j))
    }

    /// Extension: `$i = c`.
    pub fn col_eq_const(i: usize, v: impl Into<Value>) -> Self {
        RowCondition::Cmp(Operand::Col(i), CmpOp::Eq, Operand::Const(v.into()))
    }

    /// Extension: `$i op c`.
    pub fn col_cmp_const(i: usize, op: CmpOp, v: impl Into<Value>) -> Self {
        RowCondition::Cmp(Operand::Col(i), op, Operand::Const(v.into()))
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        RowCondition::Not(Box::new(self))
    }

    /// Conjunction.
    pub fn and(self, other: RowCondition) -> Self {
        RowCondition::And(Box::new(self), Box::new(other))
    }

    /// Disjunction.
    pub fn or(self, other: RowCondition) -> Self {
        RowCondition::Or(Box::new(self), Box::new(other))
    }

    /// Conjunction of a sequence (empty ⇒ `True`).
    pub fn and_all<I: IntoIterator<Item = RowCondition>>(conds: I) -> Self {
        let mut iter = conds.into_iter();
        match iter.next() {
            None => RowCondition::True,
            Some(first) => iter.fold(first, |acc, c| acc.and(c)),
        }
    }

    /// Whether the condition stays within the formal core grammar of
    /// Figure 3 (`$i=$j` and Boolean combinations; `True` counts as the
    /// empty conjunction).
    pub fn is_core(&self) -> bool {
        match self {
            RowCondition::Cmp(Operand::Col(_), CmpOp::Eq, Operand::Col(_)) => true,
            RowCondition::Cmp(..) => false,
            RowCondition::Not(c) => c.is_core(),
            RowCondition::And(a, b) | RowCondition::Or(a, b) => a.is_core() && b.is_core(),
            RowCondition::True => true,
        }
    }

    /// Evaluates `t̄ ⊨ θ` (Figure 4). Out-of-range positions are errors,
    /// mirroring the side condition `1 ≤ i, i′ ≤ n` in the paper.
    pub fn eval(&self, t: &Tuple) -> RelResult<bool> {
        match self {
            RowCondition::Cmp(a, op, b) => Ok(op.apply(a.eval(t)?, b.eval(t)?)),
            RowCondition::Not(c) => Ok(!c.eval(t)?),
            RowCondition::And(a, b) => Ok(a.eval(t)? && b.eval(t)?),
            RowCondition::Or(a, b) => Ok(a.eval(t)? || b.eval(t)?),
            RowCondition::True => Ok(true),
        }
    }

    /// Flattens a top-level conjunction into its conjuncts, dropping
    /// `⊤` (the paper's `θ ∧ θ′` read as a list). Used by the selection
    /// pushdown rewrites in the logical optimizer and the physical
    /// planner.
    pub fn conjuncts(&self) -> Vec<RowCondition> {
        match self {
            RowCondition::And(a, b) => {
                let mut out = a.conjuncts();
                out.extend(b.conjuncts());
                out
            }
            RowCondition::True => Vec::new(),
            other => vec![other.clone()],
        }
    }

    /// All tuple positions the condition references.
    pub fn columns(&self) -> std::collections::BTreeSet<usize> {
        fn operand(o: &Operand, out: &mut std::collections::BTreeSet<usize>) {
            if let Operand::Col(i) = o {
                out.insert(*i);
            }
        }
        fn walk(c: &RowCondition, out: &mut std::collections::BTreeSet<usize>) {
            match c {
                RowCondition::Cmp(a, _, b) => {
                    operand(a, out);
                    operand(b, out);
                }
                RowCondition::Not(inner) => walk(inner, out),
                RowCondition::And(a, b) | RowCondition::Or(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                RowCondition::True => {}
            }
        }
        let mut out = std::collections::BTreeSet::new();
        walk(self, &mut out);
        out
    }

    /// Rebuilds the condition with every position shifted left by
    /// `delta` — `σ` moving below the right factor of a product. Only
    /// valid when every referenced position is ≥ `delta` (checked by a
    /// debug assertion; callers classify conjuncts by
    /// [`RowCondition::columns`] first).
    pub fn shifted_left(&self, delta: usize) -> RowCondition {
        debug_assert!(
            self.columns().iter().all(|&c| c >= delta),
            "shifted_left would underflow"
        );
        let operand = |o: &Operand| match o {
            Operand::Col(i) => Operand::Col(i - delta),
            Operand::Const(v) => Operand::Const(v.clone()),
        };
        match self {
            RowCondition::Cmp(a, op, b) => RowCondition::Cmp(operand(a), *op, operand(b)),
            RowCondition::Not(inner) => inner.shifted_left(delta).not(),
            RowCondition::And(a, b) => a.shifted_left(delta).and(b.shifted_left(delta)),
            RowCondition::Or(a, b) => a.shifted_left(delta).or(b.shifted_left(delta)),
            RowCondition::True => RowCondition::True,
        }
    }

    /// Largest position referenced, used for static validation.
    pub fn max_position(&self) -> Option<usize> {
        match self {
            RowCondition::Cmp(a, _, b) => {
                let pa = match a {
                    Operand::Col(i) => Some(*i),
                    Operand::Const(_) => None,
                };
                let pb = match b {
                    Operand::Col(i) => Some(*i),
                    Operand::Const(_) => None,
                };
                pa.into_iter().chain(pb).max()
            }
            RowCondition::Not(c) => c.max_position(),
            RowCondition::And(a, b) | RowCondition::Or(a, b) => {
                a.max_position().into_iter().chain(b.max_position()).max()
            }
            RowCondition::True => None,
        }
    }
}

impl fmt::Display for RowCondition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RowCondition::Cmp(a, op, b) => {
                let fmt_op = |f: &mut fmt::Formatter<'_>, o: &Operand| match o {
                    Operand::Col(i) => write!(f, "${}", i + 1),
                    Operand::Const(v) => write!(f, "{v}"),
                };
                fmt_op(f, a)?;
                write!(f, " {op} ")?;
                fmt_op(f, b)
            }
            RowCondition::Not(c) => write!(f, "¬({c})"),
            RowCondition::And(a, b) => write!(f, "({a} ∧ {b})"),
            RowCondition::Or(a, b) => write!(f, "({a} ∨ {b})"),
            RowCondition::True => write!(f, "⊤"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgq_value::tuple;

    #[test]
    fn core_equality() {
        let c = RowCondition::col_eq(0, 1);
        assert!(c.eval(&tuple![1, 1]).unwrap());
        assert!(!c.eval(&tuple![1, 2]).unwrap());
        assert!(c.is_core());
    }

    #[test]
    fn out_of_range_is_error() {
        let c = RowCondition::col_eq(0, 5);
        assert!(c.eval(&tuple![1, 2]).is_err());
    }

    #[test]
    fn boolean_combinations() {
        let c = RowCondition::col_eq(0, 1)
            .not()
            .and(RowCondition::col_eq(1, 1));
        assert!(c.eval(&tuple![1, 2]).unwrap());
        assert!(!c.eval(&tuple![1, 1]).unwrap());
        let d = RowCondition::col_eq(0, 0).or(RowCondition::col_eq(0, 9));
        // Or short-circuits before touching the bad position.
        assert!(d.eval(&tuple![1]).unwrap());
    }

    #[test]
    fn extensions_flagged_non_core() {
        assert!(!RowCondition::col_eq_const(0, 5).is_core());
        assert!(!RowCondition::col_cmp_const(0, CmpOp::Gt, 100).is_core());
        assert!(RowCondition::True.is_core());
        assert!(RowCondition::col_eq(0, 1).not().is_core());
    }

    #[test]
    fn const_comparisons() {
        let c = RowCondition::col_cmp_const(1, CmpOp::Gt, 100);
        assert!(c.eval(&tuple![0, 150]).unwrap());
        assert!(!c.eval(&tuple![0, 100]).unwrap());
        let ops = [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ];
        let expected = [false, true, true, true, false, false];
        for (op, exp) in ops.iter().zip(expected) {
            let c = RowCondition::col_cmp_const(0, *op, 10);
            assert_eq!(c.eval(&tuple![5]).unwrap(), exp, "{op}");
        }
    }

    #[test]
    fn and_all_with_empty_is_true() {
        assert_eq!(RowCondition::and_all([]), RowCondition::True);
        assert!(RowCondition::True.eval(&tuple![]).unwrap());
        let c = RowCondition::and_all([RowCondition::col_eq(0, 1), RowCondition::col_eq(1, 2)]);
        assert!(c.eval(&tuple![3, 3, 3]).unwrap());
        assert!(!c.eval(&tuple![3, 3, 4]).unwrap());
    }

    #[test]
    fn max_position() {
        let c = RowCondition::col_eq(0, 4).or(RowCondition::col_eq_const(2, 7));
        assert_eq!(c.max_position(), Some(4));
        assert_eq!(RowCondition::True.max_position(), None);
    }

    #[test]
    fn display_is_one_based_like_the_paper() {
        assert_eq!(RowCondition::col_eq(0, 1).to_string(), "$1 = $2");
    }

    #[test]
    fn conjuncts_flatten_and_drop_true() {
        let c = RowCondition::col_eq(0, 1)
            .and(RowCondition::True)
            .and(RowCondition::col_eq(1, 2).and(RowCondition::col_eq(2, 3)));
        assert_eq!(
            c.conjuncts(),
            vec![
                RowCondition::col_eq(0, 1),
                RowCondition::col_eq(1, 2),
                RowCondition::col_eq(2, 3),
            ]
        );
        assert!(RowCondition::True.conjuncts().is_empty());
        // Disjunctions are atomic from the conjunction's point of view.
        let d = RowCondition::col_eq(0, 1).or(RowCondition::col_eq(1, 2));
        assert_eq!(d.conjuncts(), vec![d]);
    }

    #[test]
    fn columns_collect_every_position() {
        let c = RowCondition::col_eq(0, 4)
            .not()
            .or(RowCondition::col_eq_const(2, 7));
        assert_eq!(c.columns().into_iter().collect::<Vec<_>>(), vec![0, 2, 4]);
        assert!(RowCondition::True.columns().is_empty());
    }

    #[test]
    fn shifted_left_rebases_positions() {
        let c = RowCondition::col_eq(2, 3).and(RowCondition::col_eq_const(4, 9));
        let s = c.shifted_left(2);
        assert!(s.eval(&tuple![5, 5, 9]).unwrap());
        assert!(!s.eval(&tuple![5, 6, 9]).unwrap());
        assert_eq!(s.max_position(), Some(2));
    }
}
