//! Relational algebra expressions — the `RA` fragment of Proposition 9.2:
//! `PGQro` with the pattern-matching construct removed.
//!
//! The core PGQ query language (crate `pgq-core`) embeds these operators
//! in its own AST per Figure 3; this standalone AST exists so substrates
//! (the E9 template enumerator, Proposition 9.2's rewriting, internal
//! machinery of the translations) can build and evaluate plain relational
//! queries without depending on the pattern layer.

use crate::{Database, RelError, RelName, RelResult, Relation, RowCondition};
use pgq_value::Tuple;
use std::fmt;

/// A relational algebra expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RaExpr {
    /// A stored relation `R`.
    Rel(RelName),
    /// A constant singleton relation `{t̄}`. With `t̄` of arity 1 this is
    /// the `c` constant query that `PGQrw` adds (Figure 3); higher arities
    /// are an engine convenience.
    Singleton(Tuple),
    /// The active domain `adom(D)` as a unary relation (`Q_A` in the
    /// proof of Theorem 6.2). Not part of the paper's core grammar, but
    /// definable in it as the finite union of projections of all schema
    /// relations; we provide it natively so expressions stay
    /// schema-independent.
    ActiveDomain,
    /// `π_{$i1,…,$ik}(Q)` with 0-based positions.
    Project(Vec<usize>, Box<RaExpr>),
    /// `σ_θ(Q)`.
    Select(RowCondition, Box<RaExpr>),
    /// `Q × Q′`.
    Product(Box<RaExpr>, Box<RaExpr>),
    /// `Q ∪ Q′`.
    Union(Box<RaExpr>, Box<RaExpr>),
    /// `Q − Q′`.
    Diff(Box<RaExpr>, Box<RaExpr>),
}

impl RaExpr {
    /// A stored relation reference.
    pub fn rel(name: impl Into<RelName>) -> Self {
        RaExpr::Rel(name.into())
    }

    /// Projection (builder).
    pub fn project(self, positions: impl Into<Vec<usize>>) -> Self {
        RaExpr::Project(positions.into(), Box::new(self))
    }

    /// Selection (builder).
    pub fn select(self, cond: RowCondition) -> Self {
        RaExpr::Select(cond, Box::new(self))
    }

    /// Product (builder).
    pub fn product(self, other: RaExpr) -> Self {
        RaExpr::Product(Box::new(self), Box::new(other))
    }

    /// Union (builder).
    pub fn union(self, other: RaExpr) -> Self {
        RaExpr::Union(Box::new(self), Box::new(other))
    }

    /// Difference (builder).
    pub fn diff(self, other: RaExpr) -> Self {
        RaExpr::Diff(Box::new(self), Box::new(other))
    }

    /// Derived intersection `Q ∩ Q′ = Q − (Q − Q′)` — the paper's
    /// encoding, kept syntactically so fragment membership and size
    /// accounting are unchanged. [`RaExpr::eval`] recognizes the shape
    /// and evaluates each operand exactly once (and the physical planner
    /// turns it into a real intersection join).
    pub fn intersect(self, other: RaExpr) -> Self {
        self.clone().diff(self.diff(other))
    }

    /// Recognizes the [`RaExpr::intersect`] encoding: `self` is
    /// `Q − (Q − Q′)` for some `(Q, Q′)`. The single source of truth for
    /// the shape — the reference evaluator and the physical planner both
    /// dispatch on it.
    pub fn as_intersection(&self) -> Option<(&RaExpr, &RaExpr)> {
        let RaExpr::Diff(a, b) = self else {
            return None;
        };
        let RaExpr::Diff(b1, b2) = b.as_ref() else {
            return None;
        };
        (a == b1).then(|| (a.as_ref(), b2.as_ref()))
    }

    /// Evaluates the expression on a database instance.
    pub fn eval(&self, db: &Database) -> RelResult<Relation> {
        match self {
            RaExpr::Rel(name) => db.get_required(name).cloned(),
            RaExpr::Singleton(t) => {
                let mut r = Relation::empty(t.arity());
                r.insert(t.clone())?;
                Ok(r)
            }
            RaExpr::ActiveDomain => Ok(db.active_domain_relation()),
            RaExpr::Project(pos, q) => q.eval(db)?.project(pos),
            RaExpr::Select(cond, q) => {
                let rel = q.eval(db)?;
                if let Some(max) = cond.max_position() {
                    if max >= rel.arity() {
                        return Err(RelError::PositionOutOfRange {
                            position: max,
                            arity: rel.arity(),
                        });
                    }
                }
                // Positions were validated against the arity above, so
                // per-row evaluation cannot fail.
                Ok(rel.select(|t| cond.eval(t).unwrap_or(false)))
            }
            RaExpr::Product(a, b) => Ok(a.eval(db)?.product(&b.eval(db)?)),
            RaExpr::Union(a, b) => a.eval(db)?.union(&b.eval(db)?),
            RaExpr::Diff(a, b) => {
                // The derived intersection `Q − (Q − Q′)` would evaluate
                // `Q` three times if taken literally; evaluate each
                // operand once instead.
                if let Some((q, q2)) = self.as_intersection() {
                    return q.eval(db)?.intersection(&q2.eval(db)?);
                }
                a.eval(db)?.difference(&b.eval(db)?)
            }
        }
    }

    /// Static arity of the expression under a schema, checking internal
    /// consistency (the "well-typedness" of Figure 3 expressions).
    pub fn arity(&self, schema: &crate::Schema) -> RelResult<usize> {
        match self {
            RaExpr::Rel(name) => schema
                .arity_of(name)
                .ok_or_else(|| RelError::UnknownRelation(name.clone())),
            RaExpr::Singleton(t) => Ok(t.arity()),
            RaExpr::ActiveDomain => Ok(1),
            RaExpr::Project(pos, q) => {
                let a = q.arity(schema)?;
                for &p in pos {
                    if p >= a {
                        return Err(RelError::PositionOutOfRange {
                            position: p,
                            arity: a,
                        });
                    }
                }
                Ok(pos.len())
            }
            RaExpr::Select(cond, q) => {
                let a = q.arity(schema)?;
                if let Some(max) = cond.max_position() {
                    if max >= a {
                        return Err(RelError::PositionOutOfRange {
                            position: max,
                            arity: a,
                        });
                    }
                }
                Ok(a)
            }
            RaExpr::Product(a, b) => Ok(a.arity(schema)? + b.arity(schema)?),
            RaExpr::Union(a, b) | RaExpr::Diff(a, b) => {
                let (la, ra) = (a.arity(schema)?, b.arity(schema)?);
                if la != ra {
                    return Err(RelError::IncompatibleArities {
                        op: "union/difference",
                        left: la,
                        right: ra,
                    });
                }
                Ok(la)
            }
        }
    }

    /// Number of AST nodes (used as the size measure by the E9 bounded
    /// template search).
    pub fn size(&self) -> usize {
        match self {
            RaExpr::Rel(_) | RaExpr::Singleton(_) | RaExpr::ActiveDomain => 1,
            RaExpr::Project(_, q) | RaExpr::Select(_, q) => 1 + q.size(),
            RaExpr::Product(a, b) | RaExpr::Union(a, b) | RaExpr::Diff(a, b) => {
                1 + a.size() + b.size()
            }
        }
    }
}

impl fmt::Display for RaExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaExpr::Rel(n) => write!(f, "{n}"),
            RaExpr::Singleton(t) => write!(f, "{{{t}}}"),
            RaExpr::ActiveDomain => write!(f, "adom"),
            RaExpr::Project(pos, q) => {
                write!(f, "π[")?;
                for (i, p) in pos.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "${}", p + 1)?;
                }
                write!(f, "]({q})")
            }
            RaExpr::Select(c, q) => write!(f, "σ[{c}]({q})"),
            RaExpr::Product(a, b) => write!(f, "({a} × {b})"),
            RaExpr::Union(a, b) => write!(f, "({a} ∪ {b})"),
            RaExpr::Diff(a, b) => write!(f, "({a} − {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Schema;
    use pgq_value::tuple;

    fn db() -> Database {
        let mut db = Database::new();
        db.insert("R", tuple![1, 10]).unwrap();
        db.insert("R", tuple![2, 20]).unwrap();
        db.insert("S", tuple![10]).unwrap();
        db
    }

    #[test]
    fn eval_relation_and_singleton() {
        let d = db();
        assert_eq!(RaExpr::rel("R").eval(&d).unwrap().len(), 2);
        assert!(RaExpr::rel("T").eval(&d).is_err());
        let s = RaExpr::Singleton(tuple![5]).eval(&d).unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn eval_project_select() {
        let d = db();
        let q = RaExpr::rel("R").project(vec![1]);
        assert_eq!(q.eval(&d).unwrap(), Relation::unary([10i64, 20]));
        let q = RaExpr::rel("R").select(RowCondition::col_eq_const(0, 1));
        assert_eq!(q.eval(&d).unwrap().len(), 1);
    }

    #[test]
    fn select_validates_positions_statically() {
        let d = db();
        let q = RaExpr::rel("R").select(RowCondition::col_eq(0, 7));
        assert!(q.eval(&d).is_err());
    }

    #[test]
    fn eval_set_ops() {
        let d = db();
        let r1 = RaExpr::rel("R").project(vec![1]);
        let q = r1.clone().union(RaExpr::rel("S"));
        assert_eq!(q.eval(&d).unwrap().len(), 2);
        let q = r1.clone().diff(RaExpr::rel("S"));
        assert_eq!(q.eval(&d).unwrap(), Relation::unary([20i64]));
        let q = r1.intersect(RaExpr::rel("S"));
        assert_eq!(q.eval(&d).unwrap(), Relation::unary([10i64]));
    }

    #[test]
    fn eval_product_and_adom() {
        let d = db();
        let q = RaExpr::rel("S").product(RaExpr::rel("S"));
        assert_eq!(q.eval(&d).unwrap().arity(), 2);
        let adom = RaExpr::ActiveDomain.eval(&d).unwrap();
        assert_eq!(adom.len(), 4); // 1, 2, 10, 20 (10 from S deduped)
    }

    #[test]
    fn static_arity_checks() {
        let schema = Schema::new().with("R", 2).with("S", 1);
        assert_eq!(RaExpr::rel("R").arity(&schema).unwrap(), 2);
        assert_eq!(RaExpr::rel("R").project(vec![0]).arity(&schema).unwrap(), 1);
        assert!(RaExpr::rel("R").project(vec![2]).arity(&schema).is_err());
        assert!(RaExpr::rel("R")
            .union(RaExpr::rel("S"))
            .arity(&schema)
            .is_err());
        assert!(RaExpr::rel("X").arity(&schema).is_err());
        assert_eq!(RaExpr::ActiveDomain.arity(&schema).unwrap(), 1);
    }

    #[test]
    fn size_counts_nodes() {
        let q = RaExpr::rel("R").project(vec![0]).select(RowCondition::True);
        assert_eq!(q.size(), 3);
    }

    #[test]
    fn display_round_trips_shape() {
        let q = RaExpr::rel("R")
            .select(RowCondition::col_eq(0, 1))
            .project(vec![0]);
        assert_eq!(q.to_string(), "π[$1](σ[$1 = $2](R))");
    }
}
