//! Dictionary encoding of domain values.
//!
//! Every [`Value`] stored anywhere in a [`crate::Store`] is interned
//! exactly once and referred to by a dense `u32` code thereafter. Codes
//! are assigned in first-seen order, so encoding is deterministic for a
//! deterministic registration order (the store registers relations in
//! `BTreeMap` name order and rows in relation order). Columns and CSR
//! indexes hold codes, not values — a string IBAN costs four bytes per
//! occurrence instead of a heap clone.
//!
//! Because codes are handed out in *first-seen* order, the code order
//! is **not** the value order: a store that interned `200` before `5`
//! maps the larger value to the smaller code. Coded execution
//! (`pgq-exec`) therefore compares codes only for equality and decodes
//! through [`Dictionary::value`] for order predicates.
//!
//! The dictionary is **append-only**: re-registering a store never
//! removes codes, so values that left the database keep their slot
//! (see the compaction discussion in the crate docs).

use crate::store::StoreError;
use pgq_value::Value;
use std::collections::HashMap;

/// An append-only value dictionary: `Value ↔ u32` in first-seen order.
#[derive(Debug, Clone)]
pub struct Dictionary {
    values: Vec<Value>,
    codes: HashMap<Value, u32>,
    /// Maximum number of codes this dictionary may mint. Defaults to
    /// the full `u32` space; tests lower it to exercise the
    /// [`StoreError::DictionaryFull`] path without 2³² interns.
    limit: usize,
}

impl Default for Dictionary {
    fn default() -> Self {
        Dictionary {
            values: Vec::new(),
            codes: HashMap::new(),
            limit: Dictionary::MAX_CODES,
        }
    }
}

impl Dictionary {
    /// The full `u32` code space: the hard ceiling on distinct values.
    pub const MAX_CODES: usize = u32::MAX as usize + 1;

    /// An empty dictionary.
    pub fn new() -> Self {
        Dictionary::default()
    }

    /// An empty dictionary that refuses to mint more than `limit`
    /// codes (capped at [`Dictionary::MAX_CODES`]). Exists so admission
    /// control and tests can exercise the exhaustion path cheaply.
    pub fn with_limit(limit: usize) -> Self {
        Dictionary {
            limit: limit.min(Dictionary::MAX_CODES),
            ..Dictionary::default()
        }
    }

    /// Interns `v`, returning its (possibly pre-existing) code, or
    /// [`StoreError::DictionaryFull`] when the code space is exhausted
    /// — the error every registration path propagates instead of
    /// panicking mid-load.
    pub fn intern(&mut self, v: &Value) -> Result<u32, StoreError> {
        if let Some(&c) = self.codes.get(v) {
            return Ok(c);
        }
        if self.values.len() >= self.limit {
            return Err(StoreError::DictionaryFull { limit: self.limit });
        }
        let c = self.values.len() as u32;
        self.values.push(v.clone());
        self.codes.insert(v.clone(), c);
        Ok(c)
    }

    /// Pre-sizes both sides of the dictionary for `additional` fresh
    /// interns. Bulk ingest calls this once up front so a million-value
    /// load performs zero `HashMap` re-hashes and zero `Vec` regrowth
    /// mid-stream — the "re-hash storm" fix of PR 9. A no-op when the
    /// capacity is already there.
    pub fn reserve(&mut self, additional: usize) {
        self.values.reserve(additional);
        self.codes.reserve(additional);
    }

    /// Interns a batch of values and returns their codes in input
    /// order, using up to `threads` workers for the read-only probe
    /// phase (hashing and lookup of every value against the current
    /// map) and a single pre-sized append pass for the fresh ones —
    /// the morsel-parallel interning step of [`crate::Store::bulk_load`].
    ///
    /// Codes come out exactly as if `intern` had been called on each
    /// value in order (first-seen order is preserved), and the
    /// all-or-nothing limit check runs **before** anything is minted:
    /// on [`StoreError::DictionaryFull`] the dictionary is unchanged.
    pub fn bulk_intern(
        &mut self,
        values: &[Value],
        threads: usize,
    ) -> Result<Vec<u32>, StoreError> {
        let refs: Vec<&Value> = values.iter().collect();
        self.bulk_intern_refs(&refs, threads)
    }

    /// [`Dictionary::bulk_intern`] over borrowed values — the bulk
    /// loader concatenates its node/edge/label/property streams as an
    /// 8-byte-per-entry reference vector (no value clones) and interns
    /// them in **one** atomic call, so a limit failure in any stream
    /// leaves the dictionary untouched.
    pub fn bulk_intern_refs(
        &mut self,
        values: &[&Value],
        threads: usize,
    ) -> Result<Vec<u32>, StoreError> {
        // Probe phase (parallel, read-only): existing code or "fresh".
        let probed: Vec<Vec<Option<u32>>> =
            crate::par::run_morsels::<_, StoreError, _>(values.len(), threads, |range| {
                Ok(range.map(|i| self.code(values[i])).collect())
            })?;
        let mut codes: Vec<Option<u32>> = probed.into_iter().flatten().collect();
        // Fresh values may repeat within the batch; count distinct
        // misses for the atomic limit check without minting anything.
        let mut fresh: std::collections::HashSet<&Value> = std::collections::HashSet::new();
        for (i, slot) in codes.iter().enumerate() {
            if slot.is_none() {
                fresh.insert(values[i]);
            }
        }
        if self.values.len() + fresh.len() > self.limit {
            return Err(StoreError::DictionaryFull { limit: self.limit });
        }
        // Append phase (sequential, pre-sized): mint in first-seen order.
        self.reserve(fresh.len());
        let base = self.values.len() as u32;
        let mut minted: HashMap<&Value, u32> = HashMap::with_capacity(fresh.len());
        drop(fresh);
        for (i, slot) in codes.iter_mut().enumerate() {
            if slot.is_some() {
                continue;
            }
            let v = values[i];
            let c = if let Some(&c) = minted.get(v) {
                c
            } else {
                let c = base + minted.len() as u32;
                minted.insert(v, c);
                self.values.push(v.clone());
                self.codes.insert(v.clone(), c);
                c
            };
            *slot = Some(c);
        }
        Ok(codes
            .into_iter()
            .map(|c| c.expect("every slot filled"))
            .collect())
    }

    /// The configured code-space limit (used by `Store::compact` to
    /// carry admission control over into the rebuilt dictionary).
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Estimated resident heap bytes: the value vector, the string
    /// payloads it owns, and the code map (entries plus per-slot
    /// bookkeeping). An estimate — Rust gives no exact malloc
    /// accounting without a custom allocator — but a faithful one for
    /// the structures that dominate at scale.
    pub fn resident_bytes(&self) -> usize {
        let value = std::mem::size_of::<Value>();
        let heap: usize = self
            .values
            .iter()
            .filter_map(|v| v.as_str().map(str::len))
            .sum();
        // Strings live once in `values` and once as map keys.
        let vec_side = self.values.capacity() * value;
        let map_side = self.codes.capacity() * (value + std::mem::size_of::<u32>() + 8);
        vec_side + map_side + 2 * heap
    }

    /// The code of `v`, if it has been interned.
    pub fn code(&self, v: &Value) -> Option<u32> {
        self.codes.get(v).copied()
    }

    /// The value behind a code. Codes are only minted by
    /// [`Dictionary::intern`], so a code held by any store structure is
    /// always decodable.
    pub fn value(&self, code: u32) -> &Value {
        &self.values[code as usize]
    }

    /// Number of distinct interned values (total codes ever minted —
    /// the append-only dictionary never forgets; see
    /// `Store::stats` for live vs. total accounting).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern(&Value::str("x")).unwrap();
        let b = d.intern(&Value::int(7)).unwrap();
        let a2 = d.intern(&Value::str("x")).unwrap();
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
        assert_eq!(d.value(a), &Value::str("x"));
        assert_eq!(d.code(&Value::int(7)), Some(b));
        assert_eq!(d.code(&Value::bool(true)), None);
    }

    #[test]
    fn bulk_intern_matches_sequential_intern() {
        let inputs: Vec<Value> = (0..100)
            .map(|i| {
                if i % 3 == 0 {
                    Value::int(i % 17)
                } else {
                    Value::str(format!("v{}", i % 23))
                }
            })
            .collect();
        let mut seq = Dictionary::new();
        seq.intern(&Value::str("pre")).unwrap();
        let want: Vec<u32> = inputs.iter().map(|v| seq.intern(v).unwrap()).collect();
        for threads in [1, 2, 8] {
            let mut bulk = Dictionary::new();
            bulk.intern(&Value::str("pre")).unwrap();
            let got = bulk.bulk_intern(&inputs, threads).unwrap();
            assert_eq!(got, want, "threads = {threads}");
            assert_eq!(bulk.len(), seq.len());
        }
    }

    #[test]
    fn bulk_intern_full_is_atomic() {
        let mut d = Dictionary::with_limit(3);
        d.intern(&Value::int(0)).unwrap();
        let too_many: Vec<Value> = (1..=3).map(Value::int).collect();
        assert!(matches!(
            d.bulk_intern(&too_many, 2),
            Err(StoreError::DictionaryFull { limit: 3 })
        ));
        // Nothing minted: the failed batch left the dictionary unchanged.
        assert_eq!(d.len(), 1);
        assert_eq!(d.code(&Value::int(1)), None);
        // A batch that exactly fits (with duplicates) still succeeds.
        let fits = vec![Value::int(1), Value::int(2), Value::int(1), Value::int(0)];
        assert_eq!(d.bulk_intern(&fits, 2).unwrap(), vec![1, 2, 1, 0]);
        assert_eq!(d.len(), 3);
        assert!(d.resident_bytes() > 0);
    }

    #[test]
    fn exhaustion_is_an_error_not_a_panic() {
        let mut d = Dictionary::with_limit(2);
        d.intern(&Value::int(1)).unwrap();
        d.intern(&Value::int(2)).unwrap();
        // Pre-existing values still intern fine at the limit.
        assert_eq!(d.intern(&Value::int(1)).unwrap(), 0);
        assert!(matches!(
            d.intern(&Value::int(3)),
            Err(StoreError::DictionaryFull { limit: 2 })
        ));
        assert_eq!(d.len(), 2);
    }
}
