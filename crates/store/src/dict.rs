//! Dictionary encoding of domain values.
//!
//! Every [`Value`] stored anywhere in a [`crate::Store`] is interned
//! exactly once and referred to by a dense `u32` code thereafter. Codes
//! are assigned in first-seen order, so encoding is deterministic for a
//! deterministic registration order (the store registers relations in
//! `BTreeMap` name order and rows in relation order). Columns and CSR
//! indexes hold codes, not values — a string IBAN costs four bytes per
//! occurrence instead of a heap clone.
//!
//! Because codes are handed out in *first-seen* order, the code order
//! is **not** the value order: a store that interned `200` before `5`
//! maps the larger value to the smaller code. Coded execution
//! (`pgq-exec`) therefore compares codes only for equality and decodes
//! through [`Dictionary::value`] for order predicates.
//!
//! The dictionary is **append-only**: re-registering a store never
//! removes codes, so values that left the database keep their slot
//! (see the compaction discussion in the crate docs).

use crate::store::StoreError;
use pgq_value::Value;
use std::collections::HashMap;

/// An append-only value dictionary: `Value ↔ u32` in first-seen order.
#[derive(Debug, Clone)]
pub struct Dictionary {
    values: Vec<Value>,
    codes: HashMap<Value, u32>,
    /// Maximum number of codes this dictionary may mint. Defaults to
    /// the full `u32` space; tests lower it to exercise the
    /// [`StoreError::DictionaryFull`] path without 2³² interns.
    limit: usize,
}

impl Default for Dictionary {
    fn default() -> Self {
        Dictionary {
            values: Vec::new(),
            codes: HashMap::new(),
            limit: Dictionary::MAX_CODES,
        }
    }
}

impl Dictionary {
    /// The full `u32` code space: the hard ceiling on distinct values.
    pub const MAX_CODES: usize = u32::MAX as usize + 1;

    /// An empty dictionary.
    pub fn new() -> Self {
        Dictionary::default()
    }

    /// An empty dictionary that refuses to mint more than `limit`
    /// codes (capped at [`Dictionary::MAX_CODES`]). Exists so admission
    /// control and tests can exercise the exhaustion path cheaply.
    pub fn with_limit(limit: usize) -> Self {
        Dictionary {
            limit: limit.min(Dictionary::MAX_CODES),
            ..Dictionary::default()
        }
    }

    /// Interns `v`, returning its (possibly pre-existing) code, or
    /// [`StoreError::DictionaryFull`] when the code space is exhausted
    /// — the error every registration path propagates instead of
    /// panicking mid-load.
    pub fn intern(&mut self, v: &Value) -> Result<u32, StoreError> {
        if let Some(&c) = self.codes.get(v) {
            return Ok(c);
        }
        if self.values.len() >= self.limit {
            return Err(StoreError::DictionaryFull { limit: self.limit });
        }
        let c = self.values.len() as u32;
        self.values.push(v.clone());
        self.codes.insert(v.clone(), c);
        Ok(c)
    }

    /// The configured code-space limit (used by `Store::compact` to
    /// carry admission control over into the rebuilt dictionary).
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// The code of `v`, if it has been interned.
    pub fn code(&self, v: &Value) -> Option<u32> {
        self.codes.get(v).copied()
    }

    /// The value behind a code. Codes are only minted by
    /// [`Dictionary::intern`], so a code held by any store structure is
    /// always decodable.
    pub fn value(&self, code: u32) -> &Value {
        &self.values[code as usize]
    }

    /// Number of distinct interned values (total codes ever minted —
    /// the append-only dictionary never forgets; see
    /// `Store::stats` for live vs. total accounting).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern(&Value::str("x")).unwrap();
        let b = d.intern(&Value::int(7)).unwrap();
        let a2 = d.intern(&Value::str("x")).unwrap();
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
        assert_eq!(d.value(a), &Value::str("x"));
        assert_eq!(d.code(&Value::int(7)), Some(b));
        assert_eq!(d.code(&Value::bool(true)), None);
    }

    #[test]
    fn exhaustion_is_an_error_not_a_panic() {
        let mut d = Dictionary::with_limit(2);
        d.intern(&Value::int(1)).unwrap();
        d.intern(&Value::int(2)).unwrap();
        // Pre-existing values still intern fine at the limit.
        assert_eq!(d.intern(&Value::int(1)).unwrap(), 0);
        assert!(matches!(
            d.intern(&Value::int(3)),
            Err(StoreError::DictionaryFull { limit: 2 })
        ));
        assert_eq!(d.len(), 2);
    }
}
