//! Dictionary encoding of domain values.
//!
//! Every [`Value`] stored anywhere in a [`crate::Store`] is interned
//! exactly once and referred to by a dense `u32` code thereafter. Codes
//! are assigned in first-seen order, so encoding is deterministic for a
//! deterministic registration order (the store registers relations in
//! `BTreeMap` name order and rows in relation order). Columns and CSR
//! indexes hold codes, not values — a string IBAN costs four bytes per
//! occurrence instead of a heap clone.

use pgq_value::Value;
use std::collections::HashMap;

/// An append-only value dictionary: `Value ↔ u32` in first-seen order.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    values: Vec<Value>,
    codes: HashMap<Value, u32>,
}

impl Dictionary {
    /// An empty dictionary.
    pub fn new() -> Self {
        Dictionary::default()
    }

    /// Interns `v`, returning its (possibly pre-existing) code.
    pub fn intern(&mut self, v: &Value) -> u32 {
        if let Some(&c) = self.codes.get(v) {
            return c;
        }
        let c = u32::try_from(self.values.len()).expect("dictionary outgrew u32 codes");
        self.values.push(v.clone());
        self.codes.insert(v.clone(), c);
        c
    }

    /// The code of `v`, if it has been interned.
    pub fn code(&self, v: &Value) -> Option<u32> {
        self.codes.get(v).copied()
    }

    /// The value behind a code. Codes are only minted by
    /// [`Dictionary::intern`], so a code held by any store structure is
    /// always decodable.
    pub fn value(&self, code: u32) -> &Value {
        &self.values[code as usize]
    }

    /// Number of distinct interned values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern(&Value::str("x"));
        let b = d.intern(&Value::int(7));
        let a2 = d.intern(&Value::str("x"));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
        assert_eq!(d.value(a), &Value::str("x"));
        assert_eq!(d.code(&Value::int(7)), Some(b));
        assert_eq!(d.code(&Value::bool(true)), None);
    }
}
