//! # pgq-store
//!
//! The columnar graph store (substrate S16; DESIGN.md §2, §5,
//! ARCHITECTURE.md). Everything below the physical engine, frozen once
//! per session:
//!
//! * [`Dictionary`] — store-wide value interning, `Value ↔ u32`;
//! * [`ColumnarRelation`] — relations as dictionary-coded column
//!   vectors;
//! * [`CsrIndex`] — compressed-sparse-row forward/reverse adjacency
//!   over dense node ids, built for every binary relation and for every
//!   registered graph (overall and per edge label);
//! * [`Store`] — the session catalog: register a [`pgq_relational::Database`]
//!   and its `pgView` graphs **once**, then let the physical engine
//!   (`pgq-exec`'s `IndexScan`/`AdjacencyExpand` operators and the
//!   store-routed reachability in `pgq-core`) run against the frozen
//!   layout instead of re-materializing row vectors per query.
//!
//! The store is held to the reference evaluators by the differential
//! suite `tests/prop_store.rs` at the workspace root, and its ablation
//! against the PR 2 hash-join engine is experiment E16 /
//! `BENCH_3.json`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod column;
pub mod csr;
pub mod dict;
pub mod store;

pub use column::ColumnarRelation;
pub use csr::{Csr, CsrIndex};
pub use dict::Dictionary;
pub use store::{
    GraphEntry, GraphForm, GraphStats, RelationStats, Store, StoreError, StoreStats, ADOM_REL,
};
