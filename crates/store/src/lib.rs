//! # pgq-store
//!
//! The columnar graph store (substrate S16; DESIGN.md §2, §5,
//! ARCHITECTURE.md). Everything below the physical engine, frozen once
//! per session:
//!
//! * [`Dictionary`] — store-wide value interning, `Value ↔ u32`;
//! * [`ColumnarRelation`] — relations as dictionary-coded column
//!   vectors;
//! * [`CsrIndex`] — compressed-sparse-row forward/reverse adjacency
//!   over dense node ids, built for every binary relation and for every
//!   registered graph (overall and per edge label);
//! * [`Store`] — the session catalog: register a [`pgq_relational::Database`]
//!   and its `pgView` graphs **once**, then let the physical engine
//!   (`pgq-exec`'s `IndexScan`/`AdjacencyExpand` operators and the
//!   store-routed reachability in `pgq-core`) run against the frozen
//!   layout instead of re-materializing row vectors per query.
//!
//! The store is held to the reference evaluators by the differential
//! suite `tests/prop_store.rs` at the workspace root, and its ablation
//! against the PR 2 hash-join engine is experiment E16 /
//! `BENCH_3.json`. The coded execution pipeline that keeps these codes
//! flowing through every physical operator (decoding once at the
//! set-semantics boundary) lives in `pgq-exec`; its ablation is
//! experiment E17 / `BENCH_4.json`.
//!
//! ## Code order vs. value order
//!
//! Codes are minted in first-seen order, which is **not** the value
//! order: coded operators compare codes only for *equality* and decode
//! through the shared [`Dictionary`] for order predicates
//! (`t.amount > 100`-style conditions decode on compare — an index
//! into the dictionary's value vector, not a hash lookup).
//!
//! ## Compaction
//!
//! The dictionary is append-only: [`Store::register_database`] drops
//! relations, adjacency and graphs that no longer exist, but codes
//! minted for departed values stay resident forever (dropping them
//! would dangle any structure still holding the code, and renumbering
//! would invalidate every frozen column and CSR index at once). The
//! store therefore *tracks* the gap instead: [`StoreStats`] reports
//! live vs. total codes (surfaced by the shell's `STATS` command), and
//! the supported compaction story is a **rebuild** — construct a fresh
//! `Store::from_database` (re-registering graphs), which re-interns
//! exactly the live values, and drop the old store. That matches the
//! snapshot discipline: stores answer for the state they were
//! registered from, and a session that has churned enough data to care
//! about residency is due a fresh snapshot anyway. Code space is a
//! hard `u32` ceiling ([`Dictionary::MAX_CODES`]); exhaustion is a
//! typed [`StoreError::DictionaryFull`], not a panic.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod column;
pub mod csr;
pub mod dict;
pub mod store;

pub use column::ColumnarRelation;
pub use csr::{Csr, CsrIndex};
pub use dict::Dictionary;
pub use store::{
    GraphEntry, GraphForm, GraphStats, RelationStats, Store, StoreError, StoreStats, ADOM_REL,
};
