//! # pgq-store
//!
//! The columnar graph store (substrate S16; DESIGN.md §2, §5,
//! ARCHITECTURE.md). Everything below the physical engine, frozen once
//! per session:
//!
//! * [`Dictionary`] — store-wide value interning, `Value ↔ u32`;
//! * [`ColumnarRelation`] — relations as dictionary-coded column
//!   vectors;
//! * [`CsrIndex`] — compressed-sparse-row forward/reverse adjacency
//!   over dense node ids, built for every binary relation and for every
//!   registered graph (overall and per edge label);
//! * [`Store`] — the session catalog: register a [`pgq_relational::Database`]
//!   and its `pgView` graphs **once**, then let the physical engine
//!   (`pgq-exec`'s `IndexScan`/`AdjacencyExpand` operators and the
//!   store-routed reachability in `pgq-core`) run against the frozen
//!   layout instead of re-materializing row vectors per query.
//!
//! The store is held to the reference evaluators by the differential
//! suite `tests/prop_store.rs` at the workspace root, and its ablation
//! against the PR 2 hash-join engine is experiment E16 /
//! `BENCH_3.json`. The coded execution pipeline that keeps these codes
//! flowing through every physical operator (decoding once at the
//! set-semantics boundary) lives in `pgq-exec`; its ablation is
//! experiment E17 / `BENCH_4.json`.
//!
//! ## Code order vs. value order
//!
//! Codes are minted in first-seen order, which is **not** the value
//! order: coded operators compare codes only for *equality* and decode
//! through the shared [`Dictionary`] for order predicates
//! (`t.amount > 100`-style conditions decode on compare — an index
//! into the dictionary's value vector, not a hash lookup).
//!
//! ## Updates
//!
//! Since PR 5 the store serves **changing data** without
//! re-registration: [`Store::insert_row`] / [`Store::delete_row`]
//! append or tombstone single rows (a validity bitmap in
//! [`ColumnarRelation`]), and [`Store::apply_update`] /
//! [`Store::apply_updates`] bridge the Section 7 update model
//! (`pgq_graph::updates::Update`) onto a registered view graph —
//! editing the six backing relations in place and maintaining the
//! graph's frozen CSR through a [`DeltaAdjacency`] overlay consulted
//! by every adjacency read ([`AdjacencyView`]). Evaluation cost after
//! an update tracks the **delta**, not the database: no re-interning,
//! no `pgView` re-validation, no CSR rebuild until the overlay
//! outgrows its threshold and is folded back into a fresh index.
//!
//! ## Compaction
//!
//! The dictionary is append-only: deletions and re-registrations
//! leave stale codes behind (dropping them eagerly would dangle any
//! structure still holding the code). The store *tracks* the gap —
//! [`StoreStats`] reports live vs. total codes, tombstoned rows and
//! overlay sizes (surfaced by the shell's `STATS` command) — and
//! [`Store::compact`] implements the reclamation: it rebuilds the
//! dictionary retaining only live codes, remaps every column, drops
//! tombstoned rows, rebuilds relation CSR indexes from the recoded
//! rows, and folds every graph overlay, reporting the effect as
//! [`CompactionStats`]. `dictionary_stale` drops to 0 and no query
//! result changes (held by the differential suite). Code space is a
//! hard `u32` ceiling ([`Dictionary::MAX_CODES`]); exhaustion is a
//! typed [`StoreError::DictionaryFull`], not a panic — and CSR node
//! universes fail the same way ([`StoreError::NodeUniverseFull`]).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bulk;
pub mod column;
pub mod csr;
pub mod dict;
pub mod par;
pub mod snapshot;
pub mod stats;
pub mod store;

pub use bulk::{BulkGraph, BulkLoadStats};
pub use column::ColumnarRelation;
pub use csr::{AdjacencyView, Csr, CsrIndex, DeltaAdjacency, ReachScratch};
pub use dict::Dictionary;
pub use snapshot::{ConcurrentStore, StoreSnapshot};
pub use stats::{
    AdjacencyStatistics, DegreeHistogram, GraphStatistics, RelationStatistics, StoreStatistics,
};
pub use store::{
    AccessCounters, AccessSnapshot, CompactionStats, GraphEntry, GraphForm, GraphStats,
    MemoryBytes, RelationStats, Store, StoreError, StoreStats, ADOM_REL,
};
