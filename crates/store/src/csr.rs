//! Compressed sparse row adjacency indexes.
//!
//! A [`CsrIndex`] freezes a set of `(source, target)` code pairs into
//! forward and reverse CSR form: one offsets array and one flat
//! neighbor array per direction, nodes renumbered into a dense
//! `0..node_count` space. Neighbor enumeration is a slice borrow — no
//! hashing, no allocation — which is what turns the semi-naive fixpoint
//! frontier of the physical engine into pointer arithmetic.

use std::collections::HashMap;

/// One direction of adjacency in CSR form over dense node ids.
#[derive(Debug, Clone, Default)]
pub struct Csr {
    /// `offsets[n]..offsets[n + 1]` indexes `targets` for dense node `n`.
    offsets: Vec<u32>,
    /// Flat neighbor array, grouped by source, each group sorted.
    targets: Vec<u32>,
}

impl Csr {
    /// Builds CSR form from `(dense source, dense target)` pairs.
    fn from_pairs(node_count: usize, pairs: &[(u32, u32)]) -> Self {
        let mut degree = vec![0u32; node_count];
        for &(s, _) in pairs {
            degree[s as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(node_count + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..node_count].to_vec();
        let mut targets = vec![0u32; pairs.len()];
        for &(s, t) in pairs {
            let c = &mut cursor[s as usize];
            targets[*c as usize] = t;
            *c += 1;
        }
        // Sorted neighbor groups make the layout deterministic and
        // binary-searchable.
        for n in 0..node_count {
            let (lo, hi) = (offsets[n] as usize, offsets[n + 1] as usize);
            targets[lo..hi].sort_unstable();
        }
        Csr { offsets, targets }
    }

    /// The neighbor slice of dense node `n`.
    pub fn neighbors(&self, n: u32) -> &[u32] {
        let (lo, hi) = (
            self.offsets[n as usize] as usize,
            self.offsets[n as usize + 1] as usize,
        );
        &self.targets[lo..hi]
    }

    /// Total stored adjacency entries.
    pub fn entry_count(&self) -> usize {
        self.targets.len()
    }
}

/// A bidirectional CSR index over a fixed node universe.
///
/// Nodes are identified by their *dictionary codes* externally and by
/// dense ids `0..node_count` internally; the index owns the mapping in
/// both directions. Edge multiplicity is set-like (the inputs come from
/// set-semantics relations), but parallel edges *between the same
/// endpoints under different edge identities* collapse to one adjacency
/// entry — exactly what endpoint reachability consumes.
#[derive(Debug, Clone, Default)]
pub struct CsrIndex {
    /// Dense id → dictionary code.
    codes: Vec<u32>,
    /// Dictionary code → dense id.
    dense: HashMap<u32, u32>,
    fwd: Csr,
    rev: Csr,
}

impl CsrIndex {
    /// Builds the index over `nodes` (dictionary codes; duplicates
    /// ignored) with `edges` as `(source code, target code)` pairs.
    /// Edge endpoints must be members of `nodes`.
    pub fn build(nodes: impl IntoIterator<Item = u32>, edges: &[(u32, u32)]) -> Self {
        let mut codes: Vec<u32> = Vec::new();
        let mut dense: HashMap<u32, u32> = HashMap::new();
        for c in nodes {
            dense.entry(c).or_insert_with(|| {
                let id = u32::try_from(codes.len()).expect("node universe outgrew u32");
                codes.push(c);
                id
            });
        }
        let mut fwd_pairs = Vec::with_capacity(edges.len());
        for &(s, t) in edges {
            fwd_pairs.push((dense[&s], dense[&t]));
        }
        // Parallel edges (distinct identities, same endpoints) collapse
        // to one adjacency entry — all the endpoint semantics consumes.
        fwd_pairs.sort_unstable();
        fwd_pairs.dedup();
        let rev_pairs: Vec<(u32, u32)> = fwd_pairs.iter().map(|&(s, t)| (t, s)).collect();
        let n = codes.len();
        CsrIndex {
            fwd: Csr::from_pairs(n, &fwd_pairs),
            rev: Csr::from_pairs(n, &rev_pairs),
            codes,
            dense,
        }
    }

    /// Number of nodes in the universe.
    pub fn node_count(&self) -> usize {
        self.codes.len()
    }

    /// Number of forward adjacency entries (distinct endpoint pairs).
    pub fn edge_count(&self) -> usize {
        self.fwd.entry_count()
    }

    /// Dense id of a dictionary code, when the code is in the universe.
    pub fn dense_of(&self, code: u32) -> Option<u32> {
        self.dense.get(&code).copied()
    }

    /// Dictionary code of a dense id.
    pub fn code_of(&self, dense: u32) -> u32 {
        self.codes[dense as usize]
    }

    /// Iterates the node universe as dictionary codes, dense order.
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// Forward neighbors (dense → dense slice).
    pub fn out_neighbors(&self, dense: u32) -> &[u32] {
        self.fwd.neighbors(dense)
    }

    /// Reverse neighbors (dense → dense slice).
    pub fn in_neighbors(&self, dense: u32) -> &[u32] {
        self.rev.neighbors(dense)
    }

    /// All `(source, target)` pairs connected by a path of **one or
    /// more** forward steps, as dense ids: a breadth-first sweep per
    /// source over the frozen neighbor slices.
    pub fn all_pairs_reach(&self) -> Vec<(u32, u32)> {
        let n = self.node_count();
        let mut out = Vec::new();
        let mut seen = vec![u32::MAX; n];
        let mut frontier: Vec<u32> = Vec::new();
        let mut next: Vec<u32> = Vec::new();
        for s in 0..n as u32 {
            frontier.clear();
            // ≥ 1 step: seed with the direct neighbors, not the source.
            for &t in self.fwd.neighbors(s) {
                if seen[t as usize] != s {
                    seen[t as usize] = s;
                    frontier.push(t);
                    out.push((s, t));
                }
            }
            while !frontier.is_empty() {
                next.clear();
                for &u in &frontier {
                    for &t in self.fwd.neighbors(u) {
                        if seen[t as usize] != s {
                            seen[t as usize] = s;
                            next.push(t);
                            out.push((s, t));
                        }
                    }
                }
                std::mem::swap(&mut frontier, &mut next);
            }
        }
        out
    }

    /// Dense ids reachable from `seeds` by **zero or more** forward
    /// steps (the seeds themselves are included). The workhorse of the
    /// store-backed fixpoint: one multi-source sweep per distinct
    /// accumulator prefix.
    pub fn reach_from(&self, seeds: impl IntoIterator<Item = u32>) -> Vec<u32> {
        let n = self.node_count();
        let mut seen = vec![false; n];
        let mut out: Vec<u32> = Vec::new();
        let mut frontier: Vec<u32> = Vec::new();
        for s in seeds {
            if !seen[s as usize] {
                seen[s as usize] = true;
                out.push(s);
                frontier.push(s);
            }
        }
        let mut next: Vec<u32> = Vec::new();
        while !frontier.is_empty() {
            next.clear();
            for &u in &frontier {
                for &t in self.fwd.neighbors(u) {
                    if !seen[t as usize] {
                        seen[t as usize] = true;
                        out.push(t);
                        next.push(t);
                    }
                }
            }
            std::mem::swap(&mut frontier, &mut next);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 → 1 → 2 → 3 with codes 10·(i+1).
    fn chain() -> CsrIndex {
        CsrIndex::build([10, 20, 30, 40], &[(10, 20), (20, 30), (30, 40)])
    }

    #[test]
    fn neighbors_and_mapping() {
        let idx = chain();
        assert_eq!(idx.node_count(), 4);
        assert_eq!(idx.edge_count(), 3);
        let d10 = idx.dense_of(10).unwrap();
        let d20 = idx.dense_of(20).unwrap();
        assert_eq!(idx.out_neighbors(d10), &[d20]);
        assert_eq!(idx.in_neighbors(d10), &[] as &[u32]);
        assert_eq!(idx.in_neighbors(d20), &[d10]);
        assert_eq!(idx.code_of(d20), 20);
        assert_eq!(idx.dense_of(99), None);
    }

    #[test]
    fn all_pairs_on_chain_and_cycle() {
        let idx = chain();
        assert_eq!(idx.all_pairs_reach().len(), 6); // 3 + 2 + 1
        let cycle = CsrIndex::build([1, 2, 3], &[(1, 2), (2, 3), (3, 1)]);
        assert_eq!(cycle.all_pairs_reach().len(), 9);
    }

    #[test]
    fn self_loops_and_parallel_endpoint_pairs() {
        // A self loop reaches itself; duplicated endpoint pairs
        // collapse in the reachability answer.
        let idx = CsrIndex::build([1, 2], &[(1, 1), (1, 2), (1, 2)]);
        assert_eq!(idx.edge_count(), 2);
        let pairs = idx.all_pairs_reach();
        let d1 = idx.dense_of(1).unwrap();
        let d2 = idx.dense_of(2).unwrap();
        assert!(pairs.contains(&(d1, d1)));
        assert!(pairs.contains(&(d1, d2)));
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    fn reach_from_includes_seeds() {
        let idx = chain();
        let d20 = idx.dense_of(20).unwrap();
        let got = idx.reach_from([d20]);
        assert_eq!(got.len(), 3); // 20, 30, 40
        assert!(got.contains(&d20));
        let empty = CsrIndex::build([], &[]);
        assert!(empty.reach_from([]).is_empty());
        assert!(empty.all_pairs_reach().is_empty());
    }
}
