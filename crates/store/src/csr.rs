//! Compressed sparse row adjacency indexes and their delta overlays.
//!
//! A [`CsrIndex`] freezes a set of `(source, target)` code pairs into
//! forward and reverse CSR form: one offsets array and one flat
//! neighbor array per direction, nodes renumbered into a dense
//! `0..node_count` space. Neighbor enumeration is a slice borrow — no
//! hashing, no allocation — which is what turns the semi-naive fixpoint
//! frontier of the physical engine into pointer arithmetic.
//!
//! Since PR 5 the frozen index is no longer the whole story: a
//! [`DeltaAdjacency`] records edges added and removed *after* the
//! freeze, and an [`AdjacencyView`] answers neighbor and reachability
//! queries through base-plus-overlay without rebuilding the CSR. The
//! overlay is folded back into a fresh index when it grows past a
//! threshold (`Store::compact`, or automatically after large update
//! batches), so steady-state reads stay on the pointer-arithmetic
//! path.

use crate::store::StoreError;
use std::collections::{BTreeSet, HashMap, HashSet};

/// One direction of adjacency in CSR form over dense node ids.
#[derive(Debug, Clone, Default)]
pub struct Csr {
    /// `offsets[n]..offsets[n + 1]` indexes `targets` for dense node `n`.
    offsets: Vec<u32>,
    /// Flat neighbor array, grouped by source, each group sorted.
    targets: Vec<u32>,
}

impl Csr {
    /// Builds CSR form from `(dense source, dense target)` pairs.
    fn from_pairs(node_count: usize, pairs: &[(u32, u32)]) -> Self {
        let mut degree = vec![0u32; node_count];
        for &(s, _) in pairs {
            degree[s as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(node_count + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..node_count].to_vec();
        let mut targets = vec![0u32; pairs.len()];
        for &(s, t) in pairs {
            let c = &mut cursor[s as usize];
            targets[*c as usize] = t;
            *c += 1;
        }
        // Sorted neighbor groups make the layout deterministic and
        // binary-searchable.
        for n in 0..node_count {
            let (lo, hi) = (offsets[n] as usize, offsets[n + 1] as usize);
            targets[lo..hi].sort_unstable();
        }
        Csr { offsets, targets }
    }

    /// The neighbor slice of dense node `n`.
    pub fn neighbors(&self, n: u32) -> &[u32] {
        let (lo, hi) = (
            self.offsets[n as usize] as usize,
            self.offsets[n as usize + 1] as usize,
        );
        &self.targets[lo..hi]
    }

    /// Total stored adjacency entries.
    pub fn entry_count(&self) -> usize {
        self.targets.len()
    }

    /// Resident heap bytes of the two flat arrays.
    pub fn resident_bytes(&self) -> usize {
        (self.offsets.capacity() + self.targets.capacity()) * std::mem::size_of::<u32>()
    }
}

/// Dictionary code → dense id, in one of two representations: bulk
/// loads mint node codes contiguously, so the mapping is usually pure
/// arithmetic (`code - base`) and costs zero bytes and zero hashing;
/// arbitrary universes fall back to a hash map. [`CsrIndex`] detects
/// contiguity at build time, so the register route benefits too.
#[derive(Debug, Clone)]
enum DenseMap {
    /// Codes `base..base + len` map to dense ids `0..len`.
    Contiguous { base: u32, len: u32 },
    /// Arbitrary code universe.
    Hashed(HashMap<u32, u32>),
}

impl Default for DenseMap {
    fn default() -> Self {
        DenseMap::Contiguous { base: 0, len: 0 }
    }
}

impl DenseMap {
    /// Builds the mapping from the dense-order code vector, collapsing
    /// to the arithmetic form when the codes are one ascending run.
    fn from_codes(codes: &[u32]) -> Self {
        let contiguous = match codes.first() {
            None => return DenseMap::Contiguous { base: 0, len: 0 },
            Some(&base) => codes
                .iter()
                .enumerate()
                .all(|(d, &c)| c.checked_sub(base) == Some(d as u32)),
        };
        if contiguous {
            DenseMap::Contiguous {
                base: codes[0],
                len: codes.len() as u32,
            }
        } else {
            let mut m = HashMap::with_capacity(codes.len());
            for (d, &c) in codes.iter().enumerate() {
                m.insert(c, d as u32);
            }
            DenseMap::Hashed(m)
        }
    }

    fn get(&self, code: u32) -> Option<u32> {
        match self {
            DenseMap::Contiguous { base, len } => match code.checked_sub(*base) {
                Some(d) if d < *len => Some(d),
                _ => None,
            },
            DenseMap::Hashed(m) => m.get(&code).copied(),
        }
    }

    /// Estimated resident heap bytes (zero for the arithmetic form).
    fn resident_bytes(&self) -> usize {
        match self {
            DenseMap::Contiguous { .. } => 0,
            // Key + value + per-slot control byte & padding estimate.
            DenseMap::Hashed(m) => m.capacity() * (2 * std::mem::size_of::<u32>() + 8),
        }
    }
}

/// A bidirectional CSR index over a fixed node universe.
///
/// Nodes are identified by their *dictionary codes* externally and by
/// dense ids `0..node_count` internally; the index owns the mapping in
/// both directions. Edge multiplicity is set-like (the inputs come from
/// set-semantics relations), but parallel edges *between the same
/// endpoints under different edge identities* collapse to one adjacency
/// entry — exactly what endpoint reachability consumes.
#[derive(Debug, Clone, Default)]
pub struct CsrIndex {
    /// Dense id → dictionary code.
    codes: Vec<u32>,
    /// Dictionary code → dense id.
    dense: DenseMap,
    fwd: Csr,
    rev: Csr,
}

impl CsrIndex {
    /// The full dense-id space: the hard ceiling on distinct nodes one
    /// index can hold (parity with `Dictionary::MAX_CODES`).
    pub const MAX_NODES: usize = u32::MAX as usize + 1;

    /// Builds the index over `nodes` (dictionary codes; duplicates
    /// ignored) with `edges` as `(source code, target code)` pairs.
    /// Edge endpoints must be members of `nodes`. Fails with
    /// [`StoreError::NodeUniverseFull`] instead of panicking when the
    /// universe outgrows the dense `u32` id space — the same typed
    /// error discipline as dictionary exhaustion.
    pub fn build(
        nodes: impl IntoIterator<Item = u32>,
        edges: &[(u32, u32)],
    ) -> Result<Self, StoreError> {
        Self::build_with_limit(nodes, edges, Self::MAX_NODES)
    }

    /// [`CsrIndex::build`] with an explicit node-universe limit (capped
    /// at [`CsrIndex::MAX_NODES`]). Exists so tests can exercise the
    /// exhaustion path without 2³² nodes.
    pub fn build_with_limit(
        nodes: impl IntoIterator<Item = u32>,
        edges: &[(u32, u32)],
        limit: usize,
    ) -> Result<Self, StoreError> {
        let limit = limit.min(Self::MAX_NODES);
        let mut codes: Vec<u32> = Vec::new();
        let mut dense: HashMap<u32, u32> = HashMap::new();
        for c in nodes {
            if dense.contains_key(&c) {
                continue;
            }
            if codes.len() >= limit {
                return Err(StoreError::NodeUniverseFull { limit });
            }
            // `len < limit ≤ 2³²`, so the cast cannot wrap.
            dense.insert(c, codes.len() as u32);
            codes.push(c);
        }
        let mut fwd_pairs = Vec::with_capacity(edges.len());
        for &(s, t) in edges {
            fwd_pairs.push((dense[&s], dense[&t]));
        }
        drop(dense);
        Self::from_dense_pairs(codes, fwd_pairs)
    }

    /// Builds the index directly from its dense-order code vector and
    /// `(dense source, dense target)` pairs — the sort-based bulk path
    /// ([`crate::Store::bulk_load`]). `codes` must be distinct and
    /// pairs must reference ids `< codes.len()`; the caller (the bulk
    /// loader, which minted the codes itself) guarantees both, and the
    /// cheap range check below turns a violated contract into a panic
    /// rather than silent corruption. Contiguous code universes — the
    /// normal case for freshly minted bulk codes — collapse the
    /// code→dense map to pure arithmetic (a base/len pair instead of a
    /// hash map).
    pub fn from_dense_pairs(
        codes: Vec<u32>,
        mut fwd_pairs: Vec<(u32, u32)>,
    ) -> Result<Self, StoreError> {
        let n = codes.len();
        if n > Self::MAX_NODES {
            return Err(StoreError::NodeUniverseFull {
                limit: Self::MAX_NODES,
            });
        }
        assert!(
            fwd_pairs
                .iter()
                .all(|&(s, t)| (s as usize) < n && (t as usize) < n),
            "dense pair endpoint outside the node universe"
        );
        // Parallel edges (distinct identities, same endpoints) collapse
        // to one adjacency entry — all the endpoint semantics consumes.
        fwd_pairs.sort_unstable();
        fwd_pairs.dedup();
        let rev_pairs: Vec<(u32, u32)> = fwd_pairs.iter().map(|&(s, t)| (t, s)).collect();
        Ok(CsrIndex {
            fwd: Csr::from_pairs(n, &fwd_pairs),
            rev: Csr::from_pairs(n, &rev_pairs),
            dense: DenseMap::from_codes(&codes),
            codes,
        })
    }

    /// Number of nodes in the universe.
    pub fn node_count(&self) -> usize {
        self.codes.len()
    }

    /// Number of forward adjacency entries (distinct endpoint pairs).
    pub fn edge_count(&self) -> usize {
        self.fwd.entry_count()
    }

    /// Dense id of a dictionary code, when the code is in the universe.
    pub fn dense_of(&self, code: u32) -> Option<u32> {
        self.dense.get(code)
    }

    /// Estimated resident heap bytes: code vector, code→dense map
    /// (zero when the universe is contiguous), and both CSR directions.
    pub fn resident_bytes(&self) -> usize {
        self.codes.capacity() * std::mem::size_of::<u32>()
            + self.dense.resident_bytes()
            + self.fwd.resident_bytes()
            + self.rev.resident_bytes()
    }

    /// Dictionary code of a dense id.
    pub fn code_of(&self, dense: u32) -> u32 {
        self.codes[dense as usize]
    }

    /// Iterates the node universe as dictionary codes, dense order.
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// Forward neighbors (dense → dense slice).
    pub fn out_neighbors(&self, dense: u32) -> &[u32] {
        self.fwd.neighbors(dense)
    }

    /// Reverse neighbors (dense → dense slice).
    pub fn in_neighbors(&self, dense: u32) -> &[u32] {
        self.rev.neighbors(dense)
    }

    /// Whether the frozen index holds the `(source, target)` pair,
    /// given as external codes. Neighbor groups are sorted, so this is
    /// a binary search, no hashing.
    pub fn has_pair(&self, s: u32, t: u32) -> bool {
        match (self.dense_of(s), self.dense_of(t)) {
            (Some(ds), Some(dt)) => self.fwd.neighbors(ds).binary_search(&dt).is_ok(),
            _ => false,
        }
    }

    /// All `(source, target)` pairs connected by a path of **one or
    /// more** forward steps, as dense ids: a breadth-first sweep per
    /// source over the frozen neighbor slices.
    pub fn all_pairs_reach(&self) -> Vec<(u32, u32)> {
        let n = self.node_count();
        let mut out = Vec::new();
        let mut seen = vec![u32::MAX; n];
        let mut frontier: Vec<u32> = Vec::new();
        let mut next: Vec<u32> = Vec::new();
        for s in 0..n as u32 {
            frontier.clear();
            // ≥ 1 step: seed with the direct neighbors, not the source.
            for &t in self.fwd.neighbors(s) {
                if seen[t as usize] != s {
                    seen[t as usize] = s;
                    frontier.push(t);
                    out.push((s, t));
                }
            }
            while !frontier.is_empty() {
                next.clear();
                for &u in &frontier {
                    for &t in self.fwd.neighbors(u) {
                        if seen[t as usize] != s {
                            seen[t as usize] = s;
                            next.push(t);
                            out.push((s, t));
                        }
                    }
                }
                std::mem::swap(&mut frontier, &mut next);
            }
        }
        out
    }

    /// Dense ids reachable from `seeds` by **zero or more** forward
    /// steps (the seeds themselves are included). The workhorse of the
    /// store-backed fixpoint: one multi-source sweep per distinct
    /// accumulator prefix. Allocates fresh buffers — hot loops should
    /// use [`CsrIndex::reach_from_into`] with a reused
    /// [`ReachScratch`] instead.
    pub fn reach_from(&self, seeds: impl IntoIterator<Item = u32>) -> Vec<u32> {
        let mut scratch = ReachScratch::new();
        let mut out = Vec::new();
        self.reach_from_into(seeds, &mut scratch, &mut out);
        out
    }

    /// [`CsrIndex::reach_from`] into caller-owned buffers: `out` is
    /// cleared and filled with the reachable dense ids, and `scratch`
    /// carries the visited stamps and frontier queues across calls so
    /// a sweep over many seed groups performs a **bounded** number of
    /// allocations (at most one visited-array growth per distinct
    /// universe size — [`ReachScratch::allocation_count`] counts them,
    /// and the PR 9 churn test pins the bound down).
    pub fn reach_from_into(
        &self,
        seeds: impl IntoIterator<Item = u32>,
        scratch: &mut ReachScratch,
        out: &mut Vec<u32>,
    ) {
        let n = self.node_count();
        let epoch = scratch.begin(n);
        out.clear();
        scratch.frontier.clear();
        for s in seeds {
            if scratch.seen[s as usize] != epoch {
                scratch.seen[s as usize] = epoch;
                out.push(s);
                scratch.frontier.push(s);
            }
        }
        while !scratch.frontier.is_empty() {
            scratch.next.clear();
            for i in 0..scratch.frontier.len() {
                let u = scratch.frontier[i];
                for &t in self.fwd.neighbors(u) {
                    if scratch.seen[t as usize] != epoch {
                        scratch.seen[t as usize] = epoch;
                        out.push(t);
                        scratch.next.push(t);
                    }
                }
            }
            std::mem::swap(&mut scratch.frontier, &mut scratch.next);
        }
    }
}

/// Reusable per-worker buffers for CSR reachability sweeps (PR 9).
///
/// The fixpoint operators sweep one seed group per task; before this
/// struct existed each sweep allocated a fresh visited array plus
/// frontier/next/output `Vec`s, so allocation count grew linearly with
/// the number of groups *and* iterations. A `ReachScratch` is created
/// once per worker ([`crate::par::run_tasks_scratch`]) and reused for
/// every sweep that worker claims: the visited array is **epoch
/// stamped** (bumping an integer invalidates the whole array in O(1),
/// the same trick [`CsrIndex::all_pairs_reach`] uses), and the queues
/// keep their capacity between sweeps.
#[derive(Debug, Clone, Default)]
pub struct ReachScratch {
    /// `seen[d] == epoch` ⇔ dense id `d` was visited this sweep.
    seen: Vec<u32>,
    epoch: u32,
    frontier: Vec<u32>,
    next: Vec<u32>,
    /// Visited set for overlay sweeps, which run in unbounded key
    /// space; cleared (capacity kept) rather than reallocated.
    seen_keys: HashSet<u32>,
    /// Seed-splitting buffers for [`AdjacencyView::reach_from_into`].
    dense_seeds: Vec<u32>,
    strays: Vec<u32>,
    /// Buffer-growth events (visited-array growth): the observable
    /// proxy the churn regression test asserts is sweep-count
    /// independent once the scratch is warm.
    allocations: u64,
}

impl ReachScratch {
    /// A fresh scratch; buffers grow on first use and then stick.
    pub fn new() -> Self {
        ReachScratch::default()
    }

    /// How many times the visited array had to grow. Constant across
    /// repeated sweeps over the same (or smaller) universe — the
    /// allocation-churn invariant.
    pub fn allocation_count(&self) -> u64 {
        self.allocations
    }

    /// Opens a sweep over a universe of `n` dense ids and returns the
    /// epoch that marks "visited" for this sweep.
    fn begin(&mut self, n: usize) -> u32 {
        if self.seen.len() < n {
            self.allocations += 1;
            self.seen.resize(n, 0);
        }
        if self.epoch == u32::MAX {
            // Epoch wrap: one O(n) refill every 2³² sweeps.
            self.seen.iter_mut().for_each(|s| *s = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.epoch
    }
}

/// Edges added and removed since the underlying [`CsrIndex`] was
/// frozen, keyed on the same external codes the index maps.
///
/// Invariants maintained by [`DeltaAdjacency::add`] /
/// [`DeltaAdjacency::remove`] (callers pass whether the pair is in the
/// base index):
///
/// * `added ∩ base = ∅` — re-adding a frozen pair only cancels a prior
///   removal;
/// * `removed ⊆ base` — removing a never-frozen pair only retracts it
///   from `added`.
///
/// The effective pair set is therefore exactly
/// `(base ∖ removed) ∪ added`, and its size is
/// `base.edge_count() − removed.len() + added.len()`.
#[derive(Debug, Clone, Default)]
pub struct DeltaAdjacency {
    added_out: HashMap<u32, BTreeSet<u32>>,
    added_in: HashMap<u32, BTreeSet<u32>>,
    removed: HashSet<(u32, u32)>,
    added_pairs: usize,
}

impl DeltaAdjacency {
    /// An empty overlay.
    pub fn new() -> Self {
        DeltaAdjacency::default()
    }

    /// Records the pair `(s, t)` as present. `in_base` says whether the
    /// frozen index already holds it (the caller knows; the overlay has
    /// no base reference).
    pub fn add(&mut self, s: u32, t: u32, in_base: bool) {
        if in_base {
            self.removed.remove(&(s, t));
            return;
        }
        if self.added_out.entry(s).or_default().insert(t) {
            self.added_in.entry(t).or_default().insert(s);
            self.added_pairs += 1;
        }
    }

    /// Records the pair `(s, t)` as absent.
    pub fn remove(&mut self, s: u32, t: u32, in_base: bool) {
        if in_base {
            self.removed.insert((s, t));
            return;
        }
        if let Some(set) = self.added_out.get_mut(&s) {
            if set.remove(&t) {
                self.added_pairs -= 1;
                if set.is_empty() {
                    self.added_out.remove(&s);
                }
                if let Some(rev) = self.added_in.get_mut(&t) {
                    rev.remove(&s);
                    if rev.is_empty() {
                        self.added_in.remove(&t);
                    }
                }
            }
        }
    }

    /// Whether `(s, t)` was added on top of the base.
    pub fn has_added(&self, s: u32, t: u32) -> bool {
        self.added_out.get(&s).is_some_and(|set| set.contains(&t))
    }

    /// Whether `(s, t)` was removed from the base.
    pub fn is_removed(&self, s: u32, t: u32) -> bool {
        self.removed.contains(&(s, t))
    }

    /// Pairs added on top of the base.
    pub fn added_len(&self) -> usize {
        self.added_pairs
    }

    /// Pairs removed from the base.
    pub fn removed_len(&self) -> usize {
        self.removed.len()
    }

    /// Total overlay size (additions plus removals) — what the
    /// fold-on-threshold policy and `STATS` measure.
    pub fn change_count(&self) -> usize {
        self.added_pairs + self.removed.len()
    }

    /// Whether the overlay records no changes.
    pub fn is_empty(&self) -> bool {
        self.change_count() == 0
    }

    /// Added forward neighbors of `s`, ascending.
    pub fn added_out(&self, s: u32) -> impl Iterator<Item = u32> + '_ {
        self.added_out.get(&s).into_iter().flatten().copied()
    }

    /// Added reverse neighbors of `t`, ascending.
    pub fn added_in(&self, t: u32) -> impl Iterator<Item = u32> + '_ {
        self.added_in.get(&t).into_iter().flatten().copied()
    }

    /// Estimated resident heap bytes of the overlay: map entries,
    /// B-tree set nodes for the added pairs (both directions), and the
    /// removed-pair set. Estimates per-entry overhead, not exact malloc
    /// sizes, like the other `resident_bytes` accounting.
    pub fn resident_bytes(&self) -> usize {
        let map_entry = std::mem::size_of::<u32>() + std::mem::size_of::<usize>() + 32;
        let pair_entry = 2 * (std::mem::size_of::<u32>() + 8);
        (self.added_out.len() + self.added_in.len()) * map_entry
            + self.added_pairs * pair_entry
            + self.removed.capacity() * (2 * std::mem::size_of::<u32>() + 8)
    }

    /// Every added pair, grouped by source (deterministic order).
    pub fn added_pairs(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        // BTreeMap-like determinism despite the HashMap: sort sources.
        let mut sources: Vec<u32> = self.added_out.keys().copied().collect();
        sources.sort_unstable();
        sources.into_iter().flat_map(move |s| {
            self.added_out
                .get(&s)
                .into_iter()
                .flatten()
                .map(move |&t| (s, t))
        })
    }
}

/// A read view through a frozen [`CsrIndex`] and an optional
/// [`DeltaAdjacency`] overlay — what `AdjacencyExpand` probes and the
/// CSR fixpoint sweeps run on since the store became updatable.
///
/// All methods speak *external codes* (the same space
/// [`CsrIndex::dense_of`] maps); keys outside the frozen universe are
/// legal and simply have whatever neighbors the overlay gives them.
/// With no overlay every path degrades to the frozen slice walks.
#[derive(Clone, Copy)]
pub struct AdjacencyView<'a> {
    base: &'a CsrIndex,
    delta: Option<&'a DeltaAdjacency>,
}

impl<'a> AdjacencyView<'a> {
    /// A view over `base` with an optional overlay; an empty overlay is
    /// normalized away so the fast paths stay branch-predictable.
    pub fn new(base: &'a CsrIndex, delta: Option<&'a DeltaAdjacency>) -> Self {
        AdjacencyView {
            base,
            delta: delta.filter(|d| !d.is_empty()),
        }
    }

    /// The frozen index underneath.
    pub fn base(&self) -> &'a CsrIndex {
        self.base
    }

    /// Whether reads go through a (non-empty) delta overlay — surfaced
    /// by `EXPLAIN`'s `⟨delta⟩` markers.
    pub fn has_delta(&self) -> bool {
        self.delta.is_some()
    }

    /// Effective number of distinct endpoint pairs:
    /// `base − removed + added` (exact under the overlay invariants).
    pub fn edge_count(&self) -> usize {
        let base = self.base.edge_count();
        match self.delta {
            None => base,
            Some(d) => base - d.removed_len() + d.added_len(),
        }
    }

    /// Whether the effective pair set holds `(s, t)`.
    pub fn has_pair(&self, s: u32, t: u32) -> bool {
        match self.delta {
            None => self.base.has_pair(s, t),
            Some(d) => (self.base.has_pair(s, t) && !d.is_removed(s, t)) || d.has_added(s, t),
        }
    }

    /// Calls `f` for every effective forward neighbor of `key` (base
    /// minus removed, then added; codes, not dense ids).
    pub fn for_each_out(&self, key: u32, mut f: impl FnMut(u32)) {
        match self.delta {
            None => {
                if let Some(d) = self.base.dense_of(key) {
                    for &t in self.base.out_neighbors(d) {
                        f(self.base.code_of(t));
                    }
                }
            }
            Some(delta) => {
                if let Some(d) = self.base.dense_of(key) {
                    for &t in self.base.out_neighbors(d) {
                        let tc = self.base.code_of(t);
                        if !delta.is_removed(key, tc) {
                            f(tc);
                        }
                    }
                }
                for t in delta.added_out(key) {
                    f(t);
                }
            }
        }
    }

    /// Calls `f` for every effective reverse neighbor of `key`.
    pub fn for_each_in(&self, key: u32, mut f: impl FnMut(u32)) {
        match self.delta {
            None => {
                if let Some(d) = self.base.dense_of(key) {
                    for &t in self.base.in_neighbors(d) {
                        f(self.base.code_of(t));
                    }
                }
            }
            Some(delta) => {
                if let Some(d) = self.base.dense_of(key) {
                    for &t in self.base.in_neighbors(d) {
                        let sc = self.base.code_of(t);
                        if !delta.is_removed(sc, key) {
                            f(sc);
                        }
                    }
                }
                for s in delta.added_in(key) {
                    f(s);
                }
            }
        }
    }

    /// Keys reachable from `seeds` by **zero or more** effective
    /// forward steps (seeds included, deduplicated). Keys outside the
    /// frozen universe are valid seeds — they contribute themselves
    /// plus whatever the overlay hangs off them. Without an overlay
    /// the sweep runs on the dense frozen arrays.
    pub fn reach_from(&self, seeds: impl IntoIterator<Item = u32>) -> Vec<u32> {
        let mut scratch = ReachScratch::new();
        let mut out = Vec::new();
        self.reach_from_into(seeds, &mut scratch, &mut out);
        out
    }

    /// [`AdjacencyView::reach_from`] into caller-owned buffers (see
    /// [`CsrIndex::reach_from_into`]): `out` is cleared and refilled,
    /// `scratch` keeps every working buffer — visited stamps on the
    /// dense path, the key-space visited set on the overlay path, and
    /// both frontier queues — warm across sweeps.
    pub fn reach_from_into(
        &self,
        seeds: impl IntoIterator<Item = u32>,
        scratch: &mut ReachScratch,
        out: &mut Vec<u32>,
    ) {
        if self.delta.is_none() {
            // Dense fast path: split seeds into in-universe (swept on
            // the frozen arrays) and strays (0-step, no out-edges).
            scratch.dense_seeds.clear();
            scratch.strays.clear();
            for s in seeds {
                match self.base.dense_of(s) {
                    Some(d) => scratch.dense_seeds.push(d),
                    None => scratch.strays.push(s),
                }
            }
            let mut dense_seeds = std::mem::take(&mut scratch.dense_seeds);
            self.base
                .reach_from_into(dense_seeds.drain(..), scratch, out);
            scratch.dense_seeds = dense_seeds;
            for d in out.iter_mut() {
                *d = self.base.code_of(*d);
            }
            scratch.strays.sort_unstable();
            scratch.strays.dedup();
            out.extend_from_slice(&scratch.strays);
            return;
        }
        // Overlay sweep in key space.
        out.clear();
        scratch.seen_keys.clear();
        scratch.frontier.clear();
        for s in seeds {
            if scratch.seen_keys.insert(s) {
                out.push(s);
                scratch.frontier.push(s);
            }
        }
        let mut frontier = std::mem::take(&mut scratch.frontier);
        let mut next = std::mem::take(&mut scratch.next);
        while !frontier.is_empty() {
            next.clear();
            for &u in &frontier {
                self.for_each_out(u, |t| {
                    if scratch.seen_keys.insert(t) {
                        out.push(t);
                        next.push(t);
                    }
                });
            }
            std::mem::swap(&mut frontier, &mut next);
        }
        scratch.frontier = frontier;
        scratch.next = next;
    }

    /// The full effective pair set, deterministic order — what a fold
    /// rebuilds a fresh [`CsrIndex`] from.
    pub fn effective_pairs(&self) -> Vec<(u32, u32)> {
        let mut out: Vec<(u32, u32)> = Vec::with_capacity(self.edge_count());
        for d in 0..self.base.node_count() as u32 {
            let s = self.base.code_of(d);
            for &t in self.base.out_neighbors(d) {
                let tc = self.base.code_of(t);
                if !self.delta.is_some_and(|dl| dl.is_removed(s, tc)) {
                    out.push((s, tc));
                }
            }
        }
        if let Some(d) = self.delta {
            out.extend(d.added_pairs());
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 → 1 → 2 → 3 with codes 10·(i+1).
    fn chain() -> CsrIndex {
        CsrIndex::build([10, 20, 30, 40], &[(10, 20), (20, 30), (30, 40)]).unwrap()
    }

    #[test]
    fn neighbors_and_mapping() {
        let idx = chain();
        assert_eq!(idx.node_count(), 4);
        assert_eq!(idx.edge_count(), 3);
        let d10 = idx.dense_of(10).unwrap();
        let d20 = idx.dense_of(20).unwrap();
        assert_eq!(idx.out_neighbors(d10), &[d20]);
        assert_eq!(idx.in_neighbors(d10), &[] as &[u32]);
        assert_eq!(idx.in_neighbors(d20), &[d10]);
        assert_eq!(idx.code_of(d20), 20);
        assert_eq!(idx.dense_of(99), None);
        assert!(idx.has_pair(10, 20));
        assert!(!idx.has_pair(20, 10));
        assert!(!idx.has_pair(10, 99));
    }

    #[test]
    fn node_universe_exhaustion_is_a_typed_error() {
        // Four distinct nodes under a limit of 3: the PR 4 parity fix
        // for the old `expect("node universe outgrew u32")` panic.
        let err = CsrIndex::build_with_limit([1, 2, 3, 4], &[], 3).unwrap_err();
        assert!(matches!(err, StoreError::NodeUniverseFull { limit: 3 }));
        // Duplicates don't count against the limit.
        assert!(CsrIndex::build_with_limit([1, 1, 2, 2, 3, 3], &[], 3).is_ok());
    }

    #[test]
    fn all_pairs_on_chain_and_cycle() {
        let idx = chain();
        assert_eq!(idx.all_pairs_reach().len(), 6); // 3 + 2 + 1
        let cycle = CsrIndex::build([1, 2, 3], &[(1, 2), (2, 3), (3, 1)]).unwrap();
        assert_eq!(cycle.all_pairs_reach().len(), 9);
    }

    #[test]
    fn self_loops_and_parallel_endpoint_pairs() {
        // A self loop reaches itself; duplicated endpoint pairs
        // collapse in the reachability answer.
        let idx = CsrIndex::build([1, 2], &[(1, 1), (1, 2), (1, 2)]).unwrap();
        assert_eq!(idx.edge_count(), 2);
        let pairs = idx.all_pairs_reach();
        let d1 = idx.dense_of(1).unwrap();
        let d2 = idx.dense_of(2).unwrap();
        assert!(pairs.contains(&(d1, d1)));
        assert!(pairs.contains(&(d1, d2)));
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    fn reach_from_includes_seeds() {
        let idx = chain();
        let d20 = idx.dense_of(20).unwrap();
        let got = idx.reach_from([d20]);
        assert_eq!(got.len(), 3); // 20, 30, 40
        assert!(got.contains(&d20));
        let empty = CsrIndex::build([], &[]).unwrap();
        assert!(empty.reach_from([]).is_empty());
        assert!(empty.all_pairs_reach().is_empty());
    }

    #[test]
    fn delta_overlay_add_remove_invariants() {
        let idx = chain();
        let mut d = DeltaAdjacency::new();
        assert!(d.is_empty());
        // Remove a frozen edge, add a novel one, add one to a novel node.
        d.remove(10, 20, idx.has_pair(10, 20));
        d.add(40, 10, idx.has_pair(40, 10));
        d.add(99, 10, idx.has_pair(99, 10));
        assert_eq!(d.change_count(), 3);
        let view = AdjacencyView::new(&idx, Some(&d));
        assert!(view.has_delta());
        assert_eq!(view.edge_count(), 4); // 3 − 1 + 2
        assert!(!view.has_pair(10, 20));
        assert!(view.has_pair(40, 10));
        assert!(view.has_pair(99, 10));
        assert!(view.has_pair(20, 30));
        // Neighbor enumeration merges base and overlay.
        let mut out = Vec::new();
        view.for_each_out(40, |t| out.push(t));
        assert_eq!(out, vec![10]);
        let mut ins = Vec::new();
        view.for_each_in(10, |s| ins.push(s));
        ins.sort_unstable();
        assert_eq!(ins, vec![40, 99]);
        // Re-adding the removed base pair cancels the removal; removing
        // an added pair retracts it.
        d.add(10, 20, idx.has_pair(10, 20));
        d.remove(99, 10, idx.has_pair(99, 10));
        assert_eq!(d.change_count(), 1);
        let view = AdjacencyView::new(&idx, Some(&d));
        assert!(view.has_pair(10, 20));
        assert!(!view.has_pair(99, 10));
    }

    #[test]
    fn view_reach_matches_rebuilt_index() {
        let idx = chain();
        let mut d = DeltaAdjacency::new();
        d.remove(30, 40, true); // cut the chain
        d.add(40, 10, false); // new back edge
        d.add(77, 40, false); // dangling new node into the chain
        let view = AdjacencyView::new(&idx, Some(&d));
        let rebuilt = CsrIndex::build([10, 20, 30, 40, 77], &view.effective_pairs()).unwrap();
        let fresh = AdjacencyView::new(&rebuilt, None);
        assert!(!fresh.has_delta());
        for seed in [10u32, 20, 30, 40, 77, 999] {
            let mut a = view.reach_from([seed]);
            let mut b = fresh.reach_from([seed]);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "seed {seed}");
        }
        assert_eq!(view.edge_count(), rebuilt.edge_count());
        // The stray seed reaches only itself in both.
        assert_eq!(view.reach_from([999]), vec![999]);
    }

    #[test]
    fn from_dense_pairs_matches_build() {
        // Contiguous codes: the arithmetic dense map kicks in.
        let via_build = CsrIndex::build([5, 6, 7, 8], &[(5, 6), (6, 7), (7, 8), (5, 6)]).unwrap();
        let via_dense =
            CsrIndex::from_dense_pairs(vec![5, 6, 7, 8], vec![(0, 1), (1, 2), (2, 3), (0, 1)])
                .unwrap();
        assert_eq!(via_build.edge_count(), via_dense.edge_count());
        for c in [5u32, 6, 7, 8, 9] {
            assert_eq!(via_build.dense_of(c), via_dense.dense_of(c), "code {c}");
        }
        for seed in [5u32, 6, 7, 8] {
            let d = via_dense.dense_of(seed).unwrap();
            assert_eq!(via_build.reach_from([d]), via_dense.reach_from([d]));
        }
        // Non-contiguous codes fall back to the hashed map and still
        // answer identically.
        let gap = CsrIndex::from_dense_pairs(vec![10, 12, 14], vec![(0, 1), (1, 2)]).unwrap();
        assert_eq!(gap.dense_of(12), Some(1));
        assert_eq!(gap.dense_of(11), None);
        assert!(gap.resident_bytes() > 0);
    }

    #[test]
    fn scratch_sweeps_match_and_stop_allocating() {
        let idx = chain();
        let mut scratch = ReachScratch::new();
        let mut out = Vec::new();
        for _ in 0..50 {
            for seed in [10u32, 20, 30, 40] {
                let d = idx.dense_of(seed).unwrap();
                idx.reach_from_into([d], &mut scratch, &mut out);
                let mut got = out.clone();
                let mut want = idx.reach_from([d]);
                got.sort_unstable();
                want.sort_unstable();
                assert_eq!(got, want, "seed {seed}");
            }
        }
        // One visited-array growth total, not one per sweep: the
        // allocation-churn invariant of PR 9.
        assert_eq!(scratch.allocation_count(), 1);
        // The overlay path reuses the same scratch.
        let mut delta = DeltaAdjacency::new();
        delta.add(40, 10, false);
        let view = AdjacencyView::new(&idx, Some(&delta));
        let before = scratch.allocation_count();
        for _ in 0..50 {
            view.reach_from_into([10u32], &mut scratch, &mut out);
            assert_eq!(out.len(), 4);
        }
        assert_eq!(scratch.allocation_count(), before);
    }

    #[test]
    fn empty_overlay_normalizes_away() {
        let idx = chain();
        let d = DeltaAdjacency::new();
        let view = AdjacencyView::new(&idx, Some(&d));
        assert!(!view.has_delta());
        assert_eq!(view.edge_count(), 3);
        // Dedup of stray seeds on the dense fast path.
        let got = view.reach_from([99, 99, 10]);
        assert_eq!(got.iter().filter(|&&c| c == 99).count(), 1);
        assert!(got.contains(&40));
    }
}
