//! Zero-materialization bulk ingestion (PR 9).
//!
//! The register route — build a [`Database`] of `BTreeSet` relations,
//! [`crate::Store::register_database`], then
//! [`crate::Store::register_view_graph`] — materializes every row as a
//! [`Tuple`] of cloned [`Value`]s at least twice before a single code
//! is minted, and re-validates the `pgView` conditions the generator
//! already guarantees. At 10⁶ nodes / 10⁷ edges that intermediate
//! materialization dominates the load. [`Store::bulk_load`] goes
//! straight from generator output ([`BulkGraph`]: flat value vectors
//! plus index-typed edge endpoints) to the store's physical layout:
//!
//! * **one** atomic [`crate::Dictionary::bulk_intern_refs`] pass over
//!   every value stream (morsel-parallel probe, pre-sized append — no
//!   re-hash storms, nothing minted on a limit failure);
//! * columnar relations assembled column-by-column from code slices
//!   ([`crate::ColumnarRelation::from_codes`]), with row/end indexes
//!   **deferred** — the first post-load row-level writer builds them;
//! * forward/reverse CSR built sort-based from pair vectors
//!   ([`crate::CsrIndex::from_dense_pairs`]); the graph-level indexes
//!   reuse the generator's dense node indexes outright, so the node
//!   universe is contiguous and the id map costs zero bytes;
//! * the reserved active-domain relation derived from the interned
//!   codes (sorted by value, like a fresh registration) instead of a
//!   live-row sweep.
//!
//! Equivalence with the register route — same query answers at thread
//! counts {1, 2, 8}, coded and decoded — is held by the differential
//! suite (`tests/prop_store.rs`); the speedup curve is experiment
//! `BENCH_9.json`.

use crate::column::ColumnarRelation;
use crate::csr::CsrIndex;
use crate::store::{CsrWithDelta, GraphEntry, GraphForm, MemoryBytes, Store, StoreError, ADOM_REL};
use pgq_relational::{Database, RelName, Relation};
use pgq_value::{Tuple, Value};
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

/// A property graph in generator layout: flat identifier vectors and
/// index-typed structure, the input of [`Store::bulk_load`]. Edge
/// endpoints, labels and properties refer to nodes/edges **by position**
/// in [`BulkGraph::nodes`] / [`BulkGraph::edges`] — the generator's
/// dense ids double as the store's CSR node universe, so no
/// re-densification happens at load time.
///
/// Invariants (the well-formedness `pgView` would otherwise validate;
/// generators satisfy them by construction, and [`Store::bulk_load`]
/// checks the cheap ones):
///
/// * node identifiers are pairwise distinct, edge identifiers are
///   pairwise distinct, and the two id spaces are disjoint;
/// * every index in [`BulkGraph::src`] / [`BulkGraph::tgt`] /
///   [`BulkGraph::labels`] / property owners is in range;
/// * label and property rows are set-unique (no duplicate
///   `(edge, label)` or `(owner, key, value)` entries).
#[derive(Debug, Clone, Default)]
pub struct BulkGraph {
    /// Node identifiers; position = dense node id.
    pub nodes: Vec<Value>,
    /// Edge identifiers; position = edge index.
    pub edges: Vec<Value>,
    /// Per-edge source node index (`src.len() == edges.len()`).
    pub src: Vec<u32>,
    /// Per-edge target node index (`tgt.len() == edges.len()`).
    pub tgt: Vec<u32>,
    /// `(edge index, label)` rows.
    pub labels: Vec<(u32, Value)>,
    /// `(node index, key, value)` property rows.
    pub node_props: Vec<(u32, Value, Value)>,
    /// `(edge index, key, value)` property rows.
    pub edge_props: Vec<(u32, Value, Value)>,
}

impl BulkGraph {
    /// An empty graph.
    pub fn new() -> Self {
        BulkGraph::default()
    }

    /// Appends a node, returning its dense index.
    pub fn add_node(&mut self, id: impl Into<Value>) -> u32 {
        self.nodes.push(id.into());
        (self.nodes.len() - 1) as u32
    }

    /// Appends an edge between node indexes, returning its edge index.
    pub fn add_edge(&mut self, id: impl Into<Value>, src: u32, tgt: u32) -> u32 {
        self.edges.push(id.into());
        self.src.push(src);
        self.tgt.push(tgt);
        (self.edges.len() - 1) as u32
    }

    /// Total row count across the six canonical relations.
    pub fn row_count(&self) -> usize {
        self.nodes.len()
            + 3 * self.edges.len()
            + self.labels.len()
            + self.node_props.len()
            + self.edge_props.len()
    }

    /// The same graph as a canonical six-relation [`Database`] under
    /// the given view names — the **register route** the differential
    /// suite and the scaling benches compare [`Store::bulk_load`]
    /// against. Deliberately materializes every row.
    pub fn to_database(&self, views: &[RelName; 6]) -> Database {
        let mut db = Database::new();
        for (name, arity) in views.iter().zip([1, 1, 2, 2, 2, 3]) {
            db.add_relation(name.clone(), Relation::empty(arity));
        }
        for n in &self.nodes {
            db.insert(views[0].clone(), Tuple::unary(n.clone()))
                .unwrap();
        }
        for (i, e) in self.edges.iter().enumerate() {
            db.insert(views[1].clone(), Tuple::unary(e.clone()))
                .unwrap();
            let s = self.nodes[self.src[i] as usize].clone();
            let t = self.nodes[self.tgt[i] as usize].clone();
            db.insert(views[2].clone(), Tuple::new(vec![e.clone(), s]))
                .unwrap();
            db.insert(views[3].clone(), Tuple::new(vec![e.clone(), t]))
                .unwrap();
        }
        for (e, l) in &self.labels {
            let e = self.edges[*e as usize].clone();
            db.insert(views[4].clone(), Tuple::new(vec![e, l.clone()]))
                .unwrap();
        }
        for (n, k, v) in &self.node_props {
            let n = self.nodes[*n as usize].clone();
            db.insert(views[5].clone(), Tuple::new(vec![n, k.clone(), v.clone()]))
                .unwrap();
        }
        for (e, k, v) in &self.edge_props {
            let e = self.edges[*e as usize].clone();
            db.insert(views[5].clone(), Tuple::new(vec![e, k.clone(), v.clone()]))
                .unwrap();
        }
        db
    }

    /// Structural validation: index vectors sized and in range. The
    /// distinctness invariants are checked against interned codes in
    /// [`Store::bulk_load`] (codes make it O(n) hashes of `u32`s, not
    /// values).
    ///
    /// # Panics
    ///
    /// On a malformed graph — out-of-range indexes are generator bugs,
    /// not data-dependent conditions.
    fn check_shape(&self) {
        let n = self.nodes.len() as u64;
        let m = self.edges.len() as u64;
        assert_eq!(self.src.len(), self.edges.len(), "src per edge");
        assert_eq!(self.tgt.len(), self.edges.len(), "tgt per edge");
        assert!(
            self.src.iter().chain(&self.tgt).all(|&i| (i as u64) < n),
            "edge endpoint index out of range"
        );
        assert!(
            self.labels.iter().all(|&(e, _)| (e as u64) < m),
            "label edge index out of range"
        );
        assert!(
            self.node_props.iter().all(|&(i, _, _)| (i as u64) < n),
            "node property index out of range"
        );
        assert!(
            self.edge_props.iter().all(|&(e, _, _)| (e as u64) < m),
            "edge property index out of range"
        );
    }
}

/// What one [`Store::bulk_load`] did — the numbers the scaling benches
/// record next to their timings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BulkLoadStats {
    /// Nodes loaded.
    pub nodes: usize,
    /// Edges loaded.
    pub edges: usize,
    /// Rows across the six relations (the reserved active-domain
    /// relation excluded).
    pub rows: usize,
    /// Fresh dictionary codes this load minted.
    pub codes_minted: usize,
    /// Distinct values referenced by the load (the active-domain size).
    pub distinct_values: usize,
    /// Estimated post-load resident bytes by component.
    pub bytes: MemoryBytes,
}

impl Store {
    /// Bulk-loads `g` as the store's catalog: the six canonical
    /// relations under `views` (columnar, CSR-indexed where binary),
    /// the reserved [`ADOM_REL`] relation, and a frozen graph entry
    /// under `graph_name` — equivalent to registering
    /// [`BulkGraph::to_database`] via [`Store::register_database`] +
    /// [`Store::register_view_graph`], but built **directly** from the
    /// generator layout with no intermediate row materialization and no
    /// re-validation of invariants the generator guarantees (see
    /// [`BulkGraph`]; like `register_database`, previously registered
    /// relations and graphs are replaced, while the append-only
    /// dictionary is retained).
    ///
    /// `threads` bounds the workers of the morsel-parallel interning
    /// probe; `1` loads fully sequentially.
    ///
    /// # Errors
    ///
    /// [`StoreError::NodeUniverseFull`] when the node count exceeds the
    /// dense-id space and [`StoreError::DictionaryFull`] when the
    /// distinct values would exceed the dictionary limit — both
    /// **atomic**: checked (or enforced by the all-or-nothing intern
    /// pass) before any store structure changes, so a failed load
    /// leaves the store exactly as it was.
    ///
    /// # Panics
    ///
    /// On a structurally malformed `g` (out-of-range indexes,
    /// duplicate identifiers) — generator bugs, not data-dependent
    /// conditions.
    pub fn bulk_load(
        &mut self,
        graph_name: impl Into<String>,
        views: [RelName; 6],
        form: GraphForm,
        g: &BulkGraph,
        threads: usize,
    ) -> Result<BulkLoadStats, StoreError> {
        self.bulk_load_bounded(graph_name, views, form, g, threads, CsrIndex::MAX_NODES)
    }

    /// [`Store::bulk_load`] with an explicit node-universe ceiling, so
    /// the boundary tests exercise [`StoreError::NodeUniverseFull`]
    /// without 2³² nodes.
    fn bulk_load_bounded(
        &mut self,
        graph_name: impl Into<String>,
        views: [RelName; 6],
        form: GraphForm,
        g: &BulkGraph,
        threads: usize,
        node_limit: usize,
    ) -> Result<BulkLoadStats, StoreError> {
        g.check_shape();
        self.stats_cache.invalidate();
        let (n, m) = (g.nodes.len(), g.edges.len());
        // Fail before touching anything: atomicity by ordering.
        if n > node_limit {
            return Err(StoreError::NodeUniverseFull { limit: node_limit });
        }
        // ---- Intern every value stream in one atomic pass. ----------
        let mut stream: Vec<&Value> = Vec::with_capacity(
            n + m + g.labels.len() + 2 * (g.node_props.len() + g.edge_props.len()),
        );
        stream.extend(g.nodes.iter());
        stream.extend(g.edges.iter());
        stream.extend(g.labels.iter().map(|(_, l)| l));
        for (_, k, v) in &g.node_props {
            stream.push(k);
            stream.push(v);
        }
        for (_, k, v) in &g.edge_props {
            stream.push(k);
            stream.push(v);
        }
        let before = self.dict.len();
        let codes = Arc::make_mut(&mut self.dict).bulk_intern_refs(&stream, threads)?;
        drop(stream);
        let node_codes = &codes[..n];
        let edge_codes = &codes[n..n + m];
        let label_codes = &codes[n + m..n + m + g.labels.len()];
        let prop_codes = &codes[n + m + g.labels.len()..];
        // Distinctness invariants, now O(1)-hash cheap on codes: the
        // dictionary is injective, so distinct codes ⇔ distinct values.
        {
            let mut seen: HashSet<u32> = HashSet::with_capacity(n + m);
            assert!(
                node_codes.iter().chain(edge_codes).all(|&c| seen.insert(c)),
                "bulk graph identifiers must be distinct (nodes ∪ edges)"
            );
        }
        // ---- Columnar relations (indexes deferred off the load path).
        let n_col = ColumnarRelation::from_codes(1, vec![node_codes.to_vec()]);
        let e_col = ColumnarRelation::from_codes(1, vec![edge_codes.to_vec()]);
        let src_codes: Vec<u32> = g.src.iter().map(|&i| node_codes[i as usize]).collect();
        let tgt_codes: Vec<u32> = g.tgt.iter().map(|&i| node_codes[i as usize]).collect();
        let s_col = ColumnarRelation::from_codes(2, vec![edge_codes.to_vec(), src_codes.clone()]);
        let t_col = ColumnarRelation::from_codes(2, vec![edge_codes.to_vec(), tgt_codes.clone()]);
        let l_edge: Vec<u32> = g
            .labels
            .iter()
            .map(|&(e, _)| edge_codes[e as usize])
            .collect();
        let l_col = ColumnarRelation::from_codes(2, vec![l_edge.clone(), label_codes.to_vec()]);
        let mut p_owner = Vec::with_capacity(g.node_props.len() + g.edge_props.len());
        let mut p_key = Vec::with_capacity(p_owner.capacity());
        let mut p_val = Vec::with_capacity(p_owner.capacity());
        let mut pc = prop_codes.iter();
        for (i, _, _) in &g.node_props {
            p_owner.push(node_codes[*i as usize]);
            p_key.push(*pc.next().expect("two codes per property"));
            p_val.push(*pc.next().expect("two codes per property"));
        }
        for (e, _, _) in &g.edge_props {
            p_owner.push(edge_codes[*e as usize]);
            p_key.push(*pc.next().expect("two codes per property"));
            p_val.push(*pc.next().expect("two codes per property"));
        }
        let p_col = ColumnarRelation::from_codes(3, vec![p_owner, p_key, p_val]);
        // ---- Relation-level CSR for the binary relations. -----------
        let rel_csr = |left: &[u32], right: &[u32]| -> Result<CsrIndex, StoreError> {
            let pairs: Vec<(u32, u32)> = left.iter().copied().zip(right.iter().copied()).collect();
            let universe = pairs.iter().flat_map(|&(a, b)| [a, b]);
            CsrIndex::build(universe, &pairs)
        };
        let s_csr = rel_csr(edge_codes, &src_codes)?;
        let t_csr = rel_csr(edge_codes, &tgt_codes)?;
        let l_csr = rel_csr(&l_edge, label_codes)?;
        // ---- Graph entry: the generator's indexes ARE the dense ids.
        let dense: Vec<u32> = (0..n as u32).collect();
        let pairs: Vec<(u32, u32)> = g.src.iter().copied().zip(g.tgt.iter().copied()).collect();
        let node_csr = CsrIndex::from_dense_pairs(dense.clone(), pairs)?;
        let mut by_label: BTreeMap<Value, Vec<(u32, u32)>> = BTreeMap::new();
        for (e, l) in &g.labels {
            by_label
                .entry(l.clone())
                .or_default()
                .push((g.src[*e as usize], g.tgt[*e as usize]));
        }
        let mut label_csrs: BTreeMap<Value, Arc<CsrIndex>> = BTreeMap::new();
        for (l, ps) in by_label {
            label_csrs.insert(l, Arc::new(CsrIndex::from_dense_pairs(dense.clone(), ps)?));
        }
        let ids: Vec<Tuple> = g.nodes.iter().map(|v| Tuple::unary(v.clone())).collect();
        let entry = GraphEntry::from_parts(
            form,
            Some(views.clone()),
            1,
            ids,
            Arc::new(node_csr),
            label_csrs,
            m,
        );
        // ---- Active domain from the interned codes, in value order. -
        let mut adom: Vec<u32> = codes.clone();
        adom.sort_unstable();
        adom.dedup();
        let distinct = adom.len();
        let dict = Arc::clone(&self.dict);
        adom.sort_by(|&a, &b| dict.value(a).cmp(dict.value(b)));
        let adom_col = ColumnarRelation::unary_from_codes(adom);
        // ---- Commit: everything built, nothing left that can fail. --
        let [nn, en, sn, tn, ln, pn] = views.clone();
        self.relations.clear();
        self.adjacency.clear();
        self.graphs.clear();
        self.view_specs.clear();
        self.adom_dirty = false;
        let rows = g.row_count();
        for (name, col) in [
            (nn, n_col),
            (en, e_col),
            (sn.clone(), s_col),
            (tn.clone(), t_col),
            (ln.clone(), l_col),
            (pn, p_col),
            (ADOM_REL.into(), adom_col),
        ] {
            self.relations.insert(name, Arc::new(col));
        }
        for (name, csr) in [(sn, s_csr), (tn, t_csr), (ln, l_csr)] {
            self.adjacency
                .insert(name, CsrWithDelta::frozen(Arc::new(csr)));
        }
        let graph_name = graph_name.into();
        self.view_specs.insert(graph_name.clone(), (views, form));
        self.graphs.insert(graph_name, entry);
        Ok(BulkLoadStats {
            nodes: n,
            edges: m,
            rows,
            codes_minted: self.dict.len() - before,
            distinct_values: distinct,
            bytes: self.memory_bytes(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn views() -> [RelName; 6] {
        ["N", "E", "S", "T", "L", "P"].map(Into::into)
    }

    /// A small two-label graph with node and edge properties.
    fn sample() -> BulkGraph {
        let mut g = BulkGraph::new();
        let a = g.add_node(Value::str("a"));
        let b = g.add_node(Value::str("b"));
        let c = g.add_node(Value::str("c"));
        let e1 = g.add_edge(Value::int(1), a, b);
        let e2 = g.add_edge(Value::int(2), b, c);
        g.labels.push((e1, Value::str("Knows")));
        g.labels.push((e2, Value::str("Likes")));
        g.node_props.push((a, Value::str("age"), Value::int(30)));
        g.edge_props
            .push((e2, Value::str("since"), Value::int(2020)));
        g
    }

    #[test]
    fn bulk_load_matches_the_register_route() {
        let g = sample();
        let mut bulk = Store::new();
        let stats = bulk
            .bulk_load("G", views(), GraphForm::Exact(1), &g, 2)
            .unwrap();
        assert_eq!((stats.nodes, stats.edges), (3, 2));
        assert_eq!(stats.rows, g.row_count());
        assert!(stats.bytes.total() > 0);

        let db = g.to_database(&views());
        let mut reg = Store::from_database(&db);
        reg.register_view_graph("G", views(), &db, GraphForm::Exact(1))
            .unwrap();
        for (name, _) in db.iter() {
            let a = Relation::from_rows(
                bulk.scan(name).unwrap().first().map_or(1, Tuple::arity),
                bulk.scan(name).unwrap(),
            )
            .unwrap();
            let b = Relation::from_rows(
                reg.scan(name).unwrap().first().map_or(1, Tuple::arity),
                reg.scan(name).unwrap(),
            )
            .unwrap();
            assert_eq!(a, b, "{name}");
        }
        let (bg, rg) = (bulk.graph("G").unwrap(), reg.graph("G").unwrap());
        assert_eq!(bg.node_count(), rg.node_count());
        assert_eq!(bg.edge_count(), rg.edge_count());
        assert_eq!(
            bg.reach_relation(true, false),
            rg.reach_relation(true, false)
        );
    }

    #[test]
    fn bulk_load_node_limit_is_atomic() {
        let g = sample();
        let mut s = Store::new();
        let before = s.dict().len();
        assert!(matches!(
            s.bulk_load_bounded("G", views(), GraphForm::Exact(1), &g, 1, 2),
            Err(StoreError::NodeUniverseFull { limit: 2 })
        ));
        assert_eq!(s.dict().len(), before);
        assert!(s.scan(&"N".into()).is_none());
        assert!(s.graph("G").is_none());
    }

    #[test]
    fn bulk_load_dict_limit_is_atomic() {
        let g = sample();
        let mut s = Store::with_dict_limit(3);
        assert!(matches!(
            s.bulk_load("G", views(), GraphForm::Exact(1), &g, 2),
            Err(StoreError::DictionaryFull { limit: 3 })
        ));
        assert_eq!(s.dict().len(), 0);
        assert!(s.scan(&"N".into()).is_none());
        // The same graph loads fine with room to mint.
        let mut ok = Store::with_dict_limit(64);
        ok.bulk_load("G", views(), GraphForm::Exact(1), &g, 2)
            .unwrap();
        assert_eq!(ok.graph("G").unwrap().node_count(), 3);
    }

    #[test]
    fn loaded_relations_accept_row_writers() {
        // The deferred indexes must not break the row-level write path:
        // the first writer builds them and probes stay correct.
        let g = sample();
        let mut s = Store::new();
        s.bulk_load("G", views(), GraphForm::Exact(1), &g, 1)
            .unwrap();
        let n: RelName = "N".into();
        assert!(s
            .insert_row(n.clone(), &Tuple::unary(Value::str("d")))
            .unwrap());
        assert!(!s
            .insert_row(n.clone(), &Tuple::unary(Value::str("a")))
            .unwrap());
        assert!(s.delete_row(&n, &Tuple::unary(Value::str("d"))).unwrap());
        assert_eq!(s.scan(&n).unwrap().len(), 3);
    }
}
