//! Store-derived statistics for the cost-based planner (PR 10,
//! ROADMAP item 5; DESIGN.md §5).
//!
//! A [`StoreStatistics`] snapshot summarizes what the store already
//! knows about its data — per-column distinct counts (from the coded
//! columns), per-relation live/tombstone row counts, CSR forward and
//! reverse degree histograms (min / mean / p99 / max, per binary
//! relation, per graph, and per edge label), and overlay sizes — in
//! exactly the shape `pgq-exec`'s cardinality estimator consumes.
//!
//! Statistics are **lazy and cached**: `Store::statistics` computes
//! them on first use and caches the `Arc` on the store's COW state;
//! every mutation (`register_relation`, `insert_row` / `delete_row`,
//! `apply_update(s)`, `compact`, `bulk_load`, graph registration)
//! invalidates the cache by swapping in a fresh slot and bumping the
//! epoch. Because the cache slot is `Arc`-shared the same way the
//! columns and CSR bases are, a pinned `StoreSnapshot` keeps the
//! statistics consistent with the data it pins: a concurrent writer
//! publishing a new state never mutates a reader's cached statistics —
//! it computes its own against its own state.

use crate::column::ColumnarRelation;
use crate::csr::CsrIndex;
use pgq_relational::RelName;
use std::collections::BTreeMap;
use std::fmt;

/// Summary of a degree distribution (one direction of one CSR index).
///
/// `mean` is exact; `p99` is the degree at the 99th percentile of the
/// node population (ties resolved upward), so `min ≤ p99 ≤ max`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DegreeHistogram {
    /// Nodes in the index's dense universe.
    pub nodes: usize,
    /// Total adjacency entries (distinct pairs).
    pub edges: usize,
    /// Smallest per-node degree.
    pub min: usize,
    /// Largest per-node degree.
    pub max: usize,
    /// Mean per-node degree (`edges / nodes`; 0 for an empty universe).
    pub mean: f64,
    /// 99th-percentile per-node degree.
    pub p99: usize,
}

impl DegreeHistogram {
    /// Summarizes one direction of a CSR index.
    pub fn from_degrees(degrees: impl Iterator<Item = usize>) -> Self {
        let mut ds: Vec<usize> = degrees.collect();
        if ds.is_empty() {
            return DegreeHistogram::default();
        }
        ds.sort_unstable();
        let nodes = ds.len();
        let edges: usize = ds.iter().sum();
        DegreeHistogram {
            nodes,
            edges,
            min: ds[0],
            max: ds[nodes - 1],
            mean: edges as f64 / nodes as f64,
            p99: ds[((nodes * 99) / 100).min(nodes - 1)],
        }
    }

    /// Forward (out-degree) summary of a CSR index.
    pub fn forward(csr: &CsrIndex) -> Self {
        Self::from_degrees((0..csr.node_count() as u32).map(|d| csr.out_neighbors(d).len()))
    }

    /// Reverse (in-degree) summary of a CSR index.
    pub fn reverse(csr: &CsrIndex) -> Self {
        Self::from_degrees((0..csr.node_count() as u32).map(|d| csr.in_neighbors(d).len()))
    }
}

impl fmt::Display for DegreeHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "min {} / mean {:.2} / p99 {} / max {}",
            self.min, self.mean, self.p99, self.max
        )
    }
}

/// Statistics for one registered relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationStatistics {
    /// Attribute count.
    pub arity: usize,
    /// Live rows (tombstones excluded).
    pub live_rows: usize,
    /// Tombstoned rows still resident.
    pub tombstone_rows: usize,
    /// Distinct live values per column, in position order.
    pub distinct: Vec<usize>,
}

impl RelationStatistics {
    /// Distinct live values in one column (`live_rows` for positions
    /// out of range, the conservative estimate).
    pub fn distinct_at(&self, position: usize) -> usize {
        self.distinct
            .get(position)
            .copied()
            .unwrap_or(self.live_rows)
    }

    fn from_column(col: &ColumnarRelation) -> Self {
        let mut distinct = Vec::with_capacity(col.arity());
        for pos in 0..col.arity() {
            let column = col.column(pos);
            let mut codes: Vec<u32> = col.live_rows().map(|i| column[i]).collect();
            codes.sort_unstable();
            codes.dedup();
            distinct.push(codes.len());
        }
        RelationStatistics {
            arity: col.arity(),
            live_rows: col.len(),
            tombstone_rows: col.tombstones(),
            distinct,
        }
    }
}

/// Both directions of one adjacency index, plus its overlay residency.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AdjacencyStatistics {
    /// Out-degree summary of the frozen base CSR.
    pub forward: DegreeHistogram,
    /// In-degree summary of the frozen base CSR.
    pub reverse: DegreeHistogram,
    /// Overlay entries not reflected in the histograms (delta pairs;
    /// for graphs additionally appended/tombstoned nodes).
    pub overlay: usize,
}

impl AdjacencyStatistics {
    /// Summarizes one CSR base and its overlay size.
    pub fn of(csr: &CsrIndex, overlay: usize) -> Self {
        AdjacencyStatistics {
            forward: DegreeHistogram::forward(csr),
            reverse: DegreeHistogram::reverse(csr),
            overlay,
        }
    }
}

/// Statistics for one frozen graph entry: the node-level adjacency
/// plus one [`AdjacencyStatistics`] per edge label.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GraphStatistics {
    /// Node-level adjacency (parallel edges collapsed).
    pub adjacency: AdjacencyStatistics,
    /// Per-label adjacency in label order (labels rendered bare).
    pub labels: Vec<(String, AdjacencyStatistics)>,
}

/// One lazily-computed, cached statistics snapshot of a [`crate::Store`].
///
/// Obtained through `Store::statistics`; see the module docs for the
/// caching and invalidation contract.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StoreStatistics {
    /// Invalidation epoch this snapshot was computed at (bumped by
    /// every store mutation — the staleness tests count on it).
    pub epoch: u64,
    /// Codes minted in the dictionary.
    pub dictionary_codes: usize,
    /// Per-relation statistics, in name order.
    pub relations: BTreeMap<RelName, RelationStatistics>,
    /// Per-binary-relation adjacency statistics, in name order.
    pub adjacency: BTreeMap<RelName, AdjacencyStatistics>,
    /// Per-graph statistics, in name order.
    pub graphs: BTreeMap<String, GraphStatistics>,
}

impl StoreStatistics {
    /// Computes a snapshot from the store's current state. Library
    /// callers want `Store::statistics` (lazy + cached) instead.
    pub fn compute(store: &crate::Store, epoch: u64) -> Self {
        let relations = store
            .relations
            .iter()
            .map(|(name, col)| (name.clone(), RelationStatistics::from_column(col)))
            .collect();
        let adjacency = store
            .adjacency
            .iter()
            .map(|(name, e)| {
                (
                    name.clone(),
                    AdjacencyStatistics::of(&e.csr, e.delta.change_count()),
                )
            })
            .collect();
        let graphs = store
            .graphs
            .iter()
            .map(|(name, e)| (name.clone(), e.statistics()))
            .collect();
        StoreStatistics {
            epoch,
            dictionary_codes: store.dict().len(),
            relations,
            adjacency,
            graphs,
        }
    }

    /// Live rows of a relation, when registered.
    pub fn live_rows(&self, name: &RelName) -> Option<usize> {
        self.relations.get(name).map(|r| r.live_rows)
    }

    /// Distinct live values in a relation column, when registered.
    pub fn distinct(&self, name: &RelName, position: usize) -> Option<usize> {
        self.relations.get(name).map(|r| r.distinct_at(position))
    }

    /// Expected out- (or, `reverse`, in-) degree of a binary relation's
    /// adjacency index, when one exists.
    pub fn expected_degree(&self, name: &RelName, reverse: bool) -> Option<f64> {
        self.adjacency.get(name).map(|a| {
            if reverse {
                a.reverse.mean
            } else {
                a.forward.mean
            }
        })
    }
}

impl fmt::Display for StoreStatistics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "statistics (epoch {}): {} dictionary code(s)",
            self.epoch, self.dictionary_codes
        )?;
        for (name, r) in &self.relations {
            let distinct: Vec<String> = r.distinct.iter().map(usize::to_string).collect();
            write!(
                f,
                "relation {name}: {} live row(s), distinct [{}]",
                r.live_rows,
                distinct.join(", ")
            )?;
            if r.tombstone_rows > 0 {
                write!(f, ", {} tombstone(s)", r.tombstone_rows)?;
            }
            writeln!(f)?;
        }
        for (name, a) in &self.adjacency {
            writeln!(
                f,
                "adjacency {name}: out {} | in {}{}",
                a.forward,
                a.reverse,
                if a.overlay > 0 {
                    format!(" (+{} overlay)", a.overlay)
                } else {
                    String::new()
                }
            )?;
        }
        for (name, g) in &self.graphs {
            writeln!(
                f,
                "graph {name}: out {} | in {}{}",
                g.adjacency.forward,
                g.adjacency.reverse,
                if g.adjacency.overlay > 0 {
                    format!(" (+{} overlay)", g.adjacency.overlay)
                } else {
                    String::new()
                }
            )?;
            for (label, a) in &g.labels {
                writeln!(f, "  label {label}: out {} | in {}", a.forward, a.reverse)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_summarizes_degree_vectors() {
        let h = DegreeHistogram::from_degrees([0usize, 1, 1, 2, 10].into_iter());
        assert_eq!((h.nodes, h.edges), (5, 14));
        assert_eq!((h.min, h.max), (0, 10));
        assert!((h.mean - 2.8).abs() < 1e-9);
        assert_eq!(h.p99, 10);
        let empty = DegreeHistogram::from_degrees(std::iter::empty());
        assert_eq!(empty, DegreeHistogram::default());
        assert_eq!(empty.to_string(), "min 0 / mean 0.00 / p99 0 / max 0");
    }

    #[test]
    fn distinct_counts_skip_tombstones() {
        use pgq_relational::Relation;
        use pgq_value::tuple;
        let mut rel = Relation::empty(2);
        for (a, b) in [(1i64, 1i64), (2, 1), (3, 1), (3, 2)] {
            rel.insert(tuple![a, b]).unwrap();
        }
        let mut dict = crate::Dictionary::new();
        let mut col = ColumnarRelation::from_relation(&rel, &mut dict).unwrap();
        let s = RelationStatistics::from_column(&col);
        assert_eq!(s.live_rows, 4);
        assert_eq!(s.distinct, vec![3, 2]);
        assert_eq!(s.distinct_at(5), 4, "out of range falls back to rows");
        // Tombstoning the only row with code pair (1,1) drops both
        // counts the row uniquely contributed.
        col.tombstone(0);
        let s = RelationStatistics::from_column(&col);
        assert_eq!(s.live_rows, 3);
        assert_eq!(s.tombstone_rows, 1);
        assert_eq!(s.distinct, vec![2, 2]);
    }
}
