//! Concurrent snapshot publication over [`Store`] (ARCHITECTURE.md §2
//! step 11; DESIGN.md §5).
//!
//! A [`Store`] is cheap to clone since its bulky immutable pieces (the
//! value dictionary, relation columns, frozen CSR bases) are
//! `Arc`-shared. [`ConcurrentStore`] turns that into multi-version
//! concurrency control with a single-writer / many-reader discipline:
//!
//! 1. **pin** — readers call [`ConcurrentStore::pin`] and get a
//!    [`StoreSnapshot`]: an immutable, `Arc`-shared store state they
//!    evaluate against for as long as they like;
//! 2. **evaluate** — pinned evaluation never takes the writer lock, so
//!    readers proceed while a writer batch is in flight;
//! 3. **publish** — [`ConcurrentStore::write`] serializes writers on a
//!    mutex, applies the whole batch to a private working copy, and —
//!    only if the batch succeeds — atomically swaps the published
//!    snapshot. A failed batch publishes *nothing* (batch atomicity;
//!    deliberately stricter than the single-session
//!    [`Store::apply_updates`] applied-prefix contract, so concurrent
//!    readers never observe a half-applied batch);
//! 4. **retire** — old snapshots live until their last reader drops
//!    them; [`ConcurrentStore::compact`] is just a writer batch whose
//!    new snapshot has a rebuilt dictionary, so readers pinned to the
//!    pre-compaction snapshot keep decoding through their own
//!    dictionary, undisturbed by the code remap.

use std::ops::Deref;
use std::sync::{Arc, Mutex, PoisonError, RwLock};

use crate::store::{CompactionStats, Store, StoreError};

/// An immutable, `Arc`-shared [`Store`] state pinned by a reader.
///
/// Dereferences to [`Store`], so every read-side API (`relation`,
/// `graph`, `stats`, the executor's scan/expand routes) works
/// unchanged on a snapshot. Cloning is a reference-count bump.
#[derive(Debug, Clone)]
pub struct StoreSnapshot(Arc<Store>);

impl StoreSnapshot {
    /// Freezes `store` into a snapshot.
    pub fn new(store: Store) -> Self {
        StoreSnapshot(Arc::new(store))
    }

    /// The underlying store state.
    pub fn as_store(&self) -> &Store {
        &self.0
    }

    /// Whether two handles pin the *same* published state (pointer
    /// identity, not structural equality).
    pub fn ptr_eq(a: &StoreSnapshot, b: &StoreSnapshot) -> bool {
        Arc::ptr_eq(&a.0, &b.0)
    }
}

impl Deref for StoreSnapshot {
    type Target = Store;

    fn deref(&self) -> &Store {
        &self.0
    }
}

impl From<Store> for StoreSnapshot {
    fn from(store: Store) -> Self {
        StoreSnapshot::new(store)
    }
}

/// A [`Store`] promoted to concurrent use: a single serialized writer
/// and any number of readers pinned to published [`StoreSnapshot`]s.
///
/// Lock discipline: `writer` serializes mutation batches and is held
/// across the whole clone → apply → publish cycle; `published` is a
/// read-mostly slot held only for the instant of a pointer swap or
/// clone. Readers never touch `writer`; writers touch `published`
/// once, after the batch committed. Poisoning is survivable by
/// construction — a panicking batch dies with its private working
/// copy, the published snapshot still holds the last committed state —
/// so both locks recover via [`PoisonError::into_inner`] instead of
/// propagating the panic to every future caller.
#[derive(Debug)]
pub struct ConcurrentStore {
    writer: Mutex<Store>,
    published: RwLock<StoreSnapshot>,
}

impl ConcurrentStore {
    /// Wraps an initial store state and publishes it as the first
    /// snapshot.
    pub fn new(store: Store) -> Self {
        ConcurrentStore {
            published: RwLock::new(StoreSnapshot::new(store.clone())),
            writer: Mutex::new(store),
        }
    }

    /// Pins the most recently published snapshot. O(1): a lock-scoped
    /// clone of an `Arc`.
    pub fn pin(&self) -> StoreSnapshot {
        self.published
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Runs a mutation batch under the serialized writer and, **iff it
    /// returns `Ok`**, publishes the post-batch state as a new
    /// snapshot. On `Err` the working copy is rolled back to the last
    /// committed state and nothing is published — readers never see a
    /// partially applied batch.
    pub fn write<T, E>(&self, batch: impl FnOnce(&mut Store) -> Result<T, E>) -> Result<T, E> {
        let mut writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        let committed = writer.clone();
        match batch(&mut writer) {
            Ok(out) => {
                let snapshot = StoreSnapshot::new(writer.clone());
                *self
                    .published
                    .write()
                    .unwrap_or_else(PoisonError::into_inner) = snapshot;
                Ok(out)
            }
            Err(e) => {
                *writer = committed;
                Err(e)
            }
        }
    }

    /// Compaction as a snapshot swap: rebuilds the dictionary and
    /// indexes in the writer's working copy and publishes the result.
    /// Readers pinned to older snapshots keep their own dictionary —
    /// the remap never reaches them.
    pub fn compact(&self) -> Result<CompactionStats, StoreError> {
        self.write(Store::compact)
    }
}

impl From<Store> for ConcurrentStore {
    fn from(store: Store) -> Self {
        ConcurrentStore::new(store)
    }
}

impl Default for ConcurrentStore {
    fn default() -> Self {
        ConcurrentStore::new(Store::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgq_value::Value;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn snapshot_types_are_send_and_sync() {
        assert_send_sync::<StoreSnapshot>();
        assert_send_sync::<ConcurrentStore>();
    }

    #[test]
    fn failed_batch_publishes_nothing_and_rolls_back() {
        let store = ConcurrentStore::default();
        let before = store.pin();
        let out: Result<(), &str> = store.write(|s| {
            s.intern_literal(&Value::from(1i64)).unwrap();
            Err("boom")
        });
        assert_eq!(out, Err("boom"));
        let after = store.pin();
        assert!(StoreSnapshot::ptr_eq(&before, &after));
        // The rollback also reset the writer's working copy: the next
        // committed batch starts from the last published state.
        store
            .write(|s| -> Result<(), StoreError> {
                assert_eq!(s.stats().dictionary_total, 0);
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn pinned_snapshot_survives_later_writes() {
        let store = ConcurrentStore::default();
        let empty = store.pin();
        store
            .write(|s| s.intern_literal(&Value::from("held")).map(|_| ()))
            .unwrap();
        let one = store.pin();
        assert!(!StoreSnapshot::ptr_eq(&empty, &one));
        assert_eq!(empty.stats().dictionary_total, 0);
        assert_eq!(one.stats().dictionary_total, 1);
    }
}
