//! The store-level morsel engine (DESIGN.md §5).
//!
//! PR 6 introduced morsel-driven parallelism inside `pgq-exec`; PR 9
//! moves the generic scheduling core down here so the store's own bulk
//! paths (morsel-parallel dictionary interning, bulk CSR construction)
//! can use the identical engine without a dependency cycle —
//! `pgq-exec` depends on `pgq-store`, not the other way round.
//! `pgq-exec::parallel` re-exports everything in this module, so the
//! executor's call sites are unchanged.
//!
//! The contract is the one PR 6 pinned down: inputs are split into
//! fixed-size **morsels** (or explicit task indices), workers claim
//! them from an atomic counter under `std::thread::scope`, and the
//! scheduler reassembles outputs **in task order** before anything
//! downstream sees them. That deterministic merge keeps parallel
//! execution byte-identical to sequential execution everywhere
//! sequential execution is itself deterministic. Errors cross the
//! scope the same way results do: a worker that hits an error stops
//! claiming tasks and the first error in task order is returned.
//!
//! New in PR 9: the `*_scratch` variants thread one mutable
//! **per-worker scratch value** through every task a worker claims, so
//! hot loops (CSR frontier sweeps, bulk interning) reuse their
//! frontier/visited buffers across tasks instead of allocating fresh
//! `Vec`s per task — the allocation-churn fix the scaling curves
//! demanded ([`crate::ReachScratch`]).

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Rows per morsel — small enough that short pipelines stay balanced,
/// large enough that the per-morsel scheduling cost disappears.
pub const MORSEL_ROWS: usize = 1024;

/// The morsel ranges covering `0..len` (empty for an empty input).
fn morsel_ranges(len: usize) -> Vec<Range<usize>> {
    (0..len.div_ceil(MORSEL_ROWS))
        .map(|i| i * MORSEL_ROWS..((i + 1) * MORSEL_ROWS).min(len))
        .collect()
}

/// Runs `work` over `count` independent task indices on up to
/// `threads` scoped workers and returns the outputs **in task order**
/// — the deterministic merge every parallel operator builds on. Runs
/// inline on the calling thread when one worker (or one task) suffices.
///
/// The first error in task order wins; tasks left unclaimed because
/// every worker stopped on an error are simply dropped (an error is
/// returned in that case by construction, since workers only stop
/// early when they hit one).
pub fn run_tasks<T, E, F>(count: usize, threads: usize, work: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    run_tasks_inner(count, threads, |_| (), |(), i| work(i), None)
}

/// [`run_tasks`], additionally reporting how many tasks each worker
/// slot claimed (the scheduler-utilization half of the metrics layer).
/// The counts describe *scheduling*, not results — they vary run to
/// run and are rendered only in the timing section of a profile.
pub fn run_tasks_traced<T, E, F>(
    count: usize,
    threads: usize,
    work: F,
) -> Result<(Vec<T>, Vec<u64>), E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    let mut claimed: Vec<u64> = Vec::new();
    let out = run_tasks_inner(count, threads, |_| (), |(), i| work(i), Some(&mut claimed))?;
    Ok((out, claimed))
}

/// [`run_tasks`] with one mutable scratch value **per worker**:
/// `init(worker_index)` runs once when a worker starts, and every task
/// that worker claims receives `&mut` access to the same scratch. Use
/// it to hoist per-task buffers (frontiers, visited maps, intern
/// staging) into per-worker state that is allocated once per sweep
/// instead of once per task.
pub fn run_tasks_scratch<T, E, S, I, F>(
    count: usize,
    threads: usize,
    init: I,
    work: F,
) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    I: Fn(usize) -> S + Sync,
    F: Fn(&mut S, usize) -> Result<T, E> + Sync,
{
    run_tasks_inner(count, threads, init, work, None)
}

/// [`run_tasks_scratch`] with the per-worker claim counts of
/// [`run_tasks_traced`].
pub fn run_tasks_scratch_traced<T, E, S, I, F>(
    count: usize,
    threads: usize,
    init: I,
    work: F,
) -> Result<(Vec<T>, Vec<u64>), E>
where
    T: Send,
    E: Send,
    I: Fn(usize) -> S + Sync,
    F: Fn(&mut S, usize) -> Result<T, E> + Sync,
{
    let mut claimed: Vec<u64> = Vec::new();
    let out = run_tasks_inner(count, threads, init, work, Some(&mut claimed))?;
    Ok((out, claimed))
}

fn run_tasks_inner<T, E, S, I, F>(
    count: usize,
    threads: usize,
    init: I,
    work: F,
    claimed: Option<&mut Vec<u64>>,
) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    I: Fn(usize) -> S + Sync,
    F: Fn(&mut S, usize) -> Result<T, E> + Sync,
{
    let threads = threads.min(count).max(1);
    if threads == 1 {
        if let Some(c) = claimed {
            *c = vec![count as u64];
        }
        let mut scratch = init(0);
        return (0..count).map(|i| work(&mut scratch, i)).collect();
    }
    let next = AtomicUsize::new(0);
    let worker = |w: usize| {
        let mut scratch = init(w);
        let mut mine: Vec<(usize, Result<T, E>)> = Vec::new();
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= count {
                break;
            }
            let out = work(&mut scratch, i);
            let failed = out.is_err();
            mine.push((i, out));
            if failed {
                break;
            }
        }
        mine
    };
    let per_worker: Vec<Vec<(usize, Result<T, E>)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads).map(|i| s.spawn(move || worker(i))).collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    if let Some(c) = claimed {
        *c = per_worker.iter().map(|v| v.len() as u64).collect();
    }
    let produced = per_worker.into_iter().flatten();
    let mut slots: Vec<Option<Result<T, E>>> = (0..count).map(|_| None).collect();
    for (i, r) in produced {
        slots[i] = Some(r);
    }
    let mut out = Vec::with_capacity(count);
    for slot in slots {
        match slot {
            Some(Ok(t)) => out.push(t),
            Some(Err(e)) => return Err(e),
            // Unclaimed ⇒ every worker stopped early on some error,
            // which a later (claimed) slot holds.
            None => {}
        }
    }
    Ok(out)
}

/// Splits `0..len` into fixed-size morsels, folds `work` over them on
/// up to `threads` workers, and returns the per-morsel outputs in
/// morsel order.
pub fn run_morsels<T, E, F>(len: usize, threads: usize, work: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(Range<usize>) -> Result<T, E> + Sync,
{
    let morsels = morsel_ranges(len);
    run_tasks(morsels.len(), threads, |i| work(morsels[i].clone()))
}

/// [`run_morsels`], additionally reporting per-worker morsel counts
/// (see [`run_tasks_traced`]).
pub fn run_morsels_traced<T, E, F>(
    len: usize,
    threads: usize,
    work: F,
) -> Result<(Vec<T>, Vec<u64>), E>
where
    T: Send,
    E: Send,
    F: Fn(Range<usize>) -> Result<T, E> + Sync,
{
    let morsels = morsel_ranges(len);
    run_tasks_traced(morsels.len(), threads, |i| work(morsels[i].clone()))
}

/// A deterministic hash of a coded key — FNV-1a over the key codes.
/// Radix partitioning (parallel hash-join builds, partitioned
/// `Distinct`) must not depend on `RandomState`'s per-process seed:
/// partition assignment is part of no observable output, but a fixed
/// function keeps worker loads reproducible run-to-run.
#[inline]
pub fn hash_codes(codes: &[u32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &c in codes {
        h ^= u64::from(c);
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

/// Number of radix partitions for `threads` workers — a power of two
/// a little above the worker count, so one skewed partition cannot
/// serialize the merge.
pub fn partition_count(threads: usize) -> usize {
    threads.max(1).next_power_of_two() * 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tasks_merge_in_order_at_every_thread_count() {
        for threads in [1, 2, 3, 8] {
            let out = run_tasks::<_, (), _>(10, threads, |i| Ok(i * i)).unwrap();
            assert_eq!(out, (0..10).map(|i| i * i).collect::<Vec<_>>());
        }
        assert!(run_tasks::<_, (), _>(0, 4, Ok).unwrap().is_empty());
    }

    #[test]
    fn morsels_cover_the_input_exactly_once() {
        let len = 3 * MORSEL_ROWS + 17;
        for threads in [1, 2, 8] {
            let ranges = run_morsels::<_, (), _>(len, threads, Ok).unwrap();
            let covered: usize = ranges.iter().map(|r| r.len()).sum();
            assert_eq!(covered, len);
            let mut expected_start = 0;
            for r in &ranges {
                assert_eq!(r.start, expected_start);
                expected_start = r.end;
            }
        }
    }

    #[test]
    fn first_error_in_task_order_wins() {
        for threads in [1, 2, 8] {
            let got =
                run_tasks::<_, usize, _>(16, threads, |i| if i % 2 == 1 { Err(i) } else { Ok(i) });
            assert_eq!(got, Err(1), "threads = {threads}");
        }
    }

    #[test]
    fn traced_tasks_report_every_claim_exactly_once() {
        for threads in [1, 2, 8] {
            let (out, claimed) = run_tasks_traced::<_, (), _>(10, threads, |i| Ok(i * i)).unwrap();
            assert_eq!(out, (0..10).map(|i| i * i).collect::<Vec<_>>());
            assert_eq!(claimed.iter().sum::<u64>(), 10, "threads = {threads}");
        }
        let len = 3 * MORSEL_ROWS + 17;
        let (ranges, claimed) = run_morsels_traced::<_, (), _>(len, 4, Ok).unwrap();
        assert_eq!(ranges.iter().map(std::ops::Range::len).sum::<usize>(), len);
        assert_eq!(claimed.iter().sum::<u64>(), 4);
    }

    #[test]
    fn scratch_is_per_worker_and_reused_across_tasks() {
        use std::sync::atomic::AtomicUsize;
        for threads in [1, 2, 8] {
            let inits = AtomicUsize::new(0);
            let out = run_tasks_scratch::<_, (), _, _, _>(
                64,
                threads,
                |_w| {
                    inits.fetch_add(1, Ordering::Relaxed);
                    Vec::<usize>::new()
                },
                |scratch, i| {
                    scratch.push(i);
                    Ok(i)
                },
            )
            .unwrap();
            assert_eq!(out, (0..64).collect::<Vec<_>>());
            // One scratch per worker actually started — never per task.
            assert!(
                inits.load(Ordering::Relaxed) <= threads.min(64),
                "threads = {threads}"
            );
        }
        let (out, claimed) = run_tasks_scratch_traced::<_, (), _, _, _>(
            10,
            4,
            |_| 0usize,
            |s, i| {
                *s += 1;
                Ok(i)
            },
        )
        .unwrap();
        assert_eq!(out, (0..10).collect::<Vec<_>>());
        assert_eq!(claimed.iter().sum::<u64>(), 10);
    }

    #[test]
    fn code_hash_is_deterministic_and_spreads() {
        assert_eq!(hash_codes(&[1, 2, 3]), hash_codes(&[1, 2, 3]));
        assert_ne!(hash_codes(&[1, 2, 3]), hash_codes(&[3, 2, 1]));
        assert!(partition_count(4).is_power_of_two());
        assert!(partition_count(3) >= 3);
    }
}
