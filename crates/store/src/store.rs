//! The session-level storage catalog.
//!
//! A [`Store`] is registered **once per session** — relations become
//! dictionary-coded columns, binary relations additionally get CSR
//! adjacency, and property-graph views are validated by the `pgView`
//! family a single time and frozen as CSR node/edge indexes (overall
//! and per edge label). Queries then run against the frozen layout
//! instead of re-materializing and re-validating base data per call,
//! which is the architectural difference measured by experiment E16.
//!
//! Since PR 5 the store is no longer a frozen snapshot: updates flow
//! **incrementally**. [`Store::insert_row`] / [`Store::delete_row`]
//! append or tombstone single rows, [`Store::apply_update`] /
//! [`Store::apply_updates`] bridge `pgq_graph::updates::Update` — the
//! Section 7 update model — onto a registered view graph, maintaining
//! the columnar relations, the relation-level CSR adjacency (via a
//! [`DeltaAdjacency`] overlay), and the graph's frozen entry without a
//! re-registration. Overlays fold back into fresh CSR indexes past a
//! threshold, and [`Store::compact`] rebuilds the dictionary retaining
//! only live codes (the compaction story PR 4 documented), dropping
//! tombstoned rows and folding every overlay — `STATS` reports the gap
//! so sessions can decide when it pays.

use crate::column::ColumnarRelation;
use crate::csr::{AdjacencyView, CsrIndex, DeltaAdjacency};
use crate::dict::Dictionary;
use crate::stats::{AdjacencyStatistics, GraphStatistics, StoreStatistics};
use pgq_graph::{
    pg_view_bounded, pg_view_exact, pg_view_ext, PropertyGraph, Update, UpdateError, ViewError,
    ViewMode, ViewRelations,
};
use pgq_relational::{Database, RelName, Relation};
use pgq_value::{Label, Tuple, Value};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// The reserved relation name under which the store registers the
/// active domain `adom(D)` as a unary relation, so `AdomScan` plans can
/// lower onto an `IndexScan` instead of re-deriving the domain.
pub const ADOM_REL: &str = "⟨adom⟩";

/// Fold policy: an overlay is oversized once it records at least 32
/// changes **and** at least half the frozen base size — below that,
/// reads through the delta are cheaper than a rebuild.
fn overlay_oversized(changes: usize, base: usize) -> bool {
    changes >= 32.max(base / 2)
}

/// Which `pgView` operator a graph was registered under (mirrors
/// `pgq_core::ViewOp`, which the store cannot depend on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphForm {
    /// `pgView=n`: identifiers of exactly this arity.
    Exact(usize),
    /// `pgView_n`: identifiers of arity at most `n`, padded.
    Bounded(usize),
    /// `pgView_ext`: mixed arities, tagged encoding.
    Ext,
}

/// Errors raised by store registration and maintenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A view input relation is missing from the database (or, on the
    /// update path, from the store).
    UnknownRelation(RelName),
    /// No graph is registered under this name.
    UnknownGraph(String),
    /// The six relations violate the Definition 3.1/5.1 conditions.
    View(ViewError),
    /// The value dictionary ran out of codes: more than `limit`
    /// distinct values were interned. Registration propagates this
    /// instead of panicking mid-load (`Dictionary::MAX_CODES` is the
    /// hard ceiling; tests lower the limit to reach it).
    DictionaryFull {
        /// The code-space limit that was hit.
        limit: usize,
    },
    /// A CSR node universe outgrew its dense `u32` id space — the
    /// typed replacement for the old `expect("node universe outgrew
    /// u32")` panic (parity with [`StoreError::DictionaryFull`]).
    NodeUniverseFull {
        /// The node-universe limit that was hit.
        limit: usize,
    },
    /// An update against a registered graph failed validation — the
    /// same conditions `pgq_graph::updates::apply` enforces.
    Update(UpdateError),
    /// The graph was frozen from an explicit `PropertyGraph` (no view
    /// relation names), so the store has no base relations to edit.
    NotUpdatable(String),
    /// A row's arity differs from its relation's.
    RowArity {
        /// The relation.
        relation: RelName,
        /// The relation's arity.
        expected: usize,
        /// The offending row's arity.
        found: usize,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownRelation(n) => write!(f, "unknown relation {n}"),
            StoreError::UnknownGraph(g) => write!(f, "unknown graph {g}"),
            StoreError::View(e) => write!(f, "invalid graph view: {e}"),
            StoreError::DictionaryFull { limit } => {
                write!(f, "value dictionary full: {limit} code(s) exhausted")
            }
            StoreError::NodeUniverseFull { limit } => {
                write!(f, "CSR node universe full: {limit} dense id(s) exhausted")
            }
            StoreError::Update(e) => write!(f, "update rejected: {e}"),
            StoreError::NotUpdatable(g) => write!(
                f,
                "graph {g} was frozen from an explicit property graph; re-register it to update"
            ),
            StoreError::RowArity {
                relation,
                expected,
                found,
            } => write!(
                f,
                "relation {relation} has arity {expected}, row has {found}"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<ViewError> for StoreError {
    fn from(e: ViewError) -> Self {
        StoreError::View(e)
    }
}

impl From<UpdateError> for StoreError {
    fn from(e: UpdateError) -> Self {
        StoreError::Update(e)
    }
}

/// A frozen CSR index plus its post-freeze overlay — the unit of
/// maintainable adjacency, used for each registered binary relation
/// (keyed on dictionary codes) and for each [`GraphEntry`] label
/// index (keyed on the entry's dense node ids).
/// The CSR base is `Arc`-shared: cloning a [`Store`] (how
/// [`crate::ConcurrentStore`] publishes snapshots) shares the frozen
/// index and copies only the small mutable overlay.
#[derive(Debug, Clone, Default)]
pub(crate) struct CsrWithDelta {
    pub(crate) csr: Arc<CsrIndex>,
    pub(crate) delta: DeltaAdjacency,
}

impl CsrWithDelta {
    fn view(&self) -> AdjacencyView<'_> {
        AdjacencyView::new(&self.csr, Some(&self.delta))
    }

    /// A freshly frozen index with an empty overlay — how the bulk
    /// loader hands its sort-built CSRs to the store.
    pub(crate) fn frozen(csr: Arc<CsrIndex>) -> Self {
        CsrWithDelta {
            csr,
            delta: DeltaAdjacency::new(),
        }
    }
}

/// A property-graph index: interned identifiers plus CSR adjacency,
/// overall and per edge label — frozen at registration, then maintained
/// through a delta overlay by `Store::apply_update`.
#[derive(Debug, Clone)]
pub struct GraphEntry {
    form: GraphForm,
    views: Option<[RelName; 6]>,
    id_arity: usize,
    /// Dense node id → identifier tuple (appended past the frozen
    /// universe by `AddNode`; tombstoned ids stay until a fold).
    ids: Vec<Tuple>,
    /// Identifier tuple → dense id.
    id_of: HashMap<Tuple, u32>,
    /// Dense ids of removed nodes.
    dead: HashSet<u32>,
    /// Node-level adjacency over dense ids (edge identities collapsed).
    /// `Arc`-shared so snapshot clones reuse the frozen index.
    csr: Arc<CsrIndex>,
    /// Post-freeze adjacency changes over the same dense id space.
    delta: DeltaAdjacency,
    /// Per-edge-label adjacency over the same dense id space.
    labels: BTreeMap<Label, CsrWithDelta>,
    /// `|E|` of the source graph, parallel edges counted.
    edge_count: usize,
}

impl GraphEntry {
    fn from_graph(
        g: &PropertyGraph,
        views: Option<[RelName; 6]>,
        form: GraphForm,
    ) -> Result<Self, StoreError> {
        let mut ids: Vec<Tuple> = Vec::with_capacity(g.node_count());
        let mut id_of: HashMap<Tuple, u32> = HashMap::with_capacity(g.node_count());
        for n in g.nodes() {
            let dense = u32::try_from(ids.len()).map_err(|_| StoreError::NodeUniverseFull {
                limit: CsrIndex::MAX_NODES,
            })?;
            id_of.insert(n.clone(), dense);
            ids.push(n.clone());
        }
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(g.edge_count());
        let mut by_label: BTreeMap<Label, Vec<(u32, u32)>> = BTreeMap::new();
        for (e, s, t) in g.edge_triples() {
            let pair = (id_of[s], id_of[t]);
            pairs.push(pair);
            for l in g.labels(e) {
                by_label.entry(l.clone()).or_default().push(pair);
            }
        }
        let universe = || 0..ids.len() as u32;
        let mut labels = BTreeMap::new();
        for (l, ps) in by_label {
            labels.insert(
                l,
                CsrWithDelta {
                    csr: Arc::new(CsrIndex::build(universe(), &ps)?),
                    delta: DeltaAdjacency::new(),
                },
            );
        }
        Ok(GraphEntry {
            form,
            views,
            id_arity: g.id_arity(),
            csr: Arc::new(CsrIndex::build(universe(), &pairs)?),
            delta: DeltaAdjacency::new(),
            labels,
            edge_count: g.edge_count(),
            id_of,
            dead: HashSet::new(),
            ids,
        })
    }

    /// Assembles a frozen entry directly from bulk-loader output: node
    /// identifiers in dense-id order, a node-level CSR and per-label
    /// CSRs over that same dense id space, all overlays empty. The
    /// caller (the bulk loader) has already validated the pieces; this
    /// only derives the reverse identifier map.
    pub(crate) fn from_parts(
        form: GraphForm,
        views: Option<[RelName; 6]>,
        id_arity: usize,
        ids: Vec<Tuple>,
        csr: Arc<CsrIndex>,
        labels: BTreeMap<Label, Arc<CsrIndex>>,
        edge_count: usize,
    ) -> Self {
        let id_of = ids
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), i as u32))
            .collect();
        GraphEntry {
            form,
            views,
            id_arity,
            id_of,
            dead: HashSet::new(),
            csr,
            delta: DeltaAdjacency::new(),
            labels: labels
                .into_iter()
                .map(|(l, csr)| (l, CsrWithDelta::frozen(csr)))
                .collect(),
            edge_count,
            ids,
        }
    }

    /// The registered `pgView` form.
    pub fn form(&self) -> GraphForm {
        self.form
    }

    /// Identifier arity `k` of the frozen graph.
    pub fn id_arity(&self) -> usize {
        self.id_arity
    }

    /// `|N|` (live nodes).
    pub fn node_count(&self) -> usize {
        self.ids.len() - self.dead.len()
    }

    /// `|E|` (parallel edges counted; the adjacency collapses them).
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The node-level adjacency: frozen CSR read through the overlay.
    pub fn adjacency(&self) -> AdjacencyView<'_> {
        AdjacencyView::new(&self.csr, Some(&self.delta))
    }

    /// Labels with a per-label adjacency index, in label order.
    pub fn label_names(&self) -> impl Iterator<Item = &Label> + '_ {
        self.labels.keys()
    }

    /// The per-label adjacency view, when the label occurs on any edge.
    pub fn label_adjacency(&self, label: &Label) -> Option<AdjacencyView<'_>> {
        self.labels.get(label).map(CsrWithDelta::view)
    }

    /// Overlay residency: delta pairs (node-level and per-label) plus
    /// tombstoned and appended nodes — the numbers `STATS` reports and
    /// the fold threshold weighs.
    pub fn overlay_size(&self) -> usize {
        self.delta.change_count()
            + self.dead.len()
            + (self.ids.len() - self.csr.node_count())
            + self
                .labels
                .values()
                .map(|li| li.delta.change_count())
                .sum::<usize>()
    }

    /// Whether any read goes through an overlay.
    pub fn has_overlay(&self) -> bool {
        self.overlay_size() > 0
    }

    /// Degree statistics for the node-level adjacency and every
    /// per-label index — the graph slice of [`StoreStatistics`].
    pub(crate) fn statistics(&self) -> GraphStatistics {
        GraphStatistics {
            adjacency: AdjacencyStatistics::of(&self.csr, self.overlay_size()),
            labels: self
                .labels
                .iter()
                .map(|(l, li)| {
                    let text = l.as_str().map_or_else(|| l.to_string(), String::from);
                    (
                        text,
                        AdjacencyStatistics::of(&li.csr, li.delta.change_count()),
                    )
                })
                .collect(),
        }
    }

    /// Estimated resident bytes of the frozen CSR indexes (node-level
    /// plus per-label) — a [`MemoryBytes`] component.
    pub fn csr_bytes(&self) -> usize {
        self.csr.resident_bytes()
            + self
                .labels
                .values()
                .map(|li| li.csr.resident_bytes())
                .sum::<usize>()
    }

    /// Estimated resident bytes of the mutable overlays (node-level
    /// plus per-label deltas) — a [`MemoryBytes`] component.
    pub fn overlay_bytes(&self) -> usize {
        self.delta.resident_bytes()
            + self
                .labels
                .values()
                .map(|li| li.delta.resident_bytes())
                .sum::<usize>()
    }

    fn overlay_oversized(&self) -> bool {
        overlay_oversized(
            self.overlay_size(),
            self.csr.edge_count().max(self.csr.node_count()),
        )
    }

    /// Whether some pair of nodes is connected by a path of ≥ 1 edge —
    /// equivalently, whether any edge exists. The Boolean `ψreach`
    /// answers come from here without running the closure.
    pub fn has_reach_pair(&self) -> bool {
        self.adjacency().edge_count() > 0
    }

    /// Dense id of a **live** node.
    fn live_dense(&self, id: &Tuple) -> Option<u32> {
        self.id_of
            .get(id)
            .copied()
            .filter(|d| !self.dead.contains(d))
    }

    /// Registers a node identifier (revives a tombstoned one in place).
    fn add_node(&mut self, id: &Tuple) -> Result<(), StoreError> {
        if let Some(&d) = self.id_of.get(id) {
            self.dead.remove(&d);
            return Ok(());
        }
        let dense = u32::try_from(self.ids.len()).map_err(|_| StoreError::NodeUniverseFull {
            limit: CsrIndex::MAX_NODES,
        })?;
        self.id_of.insert(id.clone(), dense);
        self.ids.push(id.clone());
        Ok(())
    }

    /// Tombstones a node (the caller has removed its incident edges).
    fn remove_node(&mut self, id: &Tuple) {
        if let Some(&d) = self.id_of.get(id) {
            self.dead.insert(d);
        }
    }

    /// Records one more edge between the endpoints.
    fn add_edge(&mut self, src: &Tuple, tgt: &Tuple) {
        let (Some(ds), Some(dt)) = (self.live_dense(src), self.live_dense(tgt)) else {
            return; // endpoints validated upstream; defensive no-op
        };
        self.edge_count += 1;
        let in_base = self.csr.has_pair(ds, dt);
        self.delta.add(ds, dt, in_base);
    }

    /// Records one fewer edge; `last` says no other live edge connects
    /// the same endpoints, so the adjacency pair goes too.
    fn remove_edge(&mut self, src: &Tuple, tgt: &Tuple, last: bool) {
        self.edge_count = self.edge_count.saturating_sub(1);
        if !last {
            return;
        }
        if let (Some(&ds), Some(&dt)) = (self.id_of.get(src), self.id_of.get(tgt)) {
            let in_base = self.csr.has_pair(ds, dt);
            self.delta.remove(ds, dt, in_base);
        }
    }

    /// Records a labeled connection between the endpoints.
    fn label_add(&mut self, label: &Label, src: &Tuple, tgt: &Tuple) {
        let (Some(ds), Some(dt)) = (self.live_dense(src), self.live_dense(tgt)) else {
            return;
        };
        let li = self.labels.entry(label.clone()).or_default();
        let in_base = li.csr.has_pair(ds, dt);
        li.delta.add(ds, dt, in_base);
    }

    /// Retracts a labeled connection; `last` says no other live edge
    /// with this label connects the same endpoints.
    fn label_remove(&mut self, label: &Label, src: &Tuple, tgt: &Tuple, last: bool) {
        if !last {
            return;
        }
        if let Some(li) = self.labels.get_mut(label) {
            if let (Some(&ds), Some(&dt)) = (self.id_of.get(src), self.id_of.get(tgt)) {
                let in_base = li.csr.has_pair(ds, dt);
                li.delta.remove(ds, dt, in_base);
            }
        }
    }

    /// Folds every overlay back into fresh CSR indexes: live nodes are
    /// re-densified in identifier order (restoring the sorted-emission
    /// fast path of [`GraphEntry::reach_relation`]), effective pairs
    /// rebuild the node-level and per-label indexes, and tombstones,
    /// appended ids and deltas are dropped.
    fn fold(&mut self) -> Result<(), StoreError> {
        if !self.has_overlay() {
            return Ok(());
        }
        let mut live: Vec<Tuple> = (0..self.ids.len() as u32)
            .filter(|d| !self.dead.contains(d))
            .map(|d| self.ids[d as usize].clone())
            .collect();
        live.sort();
        let id_of: HashMap<Tuple, u32> = live
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), i as u32))
            .collect();
        // Dead endpoints cannot carry effective pairs (updates remove
        // incident edges first); filter defensively all the same.
        let remap = |pairs: Vec<(u32, u32)>| -> Vec<(u32, u32)> {
            pairs
                .into_iter()
                .filter_map(|(s, t)| {
                    let s = id_of.get(&self.ids[s as usize])?;
                    let t = id_of.get(&self.ids[t as usize])?;
                    Some((*s, *t))
                })
                .collect()
        };
        let universe = || 0..live.len() as u32;
        let pairs = remap(self.adjacency().effective_pairs());
        let csr = Arc::new(CsrIndex::build(universe(), &pairs)?);
        let mut labels = BTreeMap::new();
        for (l, li) in &self.labels {
            let ps = remap(li.view().effective_pairs());
            if ps.is_empty() {
                continue; // the label no longer occurs on any edge
            }
            labels.insert(
                l.clone(),
                CsrWithDelta {
                    csr: Arc::new(CsrIndex::build(universe(), &ps)?),
                    delta: DeltaAdjacency::new(),
                },
            );
        }
        self.csr = csr;
        self.labels = labels;
        self.delta = DeltaAdjacency::new();
        self.dead.clear();
        self.ids = live;
        self.id_of = id_of;
        Ok(())
    }

    /// No overlay and no appended ids: the frozen invariants (dense id
    /// order = identifier order) still hold.
    fn is_fresh(&self) -> bool {
        self.delta.is_empty() && self.dead.is_empty() && self.ids.len() == self.csr.node_count()
    }

    /// The reachability relation of the graph as `(s̄, t̄)` rows of
    /// arity `2k`: all pairs connected by **one or more** edges, plus
    /// — when `at_least_one` is false — the reflexive pairs over the
    /// live node set (the `ψ^{0..∞}` semantics). `swap` emits `(t̄, s̄)`
    /// instead, matching `(y, x)`-ordered output items.
    ///
    /// On a fresh (overlay-free) entry dense ids are minted in
    /// identifier order, so emitting pairs grouped by source with
    /// sorted targets yields rows already in relation order — the
    /// result set then builds in one linear pass. With an overlay the
    /// sweep reads through the delta per live source instead.
    pub fn reach_relation(&self, at_least_one: bool, swap: bool) -> Relation {
        if !self.is_fresh() {
            return self.reach_relation_overlay(at_least_one, swap);
        }
        let mut pairs = self.csr.all_pairs_reach();
        if swap {
            // `(t̄, s̄)` rows sort by target first.
            pairs.sort_unstable_by_key(|&(s, t)| (t, s));
        }
        let diagonal = if at_least_one { 0 } else { self.ids.len() };
        let mut rows: Vec<Tuple> = Vec::with_capacity(pairs.len() + diagonal);
        let mut emit = |s: u32, t: u32| {
            let (a, b) = (&self.ids[s as usize], &self.ids[t as usize]);
            rows.push(if swap { b.concat(a) } else { a.concat(b) });
        };
        // Walk the contiguous per-lead runs (lead = source, or target
        // when swapped), sorting each run's trailing ids and merging
        // the reflexive pair in at its place.
        let lead = |p: &(u32, u32)| if swap { p.1 } else { p.0 };
        let mut i = 0;
        for s in 0..self.ids.len() as u32 {
            let start = i;
            while i < pairs.len() && lead(&pairs[i]) == s {
                i += 1;
            }
            let mut trail: Vec<u32> = pairs[start..i]
                .iter()
                .map(|p| if swap { p.0 } else { p.1 })
                .collect();
            trail.sort_unstable();
            if !at_least_one {
                if let Err(pos) = trail.binary_search(&s) {
                    trail.insert(pos, s);
                }
            }
            for t in trail {
                if swap {
                    emit(t, s);
                } else {
                    emit(s, t);
                }
            }
        }
        Relation::from_rows(2 * self.id_arity, rows).expect("identifier tuples have arity k")
    }

    /// The overlay-aware reachability sweep: one multi-source frontier
    /// sweep per live source through [`GraphEntry::adjacency`].
    fn reach_relation_overlay(&self, at_least_one: bool, swap: bool) -> Relation {
        let view = self.adjacency();
        let mut rows: Vec<Tuple> = Vec::new();
        for s in 0..self.ids.len() as u32 {
            if self.dead.contains(&s) {
                continue;
            }
            let mut seeds: Vec<u32> = Vec::new();
            view.for_each_out(s, |t| seeds.push(t));
            let mut targets = view.reach_from(seeds);
            if !at_least_one && !targets.contains(&s) {
                targets.push(s);
            }
            let a = &self.ids[s as usize];
            for t in targets {
                let b = &self.ids[t as usize];
                rows.push(if swap { b.concat(a) } else { a.concat(b) });
            }
        }
        Relation::from_rows(2 * self.id_arity, rows).expect("identifier tuples have arity k")
    }
}

/// The effect of one [`Store::compact`] call, also surfaced through
/// [`StoreStats::last_compaction`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactionStats {
    /// Stale dictionary codes reclaimed (old total − new total).
    pub reclaimed_codes: usize,
    /// Tombstoned rows dropped from columnar relations.
    pub dropped_rows: usize,
    /// Overlay entries (adjacency deltas, graph tombstones/appends)
    /// folded into fresh CSR indexes.
    pub folded_overlay: usize,
}

impl fmt::Display for CompactionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reclaimed {} stale code(s), dropped {} tombstoned row(s), folded {} overlay entr(y/ies)",
            self.reclaimed_codes, self.dropped_rows, self.folded_overlay
        )
    }
}

/// Session-cumulative store access counters — how much physical work
/// the executor asked of this store since creation (or the last
/// [`AccessCounters::reset`]). Recording goes through `&self` relaxed
/// atomics so the read paths stay `&Store`; the executor amortizes
/// every increment to once per batch, probe sweep, or decode boundary,
/// so the counters cost nothing measurable on the hot paths.
///
/// Counts are *totals*, not per-query: the shell's `METRICS;` prints
/// them (and `METRICS RESET;` zeroes them) as the session-level
/// complement of the per-query [`StoreStats`]/profile surfaces.
#[derive(Debug, Default)]
pub struct AccessCounters {
    index_scan_rows: AtomicU64,
    csr_neighbor_rows: AtomicU64,
    csr_sweep_sources: AtomicU64,
    overlay_reads: AtomicU64,
    dense_reads: AtomicU64,
    dict_decodes: AtomicU64,
    writer_probes: AtomicU64,
    writer_probe_rows: AtomicU64,
}

impl Clone for AccessCounters {
    fn clone(&self) -> Self {
        let s = self.snapshot();
        AccessCounters {
            index_scan_rows: AtomicU64::new(s.index_scan_rows),
            csr_neighbor_rows: AtomicU64::new(s.csr_neighbor_rows),
            csr_sweep_sources: AtomicU64::new(s.csr_sweep_sources),
            overlay_reads: AtomicU64::new(s.overlay_reads),
            dense_reads: AtomicU64::new(s.dense_reads),
            dict_decodes: AtomicU64::new(s.dict_decodes),
            writer_probes: AtomicU64::new(s.writer_probes),
            writer_probe_rows: AtomicU64::new(s.writer_probe_rows),
        }
    }
}

impl AccessCounters {
    /// Adds `n` rows served by `IndexScan` from columnar storage.
    pub fn record_index_scan_rows(&self, n: u64) {
        self.index_scan_rows.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds `n` neighbor rows produced by CSR adjacency probes.
    pub fn record_csr_neighbor_rows(&self, n: u64) {
        self.csr_neighbor_rows.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds `n` source groups swept by CSR reachability fixpoints.
    pub fn record_csr_sweep_sources(&self, n: u64) {
        self.csr_sweep_sources.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one adjacency read, classified by whether the view had
    /// to merge a delta overlay (`true`) or read the frozen CSR alone.
    pub fn record_adjacency_read(&self, overlay: bool) {
        if overlay {
            self.overlay_reads.fetch_add(1, Ordering::Relaxed);
        } else {
            self.dense_reads.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Adds `n` dictionary decode calls (code → value).
    pub fn record_dict_decodes(&self, n: u64) {
        self.dict_decodes.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one writer-path membership probe (edge endpoints,
    /// labels, property rows) that examined `candidates` indexed rows.
    /// The candidate totals are how the indexed writer path proves it
    /// scales with matches, not with the relation (`tests` assert it).
    pub fn record_writer_probe(&self, candidates: u64) {
        self.writer_probes.fetch_add(1, Ordering::Relaxed);
        self.writer_probe_rows
            .fetch_add(candidates, Ordering::Relaxed);
    }

    /// A plain-integer snapshot of the current totals.
    pub fn snapshot(&self) -> AccessSnapshot {
        AccessSnapshot {
            index_scan_rows: self.index_scan_rows.load(Ordering::Relaxed),
            csr_neighbor_rows: self.csr_neighbor_rows.load(Ordering::Relaxed),
            csr_sweep_sources: self.csr_sweep_sources.load(Ordering::Relaxed),
            overlay_reads: self.overlay_reads.load(Ordering::Relaxed),
            dense_reads: self.dense_reads.load(Ordering::Relaxed),
            dict_decodes: self.dict_decodes.load(Ordering::Relaxed),
            writer_probes: self.writer_probes.load(Ordering::Relaxed),
            writer_probe_rows: self.writer_probe_rows.load(Ordering::Relaxed),
        }
    }

    /// Adds a snapshot's totals into these counters — how a session
    /// aggregator accumulates the per-query counters of short-lived
    /// scratch stores (the shell's `METRICS;` surface).
    pub fn absorb(&self, snap: &AccessSnapshot) {
        self.index_scan_rows
            .fetch_add(snap.index_scan_rows, Ordering::Relaxed);
        self.csr_neighbor_rows
            .fetch_add(snap.csr_neighbor_rows, Ordering::Relaxed);
        self.csr_sweep_sources
            .fetch_add(snap.csr_sweep_sources, Ordering::Relaxed);
        self.overlay_reads
            .fetch_add(snap.overlay_reads, Ordering::Relaxed);
        self.dense_reads
            .fetch_add(snap.dense_reads, Ordering::Relaxed);
        self.dict_decodes
            .fetch_add(snap.dict_decodes, Ordering::Relaxed);
        self.writer_probes
            .fetch_add(snap.writer_probes, Ordering::Relaxed);
        self.writer_probe_rows
            .fetch_add(snap.writer_probe_rows, Ordering::Relaxed);
    }

    /// Zeroes every counter (the shell's `METRICS RESET;`).
    pub fn reset(&self) {
        self.index_scan_rows.store(0, Ordering::Relaxed);
        self.csr_neighbor_rows.store(0, Ordering::Relaxed);
        self.csr_sweep_sources.store(0, Ordering::Relaxed);
        self.overlay_reads.store(0, Ordering::Relaxed);
        self.dense_reads.store(0, Ordering::Relaxed);
        self.dict_decodes.store(0, Ordering::Relaxed);
        self.writer_probes.store(0, Ordering::Relaxed);
        self.writer_probe_rows.store(0, Ordering::Relaxed);
    }
}

/// Plain-integer totals read from [`AccessCounters::snapshot`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessSnapshot {
    /// Rows `IndexScan` served from columnar storage.
    pub index_scan_rows: u64,
    /// Neighbor rows produced by CSR adjacency probes.
    pub csr_neighbor_rows: u64,
    /// Source groups swept by CSR reachability fixpoints.
    pub csr_sweep_sources: u64,
    /// Adjacency reads that merged a delta overlay.
    pub overlay_reads: u64,
    /// Adjacency reads answered by the frozen CSR alone.
    pub dense_reads: u64,
    /// Dictionary decode calls (code → value).
    pub dict_decodes: u64,
    /// Writer-path membership probes (edge endpoints, labels, property
    /// rows) answered by the column end indexes.
    pub writer_probes: u64,
    /// Candidate rows those probes examined — O(matches), not
    /// O(relation), which is the point of routing them through the
    /// indexes.
    pub writer_probe_rows: u64,
}

impl AccessSnapshot {
    /// The counters accumulated since `earlier` was taken
    /// (saturating, in case `earlier` post-dates a reset).
    pub fn since(&self, earlier: &AccessSnapshot) -> AccessSnapshot {
        AccessSnapshot {
            index_scan_rows: self.index_scan_rows.saturating_sub(earlier.index_scan_rows),
            csr_neighbor_rows: self
                .csr_neighbor_rows
                .saturating_sub(earlier.csr_neighbor_rows),
            csr_sweep_sources: self
                .csr_sweep_sources
                .saturating_sub(earlier.csr_sweep_sources),
            overlay_reads: self.overlay_reads.saturating_sub(earlier.overlay_reads),
            dense_reads: self.dense_reads.saturating_sub(earlier.dense_reads),
            dict_decodes: self.dict_decodes.saturating_sub(earlier.dict_decodes),
            writer_probes: self.writer_probes.saturating_sub(earlier.writer_probes),
            writer_probe_rows: self
                .writer_probe_rows
                .saturating_sub(earlier.writer_probe_rows),
        }
    }
}

impl fmt::Display for AccessSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "store access counters (session-cumulative):")?;
        writeln!(f, "  index scan rows served : {}", self.index_scan_rows)?;
        writeln!(f, "  CSR neighbor rows      : {}", self.csr_neighbor_rows)?;
        writeln!(f, "  CSR sweep sources      : {}", self.csr_sweep_sources)?;
        writeln!(
            f,
            "  adjacency reads        : {} overlay / {} dense",
            self.overlay_reads, self.dense_reads
        )?;
        writeln!(f, "  dictionary decodes     : {}", self.dict_decodes)?;
        write!(
            f,
            "  writer probes          : {} ({} candidate row(s))",
            self.writer_probes, self.writer_probe_rows
        )
    }
}

/// The session catalog: dictionary-coded relations, CSR adjacency for
/// binary relations, and graph views — registered once, then maintained
/// in place by the update entry points.
/// Since PR 8 the bulky immutable pieces — the value dictionary, each
/// relation's columns, and every frozen CSR base — sit behind `Arc`s:
/// cloning a `Store` is cheap (shared payloads, copy-on-write via
/// [`Arc::make_mut`] on mutation), which is what lets
/// [`crate::ConcurrentStore`] publish every committed state as an
/// immutable [`crate::StoreSnapshot`] while readers keep older
/// snapshots pinned.
#[derive(Debug, Clone, Default)]
pub struct Store {
    pub(crate) dict: Arc<Dictionary>,
    pub(crate) relations: BTreeMap<RelName, Arc<ColumnarRelation>>,
    pub(crate) adjacency: BTreeMap<RelName, CsrWithDelta>,
    pub(crate) graphs: BTreeMap<String, GraphEntry>,
    /// The `(views, form)` recipe of every view-registered graph —
    /// retained even while the entry is invalid (a mutation can pass
    /// through transiently inconsistent states, e.g. an edge inserted
    /// before its endpoints), so a later mutation that restores view
    /// validity refreezes the graph instead of losing it.
    pub(crate) view_specs: BTreeMap<String, ([RelName; 6], GraphForm)>,
    /// Set when a deletion may have shrunk the active domain; the
    /// reserved ⟨adom⟩ relation is then recomputed once per batch.
    pub(crate) adom_dirty: bool,
    last_compaction: Option<CompactionStats>,
    /// Session-cumulative access counters (`&self`-recorded, relaxed
    /// atomics), surfaced by the shell's `METRICS;`. `Arc`-shared so
    /// every snapshot clone of the store records into the same totals —
    /// a server's `METRICS` aggregates across all published snapshots.
    counters: Arc<AccessCounters>,
    /// Lazily-computed planner statistics (PR 10). Shared by snapshot
    /// clones exactly like the columns and CSR bases; every mutation
    /// swaps in a fresh slot (see [`StatsCache::invalidate`]).
    pub(crate) stats_cache: StatsCache,
}

/// The cached [`StoreStatistics`] slot plus its invalidation epoch.
///
/// Cloning a [`Store`] clones the `Arc` — a pinned snapshot keeps the
/// statistics computed against the state it pins, for free. A mutation
/// replaces the slot (never writes through it), so no clone ever
/// observes statistics newer than its data, and bumps the epoch — the
/// staleness suite asserts the bump per mutation class.
#[derive(Debug, Clone, Default)]
pub(crate) struct StatsCache {
    slot: Arc<OnceLock<Arc<StoreStatistics>>>,
    epoch: u64,
}

impl StatsCache {
    pub(crate) fn invalidate(&mut self) {
        self.slot = Arc::new(OnceLock::new());
        self.epoch += 1;
    }
}

impl Store {
    /// An empty store.
    pub fn new() -> Self {
        Store::default()
    }

    /// An empty store whose dictionary refuses to mint more than
    /// `limit` codes — the admission-control hook the bulk-load
    /// boundary tests use to exercise [`StoreError::DictionaryFull`]
    /// without 2³² interns.
    pub fn with_dict_limit(limit: usize) -> Self {
        Store {
            dict: Arc::new(Dictionary::with_limit(limit)),
            ..Store::default()
        }
    }

    /// The session-cumulative [`AccessCounters`]. Recording is
    /// `&self`: the executor's read paths count through this without
    /// threading any mutability into the store.
    pub fn counters(&self) -> &AccessCounters {
        &self.counters
    }

    /// The planner statistics of the current state — computed on first
    /// use, then served from the cache until the next mutation (the two
    /// `Arc`s compare `ptr_eq` while the cache holds). See
    /// [`StoreStatistics`] for what is summarized and `StatsCache`
    /// (crate-private) for the snapshot-consistency contract.
    pub fn statistics(&self) -> Arc<StoreStatistics> {
        Arc::clone(
            self.stats_cache
                .slot
                .get_or_init(|| Arc::new(StoreStatistics::compute(self, self.stats_cache.epoch))),
        )
    }

    /// The statistics invalidation epoch: bumped by every mutation, so
    /// `statistics().epoch` equals this exactly when the cached
    /// snapshot is current. Test hook for the staleness suite.
    pub fn statistics_epoch(&self) -> u64 {
        self.stats_cache.epoch
    }

    /// Registers every relation of `db` (columnar + adjacency for the
    /// binary ones) and the reserved [`ADOM_REL`] active-domain
    /// relation. The usual way to obtain a store.
    ///
    /// # Panics
    ///
    /// On a fresh store the only possible registration failure is
    /// [`StoreError::DictionaryFull`] — more than [`Dictionary::MAX_CODES`]
    /// distinct values in one database. Callers loading instances that
    /// could plausibly reach 2³² distinct values should build with
    /// [`Store::new`] + [`Store::register_database`] and handle the
    /// error.
    pub fn from_database(db: &Database) -> Self {
        let mut s = Store::new();
        s.register_database(db)
            .expect("a fresh store has no graphs to re-validate and a full u32 code space");
        s
    }

    /// Registers (or re-registers) the relations of `db`. A
    /// re-registration must not leave anything answering for the old
    /// data: relations and adjacency absent from `db` are dropped,
    /// graph entries registered through [`Store::register_view_graph`]
    /// are re-validated and re-frozen from the new state (the `Err`
    /// case is a view that became invalid), and graphs frozen from an
    /// explicit [`PropertyGraph`] (no view names) cannot be rebuilt
    /// here and are dropped — their owner re-registers them.
    pub fn register_database(&mut self, db: &Database) -> Result<(), StoreError> {
        let rebuild: Vec<(String, [RelName; 6], GraphForm)> = self
            .view_specs
            .iter()
            .map(|(n, (v, f))| (n.clone(), v.clone(), *f))
            .collect();
        self.graphs.clear();
        self.relations.clear();
        self.adjacency.clear();
        self.adom_dirty = false;
        for (name, rel) in db.iter() {
            self.register_relation_raw(name.clone(), rel)?;
        }
        self.register_relation_raw(ADOM_REL.into(), &db.active_domain_relation())?;
        for (name, views, form) in rebuild {
            self.register_view_graph(name, views, db, form)?;
        }
        self.stats_cache.invalidate();
        Ok(())
    }

    /// Registers one relation: columnar always, CSR when binary.
    /// Fails with [`StoreError::DictionaryFull`] when interning the
    /// relation's values exhausts the dictionary's code space. A
    /// re-registration refreezes every view graph backed by this
    /// relation (dropping entries whose view became invalid) — stale
    /// frozen state must not keep answering for replaced data.
    pub fn register_relation(&mut self, name: RelName, rel: &Relation) -> Result<(), StoreError> {
        self.stats_cache.invalidate();
        self.register_relation_raw(name.clone(), rel)?;
        // A wholesale replacement can both add and drop values.
        self.adom_dirty = true;
        self.refresh_adom()?;
        self.refreeze_graphs_backed_by(&name, true)
    }

    /// The registration body, without graph repair — used by
    /// [`Store::register_database`], which rebuilds graphs itself once
    /// every relation is in place.
    fn register_relation_raw(&mut self, name: RelName, rel: &Relation) -> Result<(), StoreError> {
        let col = ColumnarRelation::from_relation(rel, Arc::make_mut(&mut self.dict))?;
        if rel.arity() == 2 {
            let pairs: Vec<(u32, u32)> = col
                .live_rows()
                .map(|i| (col.code_at(i, 0), col.code_at(i, 1)))
                .collect();
            let universe = pairs.iter().flat_map(|&(a, b)| [a, b]);
            self.adjacency.insert(
                name.clone(),
                CsrWithDelta {
                    csr: Arc::new(CsrIndex::build(universe, &pairs)?),
                    delta: DeltaAdjacency::new(),
                },
            );
        } else {
            // Re-registration under a different arity must not leave a
            // stale index behind — plans would expand over dead pairs.
            self.adjacency.remove(&name);
        }
        self.relations.insert(name, Arc::new(col));
        Ok(())
    }

    /// Validates the six named view relations with the strict `pgView`
    /// operator selected by `form` — **once** — and freezes the result
    /// as a [`GraphEntry`] under `graph_name`.
    pub fn register_view_graph(
        &mut self,
        graph_name: impl Into<String>,
        views: [RelName; 6],
        db: &Database,
        form: GraphForm,
    ) -> Result<(), StoreError> {
        let mut rels = Vec::with_capacity(6);
        for name in &views {
            rels.push(
                db.get(name)
                    .ok_or_else(|| StoreError::UnknownRelation(name.clone()))?
                    .clone(),
            );
        }
        let mut it = rels.into_iter();
        let vr = ViewRelations::new(
            it.next().unwrap(),
            it.next().unwrap(),
            it.next().unwrap(),
            it.next().unwrap(),
            it.next().unwrap(),
            it.next().unwrap(),
        );
        let g = Self::apply_view(&vr, form)?;
        self.register_graph(graph_name, &g, Some(views), form)
    }

    fn apply_view(vr: &ViewRelations, form: GraphForm) -> Result<PropertyGraph, StoreError> {
        Ok(match form {
            GraphForm::Exact(n) => pg_view_exact(n, vr, ViewMode::Strict)?,
            GraphForm::Bounded(n) => pg_view_bounded(n, vr, ViewMode::Strict)?,
            GraphForm::Ext => pg_view_ext(vr, ViewMode::Strict)?,
        })
    }

    /// Freezes an already-built (hence already-validated) property
    /// graph. `views` records which six base relations produced it, so
    /// planners can match pattern calls onto the entry by name and the
    /// update path knows which relations to edit. Fails only when the
    /// node universe outgrows the dense id space.
    pub fn register_graph(
        &mut self,
        graph_name: impl Into<String>,
        g: &PropertyGraph,
        views: Option<[RelName; 6]>,
        form: GraphForm,
    ) -> Result<(), StoreError> {
        let name = graph_name.into();
        self.stats_cache.invalidate();
        let entry = GraphEntry::from_graph(g, views.clone(), form)?;
        match views {
            Some(v) => {
                self.view_specs.insert(name.clone(), (v, form));
            }
            None => {
                self.view_specs.remove(&name);
            }
        }
        self.graphs.insert(name, entry);
        Ok(())
    }

    /// The shared dictionary.
    pub fn dict(&self) -> &Dictionary {
        &self.dict
    }

    /// The dictionary for mutation: copy-on-write when a snapshot still
    /// shares it, plain access otherwise.
    fn dict_mut(&mut self) -> &mut Dictionary {
        Arc::make_mut(&mut self.dict)
    }

    /// The columnar relation for mutation (copy-on-write).
    fn relation_mut(&mut self, name: &RelName) -> Option<&mut ColumnarRelation> {
        self.relations.get_mut(name).map(Arc::make_mut)
    }

    /// Builds `name`'s row/end indexes if they are still deferred.
    /// Bulk-loaded relations keep indexes off the ingest path (the
    /// O(live)-scan fix of PR 9); the first row-level writer pays the
    /// one-time build here so its duplicate/revive probes stay O(1).
    /// A no-op — no copy-on-write, no work — when already indexed.
    fn ensure_relation_indexes(&mut self, name: &RelName) {
        if self
            .relations
            .get(name)
            .is_some_and(|col| !col.has_indexes())
        {
            self.relation_mut(name)
                .expect("present above")
                .ensure_indexes();
        }
    }

    /// Interns a plan-time literal constant into the shared dictionary,
    /// so coded filters can compare it against column codes without a
    /// decode. This is an **optional** entry point for sessions that
    /// hold a mutable store while preparing queries — nothing in the
    /// engine calls it today, because the coded executor degrades
    /// gracefully for *un*-interned constants (an equality against a
    /// value no stored row contains is constant-false, and order
    /// comparisons decode on compare). Interning is an optimization,
    /// never a correctness requirement. Note that [`Store::compact`]
    /// rebuilds the dictionary, invalidating previously returned codes.
    pub fn intern_literal(&mut self, v: &Value) -> Result<u32, StoreError> {
        self.stats_cache.invalidate();
        self.dict_mut().intern(v)
    }

    /// The code of a value, when any registered row contains it.
    pub fn encode(&self, v: &Value) -> Option<u32> {
        self.dict.code(v)
    }

    /// Decodes a dictionary code.
    pub fn decode(&self, code: u32) -> &Value {
        self.dict.value(code)
    }

    /// A registered columnar relation.
    pub fn relation(&self, name: &RelName) -> Option<&ColumnarRelation> {
        self.relations.get(name).map(|a| &**a)
    }

    /// Whether `name` is registered.
    pub fn has_relation(&self, name: &RelName) -> bool {
        self.relations.contains_key(name)
    }

    /// Decodes a registered relation's live rows (stored order).
    pub fn scan(&self, name: &RelName) -> Option<Vec<Tuple>> {
        self.relations.get(name).map(|c| c.decode_rows(&self.dict))
    }

    /// The adjacency of a registered *binary* relation: the frozen CSR
    /// read through its delta overlay.
    pub fn adjacency(&self, name: &RelName) -> Option<AdjacencyView<'_>> {
        self.adjacency.get(name).map(CsrWithDelta::view)
    }

    /// A registered graph entry.
    pub fn graph(&self, name: &str) -> Option<&GraphEntry> {
        self.graphs.get(name)
    }

    /// The graph entry registered from exactly these six view relations
    /// under this form, if any — the planner's match point for pattern
    /// calls over base relations.
    pub fn graph_for_views(&self, views: &[RelName; 6], form: GraphForm) -> Option<&GraphEntry> {
        self.graphs
            .values()
            .find(|e| e.form == form && e.views.as_ref() == Some(views))
    }

    /// Registered graph names with entries, in name order.
    pub fn graph_names(&self) -> impl Iterator<Item = &str> + '_ {
        self.graphs.keys().map(String::as_str)
    }

    /// Drops a registered graph (entry and view recipe). `true` when
    /// one existed. Owners of graphs frozen from explicit
    /// [`PropertyGraph`]s use this when their source data changes and
    /// the rebuild fails — a dropped entry falls back to per-query
    /// evaluation instead of answering stale.
    pub fn drop_graph(&mut self, name: &str) -> bool {
        self.stats_cache.invalidate();
        self.view_specs.remove(name);
        self.graphs.remove(name).is_some()
    }

    // ------------------------------------------------------------------
    // Incremental maintenance (PR 5).
    // ------------------------------------------------------------------

    fn encode_row(&self, t: &Tuple) -> Option<Vec<u32>> {
        t.iter().map(|v| self.dict.code(v)).collect()
    }

    /// Whether a registered relation holds `t` as a live row.
    pub fn rel_contains(&self, name: &RelName, t: &Tuple) -> bool {
        let Some(col) = self.relations.get(name) else {
            return false;
        };
        if col.arity() != t.arity() {
            return false;
        }
        self.encode_row(t)
            .is_some_and(|codes| col.find_live(&codes).is_some())
    }

    /// Inserts one row into a registered relation (registering a fresh
    /// empty relation of the row's arity when the name is new):
    /// append-or-revive in the columnar store, adjacency overlay
    /// maintenance for binary relations, active-domain refresh, and a
    /// refreeze of any view graph backed by the relation. Returns
    /// whether the row was new.
    pub fn insert_row(&mut self, name: impl Into<RelName>, t: &Tuple) -> Result<bool, StoreError> {
        let name = name.into();
        self.stats_cache.invalidate();
        if !self.relations.contains_key(&name) {
            self.relations
                .insert(name.clone(), Arc::new(ColumnarRelation::empty(t.arity())));
            if t.arity() == 2 {
                self.adjacency.insert(name.clone(), CsrWithDelta::default());
            }
        }
        let added = self.append_row_raw(&name, t)?;
        if added {
            self.refresh_adom()?;
            self.refreeze_graphs_backed_by(&name, false)?;
            self.fold_adjacency_if_oversized(&name)?;
        }
        Ok(added)
    }

    /// Deletes one row from a registered relation (tombstone, adjacency
    /// overlay, active-domain refresh, graph refreeze). Returns whether
    /// the row existed.
    pub fn delete_row(&mut self, name: &RelName, t: &Tuple) -> Result<bool, StoreError> {
        self.stats_cache.invalidate();
        let removed = self.tombstone_row_raw(name, t);
        if removed {
            self.refresh_adom()?;
            self.refreeze_graphs_backed_by(name, false)?;
            self.fold_adjacency_if_oversized(name)?;
        }
        Ok(removed)
    }

    /// Applies one Section 7 update to a graph registered through
    /// [`Store::register_view_graph`]: the six backing relations are
    /// edited in place (append/tombstone) and the graph's frozen entry
    /// is maintained through its delta overlay — no re-registration,
    /// no `pgView` re-validation. Validation mirrors
    /// `pgq_graph::updates::apply`, so a rejected update leaves
    /// relations and graphs untouched — all fallible steps (checks,
    /// code minting, dense-id minting) run before the first row lands;
    /// exhaustion errors may leave freshly minted dictionary codes,
    /// stale at worst and reclaimed by [`Store::compact`]. Oversized
    /// overlays are folded on the way out.
    pub fn apply_update(&mut self, graph: &str, update: &Update) -> Result<(), StoreError> {
        self.stats_cache.invalidate();
        self.apply_update_raw(graph, update)?;
        self.finish_updates(graph)
    }

    /// [`Store::apply_update`] for a batch, refreshing the active
    /// domain and folding overlays once at the end. Fails fast on the
    /// first rejected update — updates before it stay applied
    /// (per-update atomicity, not per-batch), and the finishing pass
    /// (⟨adom⟩ refresh, overlay folds) still runs for them, so the
    /// store is internally consistent even when the batch errors.
    pub fn apply_updates(&mut self, graph: &str, updates: &[Update]) -> Result<(), StoreError> {
        self.stats_cache.invalidate();
        let mut result = Ok(());
        let mut applied = 0usize;
        for u in updates {
            match self.apply_update_raw(graph, u) {
                Ok(()) => applied += 1,
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        if applied > 0 {
            self.finish_updates(graph)?;
        }
        result
    }

    fn finish_updates(&mut self, graph: &str) -> Result<(), StoreError> {
        self.refresh_adom()?;
        if let Some(views) = self.graphs.get(graph).and_then(|e| e.views.clone()) {
            for name in &views {
                self.fold_adjacency_if_oversized(name)?;
            }
        }
        if let Some(e) = self.graphs.get_mut(graph) {
            if e.overlay_oversized() {
                e.fold()?;
            }
        }
        Ok(())
    }

    fn apply_update_raw(&mut self, graph: &str, update: &Update) -> Result<(), StoreError> {
        let entry = self
            .graphs
            .get(graph)
            .ok_or_else(|| StoreError::UnknownGraph(graph.to_string()))?;
        let views = entry
            .views
            .clone()
            .ok_or_else(|| StoreError::NotUpdatable(graph.to_string()))?;
        let k = entry.id_arity;
        for v in &views {
            if !self.relations.contains_key(v) {
                return Err(StoreError::UnknownRelation(v.clone()));
            }
        }
        let [rn, re, rs, rt, rl, rp] = views.clone();
        let check_arity = |id: &Tuple| -> Result<(), StoreError> {
            if id.arity() == k {
                Ok(())
            } else {
                Err(UpdateError::ArityMismatch {
                    expected: k,
                    found: id.arity(),
                }
                .into())
            }
        };
        match update {
            Update::AddNode(id) => {
                check_arity(id)?;
                if self.rel_contains(&rn, id) || self.rel_contains(&re, id) {
                    return Err(UpdateError::IdInUse(id.clone()).into());
                }
                // Fallible steps (code minting, dense-id minting) run
                // before any relation row lands, so an exhaustion
                // error cannot leave a half-applied update behind.
                self.intern_tuple(id)?;
                self.graph_entry_mut(graph).add_node(id)?;
                self.append_row_raw(&rn, id)?;
            }
            Update::RemoveNode(id) => {
                check_arity(id)?;
                if !self.rel_contains(&rn, id) {
                    return Err(UpdateError::NoSuchElement(id.clone()).into());
                }
                if !self.edges_touching(&rs, &rt, id, k).is_empty() {
                    return Err(UpdateError::NodeHasEdges(id.clone()).into());
                }
                self.tombstone_row_raw(&rn, id);
                self.strip_annotation_rows(&rl, &rp, id);
                self.graph_entry_mut(graph).remove_node(id);
            }
            Update::DetachRemoveNode(id) => {
                check_arity(id)?;
                if !self.rel_contains(&rn, id) {
                    return Err(UpdateError::NoSuchElement(id.clone()).into());
                }
                for e in self.edges_touching(&rs, &rt, id, k) {
                    self.remove_edge_everywhere(graph, &views, &e, k)?;
                }
                self.tombstone_row_raw(&rn, id);
                self.strip_annotation_rows(&rl, &rp, id);
                self.graph_entry_mut(graph).remove_node(id);
            }
            Update::AddEdge { id, src, tgt } => {
                check_arity(id)?;
                check_arity(src)?;
                check_arity(tgt)?;
                if self.rel_contains(&rn, id) || self.rel_contains(&re, id) {
                    return Err(UpdateError::IdInUse(id.clone()).into());
                }
                if !self.rel_contains(&rn, src) {
                    return Err(UpdateError::DanglingEndpoint(src.clone()).into());
                }
                if !self.rel_contains(&rn, tgt) {
                    return Err(UpdateError::DanglingEndpoint(tgt.clone()).into());
                }
                // src/tgt are live N rows, hence already interned; the
                // id is the only possible DictionaryFull source — mint
                // its codes before the first of the three appends.
                self.intern_tuple(id)?;
                self.append_row_raw(&re, id)?;
                self.append_row_raw(&rs, &id.concat(src))?;
                self.append_row_raw(&rt, &id.concat(tgt))?;
                self.graph_entry_mut(graph).add_edge(src, tgt);
            }
            Update::RemoveEdge(id) => {
                check_arity(id)?;
                if !self.rel_contains(&re, id) {
                    return Err(UpdateError::NoSuchElement(id.clone()).into());
                }
                self.remove_edge_everywhere(graph, &views, id, k)?;
            }
            Update::AddLabel(id, label) => {
                check_arity(id)?;
                let is_edge = self.rel_contains(&re, id);
                if !is_edge && !self.rel_contains(&rn, id) {
                    return Err(UpdateError::NoSuchElement(id.clone()).into());
                }
                self.intern_tuple(&Tuple::unary(label.clone()))?;
                let row = id.concat(&Tuple::unary(label.clone()));
                if self.append_row_raw(&rl, &row)? && is_edge {
                    let (src, tgt) = self.edge_endpoints(&rs, &rt, id, k)?;
                    self.graph_entry_mut(graph).label_add(label, &src, &tgt);
                }
            }
            Update::RemoveLabel(id, label) => {
                check_arity(id)?;
                let is_edge = self.rel_contains(&re, id);
                if !is_edge && !self.rel_contains(&rn, id) {
                    return Err(UpdateError::NoSuchElement(id.clone()).into());
                }
                let row = id.concat(&Tuple::unary(label.clone()));
                if self.tombstone_row_raw(&rl, &row) && is_edge {
                    let (src, tgt) = self.edge_endpoints(&rs, &rt, id, k)?;
                    let still = self.labeled_edge_between(&rs, &rt, &rl, label, (&src, &tgt), k);
                    self.graph_entry_mut(graph)
                        .label_remove(label, &src, &tgt, !still);
                }
            }
            Update::SetProp(id, key, value) => {
                check_arity(id)?;
                if !self.rel_contains(&rn, id) && !self.rel_contains(&re, id) {
                    return Err(UpdateError::NoSuchElement(id.clone()).into());
                }
                // Mint the key/value codes before dropping the old
                // row, or an exhaustion error would lose the property.
                self.intern_tuple(&Tuple::new(vec![key.clone(), value.clone()]))?;
                self.remove_prop_rows(&rp, id, key, k);
                self.append_row_raw(
                    &rp,
                    &id.concat(&Tuple::new(vec![key.clone(), value.clone()])),
                )?;
            }
            Update::RemoveProp(id, key) => {
                check_arity(id)?;
                if !self.rel_contains(&rn, id) && !self.rel_contains(&re, id) {
                    return Err(UpdateError::NoSuchElement(id.clone()).into());
                }
                self.remove_prop_rows(&rp, id, key, k);
            }
        }
        Ok(())
    }

    /// Interns every value of `t` up front, so the mutation that
    /// follows cannot fail on [`StoreError::DictionaryFull`] halfway
    /// through a multi-relation edit. A rejection after this point
    /// leaves relations and graphs untouched (the codes minted here
    /// are at worst stale, and [`Store::compact`] reclaims them).
    fn intern_tuple(&mut self, t: &Tuple) -> Result<(), StoreError> {
        for v in t.iter() {
            self.dict_mut().intern(v)?;
        }
        Ok(())
    }

    /// The graph entry the update path already looked up by name.
    fn graph_entry_mut(&mut self, graph: &str) -> &mut GraphEntry {
        self.graphs.get_mut(graph).expect("entry looked up above")
    }

    /// Appends a row (reviving an identical tombstoned one when
    /// present), maintaining the adjacency overlay of binary relations.
    /// `Ok(false)` when an identical live row already exists.
    fn append_row_raw(&mut self, name: &RelName, t: &Tuple) -> Result<bool, StoreError> {
        let arity = self
            .relations
            .get(name)
            .ok_or_else(|| StoreError::UnknownRelation(name.clone()))?
            .arity();
        if t.arity() != arity {
            return Err(StoreError::RowArity {
                relation: name.clone(),
                expected: arity,
                found: t.arity(),
            });
        }
        let mut codes = Vec::with_capacity(arity);
        for v in t.iter() {
            codes.push(self.dict_mut().intern(v)?);
        }
        self.ensure_relation_indexes(name);
        let col = self.relation_mut(name).expect("present above");
        if col.find_live(&codes).is_some() {
            return Ok(false);
        }
        match col.find_dead(&codes) {
            Some(i) => {
                col.revive(i);
            }
            None => col.append(&codes),
        }
        if arity == 2 {
            self.pair_add(name, codes[0], codes[1]);
        }
        if name.as_str() != ADOM_REL {
            self.adom_add_codes(&codes);
        }
        Ok(true)
    }

    /// Tombstones the live row equal to `t`, maintaining the adjacency
    /// overlay. `false` when no such live row exists.
    fn tombstone_row_raw(&mut self, name: &RelName, t: &Tuple) -> bool {
        let Some(col) = self.relations.get(name) else {
            return false;
        };
        if col.arity() != t.arity() {
            return false;
        }
        let Some(codes) = self.encode_row(t) else {
            return false;
        };
        self.ensure_relation_indexes(name);
        let col = self.relation_mut(name).expect("present above");
        let Some(i) = col.find_live(&codes) else {
            return false;
        };
        col.tombstone(i);
        if codes.len() == 2 {
            self.pair_remove(name, codes[0], codes[1]);
        }
        self.adom_dirty = true;
        true
    }

    /// Tombstones every live row whose leading codes equal `prefix`
    /// (optionally further filtered by `also`, on the full coded row),
    /// maintaining the adjacency overlay. Candidates come from the
    /// column end indexes — O(rows sharing the leading code), not a
    /// relation scan. Returns the count.
    fn tombstone_prefix(
        &mut self,
        name: &RelName,
        prefix: &[u32],
        also: impl Fn(&[u32]) -> bool,
    ) -> usize {
        self.ensure_relation_indexes(name);
        let Some(col) = self.relations.get(name) else {
            return 0;
        };
        let arity = col.arity();
        let (rows, candidates) = col.live_rows_with_prefix(prefix);
        self.counters.record_writer_probe(candidates as u64);
        let mut hits: Vec<(usize, Vec<u32>)> = Vec::new();
        for i in rows {
            let row: Vec<u32> = (0..arity).map(|p| col.code_at(i, p)).collect();
            if also(&row) {
                hits.push((i, row));
            }
        }
        let col = self.relation_mut(name).expect("present above");
        for (i, _) in &hits {
            col.tombstone(*i);
        }
        if arity == 2 {
            for (_, row) in &hits {
                self.pair_remove(name, row[0], row[1]);
            }
        }
        if !hits.is_empty() {
            self.adom_dirty = true;
        }
        hits.len()
    }

    fn pair_add(&mut self, name: &RelName, s: u32, t: u32) {
        if let Some(entry) = self.adjacency.get_mut(name) {
            let in_base = entry.csr.has_pair(s, t);
            entry.delta.add(s, t, in_base);
        }
    }

    fn pair_remove(&mut self, name: &RelName, s: u32, t: u32) {
        if let Some(entry) = self.adjacency.get_mut(name) {
            let in_base = entry.csr.has_pair(s, t);
            entry.delta.remove(s, t, in_base);
        }
    }

    /// Live edge identifiers whose source or target is `id` — the
    /// suffix scan of `R3 ∪ R4`, deduplicated (a self-loop shows up in
    /// both and must be removed exactly once).
    fn edges_touching(&self, rs: &RelName, rt: &RelName, id: &Tuple, k: usize) -> Vec<Tuple> {
        let Some(idc) = self.encode_row(id) else {
            return Vec::new();
        };
        let mut out: std::collections::BTreeSet<Tuple> = std::collections::BTreeSet::new();
        for name in [rs, rt] {
            let Some(col) = self.relations.get(name) else {
                continue;
            };
            let (rows, candidates) = col.live_rows_with_suffix(&idc);
            self.counters.record_writer_probe(candidates as u64);
            for i in rows {
                out.insert(Tuple::new(
                    (0..k)
                        .map(|p| self.dict.value(col.code_at(i, p)).clone())
                        .collect(),
                ));
            }
        }
        out.into_iter().collect()
    }

    /// The `(src, tgt)` endpoints of a live edge — `R3`/`R4` are
    /// functional, so the first live prefix match is the only one.
    fn edge_endpoints(
        &self,
        rs: &RelName,
        rt: &RelName,
        id: &Tuple,
        k: usize,
    ) -> Result<(Tuple, Tuple), StoreError> {
        let missing = || StoreError::Update(UpdateError::NoSuchElement(id.clone()));
        let idc = self.encode_row(id).ok_or_else(missing)?;
        let src = self.suffix_of_prefix(rs, &idc, k).ok_or_else(missing)?;
        let tgt = self.suffix_of_prefix(rt, &idc, k).ok_or_else(missing)?;
        Ok((src, tgt))
    }

    fn suffix_of_prefix(&self, name: &RelName, prefix: &[u32], k: usize) -> Option<Tuple> {
        let col = self.relations.get(name)?;
        let (rows, candidates) = col.live_rows_with_prefix(&prefix[..k]);
        self.counters.record_writer_probe(candidates as u64);
        rows.into_iter().next().map(|i| {
            Tuple::new(
                (k..col.arity())
                    .map(|p| self.dict.value(col.code_at(i, p)).clone())
                    .collect(),
            )
        })
    }

    /// The labels carried by a live element (decoded, deduplicated).
    fn labels_of(&self, rl: &RelName, id: &Tuple, k: usize) -> Vec<Label> {
        let Some(idc) = self.encode_row(id) else {
            return Vec::new();
        };
        let Some(col) = self.relations.get(rl) else {
            return Vec::new();
        };
        let mut out: Vec<Label> = Vec::new();
        let (rows, candidates) = col.live_rows_with_prefix(&idc);
        self.counters.record_writer_probe(candidates as u64);
        for i in rows {
            let l = self.dict.value(col.code_at(i, k)).clone();
            if !out.contains(&l) {
                out.push(l);
            }
        }
        out
    }

    /// Whether any live edge connects `src → tgt`.
    fn edge_between(&self, rs: &RelName, rt: &RelName, src: &Tuple, tgt: &Tuple, k: usize) -> bool {
        let (Some(sc), Some(tc)) = (self.encode_row(src), self.encode_row(tgt)) else {
            return false;
        };
        let (Some(scol), Some(tcol)) = (self.relations.get(rs), self.relations.get(rt)) else {
            return false;
        };
        let (rows, candidates) = scol.live_rows_with_suffix(&sc);
        self.counters.record_writer_probe(candidates as u64);
        for i in rows {
            let mut row: Vec<u32> = (0..k).map(|p| scol.code_at(i, p)).collect();
            row.extend_from_slice(&tc);
            if tcol.find_live(&row).is_some() {
                return true;
            }
        }
        false
    }

    /// Whether any live edge labeled `label` connects the endpoints
    /// (given as `(src, tgt)`).
    fn labeled_edge_between(
        &self,
        rs: &RelName,
        rt: &RelName,
        rl: &RelName,
        label: &Label,
        endpoints: (&Tuple, &Tuple),
        k: usize,
    ) -> bool {
        let (src, tgt) = endpoints;
        let Some(lc) = self.dict.code(label) else {
            return false;
        };
        let (Some(sc), Some(tc)) = (self.encode_row(src), self.encode_row(tgt)) else {
            return false;
        };
        let (Some(lcol), Some(scol), Some(tcol)) = (
            self.relations.get(rl),
            self.relations.get(rs),
            self.relations.get(rt),
        ) else {
            return false;
        };
        let (rows, candidates) = lcol.live_rows_with_suffix(&[lc]);
        self.counters.record_writer_probe(candidates as u64);
        for i in rows {
            let mut srow: Vec<u32> = (0..k).map(|p| lcol.code_at(i, p)).collect();
            let mut trow = srow.clone();
            srow.extend_from_slice(&sc);
            trow.extend_from_slice(&tc);
            if scol.find_live(&srow).is_some() && tcol.find_live(&trow).is_some() {
                return true;
            }
        }
        false
    }

    /// Tombstones an edge's rows across `R2..R6` and maintains the
    /// graph entry's adjacency (node-level and per-label).
    fn remove_edge_everywhere(
        &mut self,
        graph: &str,
        views: &[RelName; 6],
        id: &Tuple,
        k: usize,
    ) -> Result<(), StoreError> {
        let [_, re, rs, rt, rl, rp] = views;
        let (src, tgt) = self.edge_endpoints(rs, rt, id, k)?;
        let labels = self.labels_of(rl, id, k);
        let idc = self
            .encode_row(id)
            .ok_or_else(|| StoreError::Update(UpdateError::NoSuchElement(id.clone())))?;
        self.tombstone_row_raw(re, id);
        self.tombstone_prefix(rs, &idc, |_| true);
        self.tombstone_prefix(rt, &idc, |_| true);
        self.tombstone_prefix(rl, &idc, |_| true);
        self.tombstone_prefix(rp, &idc, |_| true);
        let still_connected = self.edge_between(rs, rt, &src, &tgt, k);
        self.graphs
            .get_mut(graph)
            .expect("entry looked up by caller")
            .remove_edge(&src, &tgt, !still_connected);
        for l in labels {
            let still = self.labeled_edge_between(rs, rt, rl, &l, (&src, &tgt), k);
            self.graphs
                .get_mut(graph)
                .expect("entry looked up by caller")
                .label_remove(&l, &src, &tgt, !still);
        }
        Ok(())
    }

    /// Tombstones every label and property row of `id`. Node labels
    /// never enter the per-label edge CSRs, so no entry repair needed.
    fn strip_annotation_rows(&mut self, rl: &RelName, rp: &RelName, id: &Tuple) {
        let Some(idc) = self.encode_row(id) else {
            return;
        };
        self.tombstone_prefix(rl, &idc, |_| true);
        self.tombstone_prefix(rp, &idc, |_| true);
    }

    /// Tombstones the (at most one) live `R6` row for `(id, key)`.
    fn remove_prop_rows(&mut self, rp: &RelName, id: &Tuple, key: &Value, k: usize) {
        let Some(idc) = self.encode_row(id) else {
            return;
        };
        let Some(kc) = self.dict.code(key) else {
            return;
        };
        self.tombstone_prefix(rp, &idc, |row| row[k] == kc);
    }

    /// Which codes live rows reference. `exclude` skips one relation
    /// (the adom refresh must not count the adom relation itself).
    fn live_bitmap(&self, exclude: Option<&RelName>) -> Vec<bool> {
        let mut live = vec![false; self.dict.len()];
        for (name, col) in &self.relations {
            if exclude == Some(name) {
                continue;
            }
            for i in col.live_rows() {
                for p in 0..col.arity() {
                    live[col.code_at(i, p) as usize] = true;
                }
            }
        }
        live
    }

    /// Records inserted-row codes in the reserved [`ADOM_REL`] relation
    /// — values only ever *join* the active domain on an insert, so
    /// this is O(arity) hash probes, not a store scan.
    fn adom_add_codes(&mut self, codes: &[u32]) {
        let adom: RelName = ADOM_REL.into();
        self.ensure_relation_indexes(&adom);
        let Some(col) = self.relation_mut(&adom) else {
            return;
        };
        for &c in codes {
            if col.find_live(&[c]).is_some() {
                continue;
            }
            match col.find_dead(&[c]) {
                Some(i) => {
                    col.revive(i);
                }
                None => col.append(&[c]),
            }
        }
    }

    /// Recomputes the reserved [`ADOM_REL`] relation from the live rows
    /// of every other registered relation, so `AdomScan` plans keep
    /// answering for the post-update state. Inserts maintain the
    /// domain incrementally ([`Store::adom_add_codes`]); only
    /// deletions mark it dirty (a departed value may or may not occur
    /// elsewhere), and the recompute runs **once per mutation batch**,
    /// not per row. No-op when clean or when the store never
    /// registered an active domain.
    fn refresh_adom(&mut self) -> Result<(), StoreError> {
        let adom: RelName = ADOM_REL.into();
        if !self.adom_dirty || !self.relations.contains_key(&adom) {
            self.adom_dirty = false;
            return Ok(());
        }
        self.adom_dirty = false;
        let live = self.live_bitmap(Some(&adom));
        let mut codes: Vec<u32> = live
            .iter()
            .enumerate()
            .filter_map(|(c, &b)| b.then_some(c as u32))
            .collect();
        // Fresh registrations store adom rows in value order; keep the
        // refreshed layout identical so scans stay deterministic.
        codes.sort_by(|&a, &b| self.dict.value(a).cmp(self.dict.value(b)));
        self.relations
            .insert(adom, Arc::new(ColumnarRelation::unary_from_codes(codes)));
        Ok(())
    }

    /// Refreezes every view graph whose six backing relations include
    /// `name`, rebuilding from the store's current live rows. Entries
    /// whose view became invalid (or lost a backing relation) are
    /// dropped — nothing stale keeps answering; pattern calls fall
    /// back to per-query evaluation, which stays correct. With `hard`,
    /// an invalid view also surfaces as the typed error (the
    /// whole-relation swap path); without it the failure is soft (row-
    /// level mutations pass through transiently inconsistent states —
    /// the retained spec refreezes the graph once validity returns).
    fn refreeze_graphs_backed_by(&mut self, name: &RelName, hard: bool) -> Result<(), StoreError> {
        let affected: Vec<String> = self
            .view_specs
            .iter()
            .filter(|(_, (v, _))| v.contains(name))
            .map(|(n, _)| n.clone())
            .collect();
        let mut first_err = None;
        for g in affected {
            // Keep going past a failure: every affected graph must be
            // refrozen or invalidated, or the ones after the first
            // failure would keep answering stale.
            if let Err(e) = self.refreeze_view_graph(&g) {
                if hard && first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn refreeze_view_graph(&mut self, graph: &str) -> Result<(), StoreError> {
        let (views, form) = self
            .view_specs
            .get(graph)
            .cloned()
            .expect("caller listed the name");
        let mut rels = Vec::with_capacity(6);
        for name in &views {
            let Some(col) = self.relations.get(name) else {
                self.graphs.remove(graph);
                return Err(StoreError::UnknownRelation(name.clone()));
            };
            let rows = col.decode_rows(&self.dict);
            rels.push(
                Relation::from_rows(col.arity(), rows)
                    .expect("columnar rows share the relation arity"),
            );
        }
        let mut it = rels.into_iter();
        let vr = ViewRelations::new(
            it.next().unwrap(),
            it.next().unwrap(),
            it.next().unwrap(),
            it.next().unwrap(),
            it.next().unwrap(),
            it.next().unwrap(),
        );
        match Self::apply_view(&vr, form) {
            Ok(g) => {
                let e = GraphEntry::from_graph(&g, Some(views), form)?;
                self.graphs.insert(graph.to_string(), e);
                Ok(())
            }
            Err(e) => {
                self.graphs.remove(graph);
                Err(e)
            }
        }
    }

    /// Folds a relation's adjacency overlay into a fresh CSR when it
    /// has outgrown the threshold.
    fn fold_adjacency_if_oversized(&mut self, name: &RelName) -> Result<(), StoreError> {
        let Some(entry) = self.adjacency.get(name) else {
            return Ok(());
        };
        if !overlay_oversized(entry.delta.change_count(), entry.csr.edge_count()) {
            return Ok(());
        }
        self.rebuild_adjacency(name)
    }

    fn rebuild_adjacency(&mut self, name: &RelName) -> Result<(), StoreError> {
        let Some(col) = self.relations.get(name) else {
            self.adjacency.remove(name);
            return Ok(());
        };
        let pairs: Vec<(u32, u32)> = col
            .live_rows()
            .map(|i| (col.code_at(i, 0), col.code_at(i, 1)))
            .collect();
        let universe = pairs.iter().flat_map(|&(a, b)| [a, b]);
        let csr = Arc::new(CsrIndex::build(universe, &pairs)?);
        self.adjacency.insert(
            name.clone(),
            CsrWithDelta {
                csr,
                delta: DeltaAdjacency::new(),
            },
        );
        Ok(())
    }

    /// Rebuilds the dictionary retaining only **live** codes, remaps
    /// every column, drops tombstoned rows, rebuilds every relation
    /// CSR from the recoded live rows, and folds every graph overlay —
    /// the compaction story: `dictionary_stale` drops to 0 and no
    /// query result changes. Previously returned codes (from
    /// [`Store::encode`] / [`Store::intern_literal`]) are invalidated.
    pub fn compact(&mut self) -> Result<CompactionStats, StoreError> {
        self.stats_cache.invalidate();
        // Settle the active domain first: a dirty ⟨adom⟩ would keep
        // departed values alive through the rebuild.
        self.refresh_adom()?;
        let old_total = self.dict.len();
        let mut folded = 0usize;
        let mut dropped = 0usize;
        let mut next = Dictionary::with_limit(self.dict.limit());
        let mut map: HashMap<u32, u32> = HashMap::new();
        let dict = Arc::clone(&self.dict);
        for col in self.relations.values_mut() {
            dropped += Arc::make_mut(col).compact_remap(&mut |old| {
                *map.entry(old).or_insert_with(|| {
                    next.intern(dict.value(old))
                        .expect("compaction only shrinks the code space")
                })
            });
        }
        self.dict = Arc::new(next);
        let names: Vec<RelName> = self.adjacency.keys().cloned().collect();
        for name in names {
            folded += self
                .adjacency
                .get(&name)
                .map_or(0, |e| e.delta.change_count());
            self.rebuild_adjacency(&name)?;
        }
        let graph_names: Vec<String> = self.graphs.keys().cloned().collect();
        for g in graph_names {
            let e = self.graphs.get_mut(&g).expect("just listed");
            folded += e.overlay_size();
            e.fold()?;
        }
        let stats = CompactionStats {
            reclaimed_codes: old_total - self.dict.len(),
            dropped_rows: dropped,
            folded_overlay: folded,
        };
        self.last_compaction = Some(stats.clone());
        Ok(stats)
    }

    /// The effect of the most recent [`Store::compact`], if any.
    pub fn last_compaction(&self) -> Option<&CompactionStats> {
        self.last_compaction.as_ref()
    }

    /// Codes referenced by the **live** rows of currently registered
    /// relations. Because the dictionary is append-only, deletions and
    /// re-registrations leave stale codes behind; `stats` surfaces the
    /// gap so sessions can decide when [`Store::compact`] is worth it.
    pub fn live_codes(&self) -> usize {
        self.live_bitmap(None).iter().filter(|&&b| b).count()
    }

    /// A storage-layout report (the shell's `STATS` command).
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            dictionary_total: self.dict.len(),
            dictionary_live: self.live_codes(),
            relations: self
                .relations
                .iter()
                .map(|(name, c)| RelationStats {
                    name: name.to_string(),
                    rows: c.len(),
                    arity: c.arity(),
                    coded_bytes: c.coded_bytes(),
                    indexed: self.adjacency.contains_key(name),
                    tombstones: c.tombstones(),
                    delta_pairs: self
                        .adjacency
                        .get(name)
                        .map_or(0, |e| e.delta.change_count()),
                })
                .collect(),
            graphs: self
                .graphs
                .iter()
                .map(|(name, e)| GraphStats {
                    name: name.clone(),
                    nodes: e.node_count(),
                    edges: e.edge_count(),
                    id_arity: e.id_arity,
                    csr_entries: e.adjacency().edge_count(),
                    overlay: e.overlay_size(),
                    labels: e
                        .labels
                        .iter()
                        // Labels are almost always strings; render them
                        // bare rather than with `Value`'s quoting.
                        .map(|(l, li)| {
                            let text = l.as_str().map_or_else(|| l.to_string(), String::from);
                            (text, li.view().edge_count())
                        })
                        .collect(),
                })
                .collect(),
            last_compaction: self.last_compaction.clone(),
            bytes: self.memory_bytes(),
        }
    }

    /// Estimated resident heap bytes by component — also available
    /// without the full [`Store::stats`] report (which walks every
    /// live row for the dictionary-liveness numbers; this does not).
    pub fn memory_bytes(&self) -> MemoryBytes {
        MemoryBytes {
            dictionary: self.dict.resident_bytes(),
            columns: self
                .relations
                .values()
                .map(|c| c.coded_bytes() + c.index_bytes())
                .sum(),
            csr: self
                .adjacency
                .values()
                .map(|e| e.csr.resident_bytes())
                .sum::<usize>()
                + self
                    .graphs
                    .values()
                    .map(GraphEntry::csr_bytes)
                    .sum::<usize>(),
            overlays: self
                .adjacency
                .values()
                .map(|e| e.delta.resident_bytes())
                .sum::<usize>()
                + self
                    .graphs
                    .values()
                    .map(GraphEntry::overlay_bytes)
                    .sum::<usize>(),
        }
    }
}

/// Estimated resident heap bytes by store component, surfaced through
/// [`StoreStats`] (the shell's `STATS`/`STATS JSON`) and read by the
/// PR 9 scaling benches. Estimates — Rust exposes no exact allocator
/// accounting — but faithful for the structures that dominate at
/// million-row scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryBytes {
    /// Value dictionary: value vector, code map, string payloads.
    pub dictionary: usize,
    /// Columnar relations: coded columns plus row/end indexes (0 for
    /// the indexes while a bulk-loaded relation defers them).
    pub columns: usize,
    /// Frozen CSR indexes: per-relation adjacency plus every graph's
    /// node-level and per-label indexes.
    pub csr: usize,
    /// Mutable overlays: delta adjacency on relations and graphs.
    pub overlays: usize,
}

impl MemoryBytes {
    /// Sum over every component.
    pub fn total(&self) -> usize {
        self.dictionary + self.columns + self.csr + self.overlays
    }
}

/// Layout numbers for one registered relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationStats {
    /// Relation name.
    pub name: String,
    /// Live row count.
    pub rows: usize,
    /// Attribute count.
    pub arity: usize,
    /// Resident coded size in bytes (tombstoned rows included;
    /// dictionary excluded).
    pub coded_bytes: usize,
    /// Whether a CSR adjacency index exists (binary relations).
    pub indexed: bool,
    /// Tombstoned rows still resident (dropped by `Store::compact`).
    pub tombstones: usize,
    /// Adjacency-overlay size (pairs added + removed since the freeze).
    pub delta_pairs: usize,
}

/// Layout numbers for one frozen graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphStats {
    /// Graph name.
    pub name: String,
    /// `|N|` (live).
    pub nodes: usize,
    /// `|E|` (live).
    pub edges: usize,
    /// Identifier arity.
    pub id_arity: usize,
    /// Distinct endpoint pairs in the effective (base ⊕ overlay)
    /// adjacency.
    pub csr_entries: usize,
    /// Overlay residency: delta pairs + tombstoned/appended nodes.
    pub overlay: usize,
    /// `(label, per-label effective pairs)` in label order.
    pub labels: Vec<(String, usize)>,
}

/// The full storage-layout report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreStats {
    /// Codes ever minted (the append-only dictionary never forgets —
    /// until [`Store::compact`] rebuilds it).
    pub dictionary_total: usize,
    /// Codes referenced by live rows of registered relations. The
    /// difference `total − live` is the residency cost of stale codes
    /// left behind by deletions and re-registration; [`Store::compact`]
    /// reclaims it.
    pub dictionary_live: usize,
    /// Per-relation layout, in name order.
    pub relations: Vec<RelationStats>,
    /// Per-graph layout, in name order.
    pub graphs: Vec<GraphStats>,
    /// The effect of the most recent compaction, if any ran.
    pub last_compaction: Option<CompactionStats>,
    /// Estimated resident heap bytes by component.
    pub bytes: MemoryBytes,
}

impl StoreStats {
    /// Stale codes: minted but unreferenced by any live row.
    pub fn dictionary_stale(&self) -> usize {
        self.dictionary_total - self.dictionary_live
    }

    /// Tombstoned rows still resident across all relations.
    pub fn tombstone_rows(&self) -> usize {
        self.relations.iter().map(|r| r.tombstones).sum()
    }

    /// Overlay entries across relation adjacency indexes and graphs.
    pub fn overlay_entries(&self) -> usize {
        self.relations.iter().map(|r| r.delta_pairs).sum::<usize>()
            + self.graphs.iter().map(|g| g.overlay).sum::<usize>()
    }
}

impl fmt::Display for StoreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "dictionary: {} code(s) minted, {} live, {} stale",
            self.dictionary_total,
            self.dictionary_live,
            self.dictionary_stale()
        )?;
        writeln!(
            f,
            "overlay: {} delta entr(y/ies), {} tombstoned row(s)",
            self.overlay_entries(),
            self.tombstone_rows()
        )?;
        writeln!(
            f,
            "resident: {} byte(s) (dictionary {}, columns {}, CSR {}, overlays {})",
            self.bytes.total(),
            self.bytes.dictionary,
            self.bytes.columns,
            self.bytes.csr,
            self.bytes.overlays
        )?;
        match &self.last_compaction {
            Some(c) => writeln!(f, "last compaction: {c}")?,
            None => writeln!(f, "last compaction: none")?,
        }
        for r in &self.relations {
            write!(
                f,
                "relation {}: {} row(s) × {} col(s), {} coded byte(s)",
                r.name, r.rows, r.arity, r.coded_bytes
            )?;
            if r.tombstones > 0 {
                write!(f, ", {} tombstone(s)", r.tombstones)?;
            }
            write!(f, "{}", if r.indexed { ", CSR indexed" } else { "" })?;
            if r.delta_pairs > 0 {
                write!(f, " (+{} delta pair(s))", r.delta_pairs)?;
            }
            writeln!(f)?;
        }
        for g in &self.graphs {
            write!(
                f,
                "graph {}: {} node(s), {} edge(s), id arity {}, {} CSR pair(s)",
                g.name, g.nodes, g.edges, g.id_arity, g.csr_entries
            )?;
            if g.overlay > 0 {
                write!(f, ", overlay {}", g.overlay)?;
            }
            if g.labels.is_empty() {
                writeln!(f)?;
            } else {
                let labels: Vec<String> =
                    g.labels.iter().map(|(l, n)| format!("{l}({n})")).collect();
                writeln!(f, "; labels: {}", labels.join(", "))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgq_value::tuple;

    /// The canonical 4-chain a→b→c→d with one labeled edge.
    fn chain_db() -> Database {
        let mut db = Database::new();
        for n in ["a", "b", "c", "d"] {
            db.insert("N", tuple![n]).unwrap();
        }
        for (e, s, t) in [("e1", "a", "b"), ("e2", "b", "c"), ("e3", "c", "d")] {
            db.insert("E", tuple![e]).unwrap();
            db.insert("S", tuple![e, s]).unwrap();
            db.insert("T", tuple![e, t]).unwrap();
        }
        db.insert("L", tuple!["e1", "Transfer"]).unwrap();
        db.add_relation("P", Relation::empty(3));
        db
    }

    fn views() -> [RelName; 6] {
        ["N", "E", "S", "T", "L", "P"].map(Into::into)
    }

    fn nid(n: &str) -> Tuple {
        Tuple::unary(Value::str(n))
    }

    #[test]
    fn database_registration_round_trips() {
        let db = chain_db();
        let store = Store::from_database(&db);
        for (name, rel) in db.iter() {
            let rows = store.scan(name).unwrap();
            assert_eq!(
                Relation::from_rows(rel.arity(), rows).unwrap(),
                *rel,
                "{name}"
            );
        }
        // Binary relations carry adjacency; others don't.
        assert!(store.adjacency(&"S".into()).is_some());
        assert!(store.adjacency(&"N".into()).is_none());
        // The reserved adom relation matches the database's.
        let adom = store.scan(&ADOM_REL.into()).unwrap();
        assert_eq!(
            Relation::from_rows(1, adom).unwrap(),
            db.active_domain_relation()
        );
    }

    #[test]
    fn reregistration_refreezes_view_graphs() {
        let mut db = chain_db();
        let mut store = Store::from_database(&db);
        store
            .register_view_graph("G", views(), &db, GraphForm::Exact(1))
            .unwrap();
        assert_eq!(
            store.graph("G").unwrap().reach_relation(true, false).len(),
            6
        );
        // New edge d→a closes the cycle; re-registration must see it.
        db.insert("E", tuple!["e4"]).unwrap();
        db.insert("S", tuple!["e4", "d"]).unwrap();
        db.insert("T", tuple!["e4", "a"]).unwrap();
        store.register_database(&db).unwrap();
        assert_eq!(
            store.graph("G").unwrap().reach_relation(true, false).len(),
            16
        );
        // A view that became invalid surfaces as a typed error.
        db.insert("N", tuple!["e1"]).unwrap(); // node id clashes with an edge id
        assert!(matches!(
            store.register_database(&db),
            Err(StoreError::View(_))
        ));
        // Graphs frozen from explicit PropertyGraphs cannot be rebuilt
        // from the database and are dropped on re-registration.
        let db = chain_db();
        let mut store = Store::from_database(&db);
        let g = pgq_graph::PropertyGraph::empty(1);
        store
            .register_graph("ad-hoc", &g, None, GraphForm::Exact(1))
            .unwrap();
        store.register_database(&db).unwrap();
        assert!(store.graph("ad-hoc").is_none());

        // Relations absent from the new database are dropped too.
        let mut smaller = Database::new();
        smaller.insert("OnlyThis", tuple![1]).unwrap();
        store.register_database(&smaller).unwrap();
        assert!(!store.has_relation(&"N".into()));
        assert!(store.adjacency(&"S".into()).is_none());
        assert!(store.has_relation(&"OnlyThis".into()));
    }

    #[test]
    fn reregistration_drops_stale_adjacency() {
        let mut store = Store::new();
        let binary = Relation::from_rows(2, [tuple![1, 2]]).unwrap();
        store.register_relation("R".into(), &binary).unwrap();
        assert!(store.adjacency(&"R".into()).is_some());
        let ternary = Relation::from_rows(3, [tuple![1, 2, 3]]).unwrap();
        store.register_relation("R".into(), &ternary).unwrap();
        assert!(store.adjacency(&"R".into()).is_none());
        assert_eq!(store.relation(&"R".into()).unwrap().arity(), 3);
    }

    /// The PR 5 stale-state audit: directly re-registering a relation
    /// that backs a frozen view graph must refreeze (or invalidate)
    /// the graph instead of letting plans read dead pairs.
    #[test]
    fn reregistering_a_backing_relation_refreezes_the_graph() {
        let db = chain_db();
        let mut store = Store::from_database(&db);
        store
            .register_view_graph("G", views(), &db, GraphForm::Exact(1))
            .unwrap();
        assert_eq!(
            store.graph("G").unwrap().reach_relation(true, false).len(),
            6
        );
        // Replace T wholesale: every edge now targets "a" — the frozen
        // entry must answer for the *new* pairs.
        let new_t =
            Relation::from_rows(2, [tuple!["e1", "a"], tuple!["e2", "a"], tuple!["e3", "a"]])
                .unwrap();
        store.register_relation("T".into(), &new_t).unwrap();
        let reach = store.graph("G").unwrap().reach_relation(true, false);
        assert!(reach.contains(&tuple!["b", "a"]));
        assert!(!reach.contains(&tuple!["a", "d"]));
        // A replacement that invalidates the view drops the entry and
        // errors instead of answering stale.
        let clash = Relation::from_rows(1, [tuple!["e1"], tuple!["a"]]).unwrap();
        assert!(matches!(
            store.register_relation("N".into(), &clash),
            Err(StoreError::View(_))
        ));
        assert!(store.graph("G").is_none());
    }

    #[test]
    fn view_graph_registration_and_reachability() {
        let db = chain_db();
        let mut store = Store::from_database(&db);
        store
            .register_view_graph("G", views(), &db, GraphForm::Exact(1))
            .unwrap();
        let entry = store.graph("G").unwrap();
        assert_eq!(entry.node_count(), 4);
        assert_eq!(entry.edge_count(), 3);
        assert!(entry.has_reach_pair());
        assert_eq!(entry.label_names().count(), 1);
        assert!(!entry.has_overlay());

        // ≥1-step pairs on the chain: 3+2+1; 0-step adds 4 reflexive.
        let plus = entry.reach_relation(true, false);
        assert_eq!(plus.len(), 6);
        assert!(plus.contains(&tuple!["a", "d"]));
        let star = entry.reach_relation(false, false);
        assert_eq!(star.len(), 10);
        assert!(star.contains(&tuple!["a", "a"]));
        let swapped = entry.reach_relation(true, true);
        assert!(swapped.contains(&tuple!["d", "a"]));

        // The planner's match point.
        assert!(store
            .graph_for_views(&views(), GraphForm::Exact(1))
            .is_some());
        assert!(store.graph_for_views(&views(), GraphForm::Ext).is_none());
        let mut other = views();
        other.swap(2, 3);
        assert!(store.graph_for_views(&other, GraphForm::Exact(1)).is_none());
    }

    #[test]
    fn invalid_views_error_at_registration() {
        let db = chain_db();
        let mut store = Store::from_database(&db);
        // N used as both node and edge set: disjointness fails.
        let bad = ["N", "N", "S", "T", "L", "P"].map(Into::into);
        assert!(matches!(
            store.register_view_graph("bad", bad, &db, GraphForm::Exact(1)),
            Err(StoreError::View(_))
        ));
        let missing = ["Nope", "E", "S", "T", "L", "P"].map(Into::into);
        assert!(matches!(
            store.register_view_graph("bad", missing, &db, GraphForm::Exact(1)),
            Err(StoreError::UnknownRelation(_))
        ));
    }

    #[test]
    fn stats_report_layout() {
        let db = chain_db();
        let mut store = Store::from_database(&db);
        store
            .register_view_graph("G", views(), &db, GraphForm::Exact(1))
            .unwrap();
        let stats = store.stats();
        assert!(stats.dictionary_total >= 8);
        // A fresh registration references every code it minted.
        assert_eq!(stats.dictionary_live, stats.dictionary_total);
        assert_eq!(stats.dictionary_stale(), 0);
        assert_eq!(stats.tombstone_rows(), 0);
        assert_eq!(stats.overlay_entries(), 0);
        assert!(stats.last_compaction.is_none());
        let s_rel = stats.relations.iter().find(|r| r.name == "S").unwrap();
        assert!(s_rel.indexed);
        assert_eq!(s_rel.rows, 3);
        assert_eq!(stats.graphs[0].labels, vec![("Transfer".to_string(), 1)]);
        let text = stats.to_string();
        assert!(text.contains("graph G: 4 node(s), 3 edge(s)"));
        assert!(text.contains("CSR indexed"));
        assert!(text.contains("0 stale"));
        assert!(text.contains("last compaction: none"));
        assert!(text.contains("overlay: 0 delta entr(y/ies), 0 tombstoned row(s)"));
    }

    #[test]
    fn reregistration_tracks_stale_codes() {
        let mut store = Store::new();
        let mut db = Database::new();
        db.insert("R", tuple!["gone", "kept"]).unwrap();
        store.register_database(&db).unwrap();
        let before = store.stats();
        assert_eq!(before.dictionary_stale(), 0);
        // Replace the row: the dictionary keeps "gone" forever.
        let mut db = Database::new();
        db.insert("R", tuple!["fresh", "kept"]).unwrap();
        store.register_database(&db).unwrap();
        let after = store.stats();
        assert_eq!(after.dictionary_total, 3);
        assert_eq!(after.dictionary_live, 2);
        assert_eq!(after.dictionary_stale(), 1);
        // Stale codes still decode — they are unreachable, not dangling.
        let gone = store.encode(&Value::str("gone")).unwrap();
        assert_eq!(store.decode(gone), &Value::str("gone"));
        // Compaction reclaims the slot without changing any scan.
        let rows = store.scan(&"R".into()).unwrap();
        let effect = store.compact().unwrap();
        assert_eq!(effect.reclaimed_codes, 1);
        assert_eq!(store.scan(&"R".into()).unwrap(), rows);
        assert_eq!(store.stats().dictionary_stale(), 0);
        assert_eq!(store.encode(&Value::str("gone")), None);
        assert!(store.last_compaction().is_some());
    }

    #[test]
    fn dictionary_exhaustion_propagates_through_registration() {
        let mut store = Store {
            dict: Dictionary::with_limit(3).into(),
            ..Store::new()
        };
        let mut db = Database::new();
        for i in 0..4i64 {
            db.insert("V", tuple![i]).unwrap();
        }
        assert!(matches!(
            store.register_database(&db),
            Err(StoreError::DictionaryFull { limit: 3 })
        ));
        // Within the limit, registration (and literal interning) works.
        let mut small = Database::new();
        small.insert("V", tuple![1]).unwrap();
        let mut store = Store {
            dict: Dictionary::with_limit(2).into(),
            ..Store::new()
        };
        store.register_database(&small).unwrap();
        assert!(store.intern_literal(&Value::int(99)).is_ok());
        assert!(matches!(
            store.intern_literal(&Value::int(100)),
            Err(StoreError::DictionaryFull { .. })
        ));
        // Compaction preserves the configured limit.
        store.compact().unwrap();
        assert_eq!(store.dict().limit(), 2);
    }

    #[test]
    fn empty_graph_and_self_loops() {
        let mut db = Database::new();
        db.add_relation("N", Relation::empty(1));
        db.add_relation("E", Relation::empty(1));
        db.add_relation("S", Relation::empty(2));
        db.add_relation("T", Relation::empty(2));
        db.add_relation("L", Relation::empty(2));
        db.add_relation("P", Relation::empty(3));
        let mut store = Store::from_database(&db);
        store
            .register_view_graph("empty", views(), &db, GraphForm::Exact(1))
            .unwrap();
        let e = store.graph("empty").unwrap();
        assert!(!e.has_reach_pair());
        assert!(e.reach_relation(true, false).is_empty());
        assert!(e.reach_relation(false, false).is_empty());

        // Self loop: a →e→ a.
        db.insert("N", tuple!["a"]).unwrap();
        db.insert("E", tuple!["e"]).unwrap();
        db.insert("S", tuple!["e", "a"]).unwrap();
        db.insert("T", tuple!["e", "a"]).unwrap();
        let mut store = Store::from_database(&db);
        store
            .register_view_graph("loop", views(), &db, GraphForm::Exact(1))
            .unwrap();
        let e = store.graph("loop").unwrap();
        assert_eq!(e.reach_relation(true, false).len(), 1);
        assert_eq!(e.reach_relation(false, false).len(), 1);
    }

    // ---- incremental maintenance (PR 5) ----

    fn registered_store() -> (Database, Store) {
        let db = chain_db();
        let mut store = Store::from_database(&db);
        store
            .register_view_graph("G", views(), &db, GraphForm::Exact(1))
            .unwrap();
        (db, store)
    }

    #[test]
    fn apply_update_add_edge_extends_reachability() {
        let (_, mut store) = registered_store();
        store
            .apply_update(
                "G",
                &Update::AddEdge {
                    id: nid("e4"),
                    src: nid("d"),
                    tgt: nid("a"),
                },
            )
            .unwrap();
        let entry = store.graph("G").unwrap();
        assert!(entry.has_overlay());
        assert_eq!(entry.edge_count(), 4);
        // The cycle closes: every ordered pair is reachable.
        assert_eq!(entry.reach_relation(true, false).len(), 16);
        // The backing relations saw the rows.
        assert!(store.rel_contains(&"E".into(), &nid("e4")));
        assert!(store.rel_contains(&"S".into(), &tuple!["e4", "d"]));
        // The S/T adjacency overlays saw the pairs.
        assert!(store.adjacency(&"S".into()).unwrap().has_delta());
        // The frozen active domain saw the new value.
        let adom = store.scan(&ADOM_REL.into()).unwrap();
        assert!(adom.contains(&tuple!["e4"]));
    }

    #[test]
    fn apply_update_detach_remove_cascades() {
        let (_, mut store) = registered_store();
        store
            .apply_update("G", &Update::DetachRemoveNode(nid("b")))
            .unwrap();
        let entry = store.graph("G").unwrap();
        assert_eq!(entry.node_count(), 3);
        assert_eq!(entry.edge_count(), 1); // only c→d survives
        let reach = entry.reach_relation(true, false);
        assert_eq!(reach.len(), 1);
        assert!(reach.contains(&tuple!["c", "d"]));
        // e1's label row (and the Transfer label CSR pair) are gone.
        assert!(!store.rel_contains(&"L".into(), &tuple!["e1", "Transfer"]));
        let transfer: Label = Value::str("Transfer");
        assert_eq!(
            entry
                .label_adjacency(&transfer)
                .map_or(0, |v| v.edge_count()),
            0
        );
        // Tombstones are visible in stats until compaction.
        let stats = store.stats();
        assert!(stats.tombstone_rows() > 0);
        assert!(stats.overlay_entries() > 0);
    }

    #[test]
    fn apply_update_validation_mirrors_the_reference_semantics() {
        let (_, mut store) = registered_store();
        // RemoveNode refuses incident edges.
        assert!(matches!(
            store.apply_update("G", &Update::RemoveNode(nid("a"))),
            Err(StoreError::Update(UpdateError::NodeHasEdges(_)))
        ));
        // Id disjointness.
        assert!(matches!(
            store.apply_update("G", &Update::AddNode(nid("e1"))),
            Err(StoreError::Update(UpdateError::IdInUse(_)))
        ));
        // Dangling endpoints.
        assert!(matches!(
            store.apply_update(
                "G",
                &Update::AddEdge {
                    id: nid("e9"),
                    src: nid("a"),
                    tgt: nid("ghost"),
                }
            ),
            Err(StoreError::Update(UpdateError::DanglingEndpoint(_)))
        ));
        // Arity mismatch.
        assert!(matches!(
            store.apply_update("G", &Update::AddNode(tuple![1, 2])),
            Err(StoreError::Update(UpdateError::ArityMismatch { .. }))
        ));
        // Unknown graph / non-view graph.
        assert!(matches!(
            store.apply_update("nope", &Update::AddNode(nid("x"))),
            Err(StoreError::UnknownGraph(_))
        ));
        let g = pgq_graph::PropertyGraph::empty(1);
        store
            .register_graph("frozen", &g, None, GraphForm::Exact(1))
            .unwrap();
        assert!(matches!(
            store.apply_update("frozen", &Update::AddNode(nid("x"))),
            Err(StoreError::NotUpdatable(_))
        ));
        // A rejected update left everything untouched.
        assert_eq!(store.graph("G").unwrap().node_count(), 4);
        assert_eq!(store.graph("G").unwrap().edge_count(), 3);
    }

    #[test]
    fn labels_and_props_update_in_place() {
        let (_, mut store) = registered_store();
        let transfer: Label = Value::str("Transfer");
        store
            .apply_updates(
                "G",
                &[
                    Update::AddLabel(nid("e2"), transfer.clone()),
                    Update::SetProp(nid("a"), Value::str("name"), Value::str("ada")),
                    Update::SetProp(nid("a"), Value::str("name"), Value::str("grace")),
                ],
            )
            .unwrap();
        let entry = store.graph("G").unwrap();
        assert_eq!(
            entry
                .label_adjacency(&transfer)
                .map_or(0, |v| v.edge_count()),
            2
        );
        // R6 stays functional: exactly one live (a, name, ·) row.
        let props = store.scan(&"P".into()).unwrap();
        assert_eq!(props.len(), 1);
        assert!(props.contains(&tuple!["a", "name", "grace"]));
        // Removing the label and the prop rolls both back.
        store
            .apply_updates(
                "G",
                &[
                    Update::RemoveLabel(nid("e2"), transfer.clone()),
                    Update::RemoveProp(nid("a"), Value::str("name")),
                ],
            )
            .unwrap();
        let entry = store.graph("G").unwrap();
        assert_eq!(
            entry
                .label_adjacency(&transfer)
                .map_or(0, |v| v.edge_count()),
            1
        );
        assert!(store.scan(&"P".into()).unwrap().is_empty());
    }

    #[test]
    fn compact_folds_overlays_and_preserves_answers() {
        let (_, mut store) = registered_store();
        store
            .apply_updates(
                "G",
                &[
                    Update::AddNode(nid("z")),
                    Update::AddEdge {
                        id: nid("e4"),
                        src: nid("d"),
                        tgt: nid("z"),
                    },
                    Update::DetachRemoveNode(nid("a")),
                ],
            )
            .unwrap();
        let before = store.graph("G").unwrap().reach_relation(true, false);
        let scans: Vec<Vec<Tuple>> = views().iter().map(|v| store.scan(v).unwrap()).collect();
        assert!(store.stats().dictionary_stale() > 0);
        let effect = store.compact().unwrap();
        assert!(effect.reclaimed_codes > 0);
        assert!(effect.dropped_rows > 0);
        assert!(effect.folded_overlay > 0);
        // Post-compaction: zero stale, zero overlay, identical answers.
        let stats = store.stats();
        assert_eq!(stats.dictionary_stale(), 0);
        assert_eq!(stats.tombstone_rows(), 0);
        assert_eq!(stats.overlay_entries(), 0);
        let entry = store.graph("G").unwrap();
        assert!(!entry.has_overlay());
        assert_eq!(entry.reach_relation(true, false), before);
        for (v, old) in views().iter().zip(scans) {
            assert_eq!(
                Relation::from_rows(old.first().map_or(1, Tuple::arity), store.scan(v).unwrap()),
                Relation::from_rows(old.first().map_or(1, Tuple::arity), old),
                "{v}"
            );
        }
        assert_eq!(stats.last_compaction, Some(effect));
    }

    #[test]
    fn row_level_mutation_repairs_backed_graphs() {
        let (_, mut store) = registered_store();
        // Insert the closing edge through the relation-level API: the
        // frozen graph must be refrozen (it has no incremental hint).
        store.insert_row("E", &tuple!["e4"]).unwrap();
        store.insert_row("S", &tuple!["e4", "d"]).unwrap();
        store.insert_row("T", &tuple!["e4", "a"]).unwrap();
        assert_eq!(
            store.graph("G").unwrap().reach_relation(true, false).len(),
            16
        );
        // Deleting it again rolls the graph back.
        store.delete_row(&"E".into(), &tuple!["e4"]).unwrap();
        store.delete_row(&"S".into(), &tuple!["e4", "d"]).unwrap();
        store.delete_row(&"T".into(), &tuple!["e4", "a"]).unwrap();
        assert_eq!(
            store.graph("G").unwrap().reach_relation(true, false).len(),
            6
        );
        // Duplicate insert and phantom delete are no-ops.
        assert!(!store.insert_row("N", &tuple!["a"]).unwrap());
        assert!(!store.delete_row(&"N".into(), &tuple!["ghost"]).unwrap());
        // Insert into a brand-new relation registers it on the fly.
        assert!(store.insert_row("Fresh", &tuple![1, 2]).unwrap());
        assert!(store.adjacency(&"Fresh".into()).is_some());
        assert!(matches!(
            store.insert_row("Fresh", &tuple![1]),
            Err(StoreError::RowArity { .. })
        ));
    }

    #[test]
    fn delete_and_reinsert_revives_the_tombstoned_row() {
        let (_, mut store) = registered_store();
        let physical = store.relation(&"N".into()).unwrap().physical_len();
        store.delete_row(&"N".into(), &tuple!["d"]).ok();
        // "d" is a target of e3 — the graph view becomes invalid, the
        // entry is dropped and the error surfaces.
        // (Validation happens on refreeze: the relation edit stands.)
        assert!(store.graph("G").is_none());
        store.insert_row("N", &tuple!["d"]).unwrap();
        // The revived row reuses its physical slot.
        assert_eq!(
            store.relation(&"N".into()).unwrap().physical_len(),
            physical
        );
        assert_eq!(store.relation(&"N".into()).unwrap().tombstones(), 0);
    }

    /// Dictionary exhaustion mid-update must reject atomically: no
    /// half-applied edge (an `R2` row without its `R3`/`R4` rows would
    /// break the view's totality).
    #[test]
    fn exhaustion_mid_update_is_atomic() {
        let db = chain_db();
        let minted = Store::from_database(&db).dict().len();
        let mut store = Store {
            dict: Dictionary::with_limit(minted).into(),
            ..Store::new()
        };
        store.register_database(&db).unwrap();
        store
            .register_view_graph("G", views(), &db, GraphForm::Exact(1))
            .unwrap();
        // The new edge id needs one fresh code: DictionaryFull.
        let err = store.apply_update(
            "G",
            &Update::AddEdge {
                id: nid("e4"),
                src: nid("d"),
                tgt: nid("a"),
            },
        );
        assert!(matches!(err, Err(StoreError::DictionaryFull { .. })));
        // Nothing landed: E unchanged, no dangling S/T rows, entry
        // unchanged — and the store still validates as a view.
        assert!(!store.rel_contains(&"E".into(), &nid("e4")));
        assert_eq!(store.relation(&"S".into()).unwrap().len(), 3);
        assert_eq!(store.relation(&"T".into()).unwrap().len(), 3);
        let entry = store.graph("G").unwrap();
        assert_eq!(entry.edge_count(), 3);
        assert!(!entry.has_overlay());
        // Same discipline for AddNode and SetProp.
        assert!(matches!(
            store.apply_update("G", &Update::AddNode(nid("z"))),
            Err(StoreError::DictionaryFull { .. })
        ));
        assert!(!store.rel_contains(&"N".into(), &nid("z")));
        assert_eq!(store.graph("G").unwrap().node_count(), 4);
        assert!(matches!(
            store.apply_update(
                "G",
                &Update::SetProp(nid("a"), Value::str("k"), Value::int(1))
            ),
            Err(StoreError::DictionaryFull { .. })
        ));
        assert!(store.scan(&"P".into()).unwrap().is_empty());
    }

    /// A mid-batch rejection must not skip the finishing pass: the
    /// already-applied prefix stays visible through ⟨adom⟩ too.
    #[test]
    fn rejected_batch_still_refreshes_adom_for_the_applied_prefix() {
        let (_, mut store) = registered_store();
        let err = store.apply_updates(
            "G",
            &[
                Update::AddNode(nid("z")),
                Update::RemoveNode(nid("ghost")), // rejected
            ],
        );
        assert!(matches!(
            err,
            Err(StoreError::Update(UpdateError::NoSuchElement(_)))
        ));
        // AddNode("z") stays applied (per-update atomicity) — and the
        // frozen active domain already knows it.
        assert!(store.rel_contains(&"N".into(), &nid("z")));
        let adom = store.scan(&ADOM_REL.into()).unwrap();
        assert!(adom.contains(&tuple!["z"]), "{adom:?}");
    }

    /// A hard refreeze failure on one backed graph must not leave
    /// *other* graphs over the same relation answering stale.
    #[test]
    fn refreeze_failure_still_repairs_sibling_graphs() {
        // Two graphs sharing N/E/S/T, with separate (empty) label and
        // property relations.
        let mut db = chain_db();
        db.add_relation("L2", Relation::empty(2));
        db.add_relation("P2", Relation::empty(3));
        let mut store = Store::from_database(&db);
        let views_a: [RelName; 6] = ["N", "E", "S", "T", "L", "P"].map(Into::into);
        let views_b: [RelName; 6] = ["N", "E", "S", "T", "L2", "P2"].map(Into::into);
        store
            .register_view_graph("A", views_a, &db, GraphForm::Exact(1))
            .unwrap();
        store
            .register_view_graph("B", views_b, &db, GraphForm::Exact(1))
            .unwrap();
        // A valid replacement of the shared T refreezes both.
        let new_t =
            Relation::from_rows(2, [tuple!["e1", "a"], tuple!["e2", "a"], tuple!["e3", "a"]])
                .unwrap();
        store.register_relation("T".into(), &new_t).unwrap();
        for g in ["A", "B"] {
            let reach = store.graph(g).unwrap().reach_relation(true, false);
            assert!(reach.contains(&tuple!["b", "a"]), "{g}");
            assert!(!reach.contains(&tuple!["a", "d"]), "{g}");
        }
        // The failure path: a replacement of the shared N that
        // invalidates both views. Both entries must be dropped — the
        // error from the first (name order) must not shield the second
        // from repair.
        let clash = Relation::from_rows(1, [tuple!["e1"], tuple!["a"]]).unwrap();
        assert!(matches!(
            store.register_relation("N".into(), &clash),
            Err(StoreError::View(_))
        ));
        assert!(store.graph("A").is_none());
        assert!(store.graph("B").is_none());
    }

    #[test]
    fn oversized_overlays_fold_back_into_fresh_csr() {
        let (_, mut store) = registered_store();
        // 40 new nodes chained onto "d": far past the 32-change fold
        // threshold, so the batch must leave no overlay behind.
        let mut updates = Vec::new();
        let mut prev = nid("d");
        for i in 0..40 {
            let n = Tuple::unary(Value::str(format!("n{i}")));
            updates.push(Update::AddNode(n.clone()));
            updates.push(Update::AddEdge {
                id: Tuple::unary(Value::str(format!("x{i}"))),
                src: prev.clone(),
                tgt: n.clone(),
            });
            prev = n;
        }
        store.apply_updates("G", &updates).unwrap();
        let entry = store.graph("G").unwrap();
        assert!(!entry.has_overlay(), "overlay should have folded");
        assert_eq!(entry.node_count(), 44);
        assert_eq!(entry.edge_count(), 43);
        // Reachability from "a" spans the whole chain.
        let reach = entry.reach_relation(true, false);
        assert!(reach.contains(&tuple!["a", "n39"]));
    }

    /// Satellite 4 (PR 8): writer-path membership probes route through
    /// the column end indexes, not relation scans. Detaching one node
    /// from a 100× larger chain must examine exactly the same number
    /// of candidate rows — probe cost tracks the node's degree, not
    /// the store size.
    #[test]
    fn writer_probes_are_indexed_not_relation_scans() {
        let probe_rows = |n: usize| {
            let mut db = Database::new();
            for i in 0..n {
                db.insert("N", tuple![format!("n{i}")]).unwrap();
            }
            for i in 0..n - 1 {
                let e = format!("e{i}");
                db.insert("E", tuple![e.clone()]).unwrap();
                db.insert("S", tuple![e.clone(), format!("n{i}")]).unwrap();
                db.insert("T", tuple![e.clone(), format!("n{}", i + 1)])
                    .unwrap();
                // Distinct labels keep the per-label candidate sets
                // degree-sized at every store size.
                db.insert("L", tuple![e, format!("Hop{i}")]).unwrap();
            }
            db.add_relation("P", Relation::empty(3));
            let mut store = Store::from_database(&db);
            store
                .register_view_graph("G", views(), &db, GraphForm::Exact(1))
                .unwrap();
            store.counters().reset();
            store
                .apply_update("G", &Update::DetachRemoveNode(nid("n1")))
                .unwrap();
            let snap = store.counters().snapshot();
            assert!(snap.writer_probes > 0, "probes must be recorded");
            assert!(store.graph("G").is_some());
            snap.writer_probe_rows
        };
        let small = probe_rows(8);
        let large = probe_rows(800);
        assert_eq!(
            small, large,
            "candidate rows per detach must not scale with store size"
        );
    }

    // ---- store statistics cache (PR 10) ----

    /// Reads share one cached [`StoreStatistics`] Arc; every mutation
    /// class — row-level writes, graph updates, compaction, and
    /// registration — swaps the slot and bumps the epoch, so stale
    /// estimates can never leak into the cost planner.
    #[test]
    fn statistics_cache_survives_reads_and_invalidates_on_writes() {
        let (_, mut store) = registered_store();
        let n: RelName = "N".into();
        let first = store.statistics();
        let again = store.statistics();
        assert!(Arc::ptr_eq(&first, &again), "reads share the cached Arc");
        assert_eq!(first.epoch, store.statistics_epoch());
        let n_rows = first.live_rows(&n).unwrap();

        store.insert_row("N", &tuple!["z"]).unwrap();
        let after_insert = store.statistics();
        assert!(!Arc::ptr_eq(&first, &after_insert));
        assert!(after_insert.epoch > first.epoch);
        assert_eq!(after_insert.live_rows(&n).unwrap(), n_rows + 1);

        store.delete_row(&n, &tuple!["z"]).unwrap();
        let after_delete = store.statistics();
        assert!(after_delete.epoch > after_insert.epoch);
        assert_eq!(after_delete.live_rows(&n).unwrap(), n_rows);
        assert!(after_delete.relations[&n].tombstone_rows > 0);

        store
            .apply_update(
                "G",
                &Update::AddEdge {
                    id: nid("e4"),
                    src: nid("d"),
                    tgt: nid("a"),
                },
            )
            .unwrap();
        let after_update = store.statistics();
        assert!(after_update.epoch > after_delete.epoch);
        assert!(after_update.graphs["G"].adjacency.overlay > 0);

        store.compact().unwrap();
        let after_compact = store.statistics();
        assert!(after_compact.epoch > after_update.epoch);
        assert_eq!(after_compact.relations[&n].tombstone_rows, 0);
        assert_eq!(after_compact.graphs["G"].adjacency.overlay, 0);

        store
            .register_relation("Extra".into(), &Relation::unary([1i64]))
            .unwrap();
        let after_register = store.statistics();
        assert!(after_register.epoch > after_compact.epoch);
        assert!(after_register.live_rows(&"Extra".into()).is_some());
    }

    /// A pinned snapshot keeps answering with its own consistent
    /// statistics — same Arc, same counts — no matter what a
    /// concurrent writer publishes meanwhile.
    #[test]
    fn pinned_snapshots_keep_their_statistics_under_concurrent_writes() {
        let (_, store) = registered_store();
        let n: RelName = "N".into();
        let concurrent = crate::ConcurrentStore::new(store);
        let pin = concurrent.pin();
        let pinned = pin.as_store().statistics();
        concurrent
            .write(|s| s.insert_row("N", &tuple!["z"]).map(|_| ()))
            .unwrap();
        // The writer's published state sees the row under a new epoch …
        let fresh = concurrent.pin().as_store().statistics();
        assert_eq!(
            fresh.live_rows(&n),
            pinned.live_rows(&n).map(|rows| rows + 1)
        );
        assert!(fresh.epoch > pinned.epoch);
        // … while the pinned snapshot still serves its frozen stats.
        let again = pin.as_store().statistics();
        assert!(Arc::ptr_eq(&pinned, &again));
        assert_eq!(again.live_rows(&n), pinned.live_rows(&n));
    }
}
