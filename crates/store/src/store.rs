//! The session-level storage catalog.
//!
//! A [`Store`] is registered **once per session** — relations become
//! dictionary-coded columns, binary relations additionally get CSR
//! adjacency, and property-graph views are validated by the `pgView`
//! family a single time and frozen as CSR node/edge indexes (overall
//! and per edge label). Queries then run against the frozen layout
//! instead of re-materializing and re-validating base data per call,
//! which is the architectural difference measured by experiment E16.
//!
//! The store is a *snapshot*: it answers for the database state it was
//! registered from. After updates, re-register (the Section 7 model is
//! read-only; the shell rebuilds its store when data changes).

use crate::column::ColumnarRelation;
use crate::csr::CsrIndex;
use crate::dict::Dictionary;
use pgq_graph::{
    pg_view_bounded, pg_view_exact, pg_view_ext, PropertyGraph, ViewError, ViewMode, ViewRelations,
};
use pgq_relational::{Database, RelName, Relation};
use pgq_value::{Label, Tuple, Value};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// The reserved relation name under which the store registers the
/// active domain `adom(D)` as a unary relation, so `AdomScan` plans can
/// lower onto an `IndexScan` instead of re-deriving the domain.
pub const ADOM_REL: &str = "⟨adom⟩";

/// Which `pgView` operator a graph was registered under (mirrors
/// `pgq_core::ViewOp`, which the store cannot depend on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphForm {
    /// `pgView=n`: identifiers of exactly this arity.
    Exact(usize),
    /// `pgView_n`: identifiers of arity at most `n`, padded.
    Bounded(usize),
    /// `pgView_ext`: mixed arities, tagged encoding.
    Ext,
}

/// Errors raised by store registration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A view input relation is missing from the database.
    UnknownRelation(RelName),
    /// The six relations violate the Definition 3.1/5.1 conditions.
    View(ViewError),
    /// The value dictionary ran out of codes: more than `limit`
    /// distinct values were interned. Registration propagates this
    /// instead of panicking mid-load (`Dictionary::MAX_CODES` is the
    /// hard ceiling; tests lower the limit to reach it).
    DictionaryFull {
        /// The code-space limit that was hit.
        limit: usize,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownRelation(n) => write!(f, "unknown relation {n}"),
            StoreError::View(e) => write!(f, "invalid graph view: {e}"),
            StoreError::DictionaryFull { limit } => {
                write!(f, "value dictionary full: {limit} code(s) exhausted")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<ViewError> for StoreError {
    fn from(e: ViewError) -> Self {
        StoreError::View(e)
    }
}

/// A frozen property-graph index: interned identifiers plus CSR
/// adjacency, overall and per edge label.
#[derive(Debug, Clone)]
pub struct GraphEntry {
    form: GraphForm,
    views: Option<[RelName; 6]>,
    id_arity: usize,
    /// Dense node id → identifier tuple.
    ids: Vec<Tuple>,
    /// Node-level adjacency over dense ids (edge identities collapsed).
    csr: CsrIndex,
    /// Per-edge-label adjacency over the same dense id space.
    labels: BTreeMap<Label, CsrIndex>,
    /// `|E|` of the source graph, parallel edges counted.
    edge_count: usize,
}

impl GraphEntry {
    fn from_graph(g: &PropertyGraph, views: Option<[RelName; 6]>, form: GraphForm) -> Self {
        let mut ids: Vec<Tuple> = Vec::with_capacity(g.node_count());
        let mut id_of: HashMap<&Tuple, u32> = HashMap::with_capacity(g.node_count());
        for n in g.nodes() {
            id_of.insert(n, ids.len() as u32);
            ids.push(n.clone());
        }
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(g.edge_count());
        let mut by_label: BTreeMap<Label, Vec<(u32, u32)>> = BTreeMap::new();
        for (e, s, t) in g.edge_triples() {
            let pair = (id_of[s], id_of[t]);
            pairs.push(pair);
            for l in g.labels(e) {
                by_label.entry(l.clone()).or_default().push(pair);
            }
        }
        let universe = || 0..ids.len() as u32;
        GraphEntry {
            form,
            views,
            id_arity: g.id_arity(),
            csr: CsrIndex::build(universe(), &pairs),
            labels: by_label
                .into_iter()
                .map(|(l, ps)| (l, CsrIndex::build(universe(), &ps)))
                .collect(),
            edge_count: g.edge_count(),
            ids,
        }
    }

    /// The registered `pgView` form.
    pub fn form(&self) -> GraphForm {
        self.form
    }

    /// Identifier arity `k` of the frozen graph.
    pub fn id_arity(&self) -> usize {
        self.id_arity
    }

    /// `|N|`.
    pub fn node_count(&self) -> usize {
        self.ids.len()
    }

    /// `|E|` (parallel edges counted; the CSR collapses them).
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The node-level CSR index.
    pub fn csr(&self) -> &CsrIndex {
        &self.csr
    }

    /// Labels with a per-label adjacency index, in label order.
    pub fn label_names(&self) -> impl Iterator<Item = &Label> + '_ {
        self.labels.keys()
    }

    /// The per-label CSR index, when the label occurs on any edge.
    pub fn label_csr(&self, label: &Label) -> Option<&CsrIndex> {
        self.labels.get(label)
    }

    /// Whether some pair of nodes is connected by a path of ≥ 1 edge —
    /// equivalently, whether any edge exists. The Boolean `ψreach`
    /// answers come from here without running the closure.
    pub fn has_reach_pair(&self) -> bool {
        self.csr.edge_count() > 0
    }

    /// The reachability relation of the frozen graph as `(s̄, t̄)` rows
    /// of arity `2k`: all pairs connected by **one or more** edges, plus
    /// — when `at_least_one` is false — the reflexive pairs over the
    /// node set (the `ψ^{0..∞}` semantics). `swap` emits `(t̄, s̄)`
    /// instead, matching `(y, x)`-ordered output items.
    ///
    /// Dense ids are minted in identifier order (the graph iterates its
    /// node set sorted), so emitting pairs grouped by source with
    /// sorted targets yields rows already in relation order — the
    /// result set then builds in one linear pass.
    pub fn reach_relation(&self, at_least_one: bool, swap: bool) -> Relation {
        let mut pairs = self.csr.all_pairs_reach();
        if swap {
            // `(t̄, s̄)` rows sort by target first.
            pairs.sort_unstable_by_key(|&(s, t)| (t, s));
        }
        let diagonal = if at_least_one { 0 } else { self.ids.len() };
        let mut rows: Vec<Tuple> = Vec::with_capacity(pairs.len() + diagonal);
        let mut emit = |s: u32, t: u32| {
            let (a, b) = (&self.ids[s as usize], &self.ids[t as usize]);
            rows.push(if swap { b.concat(a) } else { a.concat(b) });
        };
        // Walk the contiguous per-lead runs (lead = source, or target
        // when swapped), sorting each run's trailing ids and merging
        // the reflexive pair in at its place.
        let lead = |p: &(u32, u32)| if swap { p.1 } else { p.0 };
        let mut i = 0;
        for s in 0..self.ids.len() as u32 {
            let start = i;
            while i < pairs.len() && lead(&pairs[i]) == s {
                i += 1;
            }
            let mut trail: Vec<u32> = pairs[start..i]
                .iter()
                .map(|p| if swap { p.0 } else { p.1 })
                .collect();
            trail.sort_unstable();
            if !at_least_one {
                if let Err(pos) = trail.binary_search(&s) {
                    trail.insert(pos, s);
                }
            }
            for t in trail {
                if swap {
                    emit(t, s);
                } else {
                    emit(s, t);
                }
            }
        }
        Relation::from_rows(2 * self.id_arity, rows).expect("identifier tuples have arity k")
    }
}

/// The session catalog: dictionary-coded relations, CSR adjacency for
/// binary relations, and frozen graph views.
#[derive(Debug, Clone, Default)]
pub struct Store {
    dict: Dictionary,
    relations: BTreeMap<RelName, ColumnarRelation>,
    adjacency: BTreeMap<RelName, CsrIndex>,
    graphs: BTreeMap<String, GraphEntry>,
}

impl Store {
    /// An empty store.
    pub fn new() -> Self {
        Store::default()
    }

    /// Registers every relation of `db` (columnar + adjacency for the
    /// binary ones) and the reserved [`ADOM_REL`] active-domain
    /// relation. The usual way to obtain a store.
    ///
    /// # Panics
    ///
    /// On a fresh store the only possible registration failure is
    /// [`StoreError::DictionaryFull`] — more than [`Dictionary::MAX_CODES`]
    /// distinct values in one database. Callers loading instances that
    /// could plausibly reach 2³² distinct values should build with
    /// [`Store::new`] + [`Store::register_database`] and handle the
    /// error.
    pub fn from_database(db: &Database) -> Self {
        let mut s = Store::new();
        s.register_database(db)
            .expect("a fresh store has no graphs to re-validate and a full u32 code space");
        s
    }

    /// Registers (or re-registers) the relations of `db`. A
    /// re-registration must not leave anything answering for the old
    /// data: relations and adjacency absent from `db` are dropped,
    /// graph entries registered through [`Store::register_view_graph`]
    /// are re-validated and re-frozen from the new state (the `Err`
    /// case is a view that became invalid), and graphs frozen from an
    /// explicit [`PropertyGraph`] (no view names) cannot be rebuilt
    /// here and are dropped — their owner re-registers them.
    pub fn register_database(&mut self, db: &Database) -> Result<(), StoreError> {
        self.relations.clear();
        self.adjacency.clear();
        for (name, rel) in db.iter() {
            self.register_relation(name.clone(), rel)?;
        }
        self.register_relation(ADOM_REL.into(), &db.active_domain_relation())?;
        let rebuild: Vec<(String, [RelName; 6], GraphForm)> = self
            .graphs
            .iter()
            .filter_map(|(n, e)| e.views.clone().map(|v| (n.clone(), v, e.form)))
            .collect();
        self.graphs.clear();
        for (name, views, form) in rebuild {
            self.register_view_graph(name, views, db, form)?;
        }
        Ok(())
    }

    /// Registers one relation: columnar always, CSR when binary.
    /// Fails with [`StoreError::DictionaryFull`] when interning the
    /// relation's values exhausts the dictionary's code space.
    pub fn register_relation(&mut self, name: RelName, rel: &Relation) -> Result<(), StoreError> {
        let col = ColumnarRelation::from_relation(rel, &mut self.dict)?;
        if rel.arity() == 2 {
            let pairs: Vec<(u32, u32)> = (0..col.len())
                .map(|i| (col.code_at(i, 0), col.code_at(i, 1)))
                .collect();
            let universe = pairs.iter().flat_map(|&(a, b)| [a, b]);
            self.adjacency
                .insert(name.clone(), CsrIndex::build(universe, &pairs));
        } else {
            // Re-registration under a different arity must not leave a
            // stale index behind — plans would expand over dead pairs.
            self.adjacency.remove(&name);
        }
        self.relations.insert(name, col);
        Ok(())
    }

    /// Validates the six named view relations with the strict `pgView`
    /// operator selected by `form` — **once** — and freezes the result
    /// as a [`GraphEntry`] under `graph_name`.
    pub fn register_view_graph(
        &mut self,
        graph_name: impl Into<String>,
        views: [RelName; 6],
        db: &Database,
        form: GraphForm,
    ) -> Result<(), StoreError> {
        let mut rels = Vec::with_capacity(6);
        for name in &views {
            rels.push(
                db.get(name)
                    .ok_or_else(|| StoreError::UnknownRelation(name.clone()))?
                    .clone(),
            );
        }
        let mut it = rels.into_iter();
        let vr = ViewRelations::new(
            it.next().unwrap(),
            it.next().unwrap(),
            it.next().unwrap(),
            it.next().unwrap(),
            it.next().unwrap(),
            it.next().unwrap(),
        );
        let g = match form {
            GraphForm::Exact(n) => pg_view_exact(n, &vr, ViewMode::Strict)?,
            GraphForm::Bounded(n) => pg_view_bounded(n, &vr, ViewMode::Strict)?,
            GraphForm::Ext => pg_view_ext(&vr, ViewMode::Strict)?,
        };
        self.register_graph(graph_name, &g, Some(views), form);
        Ok(())
    }

    /// Freezes an already-built (hence already-validated) property
    /// graph. `views` records which six base relations produced it, so
    /// planners can match pattern calls onto the entry by name.
    pub fn register_graph(
        &mut self,
        graph_name: impl Into<String>,
        g: &PropertyGraph,
        views: Option<[RelName; 6]>,
        form: GraphForm,
    ) {
        self.graphs
            .insert(graph_name.into(), GraphEntry::from_graph(g, views, form));
    }

    /// The shared dictionary.
    pub fn dict(&self) -> &Dictionary {
        &self.dict
    }

    /// Interns a plan-time literal constant into the shared dictionary,
    /// so coded filters can compare it against column codes without a
    /// decode. This is an **optional** entry point for sessions that
    /// hold a mutable store while preparing queries — nothing in the
    /// engine calls it today, because the coded executor degrades
    /// gracefully for *un*-interned constants (an equality against a
    /// value no stored row contains is constant-false, and order
    /// comparisons decode on compare). Interning is an optimization,
    /// never a correctness requirement.
    pub fn intern_literal(&mut self, v: &Value) -> Result<u32, StoreError> {
        self.dict.intern(v)
    }

    /// The code of a value, when any registered row contains it.
    pub fn encode(&self, v: &Value) -> Option<u32> {
        self.dict.code(v)
    }

    /// Decodes a dictionary code.
    pub fn decode(&self, code: u32) -> &Value {
        self.dict.value(code)
    }

    /// A registered columnar relation.
    pub fn relation(&self, name: &RelName) -> Option<&ColumnarRelation> {
        self.relations.get(name)
    }

    /// Whether `name` is registered.
    pub fn has_relation(&self, name: &RelName) -> bool {
        self.relations.contains_key(name)
    }

    /// Decodes a registered relation into rows (stored order).
    pub fn scan(&self, name: &RelName) -> Option<Vec<Tuple>> {
        self.relations.get(name).map(|c| c.decode_rows(&self.dict))
    }

    /// The CSR adjacency of a registered *binary* relation.
    pub fn adjacency(&self, name: &RelName) -> Option<&CsrIndex> {
        self.adjacency.get(name)
    }

    /// A registered graph entry.
    pub fn graph(&self, name: &str) -> Option<&GraphEntry> {
        self.graphs.get(name)
    }

    /// The graph entry registered from exactly these six view relations
    /// under this form, if any — the planner's match point for pattern
    /// calls over base relations.
    pub fn graph_for_views(&self, views: &[RelName; 6], form: GraphForm) -> Option<&GraphEntry> {
        self.graphs
            .values()
            .find(|e| e.form == form && e.views.as_ref() == Some(views))
    }

    /// Registered graph names with entries, in name order.
    pub fn graph_names(&self) -> impl Iterator<Item = &str> + '_ {
        self.graphs.keys().map(String::as_str)
    }

    /// Codes referenced by the *currently registered* relations — the
    /// live subset of the append-only dictionary. Because the
    /// dictionary never forgets, re-registration after deletes leaves
    /// stale codes behind; `stats` surfaces the gap so sessions can
    /// decide when a rebuild (the compaction story — see the crate
    /// docs) is worth it.
    pub fn live_codes(&self) -> usize {
        let mut live = vec![false; self.dict.len()];
        for col in self.relations.values() {
            for p in 0..col.arity() {
                for &c in col.column(p) {
                    live[c as usize] = true;
                }
            }
        }
        live.iter().filter(|&&b| b).count()
    }

    /// A storage-layout report (the shell's `STATS` command).
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            dictionary_total: self.dict.len(),
            dictionary_live: self.live_codes(),
            relations: self
                .relations
                .iter()
                .map(|(name, c)| RelationStats {
                    name: name.to_string(),
                    rows: c.len(),
                    arity: c.arity(),
                    coded_bytes: c.coded_bytes(),
                    indexed: self.adjacency.contains_key(name),
                })
                .collect(),
            graphs: self
                .graphs
                .iter()
                .map(|(name, e)| GraphStats {
                    name: name.clone(),
                    nodes: e.node_count(),
                    edges: e.edge_count(),
                    id_arity: e.id_arity,
                    csr_entries: e.csr.edge_count(),
                    labels: e
                        .labels
                        .iter()
                        // Labels are almost always strings; render them
                        // bare rather than with `Value`'s quoting.
                        .map(|(l, idx)| {
                            let text = l.as_str().map_or_else(|| l.to_string(), String::from);
                            (text, idx.edge_count())
                        })
                        .collect(),
                })
                .collect(),
        }
    }
}

/// Layout numbers for one registered relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationStats {
    /// Relation name.
    pub name: String,
    /// Row count.
    pub rows: usize,
    /// Attribute count.
    pub arity: usize,
    /// Resident coded size in bytes (dictionary excluded).
    pub coded_bytes: usize,
    /// Whether a CSR adjacency index exists (binary relations).
    pub indexed: bool,
}

/// Layout numbers for one frozen graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphStats {
    /// Graph name.
    pub name: String,
    /// `|N|`.
    pub nodes: usize,
    /// `|E|`.
    pub edges: usize,
    /// Identifier arity.
    pub id_arity: usize,
    /// Distinct endpoint pairs in the collapsed CSR.
    pub csr_entries: usize,
    /// `(label, per-label CSR entries)` in label order.
    pub labels: Vec<(String, usize)>,
}

/// The full storage-layout report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreStats {
    /// Codes ever minted (the append-only dictionary never forgets).
    pub dictionary_total: usize,
    /// Codes referenced by currently registered relations. The
    /// difference `total − live` is the residency cost of stale codes
    /// left behind by re-registration; compaction = rebuilding a fresh
    /// store (see the `pgq-store` crate docs).
    pub dictionary_live: usize,
    /// Per-relation layout, in name order.
    pub relations: Vec<RelationStats>,
    /// Per-graph layout, in name order.
    pub graphs: Vec<GraphStats>,
}

impl StoreStats {
    /// Stale codes: minted but unreferenced by any registered relation.
    pub fn dictionary_stale(&self) -> usize {
        self.dictionary_total - self.dictionary_live
    }
}

impl fmt::Display for StoreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "dictionary: {} code(s) minted, {} live, {} stale",
            self.dictionary_total,
            self.dictionary_live,
            self.dictionary_stale()
        )?;
        for r in &self.relations {
            write!(
                f,
                "relation {}: {} row(s) × {} col(s), {} coded byte(s)",
                r.name, r.rows, r.arity, r.coded_bytes
            )?;
            writeln!(f, "{}", if r.indexed { ", CSR indexed" } else { "" })?;
        }
        for g in &self.graphs {
            write!(
                f,
                "graph {}: {} node(s), {} edge(s), id arity {}, {} CSR pair(s)",
                g.name, g.nodes, g.edges, g.id_arity, g.csr_entries
            )?;
            if g.labels.is_empty() {
                writeln!(f)?;
            } else {
                let labels: Vec<String> =
                    g.labels.iter().map(|(l, n)| format!("{l}({n})")).collect();
                writeln!(f, "; labels: {}", labels.join(", "))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgq_value::tuple;

    /// The canonical 4-chain a→b→c→d with one labeled edge.
    fn chain_db() -> Database {
        let mut db = Database::new();
        for n in ["a", "b", "c", "d"] {
            db.insert("N", tuple![n]).unwrap();
        }
        for (e, s, t) in [("e1", "a", "b"), ("e2", "b", "c"), ("e3", "c", "d")] {
            db.insert("E", tuple![e]).unwrap();
            db.insert("S", tuple![e, s]).unwrap();
            db.insert("T", tuple![e, t]).unwrap();
        }
        db.insert("L", tuple!["e1", "Transfer"]).unwrap();
        db.add_relation("P", Relation::empty(3));
        db
    }

    fn views() -> [RelName; 6] {
        ["N", "E", "S", "T", "L", "P"].map(Into::into)
    }

    #[test]
    fn database_registration_round_trips() {
        let db = chain_db();
        let store = Store::from_database(&db);
        for (name, rel) in db.iter() {
            let rows = store.scan(name).unwrap();
            assert_eq!(
                Relation::from_rows(rel.arity(), rows).unwrap(),
                *rel,
                "{name}"
            );
        }
        // Binary relations carry adjacency; others don't.
        assert!(store.adjacency(&"S".into()).is_some());
        assert!(store.adjacency(&"N".into()).is_none());
        // The reserved adom relation matches the database's.
        let adom = store.scan(&ADOM_REL.into()).unwrap();
        assert_eq!(
            Relation::from_rows(1, adom).unwrap(),
            db.active_domain_relation()
        );
    }

    #[test]
    fn reregistration_refreezes_view_graphs() {
        let mut db = chain_db();
        let mut store = Store::from_database(&db);
        store
            .register_view_graph("G", views(), &db, GraphForm::Exact(1))
            .unwrap();
        assert_eq!(
            store.graph("G").unwrap().reach_relation(true, false).len(),
            6
        );
        // New edge d→a closes the cycle; re-registration must see it.
        db.insert("E", tuple!["e4"]).unwrap();
        db.insert("S", tuple!["e4", "d"]).unwrap();
        db.insert("T", tuple!["e4", "a"]).unwrap();
        store.register_database(&db).unwrap();
        assert_eq!(
            store.graph("G").unwrap().reach_relation(true, false).len(),
            16
        );
        // A view that became invalid surfaces as a typed error.
        db.insert("N", tuple!["e1"]).unwrap(); // node id clashes with an edge id
        assert!(matches!(
            store.register_database(&db),
            Err(StoreError::View(_))
        ));
        // Graphs frozen from explicit PropertyGraphs cannot be rebuilt
        // from the database and are dropped on re-registration.
        let db = chain_db();
        let mut store = Store::from_database(&db);
        let g = pgq_graph::PropertyGraph::empty(1);
        store.register_graph("ad-hoc", &g, None, GraphForm::Exact(1));
        store.register_database(&db).unwrap();
        assert!(store.graph("ad-hoc").is_none());

        // Relations absent from the new database are dropped too.
        let mut smaller = Database::new();
        smaller.insert("OnlyThis", tuple![1]).unwrap();
        store.register_database(&smaller).unwrap();
        assert!(!store.has_relation(&"N".into()));
        assert!(store.adjacency(&"S".into()).is_none());
        assert!(store.has_relation(&"OnlyThis".into()));
    }

    #[test]
    fn reregistration_drops_stale_adjacency() {
        let mut store = Store::new();
        let binary = Relation::from_rows(2, [tuple![1, 2]]).unwrap();
        store.register_relation("R".into(), &binary).unwrap();
        assert!(store.adjacency(&"R".into()).is_some());
        let ternary = Relation::from_rows(3, [tuple![1, 2, 3]]).unwrap();
        store.register_relation("R".into(), &ternary).unwrap();
        assert!(store.adjacency(&"R".into()).is_none());
        assert_eq!(store.relation(&"R".into()).unwrap().arity(), 3);
    }

    #[test]
    fn view_graph_registration_and_reachability() {
        let db = chain_db();
        let mut store = Store::from_database(&db);
        store
            .register_view_graph("G", views(), &db, GraphForm::Exact(1))
            .unwrap();
        let entry = store.graph("G").unwrap();
        assert_eq!(entry.node_count(), 4);
        assert_eq!(entry.edge_count(), 3);
        assert!(entry.has_reach_pair());
        assert_eq!(entry.label_names().count(), 1);

        // ≥1-step pairs on the chain: 3+2+1; 0-step adds 4 reflexive.
        let plus = entry.reach_relation(true, false);
        assert_eq!(plus.len(), 6);
        assert!(plus.contains(&tuple!["a", "d"]));
        let star = entry.reach_relation(false, false);
        assert_eq!(star.len(), 10);
        assert!(star.contains(&tuple!["a", "a"]));
        let swapped = entry.reach_relation(true, true);
        assert!(swapped.contains(&tuple!["d", "a"]));

        // The planner's match point.
        assert!(store
            .graph_for_views(&views(), GraphForm::Exact(1))
            .is_some());
        assert!(store.graph_for_views(&views(), GraphForm::Ext).is_none());
        let mut other = views();
        other.swap(2, 3);
        assert!(store.graph_for_views(&other, GraphForm::Exact(1)).is_none());
    }

    #[test]
    fn invalid_views_error_at_registration() {
        let db = chain_db();
        let mut store = Store::from_database(&db);
        // N used as both node and edge set: disjointness fails.
        let bad = ["N", "N", "S", "T", "L", "P"].map(Into::into);
        assert!(matches!(
            store.register_view_graph("bad", bad, &db, GraphForm::Exact(1)),
            Err(StoreError::View(_))
        ));
        let missing = ["Nope", "E", "S", "T", "L", "P"].map(Into::into);
        assert!(matches!(
            store.register_view_graph("bad", missing, &db, GraphForm::Exact(1)),
            Err(StoreError::UnknownRelation(_))
        ));
    }

    #[test]
    fn stats_report_layout() {
        let db = chain_db();
        let mut store = Store::from_database(&db);
        store
            .register_view_graph("G", views(), &db, GraphForm::Exact(1))
            .unwrap();
        let stats = store.stats();
        assert!(stats.dictionary_total >= 8);
        // A fresh registration references every code it minted.
        assert_eq!(stats.dictionary_live, stats.dictionary_total);
        assert_eq!(stats.dictionary_stale(), 0);
        let s_rel = stats.relations.iter().find(|r| r.name == "S").unwrap();
        assert!(s_rel.indexed);
        assert_eq!(s_rel.rows, 3);
        assert_eq!(stats.graphs[0].labels, vec![("Transfer".to_string(), 1)]);
        let text = stats.to_string();
        assert!(text.contains("graph G: 4 node(s), 3 edge(s)"));
        assert!(text.contains("CSR indexed"));
        assert!(text.contains("0 stale"));
    }

    #[test]
    fn reregistration_tracks_stale_codes() {
        let mut store = Store::new();
        let mut db = Database::new();
        db.insert("R", tuple!["gone", "kept"]).unwrap();
        store.register_database(&db).unwrap();
        let before = store.stats();
        assert_eq!(before.dictionary_stale(), 0);
        // Replace the row: the dictionary keeps "gone" forever.
        let mut db = Database::new();
        db.insert("R", tuple!["fresh", "kept"]).unwrap();
        store.register_database(&db).unwrap();
        let after = store.stats();
        assert_eq!(after.dictionary_total, 3);
        assert_eq!(after.dictionary_live, 2);
        assert_eq!(after.dictionary_stale(), 1);
        // Stale codes still decode — they are unreachable, not dangling.
        let gone = store.encode(&Value::str("gone")).unwrap();
        assert_eq!(store.decode(gone), &Value::str("gone"));
    }

    #[test]
    fn dictionary_exhaustion_propagates_through_registration() {
        let mut store = Store {
            dict: Dictionary::with_limit(3),
            ..Store::new()
        };
        let mut db = Database::new();
        for i in 0..4i64 {
            db.insert("V", tuple![i]).unwrap();
        }
        assert!(matches!(
            store.register_database(&db),
            Err(StoreError::DictionaryFull { limit: 3 })
        ));
        // Within the limit, registration (and literal interning) works.
        let mut small = Database::new();
        small.insert("V", tuple![1]).unwrap();
        let mut store = Store {
            dict: Dictionary::with_limit(2),
            ..Store::new()
        };
        store.register_database(&small).unwrap();
        assert!(store.intern_literal(&Value::int(99)).is_ok());
        assert!(matches!(
            store.intern_literal(&Value::int(100)),
            Err(StoreError::DictionaryFull { .. })
        ));
    }

    #[test]
    fn empty_graph_and_self_loops() {
        let mut db = Database::new();
        db.add_relation("N", Relation::empty(1));
        db.add_relation("E", Relation::empty(1));
        db.add_relation("S", Relation::empty(2));
        db.add_relation("T", Relation::empty(2));
        db.add_relation("L", Relation::empty(2));
        db.add_relation("P", Relation::empty(3));
        let mut store = Store::from_database(&db);
        store
            .register_view_graph("empty", views(), &db, GraphForm::Exact(1))
            .unwrap();
        let e = store.graph("empty").unwrap();
        assert!(!e.has_reach_pair());
        assert!(e.reach_relation(true, false).is_empty());
        assert!(e.reach_relation(false, false).is_empty());

        // Self loop: a →e→ a.
        db.insert("N", tuple!["a"]).unwrap();
        db.insert("E", tuple!["e"]).unwrap();
        db.insert("S", tuple!["e", "a"]).unwrap();
        db.insert("T", tuple!["e", "a"]).unwrap();
        let mut store = Store::from_database(&db);
        store
            .register_view_graph("loop", views(), &db, GraphForm::Exact(1))
            .unwrap();
        let e = store.graph("loop").unwrap();
        assert_eq!(e.reach_relation(true, false).len(), 1);
        assert_eq!(e.reach_relation(false, false).len(), 1);
    }
}
