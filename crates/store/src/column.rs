//! Dictionary-encoded column vectors.
//!
//! A [`ColumnarRelation`] is the store's resident form of a
//! [`Relation`]: one `Vec<u32>` per attribute position, rows aligned by
//! index, every cell a [`crate::Dictionary`] code. Scans decode lazily —
//! the set-semantics `BTreeSet` representation is never rebuilt unless a
//! caller asks for tuples back.

use crate::dict::Dictionary;
use crate::store::StoreError;
use pgq_relational::Relation;
use pgq_value::Tuple;

/// A relation stored as dictionary-coded columns.
#[derive(Debug, Clone, Default)]
pub struct ColumnarRelation {
    arity: usize,
    rows: usize,
    /// `columns[p][i]` is the code of row `i`'s position-`p` value.
    columns: Vec<Vec<u32>>,
}

impl ColumnarRelation {
    /// Encodes a relation column by column, interning every value.
    /// Fails with [`StoreError::DictionaryFull`] when the dictionary's
    /// code space is exhausted mid-encode.
    pub fn from_relation(rel: &Relation, dict: &mut Dictionary) -> Result<Self, StoreError> {
        let arity = rel.arity();
        let mut columns = vec![Vec::with_capacity(rel.len()); arity];
        for t in rel.iter() {
            for (p, v) in t.iter().enumerate() {
                columns[p].push(dict.intern(v)?);
            }
        }
        Ok(ColumnarRelation {
            arity,
            rows: rel.len(),
            columns,
        })
    }

    /// Attribute count.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the relation holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The code at `(row, position)`.
    pub fn code_at(&self, row: usize, position: usize) -> u32 {
        self.columns[position][row]
    }

    /// Borrows one coded column.
    pub fn column(&self, position: usize) -> &[u32] {
        &self.columns[position]
    }

    /// Decodes row `i` back into a tuple.
    pub fn decode_row(&self, i: usize, dict: &Dictionary) -> Tuple {
        Tuple::new(
            self.columns
                .iter()
                .map(|col| dict.value(col[i]).clone())
                .collect(),
        )
    }

    /// Decodes every row, in stored (relation-iteration) order.
    pub fn decode_rows(&self, dict: &Dictionary) -> Vec<Tuple> {
        (0..self.rows).map(|i| self.decode_row(i, dict)).collect()
    }

    /// Approximate resident size in bytes (codes only; the dictionary
    /// is shared store-wide and accounted for separately).
    pub fn coded_bytes(&self) -> usize {
        self.rows * self.arity * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgq_value::tuple;

    #[test]
    fn roundtrip_preserves_rows() {
        let rel = Relation::from_rows(2, [tuple![1, "a"], tuple![2, "b"], tuple![1, "b"]]).unwrap();
        let mut dict = Dictionary::new();
        let col = ColumnarRelation::from_relation(&rel, &mut dict).unwrap();
        assert_eq!(col.arity(), 2);
        assert_eq!(col.len(), 3);
        assert_eq!(dict.len(), 4); // 1, 2, "a", "b"
        let back = Relation::from_rows(2, col.decode_rows(&dict)).unwrap();
        assert_eq!(back, rel);
        assert_eq!(col.coded_bytes(), 3 * 2 * 4);
    }

    #[test]
    fn zero_arity_and_empty() {
        let mut dict = Dictionary::new();
        let truth = ColumnarRelation::from_relation(&Relation::r#true(), &mut dict).unwrap();
        assert_eq!(truth.arity(), 0);
        assert_eq!(truth.len(), 1);
        assert_eq!(truth.decode_rows(&dict), vec![Tuple::empty()]);
        let none = ColumnarRelation::from_relation(&Relation::empty(3), &mut dict).unwrap();
        assert!(none.is_empty());
        assert_eq!(none.decode_rows(&dict), Vec::<Tuple>::new());
    }
}
