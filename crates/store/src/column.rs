//! Dictionary-encoded column vectors.
//!
//! A [`ColumnarRelation`] is the store's resident form of a
//! [`Relation`]: one `Vec<u32>` per attribute position, rows aligned by
//! index, every cell a [`crate::Dictionary`] code. Scans decode lazily —
//! the set-semantics `BTreeSet` representation is never rebuilt unless a
//! caller asks for tuples back.
//!
//! Since PR 5 the columns are **append-plus-tombstone**: updates append
//! rows at the end and mark deleted rows dead in a validity bitmap
//! instead of rewriting the vectors (a row-hash makes the membership
//! probe O(1)), so an update edits rows in place instead of
//! re-encoding the relation. Readers iterate
//! [`ColumnarRelation::live_rows`]; `Store::compact` drops the dead
//! rows for good.

use crate::dict::Dictionary;
use crate::store::StoreError;
use pgq_relational::Relation;
use pgq_value::Tuple;
use std::collections::HashMap;

/// The probe-acceleration side of a [`ColumnarRelation`], built
/// eagerly on the register path and **lazily** on the bulk-load path
/// (PR 9): a ten-million-row `HashMap<Vec<u32>, usize>` costs more to
/// build than the entire columnar load, and pure readers never touch
/// it. The store materializes it on first write
/// ([`ColumnarRelation::ensure_indexes`]).
#[derive(Debug, Clone, Default)]
struct RowIndexes {
    /// Row codes → physical index, so membership probes are O(1)
    /// instead of a column scan. At most one physical row exists per
    /// code vector (sources are set-semantics relations, and the
    /// store's append path revives a tombstoned twin instead of
    /// appending a duplicate), so the map is total over the rows.
    index: HashMap<Vec<u32>, usize>,
    /// First-column code → physical rows starting with it (ascending).
    /// Together with `last` this serves the store's writer-path
    /// prefix/suffix probes (edge endpoints, labels, property rows) in
    /// O(candidates) instead of a full column scan. Empty for
    /// arity < 2, where `index` already answers exact probes.
    /// Tombstoned rows stay listed and are filtered at probe time,
    /// mirroring the validity bitmap.
    first: HashMap<u32, Vec<usize>>,
    /// Last-column code → physical rows ending with it (ascending).
    last: HashMap<u32, Vec<usize>>,
}

/// A relation stored as dictionary-coded columns with a validity
/// bitmap.
#[derive(Debug, Clone, Default)]
pub struct ColumnarRelation {
    arity: usize,
    /// Physical rows, live and tombstoned.
    physical: usize,
    /// Live rows (`physical − tombstones`).
    live: usize,
    /// `columns[p][i]` is the code of row `i`'s position-`p` value.
    columns: Vec<Vec<u32>>,
    /// `dead[i]` marks row `i` tombstoned.
    dead: Vec<bool>,
    /// Probe indexes; `None` until a writer needs them (bulk loads
    /// defer them, probes fall back to scans meanwhile).
    indexes: Option<RowIndexes>,
}

impl ColumnarRelation {
    /// An empty columnar relation of the given arity.
    pub fn empty(arity: usize) -> Self {
        ColumnarRelation {
            arity,
            physical: 0,
            live: 0,
            columns: vec![Vec::new(); arity],
            dead: Vec::new(),
            indexes: Some(RowIndexes::default()),
        }
    }

    /// Registers physical row `i` in the first/last-column multimaps.
    /// Rows are indexed exactly once, at append time, so each bucket
    /// lists ascending physical indices. A no-op while the indexes are
    /// deferred.
    fn index_ends(&mut self, i: usize) {
        if self.arity < 2 {
            return;
        }
        let Some(ix) = &mut self.indexes else {
            return;
        };
        ix.first.entry(self.columns[0][i]).or_default().push(i);
        ix.last
            .entry(self.columns[self.arity - 1][i])
            .or_default()
            .push(i);
    }

    /// Whether the probe indexes are materialized (they always are on
    /// the register path; bulk-loaded relations defer them to first
    /// write).
    pub fn has_indexes(&self) -> bool {
        self.indexes.is_some()
    }

    /// Materializes the probe indexes if they are deferred — the
    /// store's writer entry points call this before mutating a
    /// bulk-loaded relation, paying the build cost once instead of on
    /// the load path.
    pub fn ensure_indexes(&mut self) {
        if self.indexes.is_some() {
            return;
        }
        let mut index = HashMap::with_capacity(self.physical);
        for i in 0..self.physical {
            let row: Vec<u32> = (0..self.arity).map(|p| self.columns[p][i]).collect();
            index.insert(row, i);
        }
        self.indexes = Some(RowIndexes {
            index,
            first: HashMap::new(),
            last: HashMap::new(),
        });
        for i in 0..self.physical {
            self.index_ends(i);
        }
    }

    /// Encodes a relation column by column, interning every value.
    /// Fails with [`StoreError::DictionaryFull`] when the dictionary's
    /// code space is exhausted mid-encode.
    pub fn from_relation(rel: &Relation, dict: &mut Dictionary) -> Result<Self, StoreError> {
        let arity = rel.arity();
        let mut columns = vec![Vec::with_capacity(rel.len()); arity];
        let mut index = HashMap::with_capacity(rel.len());
        for (i, t) in rel.iter().enumerate() {
            let mut row = Vec::with_capacity(arity);
            for (p, v) in t.iter().enumerate() {
                let code = dict.intern(v)?;
                columns[p].push(code);
                row.push(code);
            }
            index.insert(row, i);
        }
        let mut col = ColumnarRelation {
            arity,
            physical: rel.len(),
            live: rel.len(),
            columns,
            dead: vec![false; rel.len()],
            indexes: Some(RowIndexes {
                index,
                first: HashMap::new(),
                last: HashMap::new(),
            }),
        };
        for i in 0..col.physical {
            col.index_ends(i);
        }
        Ok(col)
    }

    /// Builds a unary relation directly from codes — used by the store
    /// to refresh the frozen active domain after updates without a
    /// decode/re-encode round trip, and by the bulk loader for the
    /// active-domain relation. The codes must be distinct (both
    /// callers produce deduplicated code sets). Probe indexes are
    /// deferred.
    pub fn unary_from_codes(codes: Vec<u32>) -> Self {
        let n = codes.len();
        ColumnarRelation {
            arity: 1,
            physical: n,
            live: n,
            dead: vec![false; n],
            columns: vec![codes],
            indexes: None,
        }
    }

    /// Builds a relation directly from pre-encoded, equally long,
    /// duplicate-free code columns — the zero-materialization bulk
    /// path: no `Value` rows, no interning, no probe indexes (they are
    /// deferred to first write).
    pub fn from_codes(arity: usize, columns: Vec<Vec<u32>>) -> Self {
        assert_eq!(columns.len(), arity, "one code vector per position");
        let n = columns.first().map_or(0, Vec::len);
        assert!(columns.iter().all(|c| c.len() == n), "ragged code columns");
        ColumnarRelation {
            arity,
            physical: n,
            live: n,
            dead: vec![false; n],
            columns,
            indexes: None,
        }
    }

    /// Attribute count.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of **live** rows — the semantic row count every scan and
    /// stats line reports.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the relation holds no live rows.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Physical rows resident, tombstoned ones included.
    pub fn physical_len(&self) -> usize {
        self.physical
    }

    /// Tombstoned (dead but still resident) rows — reclaimed by
    /// `Store::compact`.
    pub fn tombstones(&self) -> usize {
        self.physical - self.live
    }

    /// Whether physical row `i` is live.
    pub fn is_live(&self, i: usize) -> bool {
        !self.dead[i]
    }

    /// Iterates the physical indices of live rows, in insertion order.
    pub fn live_rows(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.physical).filter(|&i| !self.dead[i])
    }

    /// The code at `(physical row, position)` — dead rows included;
    /// pair with [`ColumnarRelation::is_live`] when iterating raw.
    pub fn code_at(&self, row: usize, position: usize) -> u32 {
        self.columns[position][row]
    }

    /// Borrows one coded column (physical layout, dead rows included).
    pub fn column(&self, position: usize) -> &[u32] {
        &self.columns[position]
    }

    /// Appends a live row of codes. The caller guarantees the arity,
    /// that no physical row (live or dead) already holds these codes —
    /// the store's append path probes [`ColumnarRelation::find_live`]
    /// / [`ColumnarRelation::find_dead`] first — and that the probe
    /// indexes are materialized ([`ColumnarRelation::ensure_indexes`];
    /// the store's writer entry points do so).
    pub fn append(&mut self, codes: &[u32]) {
        debug_assert_eq!(codes.len(), self.arity);
        for (p, &c) in codes.iter().enumerate() {
            self.columns[p].push(c);
        }
        if let Some(ix) = &mut self.indexes {
            debug_assert!(!ix.index.contains_key(codes));
            ix.index.insert(codes.to_vec(), self.physical);
        }
        self.dead.push(false);
        self.physical += 1;
        self.live += 1;
        self.index_ends(self.physical - 1);
    }

    /// Physical index of the first **live** row equal to `codes`.
    pub fn find_live(&self, codes: &[u32]) -> Option<usize> {
        self.find_where(codes, false)
    }

    /// Physical index of the first **tombstoned** row equal to `codes`
    /// — revived instead of re-appended so churn does not grow the
    /// columns without bound.
    pub fn find_dead(&self, codes: &[u32]) -> Option<usize> {
        self.find_where(codes, true)
    }

    fn find_where(&self, codes: &[u32], dead: bool) -> Option<usize> {
        if codes.len() != self.arity {
            return None;
        }
        match &self.indexes {
            Some(ix) => ix
                .index
                .get(codes)
                .copied()
                .filter(|&i| self.dead[i] == dead),
            // Deferred indexes (bulk load, read-only so far): scan.
            None => (0..self.physical).find(|&i| {
                self.dead[i] == dead && (0..self.arity).all(|p| self.columns[p][i] == codes[p])
            }),
        }
    }

    /// Live physical rows whose first `prefix.len()` codes equal
    /// `prefix`, ascending, plus the number of candidate rows the probe
    /// examined (the store's access accounting). Candidates come from
    /// the first-column inverted index — O(rows sharing the leading
    /// code), not O(relation) — except for full-arity probes, which the
    /// exact row index answers directly.
    pub fn live_rows_with_prefix(&self, prefix: &[u32]) -> (Vec<usize>, usize) {
        self.live_rows_matching(prefix, false)
    }

    /// Live physical rows whose last `suffix.len()` codes equal
    /// `suffix`, ascending, plus the candidate count — the dual of
    /// [`ColumnarRelation::live_rows_with_prefix`] through the
    /// last-column inverted index.
    pub fn live_rows_with_suffix(&self, suffix: &[u32]) -> (Vec<usize>, usize) {
        self.live_rows_matching(suffix, true)
    }

    fn live_rows_matching(&self, part: &[u32], from_end: bool) -> (Vec<usize>, usize) {
        let len = part.len();
        if len == 0 {
            let rows: Vec<usize> = self.live_rows().collect();
            let n = rows.len();
            return (rows, n);
        }
        if len > self.arity {
            return (Vec::new(), 0);
        }
        if len == self.arity {
            // Exact probe: the row-hash index answers in one lookup
            // (or one scan while the indexes are deferred).
            let cands = if self.indexes.is_some() {
                1
            } else {
                self.physical
            };
            return (self.find_live(part).into_iter().collect(), cands);
        }
        let base = if from_end { self.arity - len } else { 0 };
        let Some(ix) = &self.indexes else {
            // Deferred indexes: scan every physical row.
            let rows: Vec<usize> = (0..self.physical)
                .filter(|&i| {
                    !self.dead[i] && (0..len).all(|p| self.columns[base + p][i] == part[p])
                })
                .collect();
            return (rows, self.physical);
        };
        let bucket = if from_end {
            ix.last.get(&part[len - 1])
        } else {
            ix.first.get(&part[0])
        };
        let Some(bucket) = bucket else {
            return (Vec::new(), 0);
        };
        let rows = bucket
            .iter()
            .copied()
            .filter(|&i| !self.dead[i] && (0..len).all(|p| self.columns[base + p][i] == part[p]))
            .collect();
        (rows, bucket.len())
    }

    /// Tombstones physical row `i`; `false` when it was already dead.
    pub fn tombstone(&mut self, i: usize) -> bool {
        if self.dead[i] {
            return false;
        }
        self.dead[i] = true;
        self.live -= 1;
        true
    }

    /// Revives tombstoned physical row `i`; `false` when it was live.
    pub fn revive(&mut self, i: usize) -> bool {
        if !self.dead[i] {
            return false;
        }
        self.dead[i] = false;
        self.live += 1;
        true
    }

    /// Decodes physical row `i` back into a tuple.
    pub fn decode_row(&self, i: usize, dict: &Dictionary) -> Tuple {
        Tuple::new(
            self.columns
                .iter()
                .map(|col| dict.value(col[i]).clone())
                .collect(),
        )
    }

    /// Decodes every **live** row, in stored order.
    pub fn decode_rows(&self, dict: &Dictionary) -> Vec<Tuple> {
        self.live_rows().map(|i| self.decode_row(i, dict)).collect()
    }

    /// Drops tombstoned rows and rewrites every surviving code through
    /// `remap` (old code → new code) — the per-relation step of
    /// `Store::compact`. Returns the number of rows dropped.
    pub fn compact_remap(&mut self, remap: &mut dyn FnMut(u32) -> u32) -> usize {
        let dropped = self.tombstones();
        let keep: Vec<usize> = self.live_rows().collect();
        for col in &mut self.columns {
            let mut next = Vec::with_capacity(keep.len());
            for &i in &keep {
                next.push(remap(col[i]));
            }
            *col = next;
        }
        self.physical = keep.len();
        self.live = keep.len();
        self.dead = vec![false; keep.len()];
        // Rebuild the probe indexes only if they were materialized;
        // deferred stays deferred (the compacted relation has had no
        // writes either).
        if self.indexes.is_some() {
            self.indexes = None;
            self.ensure_indexes();
        }
        dropped
    }

    /// Approximate resident size in bytes (codes only, tombstoned rows
    /// included — they stay resident until compaction; the dictionary
    /// is shared store-wide and accounted for separately).
    pub fn coded_bytes(&self) -> usize {
        self.physical * self.arity * std::mem::size_of::<u32>()
    }

    /// Estimated resident bytes of the probe indexes (0 while
    /// deferred): the row-hash map with its heap-allocated key vectors
    /// plus the two end-column multimaps.
    pub fn index_bytes(&self) -> usize {
        let Some(ix) = &self.indexes else {
            return 0;
        };
        let key = std::mem::size_of::<Vec<u32>>() + self.arity * std::mem::size_of::<u32>();
        let row_map = ix.index.capacity() * (key + std::mem::size_of::<usize>() + 8);
        let bucket_entry = std::mem::size_of::<u32>() + std::mem::size_of::<Vec<usize>>() + 8;
        let end_maps = (ix.first.capacity() + ix.last.capacity()) * bucket_entry
            + (ix.first.values().map(Vec::len).sum::<usize>()
                + ix.last.values().map(Vec::len).sum::<usize>())
                * std::mem::size_of::<usize>();
        row_map + end_maps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgq_value::tuple;

    #[test]
    fn roundtrip_preserves_rows() {
        let rel = Relation::from_rows(2, [tuple![1, "a"], tuple![2, "b"], tuple![1, "b"]]).unwrap();
        let mut dict = Dictionary::new();
        let col = ColumnarRelation::from_relation(&rel, &mut dict).unwrap();
        assert_eq!(col.arity(), 2);
        assert_eq!(col.len(), 3);
        assert_eq!(dict.len(), 4); // 1, 2, "a", "b"
        let back = Relation::from_rows(2, col.decode_rows(&dict)).unwrap();
        assert_eq!(back, rel);
        assert_eq!(col.coded_bytes(), 3 * 2 * 4);
    }

    #[test]
    fn zero_arity_and_empty() {
        let mut dict = Dictionary::new();
        let truth = ColumnarRelation::from_relation(&Relation::r#true(), &mut dict).unwrap();
        assert_eq!(truth.arity(), 0);
        assert_eq!(truth.len(), 1);
        assert_eq!(truth.decode_rows(&dict), vec![Tuple::empty()]);
        let none = ColumnarRelation::from_relation(&Relation::empty(3), &mut dict).unwrap();
        assert!(none.is_empty());
        assert_eq!(none.decode_rows(&dict), Vec::<Tuple>::new());
    }

    #[test]
    fn end_indexes_answer_prefix_and_suffix_probes() {
        let rel = Relation::from_rows(
            3,
            [
                tuple!["e1", "a", "x"],
                tuple!["e1", "b", "x"],
                tuple!["e2", "a", "y"],
            ],
        )
        .unwrap();
        let mut dict = Dictionary::new();
        let mut col = ColumnarRelation::from_relation(&rel, &mut dict).unwrap();
        let code = |v: &str| dict.code(&pgq_value::Value::str(v)).unwrap();
        let (rows, cands) = col.live_rows_with_prefix(&[code("e1")]);
        assert_eq!(rows.len(), 2);
        assert_eq!(cands, 2);
        let (rows, _) = col.live_rows_with_prefix(&[code("e1"), code("b")]);
        assert_eq!(rows.len(), 1);
        let (rows, cands) = col.live_rows_with_suffix(&[code("x")]);
        assert_eq!((rows.len(), cands), (2, 2));
        let (rows, _) = col.live_rows_with_suffix(&[code("a"), code("y")]);
        assert_eq!(rows, vec![2]);
        // Full-arity probes route through the exact row index.
        let full = [code("e2"), code("a"), code("y")];
        assert_eq!(col.live_rows_with_prefix(&full).0, vec![2]);
        // Over-arity and unknown codes answer empty.
        assert!(col.live_rows_with_prefix(&[0, 1, 2, 3]).0.is_empty());
        assert!(col.live_rows_with_suffix(&[u32::MAX]).0.is_empty());
        // Tombstones are filtered at probe time but stay candidates;
        // compaction drops them from the buckets for good.
        col.tombstone(0);
        let (rows, cands) = col.live_rows_with_prefix(&[code("e1")]);
        assert_eq!((rows.len(), cands), (1, 2));
        col.compact_remap(&mut |c| c);
        let e1 = col.code_at(0, 0);
        let (rows, cands) = col.live_rows_with_prefix(&[e1]);
        assert_eq!((rows.len(), cands), (1, 1));
    }

    #[test]
    fn deferred_indexes_scan_until_ensured() {
        let mut col = ColumnarRelation::from_codes(2, vec![vec![1, 2, 1], vec![9, 9, 7]]);
        assert!(!col.has_indexes());
        assert_eq!(col.len(), 3);
        assert_eq!(col.index_bytes(), 0);
        // Probes answer by scan while deferred…
        assert_eq!(col.find_live(&[2, 9]), Some(1));
        assert_eq!(col.find_live(&[2, 7]), None);
        let (rows, cands) = col.live_rows_with_prefix(&[1]);
        assert_eq!((rows.clone(), cands), (vec![0, 2], 3));
        let (srows, _) = col.live_rows_with_suffix(&[9]);
        assert_eq!(srows, vec![0, 1]);
        // …and identically once materialized.
        col.ensure_indexes();
        assert!(col.has_indexes());
        assert!(col.index_bytes() > 0);
        assert_eq!(col.find_live(&[2, 9]), Some(1));
        assert_eq!(col.live_rows_with_prefix(&[1]).0, rows);
        assert_eq!(col.live_rows_with_suffix(&[9]).0, srows);
        // Writes after ensure keep the indexes coherent.
        col.append(&[5, 5]);
        assert_eq!(col.find_live(&[5, 5]), Some(3));
    }

    #[test]
    fn append_tombstone_revive() {
        let rel = Relation::from_rows(2, [tuple![1, 2]]).unwrap();
        let mut dict = Dictionary::new();
        let mut col = ColumnarRelation::from_relation(&rel, &mut dict).unwrap();
        let c3 = dict.intern(&pgq_value::Value::int(3)).unwrap();
        let c1 = dict.intern(&pgq_value::Value::int(1)).unwrap();
        col.append(&[c1, c3]);
        assert_eq!(col.len(), 2);
        assert_eq!(col.physical_len(), 2);
        let row = col.find_live(&[c1, c3]).unwrap();
        assert!(col.tombstone(row));
        assert!(!col.tombstone(row));
        assert_eq!(col.len(), 1);
        assert_eq!(col.tombstones(), 1);
        assert_eq!(col.decode_rows(&dict).len(), 1);
        assert_eq!(col.find_live(&[c1, c3]), None);
        assert_eq!(col.find_dead(&[c1, c3]), Some(row));
        assert!(col.revive(row));
        assert!(!col.revive(row));
        assert_eq!(col.len(), 2);
        // Tombstoned rows stay resident until compaction.
        col.tombstone(row);
        assert_eq!(col.coded_bytes(), 2 * 2 * 4);
        let dropped = col.compact_remap(&mut |c| c);
        assert_eq!(dropped, 1);
        assert_eq!(col.physical_len(), 1);
        assert_eq!(col.coded_bytes(), 2 * 4);
    }
}
