//! Lowering from the surface AST to the formal pattern layer, and the
//! statement executor (`Session`).
//!
//! `GRAPH_TABLE(g MATCH … WHERE … RETURN …)` lowers to an
//! [`OutputPattern`] evaluated over the catalog-built graph view —
//! layers (i) and (iii) of the paper's architecture. `WHERE` conjuncts
//! referencing a variable bound under an edge quantifier are pushed into
//! the quantified atom (the formal semantics gives `ψ^{n..m}` no free
//! variables, so a top-level filter could never see them; this matches
//! the standard's per-step reading of Example 2.1's
//! `WHERE t.amount > 100`).

use crate::ast::{CmpToken, Expr, GraphQuery, PathElement, Quantifier, ReturnItem, Rhs, Statement};
use crate::catalog::{Catalog, CatalogError, ColumnResolution};
use pgq_graph::ViewMode;
use pgq_pattern::{Condition, Direction, OutputItem, OutputPattern, Pattern};
use pgq_relational::{CmpOp, Database, Relation};
use pgq_value::{Value, Var};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Lowering / execution errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerError {
    /// Catalog resolution failure.
    Catalog(CatalogError),
    /// A `WHERE` conjunct mixes quantified and unquantified variables,
    /// or references variables of two different quantified edges.
    UnsupportedWhere(String),
    /// `WHERE` on a key (identifier component) column — the formal
    /// condition grammar only tests labels and properties.
    ComponentInWhere(String),
    /// Property-to-property comparisons other than `=` are outside the
    /// condition grammar.
    NonEqualityJoin(String),
    /// Output-pattern construction failed (duplicate/unbound items).
    Output(String),
    /// A `WHERE`/`RETURN` variable that the pattern never binds.
    UnknownVar(String),
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::Catalog(e) => write!(f, "{e}"),
            LowerError::UnsupportedWhere(s) => write!(
                f,
                "WHERE conjunct {s} mixes variables across quantifier scopes"
            ),
            LowerError::ComponentInWhere(c) => write!(
                f,
                "column {c} is an identifier key; WHERE supports labels and properties only"
            ),
            LowerError::NonEqualityJoin(s) => {
                write!(f, "property-to-property comparison {s} must use =")
            }
            LowerError::Output(s) => write!(f, "invalid RETURN clause: {s}"),
            LowerError::UnknownVar(v) => write!(f, "variable {v} is not bound by the pattern"),
        }
    }
}

impl std::error::Error for LowerError {}

impl From<CatalogError> for LowerError {
    fn from(e: CatalogError) -> Self {
        LowerError::Catalog(e)
    }
}

/// Lowers a parsed `GRAPH_TABLE` query to an output pattern over the
/// named graph.
pub fn lower_query(q: &GraphQuery, catalog: &Catalog) -> Result<OutputPattern, LowerError> {
    // Variable classification: quantified edge variables are invisible
    // at the top level (fv(ψ^{n..m}) = ∅).
    let mut quantified: BTreeSet<String> = BTreeSet::new();
    let mut bound: BTreeSet<String> = BTreeSet::new();
    for el in &q.pattern {
        match el {
            PathElement::Node { var, .. } => {
                if let Some(v) = var {
                    bound.insert(v.clone());
                }
            }
            PathElement::Edge {
                var, quantifier, ..
            } => {
                if let Some(v) = var {
                    bound.insert(v.clone());
                    if quantifier.is_some() {
                        quantified.insert(v.clone());
                    }
                }
            }
        }
    }

    // Split WHERE into conjuncts and classify each.
    let mut top_conditions: Vec<Condition> = Vec::new();
    let mut pushed: BTreeMap<String, Vec<Condition>> = BTreeMap::new();
    if let Some(w) = &q.where_clause {
        for conjunct in conjuncts(w) {
            let vars = expr_vars(&conjunct);
            for v in &vars {
                if !bound.contains(v) {
                    return Err(LowerError::UnknownVar(v.clone()));
                }
            }
            let q_vars: Vec<&String> = vars.iter().filter(|v| quantified.contains(*v)).collect();
            let cond = expr_to_condition(&conjunct, &q.graph, catalog)?;
            match q_vars.as_slice() {
                [] => top_conditions.push(cond),
                [only] if vars.len() == 1 => {
                    pushed.entry((*only).clone()).or_default().push(cond);
                }
                _ => {
                    return Err(LowerError::UnsupportedWhere(format!("{conjunct:?}")));
                }
            }
        }
    }

    // Assemble the pattern left to right.
    let mut parts: Vec<Pattern> = Vec::new();
    let mut anon = 0usize;
    for el in &q.pattern {
        match el {
            PathElement::Node { var, labels } => {
                let (v, pat_var) = named_or_anon(var, &mut anon);
                let mut p = Pattern::Node(pat_var);
                for label in labels {
                    p = p.filter(Condition::has_label(v.clone(), label.as_str()));
                }
                parts.push(p);
            }
            PathElement::Edge {
                var,
                labels,
                forward,
                quantifier,
            } => {
                let (v, pat_var) = named_or_anon(var, &mut anon);
                let dir = if *forward {
                    Direction::Forward
                } else {
                    Direction::Backward
                };
                let mut p = Pattern::Edge(pat_var, dir);
                for label in labels {
                    p = p.filter(Condition::has_label(v.clone(), label.as_str()));
                }
                if let Some(var_name) = var {
                    if let Some(conds) = pushed.remove(var_name) {
                        for c in conds {
                            p = p.filter(c);
                        }
                    }
                }
                if let Some(quant) = quantifier {
                    p = match quant {
                        Quantifier::Star => p.star(),
                        Quantifier::Plus => p.plus(),
                        Quantifier::Range(n, m) => p.repeat(*n, *m),
                        Quantifier::AtLeast(n) => p.repeat_at_least(*n),
                    };
                }
                parts.push(p);
            }
        }
    }
    let mut pattern = Pattern::seq(parts);
    if !top_conditions.is_empty() {
        pattern = pattern.filter(
            top_conditions
                .into_iter()
                .reduce(|a, b| a.and(b))
                .expect("non-empty"),
        );
    }

    // RETURN items.
    let mut items = Vec::with_capacity(q.returns.len());
    for item in &q.returns {
        match item {
            ReturnItem::Var(v) => items.push(OutputItem::Var(Var::new(v))),
            ReturnItem::Column(v, col) => {
                let var = Var::new(v);
                match catalog.resolve_column(&q.graph, col)? {
                    ColumnResolution::Component(i) => {
                        items.push(OutputItem::Component(var, i));
                    }
                    ColumnResolution::Property => {
                        items.push(OutputItem::Prop(var, Value::str(col.as_str())));
                    }
                }
            }
        }
    }
    OutputPattern::new(pattern, items).map_err(|e| LowerError::Output(e.to_string()))
}

/// Returns the variable for condition-building plus the pattern
/// variable; anonymous elements with labels get a reserved `•anon`
/// variable so the label test has something to bind.
fn named_or_anon(var: &Option<String>, anon: &mut usize) -> (Var, Option<Var>) {
    match var {
        Some(v) => {
            let var = Var::new(v);
            (var.clone(), Some(var))
        }
        None => {
            *anon += 1;
            let var = Var::new(format!("\u{2022}anon{anon}"));
            (var.clone(), Some(var))
        }
    }
}

/// Flattens top-level `AND`s.
fn conjuncts(e: &Expr) -> Vec<Expr> {
    match e {
        Expr::And(a, b) => {
            let mut out = conjuncts(a);
            out.extend(conjuncts(b));
            out
        }
        other => vec![other.clone()],
    }
}

fn expr_vars(e: &Expr) -> BTreeSet<String> {
    match e {
        Expr::Cmp { var, rhs, .. } => {
            let mut s = BTreeSet::new();
            s.insert(var.clone());
            if let Rhs::Column(v, _) = rhs {
                s.insert(v.clone());
            }
            s
        }
        Expr::HasLabel { var, .. } => [var.clone()].into_iter().collect(),
        Expr::And(a, b) | Expr::Or(a, b) => {
            let mut s = expr_vars(a);
            s.extend(expr_vars(b));
            s
        }
        Expr::Not(a) => expr_vars(a),
    }
}

fn cmp_op(op: CmpToken) -> CmpOp {
    match op {
        CmpToken::Eq => CmpOp::Eq,
        CmpToken::Ne => CmpOp::Ne,
        CmpToken::Lt => CmpOp::Lt,
        CmpToken::Le => CmpOp::Le,
        CmpToken::Gt => CmpOp::Gt,
        CmpToken::Ge => CmpOp::Ge,
    }
}

fn expr_to_condition(e: &Expr, graph: &str, catalog: &Catalog) -> Result<Condition, LowerError> {
    match e {
        Expr::HasLabel { var, label } => Ok(Condition::has_label(var.as_str(), label.as_str())),
        Expr::Cmp {
            var,
            column,
            op,
            rhs,
        } => {
            if catalog.resolve_column(graph, column)? != ColumnResolution::Property {
                return Err(LowerError::ComponentInWhere(column.clone()));
            }
            match rhs {
                Rhs::Int(i) => Ok(Condition::prop_cmp(
                    var.as_str(),
                    Value::str(column.as_str()),
                    cmp_op(*op),
                    *i,
                )),
                Rhs::Str(s) => Ok(Condition::prop_cmp(
                    var.as_str(),
                    Value::str(column.as_str()),
                    cmp_op(*op),
                    s.as_str(),
                )),
                Rhs::Column(v2, c2) => {
                    if *op != CmpToken::Eq {
                        return Err(LowerError::NonEqualityJoin(format!(
                            "{var}.{column} vs {v2}.{c2}"
                        )));
                    }
                    if catalog.resolve_column(graph, c2)? != ColumnResolution::Property {
                        return Err(LowerError::ComponentInWhere(c2.clone()));
                    }
                    Ok(Condition::prop_eq(
                        var.as_str(),
                        Value::str(column.as_str()),
                        v2.as_str(),
                        Value::str(c2.as_str()),
                    ))
                }
            }
        }
        Expr::And(a, b) => {
            Ok(expr_to_condition(a, graph, catalog)?.and(expr_to_condition(b, graph, catalog)?))
        }
        Expr::Or(a, b) => {
            Ok(expr_to_condition(a, graph, catalog)?.or(expr_to_condition(b, graph, catalog)?))
        }
        Expr::Not(a) => Ok(expr_to_condition(a, graph, catalog)?.not()),
    }
}

/// Result of executing one statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// `CREATE TABLE` registered.
    TableDefined(String),
    /// `CREATE PROPERTY GRAPH` registered.
    GraphDefined(String),
    /// `SELECT …` result rows.
    Rows(Relation),
}

/// A stateful SQL/PGQ session: catalog plus execution entry points.
#[derive(Debug, Default)]
pub struct Session {
    /// The session catalog.
    pub catalog: Catalog,
    /// View-construction mode for query execution.
    pub mode: ViewMode,
}

impl Session {
    /// A fresh session with strict view semantics.
    pub fn new() -> Self {
        Session::default()
    }

    /// Executes one parsed statement against `db`.
    pub fn execute(&mut self, stmt: &Statement, db: &Database) -> Result<Outcome, LowerError> {
        match stmt {
            Statement::CreateTable(ct) => {
                self.catalog.define_table(ct);
                Ok(Outcome::TableDefined(ct.name.clone()))
            }
            Statement::CreateGraph(cg) => {
                self.catalog.define_graph(cg)?;
                Ok(Outcome::GraphDefined(cg.name.clone()))
            }
            Statement::GraphQuery(q) => {
                let out = lower_query(q, &self.catalog)?;
                let graph = self.catalog.build_graph(&q.graph, db, self.mode)?;
                let rows = out
                    .eval(&graph)
                    .map_err(|e| LowerError::Output(e.to_string()))?;
                Ok(Outcome::Rows(rows))
            }
        }
    }

    /// Parses and executes a whole script, returning each statement's
    /// outcome.
    pub fn run_script(&mut self, script: &str, db: &Database) -> Result<Vec<Outcome>, ScriptError> {
        let stmts = crate::parser::parse_script(script).map_err(ScriptError::Parse)?;
        let mut out = Vec::with_capacity(stmts.len());
        for stmt in &stmts {
            out.push(self.execute(stmt, db).map_err(ScriptError::Lower)?);
        }
        Ok(out)
    }
}

/// Errors from [`Session::run_script`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScriptError {
    /// Parse-time failure.
    Parse(crate::parser::ParseError),
    /// Execution failure.
    Lower(LowerError),
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScriptError::Parse(e) => write!(f, "{e}"),
            ScriptError::Lower(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ScriptError {}

#[cfg(test)]
mod tests {
    use super::*;
    use pgq_value::tuple;

    fn transfers_db() -> Database {
        let mut db = Database::new();
        for iban in ["IL1", "IL2", "IL3", "IL4"] {
            db.insert("Account", tuple![iban]).unwrap();
        }
        // Chain IL1 →500→ IL2 →250→ IL3 →800→ IL4.
        db.insert("Transfer", tuple![1, "IL1", "IL2", 10, 500])
            .unwrap();
        db.insert("Transfer", tuple![2, "IL2", "IL3", 11, 250])
            .unwrap();
        db.insert("Transfer", tuple![3, "IL3", "IL4", 12, 800])
            .unwrap();
        db
    }

    const DDL: &str = r"
        CREATE TABLE Account (iban);
        CREATE TABLE Transfer (t_id, src_iban, tgt_iban, ts, amount);
        CREATE PROPERTY GRAPH Transfers (
          NODES TABLE Account KEY (iban) LABEL Account,
          EDGES TABLE Transfer KEY (t_id)
            SOURCE KEY src_iban REFERENCES Account
            TARGET KEY tgt_iban REFERENCES Account
            LABELS Transfer PROPERTIES (ts, amount));
    ";

    #[test]
    fn example_2_1_end_to_end() {
        let db = transfers_db();
        let mut session = Session::new();
        session.run_script(DDL, &db).unwrap();
        let outcomes = session
            .run_script(
                "SELECT * FROM GRAPH_TABLE ( Transfers
                   MATCH ( x ) -[ t : Transfer ]->+ ( y )
                   WHERE t.amount > 100
                   RETURN ( x.iban , y.iban ) );",
                &db,
            )
            .unwrap();
        let Outcome::Rows(rows) = &outcomes[0] else {
            panic!()
        };
        // All-transfer chains have every step > 100 except none — every
        // step is > 100 here (500, 250, 800), so full reachability.
        assert!(rows.contains(&tuple!["IL1", "IL4"]));
        assert!(rows.contains(&tuple!["IL2", "IL3"]));
        assert_eq!(rows.len(), 6);
    }

    #[test]
    fn where_filters_per_step() {
        let db = transfers_db();
        let mut session = Session::new();
        session.run_script(DDL, &db).unwrap();
        let outcomes = session
            .run_script(
                "SELECT * FROM GRAPH_TABLE ( Transfers
                   MATCH ( x ) -[ t : Transfer ]->+ ( y )
                   WHERE t.amount > 300
                   RETURN ( x.iban , y.iban ) );",
                &db,
            )
            .unwrap();
        let Outcome::Rows(rows) = &outcomes[0] else {
            panic!()
        };
        // Only the 500 and 800 edges qualify, and they are not adjacent.
        assert!(rows.contains(&tuple!["IL1", "IL2"]));
        assert!(rows.contains(&tuple!["IL3", "IL4"]));
        assert!(!rows.contains(&tuple!["IL1", "IL3"]));
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn top_level_where_on_node_props() {
        let mut db = transfers_db();
        db.insert("Account", tuple!["IL9"]).unwrap();
        let mut session = Session::new();
        session.run_script(DDL, &db).unwrap();
        let outcomes = session
            .run_script(
                "SELECT * FROM GRAPH_TABLE ( Transfers
                   MATCH ( x ) -[ t ]-> ( y )
                   WHERE x.iban = 'IL1'
                   RETURN ( y.iban ) );",
                &db,
            )
            .unwrap_err();
        // x.iban is a key column: WHERE on identifier components is
        // rejected with a helpful error.
        assert!(matches!(
            outcomes,
            ScriptError::Lower(LowerError::ComponentInWhere(_))
        ));
    }

    #[test]
    fn label_tests_in_where() {
        let db = transfers_db();
        let mut session = Session::new();
        session.run_script(DDL, &db).unwrap();
        let outcomes = session
            .run_script(
                "SELECT * FROM GRAPH_TABLE ( Transfers
                   MATCH ( x ) -[ t ]-> ( y )
                   WHERE Account(x) AND NOT Transfer(x)
                   RETURN ( x.iban , y.iban ) );",
                &db,
            )
            .unwrap();
        let Outcome::Rows(rows) = &outcomes[0] else {
            panic!()
        };
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn bare_var_return_gives_composite_ids() {
        let db = transfers_db();
        let mut session = Session::new();
        session.run_script(DDL, &db).unwrap();
        let outcomes = session
            .run_script(
                "SELECT * FROM GRAPH_TABLE ( Transfers
                   MATCH ( x ) -[ t ]-> ( y ) RETURN ( x ) );",
                &db,
            )
            .unwrap();
        let Outcome::Rows(rows) = &outcomes[0] else {
            panic!()
        };
        // Identifier arity 2: (table, key).
        assert_eq!(rows.arity(), 2);
        assert!(rows.contains(&tuple!["Account", "IL1"]));
    }

    #[test]
    fn mixed_scope_where_is_rejected() {
        let db = transfers_db();
        let mut session = Session::new();
        session.run_script(DDL, &db).unwrap();
        let err = session
            .run_script(
                "SELECT * FROM GRAPH_TABLE ( Transfers
                   MATCH ( x ) -[ t : Transfer ]->+ ( y )
                   WHERE t.amount = x.amount
                   RETURN ( y.iban ) );",
                &db,
            )
            .unwrap_err();
        assert!(matches!(
            err,
            ScriptError::Lower(LowerError::UnsupportedWhere(_))
        ));
    }

    #[test]
    fn unknown_where_var_is_rejected() {
        let db = transfers_db();
        let mut session = Session::new();
        session.run_script(DDL, &db).unwrap();
        let err = session
            .run_script(
                "SELECT * FROM GRAPH_TABLE ( Transfers
                   MATCH ( x ) -[ t ]-> ( y )
                   WHERE zz.amount > 1
                   RETURN ( y.iban ) );",
                &db,
            )
            .unwrap_err();
        assert!(matches!(err, ScriptError::Lower(LowerError::UnknownVar(_))));
    }

    #[test]
    fn backward_edges_and_ranges() {
        let db = transfers_db();
        let mut session = Session::new();
        session.run_script(DDL, &db).unwrap();
        let outcomes = session
            .run_script(
                "SELECT * FROM GRAPH_TABLE ( Transfers
                   MATCH ( x ) <-[ t ]-{2,2} ( y )
                   RETURN ( x.iban , y.iban ) );",
                &db,
            )
            .unwrap();
        let Outcome::Rows(rows) = &outcomes[0] else {
            panic!()
        };
        // Two backward steps: x ←← y, i.e. y reaches x in 2 steps.
        assert!(rows.contains(&tuple!["IL3", "IL1"]));
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn boolean_query_via_empty_return() {
        let db = transfers_db();
        let mut session = Session::new();
        session.run_script(DDL, &db).unwrap();
        let outcomes = session
            .run_script(
                "SELECT * FROM GRAPH_TABLE ( Transfers
                   MATCH ( x ) -[ t ]-> ( y ) RETURN ( ) );",
                &db,
            )
            .unwrap();
        let Outcome::Rows(rows) = &outcomes[0] else {
            panic!()
        };
        assert!(rows.as_bool());
        assert_eq!(rows.arity(), 0);
    }

    #[test]
    fn anonymous_labeled_nodes() {
        let db = transfers_db();
        let mut session = Session::new();
        session.run_script(DDL, &db).unwrap();
        let outcomes = session
            .run_script(
                "SELECT * FROM GRAPH_TABLE ( Transfers
                   MATCH ( : Account ) -[ t ]-> ( y ) RETURN ( y.iban ) );",
                &db,
            )
            .unwrap();
        let Outcome::Rows(rows) = &outcomes[0] else {
            panic!()
        };
        assert_eq!(rows.len(), 3);
    }
}
