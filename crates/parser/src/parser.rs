//! Recursive-descent parser for the SQL/PGQ subset (Examples 1.1/2.1).

use crate::ast::*;
use crate::lexer::{lex, LexError, Tok, Token};
use std::fmt;

/// Parse errors with location information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable message mentioning what was expected.
    pub message: String,
    /// Byte offset of the offending token (input length at EOF).
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            at: e.at,
        }
    }
}

/// Parses a script of `;`-separated statements.
pub fn parse_script(input: &str) -> Result<Vec<Statement>, ParseError> {
    let tokens = lex(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        input_len: input.len(),
    };
    let mut out = Vec::new();
    while !p.at_end() {
        out.push(p.statement()?);
        // Optional trailing semicolon(s).
        while p.eat(&Tok::Semi) {}
    }
    Ok(out)
}

/// Parses exactly one statement.
pub fn parse_statement(input: &str) -> Result<Statement, ParseError> {
    let stmts = parse_script(input)?;
    match stmts.len() {
        1 => Ok(stmts.into_iter().next().expect("checked length")),
        n => Err(ParseError {
            message: format!("expected exactly one statement, found {n}"),
            at: 0,
        }),
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    input_len: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn here(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map_or(self.input_len, |t| t.span.start)
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|t| t.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &Tok) -> Result<(), ParseError> {
        if self.eat(tok) {
            Ok(())
        } else {
            Err(self.err(&format!("expected `{tok}`")))
        }
    }

    fn err(&self, message: &str) -> ParseError {
        let found = self
            .peek()
            .map_or("end of input".to_string(), |t| format!("`{t}`"));
        ParseError {
            message: format!("{message}, found {found}"),
            at: self.here(),
        }
    }

    /// Case-insensitive keyword test.
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(&format!("expected keyword {kw}")))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(Tok::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.err("expected identifier")),
        }
    }

    /// `( id, id, … )`
    fn ident_list_parens(&mut self) -> Result<Vec<String>, ParseError> {
        self.expect(&Tok::LParen)?;
        let mut out = vec![self.ident()?];
        while self.eat(&Tok::Comma) {
            out.push(self.ident()?);
        }
        self.expect(&Tok::RParen)?;
        Ok(out)
    }

    fn statement(&mut self) -> Result<Statement, ParseError> {
        if self.at_kw("CREATE") {
            self.pos += 1;
            if self.at_kw("TABLE") {
                self.pos += 1;
                return Ok(Statement::CreateTable(self.create_table()?));
            }
            if self.at_kw("PROPERTY") {
                self.pos += 1;
                self.expect_kw("GRAPH")?;
                return Ok(Statement::CreateGraph(self.create_graph()?));
            }
            return Err(self.err("expected TABLE or PROPERTY GRAPH after CREATE"));
        }
        if self.at_kw("SELECT") {
            return Ok(Statement::GraphQuery(self.select()?));
        }
        Err(self.err("expected CREATE or SELECT"))
    }

    fn create_table(&mut self) -> Result<CreateTable, ParseError> {
        let name = self.ident()?;
        let columns = self.ident_list_parens()?;
        Ok(CreateTable { name, columns })
    }

    fn create_graph(&mut self) -> Result<CreateGraph, ParseError> {
        let name = self.ident()?;
        self.expect(&Tok::LParen)?;
        let mut node_tables = Vec::new();
        let mut edge_tables = Vec::new();
        loop {
            if self.eat_kw("NODES") || self.eat_kw("NODE") {
                self.expect_kw("TABLE")?;
                node_tables.push(self.node_table()?);
            } else if self.eat_kw("EDGES") || self.eat_kw("EDGE") {
                self.expect_kw("TABLE")?;
                edge_tables.push(self.edge_table()?);
            } else {
                return Err(self.err("expected NODES TABLE or EDGES TABLE"));
            }
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect(&Tok::RParen)?;
        Ok(CreateGraph {
            name,
            node_tables,
            edge_tables,
        })
    }

    fn node_table(&mut self) -> Result<NodeTable, ParseError> {
        let table = self.ident()?;
        self.expect_kw("KEY")?;
        let key = self.ident_list_parens()?;
        let mut labels = Vec::new();
        let mut properties = Vec::new();
        loop {
            if self.eat_kw("LABEL") || self.eat_kw("LABELS") {
                // One label per LABEL(S) clause; repeat the clause for
                // multiple labels (a comma would be ambiguous with the
                // separator between NODES/EDGES TABLE entries).
                labels.push(self.ident()?);
            } else if self.eat_kw("PROPERTIES") {
                properties = self.ident_list_parens()?;
            } else {
                break;
            }
        }
        Ok(NodeTable {
            table,
            key,
            labels,
            properties,
        })
    }

    fn edge_table(&mut self) -> Result<EdgeTable, ParseError> {
        let table = self.ident()?;
        self.expect_kw("KEY")?;
        let key = self.ident_list_parens()?;
        self.expect_kw("SOURCE")?;
        self.expect_kw("KEY")?;
        let source_key = self.key_cols()?;
        self.expect_kw("REFERENCES")?;
        let source_ref = self.ident()?;
        self.expect_kw("TARGET")?;
        self.expect_kw("KEY")?;
        let target_key = self.key_cols()?;
        self.expect_kw("REFERENCES")?;
        let target_ref = self.ident()?;
        let mut labels = Vec::new();
        let mut properties = Vec::new();
        loop {
            if self.eat_kw("LABEL") || self.eat_kw("LABELS") {
                labels.push(self.ident()?);
            } else if self.eat_kw("PROPERTIES") {
                properties = self.ident_list_parens()?;
            } else {
                break;
            }
        }
        Ok(EdgeTable {
            table,
            key,
            source_key,
            source_ref,
            target_key,
            target_ref,
            labels,
            properties,
        })
    }

    /// `KEY col` or `KEY (col, …)` — the paper writes `SOURCE KEY
    /// src_iban` without parens.
    fn key_cols(&mut self) -> Result<Vec<String>, ParseError> {
        if self.peek() == Some(&Tok::LParen) {
            self.ident_list_parens()
        } else {
            Ok(vec![self.ident()?])
        }
    }

    fn select(&mut self) -> Result<GraphQuery, ParseError> {
        self.expect_kw("SELECT")?;
        self.expect(&Tok::Star)?;
        self.expect_kw("FROM")?;
        self.expect_kw("GRAPH_TABLE")?;
        self.expect(&Tok::LParen)?;
        let graph = self.ident()?;
        self.expect_kw("MATCH")?;
        let pattern = self.path_pattern()?;
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        self.expect_kw("RETURN")?;
        let returns = self.return_items()?;
        self.expect(&Tok::RParen)?;
        Ok(GraphQuery {
            graph,
            pattern,
            where_clause,
            returns,
        })
    }

    fn path_pattern(&mut self) -> Result<Vec<PathElement>, ParseError> {
        let mut out = Vec::new();
        loop {
            match self.peek() {
                Some(Tok::LParen) => out.push(self.node_pattern()?),
                Some(Tok::Dash) | Some(Tok::Arrow) | Some(Tok::BackArrow) => {
                    out.push(self.edge_pattern()?)
                }
                _ => break,
            }
        }
        if out.is_empty() {
            return Err(self.err("expected a path pattern"));
        }
        Ok(out)
    }

    /// `(x)`, `()`, `(x:Label)`, `(:Label)`.
    fn node_pattern(&mut self) -> Result<PathElement, ParseError> {
        self.expect(&Tok::LParen)?;
        let var = match self.peek() {
            Some(Tok::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Some(s)
            }
            _ => None,
        };
        let mut labels = Vec::new();
        while self.eat(&Tok::Colon) {
            labels.push(self.ident()?);
        }
        self.expect(&Tok::RParen)?;
        Ok(PathElement::Node { var, labels })
    }

    /// `-[t:L]->`, `->`, `<-[t]-`, `<-`, with optional quantifier after
    /// the head: `->+`, `->*`, `->{1,3}`, `->{2,}`.
    fn edge_pattern(&mut self) -> Result<PathElement, ParseError> {
        // Bare `->` lexes as a single Arrow token.
        if self.eat(&Tok::Arrow) {
            let quantifier = self.quantifier()?;
            return Ok(PathElement::Edge {
                var: None,
                labels: Vec::new(),
                forward: true,
                quantifier,
            });
        }
        let forward = match self.peek() {
            Some(Tok::Dash) => true,
            Some(Tok::BackArrow) => false,
            _ => return Err(self.err("expected an edge pattern")),
        };
        self.pos += 1;
        // Bare `<-` (no bracket) is a backward edge on its own.
        if !forward && self.peek() != Some(&Tok::LBracket) {
            let quantifier = self.quantifier()?;
            return Ok(PathElement::Edge {
                var: None,
                labels: Vec::new(),
                forward: false,
                quantifier,
            });
        }
        let (var, labels) = if self.eat(&Tok::LBracket) {
            let var = match self.peek() {
                Some(Tok::Ident(s)) => {
                    let s = s.clone();
                    self.pos += 1;
                    Some(s)
                }
                _ => None,
            };
            let mut labels = Vec::new();
            while self.eat(&Tok::Colon) {
                labels.push(self.ident()?);
            }
            self.expect(&Tok::RBracket)?;
            (var, labels)
        } else {
            (None, Vec::new())
        };
        if forward {
            self.expect(&Tok::Arrow)?;
        } else {
            self.expect(&Tok::Dash)?;
        }
        let quantifier = self.quantifier()?;
        Ok(PathElement::Edge {
            var,
            labels,
            forward,
            quantifier,
        })
    }

    fn quantifier(&mut self) -> Result<Option<Quantifier>, ParseError> {
        if self.eat(&Tok::Plus) {
            return Ok(Some(Quantifier::Plus));
        }
        if self.eat(&Tok::Star) {
            return Ok(Some(Quantifier::Star));
        }
        if self.eat(&Tok::LBrace) {
            let n = match self.bump() {
                Some(Tok::Int(i)) if i >= 0 => i as usize,
                _ => return Err(self.err("expected repetition lower bound")),
            };
            self.expect(&Tok::Comma)?;
            let q = if self.eat(&Tok::RBrace) {
                Quantifier::AtLeast(n)
            } else {
                let m = match self.bump() {
                    Some(Tok::Int(i)) if i >= 0 => i as usize,
                    _ => return Err(self.err("expected repetition upper bound")),
                };
                self.expect(&Tok::RBrace)?;
                Quantifier::Range(n, m)
            };
            return Ok(Some(q));
        }
        Ok(None)
    }

    /// `expr := term (AND|OR term)*` with `NOT` and parentheses.
    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.expr_term()?;
        loop {
            if self.eat_kw("AND") {
                let rhs = self.expr_term()?;
                lhs = Expr::And(Box::new(lhs), Box::new(rhs));
            } else if self.eat_kw("OR") {
                let rhs = self.expr_term()?;
                lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    fn expr_term(&mut self) -> Result<Expr, ParseError> {
        if self.eat_kw("NOT") {
            return Ok(Expr::Not(Box::new(self.expr_term()?)));
        }
        if self.eat(&Tok::LParen) {
            let e = self.expr()?;
            self.expect(&Tok::RParen)?;
            return Ok(e);
        }
        // `ident.col op rhs` or `ident(var)` label test.
        let first = self.ident()?;
        if self.eat(&Tok::LParen) {
            let var = self.ident()?;
            self.expect(&Tok::RParen)?;
            return Ok(Expr::HasLabel { var, label: first });
        }
        self.expect(&Tok::Dot)?;
        let column = self.ident()?;
        let op = match self.bump() {
            Some(Tok::Eq) => CmpToken::Eq,
            Some(Tok::Ne) => CmpToken::Ne,
            Some(Tok::Lt) => CmpToken::Lt,
            Some(Tok::Le) => CmpToken::Le,
            Some(Tok::Gt) => CmpToken::Gt,
            Some(Tok::Ge) => CmpToken::Ge,
            _ => return Err(self.err("expected comparison operator")),
        };
        let rhs = match self.bump() {
            Some(Tok::Int(i)) => Rhs::Int(i),
            Some(Tok::Str(s)) => Rhs::Str(s),
            Some(Tok::Ident(v)) => {
                self.expect(&Tok::Dot)?;
                let c = self.ident()?;
                Rhs::Column(v, c)
            }
            _ => return Err(self.err("expected literal or column reference")),
        };
        Ok(Expr::Cmp {
            var: first,
            column,
            op,
            rhs,
        })
    }

    /// `( item, … )` or a bare comma list; items `x` or `x.col`.
    fn return_items(&mut self) -> Result<Vec<ReturnItem>, ParseError> {
        let parens = self.eat(&Tok::LParen);
        let mut out = Vec::new();
        if parens && self.eat(&Tok::RParen) {
            return Ok(out); // empty RETURN (): Boolean query extension
        }
        loop {
            let var = self.ident()?;
            if self.eat(&Tok::Dot) {
                let col = self.ident()?;
                out.push(ReturnItem::Column(var, col));
            } else {
                out.push(ReturnItem::Var(var));
            }
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        if parens {
            self.expect(&Tok::RParen)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_create_table() {
        let s = parse_statement("CREATE TABLE Account (iban);").unwrap();
        assert_eq!(
            s,
            Statement::CreateTable(CreateTable {
                name: "Account".into(),
                columns: vec!["iban".into()]
            })
        );
    }

    #[test]
    fn parses_example_1_1() {
        let sql = r"CREATE PROPERTY GRAPH Transfers (
            NODES TABLE Account KEY ( iban ) LABEL Account ,
            EDGES TABLE Transfer KEY ( t_id )
              SOURCE KEY src_iban REFERENCES Account
              TARGET KEY tgt_iban REFERENCES Account
              LABELS Transfer PROPERTIES ( ts , amount ) );";
        let Statement::CreateGraph(g) = parse_statement(sql).unwrap() else {
            panic!("expected CreateGraph");
        };
        assert_eq!(g.name, "Transfers");
        assert_eq!(g.node_tables.len(), 1);
        assert_eq!(g.node_tables[0].key, vec!["iban"]);
        assert_eq!(g.node_tables[0].labels, vec!["Account"]);
        assert_eq!(g.edge_tables.len(), 1);
        let e = &g.edge_tables[0];
        assert_eq!(e.source_key, vec!["src_iban"]);
        assert_eq!(e.source_ref, "Account");
        assert_eq!(e.target_ref, "Account");
        assert_eq!(e.properties, vec!["ts", "amount"]);
    }

    #[test]
    fn parses_example_2_1() {
        let sql = r"SELECT * FROM GRAPH_TABLE ( Transfers
            MATCH ( x ) -[ t : Transfer ]->+ ( y )
            WHERE t.amount > 100
            RETURN ( x.iban , y.iban ) );";
        let Statement::GraphQuery(q) = parse_statement(sql).unwrap() else {
            panic!("expected GraphQuery");
        };
        assert_eq!(q.graph, "Transfers");
        assert_eq!(q.pattern.len(), 3);
        assert!(matches!(
            &q.pattern[1],
            PathElement::Edge {
                var: Some(t),
                labels,
                forward: true,
                quantifier: Some(Quantifier::Plus),
            } if t == "t" && labels == &vec!["Transfer".to_string()]
        ));
        assert!(matches!(
            q.where_clause,
            Some(Expr::Cmp {
                op: CmpToken::Gt,
                rhs: Rhs::Int(100),
                ..
            })
        ));
        assert_eq!(q.returns.len(), 2);
    }

    #[test]
    fn parses_quantifiers() {
        for (src, expect) in [
            ("->*", Quantifier::Star),
            ("->+", Quantifier::Plus),
            ("->{2,5}", Quantifier::Range(2, 5)),
            ("->{3,}", Quantifier::AtLeast(3)),
        ] {
            let sql = format!("SELECT * FROM GRAPH_TABLE (G MATCH (x) {src} (y) RETURN (x))");
            let Statement::GraphQuery(q) = parse_statement(&sql).unwrap() else {
                panic!()
            };
            let PathElement::Edge { quantifier, .. } = &q.pattern[1] else {
                panic!()
            };
            assert_eq!(quantifier, &Some(expect), "{src}");
        }
    }

    #[test]
    fn parses_backward_edges_and_labels() {
        let sql = "SELECT * FROM GRAPH_TABLE (G MATCH (x:Account) <-[t:Transfer]- (y) RETURN (x))";
        let Statement::GraphQuery(q) = parse_statement(sql).unwrap() else {
            panic!()
        };
        assert!(matches!(
            &q.pattern[0],
            PathElement::Node { var: Some(x), labels } if x == "x" && labels == &vec!["Account".to_string()]
        ));
        assert!(matches!(
            &q.pattern[1],
            PathElement::Edge { forward: false, .. }
        ));
    }

    #[test]
    fn parses_where_combinations() {
        let sql = "SELECT * FROM GRAPH_TABLE (G MATCH (x) -> (y) \
                   WHERE x.a = y.b AND NOT (x.c = 'z' OR Account(x)) RETURN (x))";
        let Statement::GraphQuery(q) = parse_statement(sql).unwrap() else {
            panic!()
        };
        assert!(matches!(q.where_clause, Some(Expr::And(..))));
    }

    #[test]
    fn parse_errors_carry_position_and_expectation() {
        let e = parse_statement("CREATE NONSENSE").unwrap_err();
        assert!(e.message.contains("TABLE or PROPERTY GRAPH"));
        let e = parse_statement("SELECT * FROM GRAPH_TABLE (G MATCH RETURN (x))").unwrap_err();
        assert!(e.message.contains("path pattern"));
        let e = parse_statement("SELECT *").unwrap_err();
        assert!(e.message.contains("FROM"));
    }

    #[test]
    fn script_with_multiple_statements() {
        let script = "CREATE TABLE A (x); CREATE TABLE B (y);";
        assert_eq!(parse_script(script).unwrap().len(), 2);
    }

    #[test]
    fn boolean_return() {
        let sql = "SELECT * FROM GRAPH_TABLE (G MATCH (x) -> (y) RETURN ())";
        let Statement::GraphQuery(q) = parse_statement(sql).unwrap() else {
            panic!()
        };
        assert!(q.returns.is_empty());
    }
}
