//! The catalog: registered base tables and property graph definitions,
//! plus the normalization of vertex/edge tables into the six canonical
//! relations `(R1, …, R6)` of Definition 3.1 — the translation the paper
//! sketches in Section 7(1).
//!
//! ## Identifier scheme
//!
//! The standard keys rows by the declared `KEY` columns; keys from
//! different tables may collide, and node/edge keys may have different
//! lengths while Definition 5.1 requires one identifier arity. We
//! therefore use composite identifiers
//! `(table_name, key_1, …, key_j, 0, …, 0)` of uniform arity
//! `k = 1 + max key length`: the table-name component makes identifiers
//! from different tables (and node vs edge sorts) disjoint, and constant
//! padding keeps the map injective. This is exactly the spirit of
//! Example 5.1's composite identifiers, and is recorded in DESIGN.md.

use crate::ast::{CreateGraph, CreateTable};
use pgq_graph::{pg_view_exact, PropertyGraph, ViewMode, ViewRelations};
use pgq_relational::{Database, Relation};
use pgq_value::{Tuple, Value};
use std::collections::BTreeMap;
use std::fmt;

/// Catalog errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// Unknown base table.
    UnknownTable(String),
    /// Unknown graph.
    UnknownGraph(String),
    /// A referenced column does not exist in its table.
    UnknownColumn {
        /// The table.
        table: String,
        /// The missing column.
        column: String,
    },
    /// An edge table references a node table not declared in the graph.
    UnknownReference {
        /// The edge table.
        edge_table: String,
        /// The dangling reference.
        referenced: String,
    },
    /// Source/target key length differs from the referenced node key.
    KeyLengthMismatch {
        /// The edge table.
        edge_table: String,
        /// Length of the edge-side key.
        found: usize,
        /// Length of the referenced node key.
        expected: usize,
    },
    /// The stored relation's arity differs from the declared column list.
    TableArity {
        /// The table.
        table: String,
        /// Declared column count.
        declared: usize,
        /// Stored arity.
        stored: usize,
    },
    /// A column name resolves to different things in different tables.
    AmbiguousColumn(String),
    /// A column name resolves to nothing.
    UnresolvedColumn(String),
    /// View construction failed (Definition 3.1 conditions).
    View(String),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::UnknownTable(t) => write!(f, "unknown table {t}"),
            CatalogError::UnknownGraph(g) => write!(f, "unknown property graph {g}"),
            CatalogError::UnknownColumn { table, column } => {
                write!(f, "table {table} has no column {column}")
            }
            CatalogError::UnknownReference {
                edge_table,
                referenced,
            } => write!(
                f,
                "edge table {edge_table} references {referenced}, which is not a node table of this graph"
            ),
            CatalogError::KeyLengthMismatch {
                edge_table,
                found,
                expected,
            } => write!(
                f,
                "edge table {edge_table}: endpoint key has {found} column(s), referenced key has {expected}"
            ),
            CatalogError::TableArity {
                table,
                declared,
                stored,
            } => write!(
                f,
                "table {table} declares {declared} column(s) but stores arity {stored}"
            ),
            CatalogError::AmbiguousColumn(c) => write!(f, "column {c} is ambiguous"),
            CatalogError::UnresolvedColumn(c) => {
                write!(f, "column {c} is neither a key column nor a property")
            }
            CatalogError::View(e) => write!(f, "graph view construction failed: {e}"),
        }
    }
}

impl std::error::Error for CatalogError {}

/// How a `x.col` reference resolves against a graph's element tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnResolution {
    /// A key column: component `index` of the composite identifier
    /// (offset by 1 for the table-name prefix).
    Component(usize),
    /// A property key.
    Property,
}

/// Registered tables and graphs.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Vec<String>>,
    graphs: BTreeMap<String, CreateGraph>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers a base table's column names.
    pub fn define_table(&mut self, ct: &CreateTable) {
        self.tables.insert(ct.name.clone(), ct.columns.clone());
    }

    /// Column names of a registered table.
    pub fn table_columns(&self, name: &str) -> Result<&[String], CatalogError> {
        self.tables
            .get(name)
            .map(Vec::as_slice)
            .ok_or_else(|| CatalogError::UnknownTable(name.to_string()))
    }

    /// Registers a property graph definition after validating every
    /// table, column, and reference it mentions.
    pub fn define_graph(&mut self, cg: &CreateGraph) -> Result<(), CatalogError> {
        let col_positions = |table: &str, cols: &[String]| -> Result<(), CatalogError> {
            let columns = self.table_columns(table)?;
            for c in cols {
                if !columns.contains(c) {
                    return Err(CatalogError::UnknownColumn {
                        table: table.to_string(),
                        column: c.clone(),
                    });
                }
            }
            Ok(())
        };
        for nt in &cg.node_tables {
            col_positions(&nt.table, &nt.key)?;
            col_positions(&nt.table, &nt.properties)?;
        }
        for et in &cg.edge_tables {
            col_positions(&et.table, &et.key)?;
            col_positions(&et.table, &et.source_key)?;
            col_positions(&et.table, &et.target_key)?;
            col_positions(&et.table, &et.properties)?;
            for (reference, key) in [
                (&et.source_ref, &et.source_key),
                (&et.target_ref, &et.target_key),
            ] {
                let node = cg
                    .node_tables
                    .iter()
                    .find(|nt| &nt.table == reference)
                    .ok_or_else(|| CatalogError::UnknownReference {
                        edge_table: et.table.clone(),
                        referenced: reference.clone(),
                    })?;
                if node.key.len() != key.len() {
                    return Err(CatalogError::KeyLengthMismatch {
                        edge_table: et.table.clone(),
                        found: key.len(),
                        expected: node.key.len(),
                    });
                }
            }
        }
        self.graphs.insert(cg.name.clone(), cg.clone());
        Ok(())
    }

    /// A registered graph definition.
    pub fn graph(&self, name: &str) -> Result<&CreateGraph, CatalogError> {
        self.graphs
            .get(name)
            .ok_or_else(|| CatalogError::UnknownGraph(name.to_string()))
    }

    /// The uniform identifier arity of a graph:
    /// `1 + max key length` (module docs).
    pub fn id_arity(&self, graph: &str) -> Result<usize, CatalogError> {
        let cg = self.graph(graph)?;
        let max_key = cg
            .node_tables
            .iter()
            .map(|nt| nt.key.len())
            .chain(cg.edge_tables.iter().map(|et| et.key.len()))
            .max()
            .unwrap_or(0);
        Ok(1 + max_key)
    }

    /// Names of every registered property graph, in name order.
    pub fn graph_names(&self) -> impl Iterator<Item = &str> + '_ {
        self.graphs.keys().map(String::as_str)
    }

    /// Materializes the six canonical relations of a graph from the base
    /// tables stored in `db`.
    pub fn view_relations(
        &self,
        graph: &str,
        db: &Database,
    ) -> Result<ViewRelations, CatalogError> {
        let cg = self.graph(graph)?;
        let k = self.id_arity(graph)?;
        let mut nodes = Relation::empty(k);
        let mut edges = Relation::empty(k);
        let mut src = Relation::empty(2 * k);
        let mut tgt = Relation::empty(2 * k);
        let mut labels = Relation::empty(k + 1);
        let mut props = Relation::empty(k + 2);

        let base = |table: &str| -> Result<(&Relation, Vec<String>), CatalogError> {
            let columns = self.table_columns(table)?.to_vec();
            let rel = db
                .get(&table.into())
                .ok_or_else(|| CatalogError::UnknownTable(table.to_string()))?;
            if rel.arity() != columns.len() {
                return Err(CatalogError::TableArity {
                    table: table.to_string(),
                    declared: columns.len(),
                    stored: rel.arity(),
                });
            }
            Ok((rel, columns))
        };
        // Graphs are validated against the tables at definition time,
        // but a table can be *redefined* afterwards with different
        // columns — materialization must then surface a typed error,
        // not panic on the stale definition.
        let positions = |table: &str,
                         columns: &[String],
                         cols: &[String]|
         -> Result<Vec<usize>, CatalogError> {
            cols.iter()
                .map(|c| {
                    columns
                        .iter()
                        .position(|x| x == c)
                        .ok_or_else(|| CatalogError::UnknownColumn {
                            table: table.to_string(),
                            column: c.clone(),
                        })
                })
                .collect()
        };
        let make_id = |table: &str, row: &Tuple, key_pos: &[usize]| -> Tuple {
            let mut vals = Vec::with_capacity(k);
            vals.push(Value::str(table));
            for &p in key_pos {
                vals.push(row[p].clone());
            }
            while vals.len() < k {
                vals.push(Value::int(0));
            }
            Tuple::new(vals)
        };
        let ins = |rel: &mut Relation, t: Tuple| {
            rel.insert(t).expect("arity fixed by construction");
        };

        for nt in &cg.node_tables {
            let (rel, columns) = base(&nt.table)?;
            let key_pos = positions(&nt.table, &columns, &nt.key)?;
            let prop_pos = positions(&nt.table, &columns, &nt.properties)?;
            for row in rel.iter() {
                let id = make_id(&nt.table, row, &key_pos);
                for label in &nt.labels {
                    ins(&mut labels, id.concat(&Tuple::unary(Value::str(label))));
                }
                for (&p, name) in prop_pos.iter().zip(&nt.properties) {
                    ins(
                        &mut props,
                        id.concat(&Tuple::new(vec![Value::str(name), row[p].clone()])),
                    );
                }
                ins(&mut nodes, id);
            }
        }
        for et in &cg.edge_tables {
            let (rel, columns) = base(&et.table)?;
            let key_pos = positions(&et.table, &columns, &et.key)?;
            let src_pos = positions(&et.table, &columns, &et.source_key)?;
            let tgt_pos = positions(&et.table, &columns, &et.target_key)?;
            let prop_pos = positions(&et.table, &columns, &et.properties)?;
            for row in rel.iter() {
                let id = make_id(&et.table, row, &key_pos);
                let s = make_id(&et.source_ref, row, &src_pos);
                let t = make_id(&et.target_ref, row, &tgt_pos);
                ins(&mut src, id.concat(&s));
                ins(&mut tgt, id.concat(&t));
                for label in &et.labels {
                    ins(&mut labels, id.concat(&Tuple::unary(Value::str(label))));
                }
                for (&p, name) in prop_pos.iter().zip(&et.properties) {
                    ins(
                        &mut props,
                        id.concat(&Tuple::new(vec![Value::str(name), row[p].clone()])),
                    );
                }
                ins(&mut edges, id);
            }
        }
        Ok(ViewRelations::new(nodes, edges, src, tgt, labels, props))
    }

    /// Builds the property graph (the `pgView` application). Strict mode
    /// surfaces dangling references (an edge whose endpoint key matches
    /// no node row) as typed errors; lenient mode drops such edges.
    pub fn build_graph(
        &self,
        graph: &str,
        db: &Database,
        mode: ViewMode,
    ) -> Result<PropertyGraph, CatalogError> {
        let rels = self.view_relations(graph, db)?;
        let k = self.id_arity(graph)?;
        pg_view_exact(k, &rels, mode).map_err(|e| CatalogError::View(e.to_string()))
    }

    /// Resolves a bare column name against every element table of the
    /// graph: a key column resolves to an identifier component, a
    /// property name to a property lookup. Conflicting resolutions are
    /// ambiguous.
    pub fn resolve_column(
        &self,
        graph: &str,
        column: &str,
    ) -> Result<ColumnResolution, CatalogError> {
        let cg = self.graph(graph)?;
        let mut found: Option<ColumnResolution> = None;
        let mut record = |r: ColumnResolution| -> Result<(), CatalogError> {
            match found {
                None => {
                    found = Some(r);
                    Ok(())
                }
                Some(existing) if existing == r => Ok(()),
                Some(_) => Err(CatalogError::AmbiguousColumn(column.to_string())),
            }
        };
        for (keys, properties) in cg
            .node_tables
            .iter()
            .map(|nt| (&nt.key, &nt.properties))
            .chain(cg.edge_tables.iter().map(|et| (&et.key, &et.properties)))
        {
            if let Some(i) = keys.iter().position(|c| c == column) {
                record(ColumnResolution::Component(1 + i))?;
            }
            if properties.iter().any(|p| p == column) {
                record(ColumnResolution::Property)?;
            }
        }
        found.ok_or_else(|| CatalogError::UnresolvedColumn(column.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Statement;
    use crate::parser::{parse_script, parse_statement};
    use pgq_value::tuple;

    fn setup() -> (Catalog, Database) {
        let mut cat = Catalog::new();
        let script = r"
            CREATE TABLE Account (iban);
            CREATE TABLE Transfer (t_id, src_iban, tgt_iban, ts, amount);
            CREATE PROPERTY GRAPH Transfers (
              NODES TABLE Account KEY (iban) LABEL Account,
              EDGES TABLE Transfer KEY (t_id)
                SOURCE KEY src_iban REFERENCES Account
                TARGET KEY tgt_iban REFERENCES Account
                LABELS Transfer PROPERTIES (ts, amount));
        ";
        for stmt in parse_script(script).unwrap() {
            match stmt {
                Statement::CreateTable(ct) => cat.define_table(&ct),
                Statement::CreateGraph(cg) => cat.define_graph(&cg).unwrap(),
                _ => panic!(),
            }
        }
        let mut db = Database::new();
        db.insert("Account", tuple!["IL1"]).unwrap();
        db.insert("Account", tuple!["IL2"]).unwrap();
        db.insert("Account", tuple!["IL3"]).unwrap();
        db.insert("Transfer", tuple![1, "IL1", "IL2", 10, 500])
            .unwrap();
        db.insert("Transfer", tuple![2, "IL2", "IL3", 11, 250])
            .unwrap();
        (cat, db)
    }

    #[test]
    fn id_arity_is_one_plus_max_key() {
        let (cat, _) = setup();
        assert_eq!(cat.id_arity("Transfers").unwrap(), 2);
    }

    #[test]
    fn builds_example_1_1_graph() {
        let (cat, db) = setup();
        let g = cat.build_graph("Transfers", &db, ViewMode::Strict).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        let t1 = Tuple::new(vec![Value::str("Transfer"), Value::int(1)]);
        assert_eq!(
            g.src(&t1),
            Some(&Tuple::new(vec![Value::str("Account"), Value::str("IL1")]))
        );
        assert!(g.has_label(&t1, &Value::str("Transfer")));
        assert_eq!(g.prop(&t1, &Value::str("amount")), Some(&Value::int(500)));
        let a = Tuple::new(vec![Value::str("Account"), Value::str("IL1")]);
        assert!(g.has_label(&a, &Value::str("Account")));
    }

    #[test]
    fn dangling_reference_strict_vs_lenient() {
        let (cat, mut db) = setup();
        db.insert("Transfer", tuple![3, "IL1", "GHOST", 12, 1])
            .unwrap();
        assert!(matches!(
            cat.build_graph("Transfers", &db, ViewMode::Strict),
            Err(CatalogError::View(_))
        ));
        let g = cat
            .build_graph("Transfers", &db, ViewMode::Lenient)
            .unwrap();
        assert_eq!(g.edge_count(), 2); // ghost edge dropped
    }

    #[test]
    fn validation_errors() {
        let mut cat = Catalog::new();
        cat.define_table(&CreateTable {
            name: "A".into(),
            columns: vec!["k".into()],
        });
        // Unknown table in graph definition.
        let Statement::CreateGraph(bad) =
            parse_statement("CREATE PROPERTY GRAPH G (NODES TABLE Missing KEY (k))").unwrap()
        else {
            panic!()
        };
        assert!(matches!(
            cat.define_graph(&bad),
            Err(CatalogError::UnknownTable(_))
        ));
        // Unknown column.
        let Statement::CreateGraph(bad) =
            parse_statement("CREATE PROPERTY GRAPH G (NODES TABLE A KEY (nope))").unwrap()
        else {
            panic!()
        };
        assert!(matches!(
            cat.define_graph(&bad),
            Err(CatalogError::UnknownColumn { .. })
        ));
        // Dangling REFERENCES.
        cat.define_table(&CreateTable {
            name: "E".into(),
            columns: vec!["id".into(), "s".into(), "t".into()],
        });
        let Statement::CreateGraph(bad) = parse_statement(
            "CREATE PROPERTY GRAPH G (
               NODES TABLE A KEY (k),
               EDGES TABLE E KEY (id) SOURCE KEY s REFERENCES Zed
                 TARGET KEY t REFERENCES A)",
        )
        .unwrap() else {
            panic!()
        };
        assert!(matches!(
            cat.define_graph(&bad),
            Err(CatalogError::UnknownReference { .. })
        ));
    }

    #[test]
    fn table_arity_checked_at_materialization() {
        let (cat, mut db) = setup();
        db.add_relation("Account", Relation::empty(3));
        assert!(matches!(
            cat.view_relations("Transfers", &db),
            Err(CatalogError::TableArity { .. })
        ));
    }

    /// Redefining a table after a graph was validated against it must
    /// surface a typed `UnknownColumn` at materialization — the PR 5
    /// fix for the `expect("validated")` panic.
    #[test]
    fn redefined_table_errors_instead_of_panicking() {
        let (mut cat, mut db) = setup();
        // `Transfer` loses the columns the graph's edge table keys on.
        cat.define_table(&CreateTable {
            name: "Transfer".into(),
            columns: vec!["t_id".into(), "note".into()],
        });
        db.add_relation("Transfer", Relation::empty(2));
        let err = cat.view_relations("Transfers", &db).unwrap_err();
        assert!(
            matches!(
                &err,
                CatalogError::UnknownColumn { table, column }
                    if table == "Transfer" && column == "src_iban"
            ),
            "{err}"
        );
        assert!(matches!(
            cat.build_graph("Transfers", &db, ViewMode::Strict),
            Err(CatalogError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn column_resolution() {
        let (cat, _) = setup();
        assert_eq!(
            cat.resolve_column("Transfers", "iban").unwrap(),
            ColumnResolution::Component(1)
        );
        assert_eq!(
            cat.resolve_column("Transfers", "amount").unwrap(),
            ColumnResolution::Property
        );
        assert!(matches!(
            cat.resolve_column("Transfers", "nope"),
            Err(CatalogError::UnresolvedColumn(_))
        ));
        // t_id is the Transfer key: component 1 as well (no conflict,
        // same resolution shape as iban).
        assert_eq!(
            cat.resolve_column("Transfers", "t_id").unwrap(),
            ColumnResolution::Component(1)
        );
    }

    #[test]
    fn unknown_graph() {
        let (cat, db) = setup();
        assert!(matches!(
            cat.build_graph("Nope", &db, ViewMode::Strict),
            Err(CatalogError::UnknownGraph(_))
        ));
    }
}
