//! # pgq-parser
//!
//! The SQL/PGQ surface syntax of the paper's examples, end to end:
//! lexer → parser → catalog → graph view → pattern evaluation.
//! System S9 of the reproduction (see DESIGN.md); experiment E1 runs
//! Examples 1.1 and 2.1 through this crate verbatim.
//!
//! ```
//! use pgq_parser::{Outcome, Session};
//! use pgq_relational::Database;
//! use pgq_value::tuple;
//!
//! let mut db = Database::new();
//! db.insert("Account", tuple!["IL1"]).unwrap();
//! db.insert("Account", tuple!["IL2"]).unwrap();
//! db.insert("Transfer", tuple![7, "IL1", "IL2", 100, 250]).unwrap();
//!
//! let mut session = Session::new();
//! let outcomes = session
//!     .run_script(
//!         "CREATE TABLE Account (iban);
//!          CREATE TABLE Transfer (t_id, src_iban, tgt_iban, ts, amount);
//!          CREATE PROPERTY GRAPH Transfers (
//!            NODES TABLE Account KEY (iban) LABEL Account,
//!            EDGES TABLE Transfer KEY (t_id)
//!              SOURCE KEY src_iban REFERENCES Account
//!              TARGET KEY tgt_iban REFERENCES Account
//!              LABELS Transfer PROPERTIES (ts, amount));
//!          SELECT * FROM GRAPH_TABLE (Transfers
//!            MATCH (x) -[t:Transfer]->+ (y)
//!            WHERE t.amount > 100
//!            RETURN (x.iban, y.iban));",
//!         &db,
//!     )
//!     .unwrap();
//! let Outcome::Rows(rows) = &outcomes[3] else { panic!() };
//! assert!(rows.contains(&tuple!["IL1", "IL2"]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod catalog;
pub mod lexer;
pub mod lower;
pub mod parser;

pub use ast::Statement;
pub use catalog::{Catalog, CatalogError, ColumnResolution};
pub use lexer::{lex, LexError, Tok, Token};
pub use lower::{lower_query, LowerError, Outcome, ScriptError, Session};
pub use parser::{parse_script, parse_statement, ParseError};
