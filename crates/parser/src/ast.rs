//! Surface AST for the SQL/PGQ subset used by the paper's examples.
//!
//! Statements:
//! * `CREATE TABLE name (col, …)` — minimal DDL so the catalog knows
//!   column names (the formal model is positional, Section 2.1);
//! * `CREATE PROPERTY GRAPH … (NODES TABLE … , EDGES TABLE …)` —
//!   Example 1.1's syntax;
//! * `SELECT * FROM GRAPH_TABLE (g MATCH … WHERE … RETURN (…))` —
//!   Example 2.1's syntax.

use std::fmt;

/// A parsed statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Statement {
    /// `CREATE TABLE name (col1, col2, …);`
    CreateTable(CreateTable),
    /// `CREATE PROPERTY GRAPH … ;`
    CreateGraph(CreateGraph),
    /// `SELECT * FROM GRAPH_TABLE (…);`
    GraphQuery(GraphQuery),
}

/// Table declaration: ordered column names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CreateTable {
    /// Table name.
    pub name: String,
    /// Column names, in positional order.
    pub columns: Vec<String>,
}

/// `CREATE PROPERTY GRAPH` statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CreateGraph {
    /// Graph name.
    pub name: String,
    /// Vertex tables.
    pub node_tables: Vec<NodeTable>,
    /// Edge tables.
    pub edge_tables: Vec<EdgeTable>,
}

/// `NODES TABLE t KEY (c, …) LABEL ℓ … PROPERTIES (p, …)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeTable {
    /// Underlying base table.
    pub table: String,
    /// Key columns.
    pub key: Vec<String>,
    /// Labels attached to every node from this table.
    pub labels: Vec<String>,
    /// Columns exposed as properties.
    pub properties: Vec<String>,
}

/// `EDGES TABLE t KEY (…) SOURCE KEY … REFERENCES … TARGET KEY …
/// REFERENCES … LABELS … PROPERTIES (…)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeTable {
    /// Underlying base table.
    pub table: String,
    /// Key columns.
    pub key: Vec<String>,
    /// Source key columns (referencing the source node table's key).
    pub source_key: Vec<String>,
    /// Referenced source node table.
    pub source_ref: String,
    /// Target key columns.
    pub target_key: Vec<String>,
    /// Referenced target node table.
    pub target_ref: String,
    /// Labels attached to every edge from this table.
    pub labels: Vec<String>,
    /// Columns exposed as properties.
    pub properties: Vec<String>,
}

/// `SELECT * FROM GRAPH_TABLE (graph MATCH pattern [WHERE cond] RETURN
/// (items))`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphQuery {
    /// The property graph to match against.
    pub graph: String,
    /// The path pattern.
    pub pattern: Vec<PathElement>,
    /// Optional `WHERE` condition.
    pub where_clause: Option<Expr>,
    /// `RETURN` items (empty means a Boolean query — an extension used
    /// by tests; the standard always returns columns).
    pub returns: Vec<ReturnItem>,
}

/// One element of a linear path pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathElement {
    /// `(x:Label)` — node with optional variable and label tests.
    Node {
        /// Variable, if named.
        var: Option<String>,
        /// Label tests.
        labels: Vec<String>,
    },
    /// `-[t:Label]->`, `<-[t:Label]-`, optionally quantified
    /// (`+`, `*`, `{n,m}`, `{n,}`).
    Edge {
        /// Variable, if named.
        var: Option<String>,
        /// Label tests.
        labels: Vec<String>,
        /// Direction: `true` = forward (`->`).
        forward: bool,
        /// Repetition quantifier.
        quantifier: Option<Quantifier>,
    },
}

/// Edge quantifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quantifier {
    /// `*` = `{0,∞}`.
    Star,
    /// `+` = `{1,∞}`.
    Plus,
    /// `{n,m}`.
    Range(usize, usize),
    /// `{n,}` = `{n,∞}`.
    AtLeast(usize),
}

/// A `WHERE` expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// `x.col op rhs`.
    Cmp {
        /// Variable.
        var: String,
        /// Column/property name.
        column: String,
        /// Comparison operator.
        op: CmpToken,
        /// Right-hand side.
        rhs: Rhs,
    },
    /// `label(x)` — explicit label test (core θ's `ℓ(x)`).
    HasLabel {
        /// Variable.
        var: String,
        /// Label name.
        label: String,
    },
    /// `e AND e'`.
    And(Box<Expr>, Box<Expr>),
    /// `e OR e'`.
    Or(Box<Expr>, Box<Expr>),
    /// `NOT e`.
    Not(Box<Expr>),
}

/// Comparison tokens in `WHERE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpToken {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Right-hand side of a comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rhs {
    /// Integer constant.
    Int(i64),
    /// String constant.
    Str(String),
    /// Another `var.column` reference (the core `x.k = x'.k'`).
    Column(String, String),
}

/// A `RETURN` item: `x.col` or bare `x`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReturnItem {
    /// `x` — the full element identifier.
    Var(String),
    /// `x.col` — identifier key column or property.
    Column(String, String),
}

impl fmt::Display for ReturnItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReturnItem::Var(v) => write!(f, "{v}"),
            ReturnItem::Column(v, c) => write!(f, "{v}.{c}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_return_items() {
        assert_eq!(ReturnItem::Var("x".into()).to_string(), "x");
        assert_eq!(
            ReturnItem::Column("x".into(), "iban".into()).to_string(),
            "x.iban"
        );
    }
}
