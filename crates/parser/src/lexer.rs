//! Lexer for the SQL/PGQ surface syntax used in the paper's examples:
//! `CREATE TABLE`, `CREATE PROPERTY GRAPH` (Example 1.1) and
//! `SELECT * FROM GRAPH_TABLE (… MATCH … WHERE … RETURN …)`
//! (Example 2.1).

use std::fmt;

/// A source location (byte offset), kept for error messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the token start.
    pub start: usize,
    /// Byte offset one past the token end.
    pub end: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (keywords are recognized case-insensitively
    /// by the parser; the original spelling is preserved).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Single-quoted string literal (SQL style).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `.`
    Dot,
    /// `:`
    Colon,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Dash,
    /// `->` (edge head)
    Arrow,
    /// `<-` (edge tail)
    BackArrow,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Int(i) => write!(f, "{i}"),
            Tok::Str(s) => write!(f, "'{s}'"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::Comma => write!(f, ","),
            Tok::Semi => write!(f, ";"),
            Tok::Dot => write!(f, "."),
            Tok::Colon => write!(f, ":"),
            Tok::Star => write!(f, "*"),
            Tok::Plus => write!(f, "+"),
            Tok::Dash => write!(f, "-"),
            Tok::Arrow => write!(f, "->"),
            Tok::BackArrow => write!(f, "<-"),
            Tok::Eq => write!(f, "="),
            Tok::Ne => write!(f, "<>"),
            Tok::Lt => write!(f, "<"),
            Tok::Le => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Ge => write!(f, ">="),
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Its location.
    pub span: Span,
}

/// Lexical errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable message.
    pub message: String,
    /// Offending location.
    pub at: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes the input. `--` line comments are skipped.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut i = 0usize;
    let mut out = Vec::new();
    while i < bytes.len() {
        let c = bytes[i] as char;
        // Whitespace.
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Line comments.
        if c == '-' && bytes.get(i + 1) == Some(&b'-') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        let mut push = |tok: Tok, end: usize| {
            out.push(Token {
                tok,
                span: Span { start, end },
            });
        };
        match c {
            '(' => {
                push(Tok::LParen, i + 1);
                i += 1;
            }
            ')' => {
                push(Tok::RParen, i + 1);
                i += 1;
            }
            '[' => {
                push(Tok::LBracket, i + 1);
                i += 1;
            }
            ']' => {
                push(Tok::RBracket, i + 1);
                i += 1;
            }
            '{' => {
                push(Tok::LBrace, i + 1);
                i += 1;
            }
            '}' => {
                push(Tok::RBrace, i + 1);
                i += 1;
            }
            ',' => {
                push(Tok::Comma, i + 1);
                i += 1;
            }
            ';' => {
                push(Tok::Semi, i + 1);
                i += 1;
            }
            '.' => {
                push(Tok::Dot, i + 1);
                i += 1;
            }
            ':' => {
                push(Tok::Colon, i + 1);
                i += 1;
            }
            '*' => {
                push(Tok::Star, i + 1);
                i += 1;
            }
            '+' => {
                push(Tok::Plus, i + 1);
                i += 1;
            }
            '=' => {
                push(Tok::Eq, i + 1);
                i += 1;
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    push(Tok::Arrow, i + 2);
                    i += 2;
                } else {
                    push(Tok::Dash, i + 1);
                    i += 1;
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'-') => {
                    push(Tok::BackArrow, i + 2);
                    i += 2;
                }
                Some(&b'>') => {
                    push(Tok::Ne, i + 2);
                    i += 2;
                }
                Some(&b'=') => {
                    push(Tok::Le, i + 2);
                    i += 2;
                }
                _ => {
                    push(Tok::Lt, i + 1);
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(Tok::Ge, i + 2);
                    i += 2;
                } else {
                    push(Tok::Gt, i + 1);
                    i += 1;
                }
            }
            '\'' => {
                let mut j = i + 1;
                let mut s = String::new();
                loop {
                    match bytes.get(j) {
                        None => {
                            return Err(LexError {
                                message: "unterminated string literal".into(),
                                at: i,
                            })
                        }
                        Some(&b'\'') => {
                            // SQL doubles quotes to escape them.
                            if bytes.get(j + 1) == Some(&b'\'') {
                                s.push('\'');
                                j += 2;
                            } else {
                                j += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            s.push(b as char);
                            j += 1;
                        }
                    }
                }
                push(Tok::Str(s), j);
                i = j;
            }
            _ if c.is_ascii_digit() => {
                let mut j = i;
                while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                    j += 1;
                }
                let text = &input[i..j];
                let value: i64 = text.parse().map_err(|_| LexError {
                    message: format!("integer literal {text} out of range"),
                    at: i,
                })?;
                push(Tok::Int(value), j);
                i = j;
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                push(Tok::Ident(input[i..j].to_string()), j);
                i = j;
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character {other:?}"),
                    at: i,
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<Tok> {
        lex(input).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn punctuation_and_arrows() {
        assert_eq!(
            kinds("( ) -[t]-> <-[u]- <> <= >= < > = * + { } ; , . :"),
            vec![
                Tok::LParen,
                Tok::RParen,
                Tok::Dash,
                Tok::LBracket,
                Tok::Ident("t".into()),
                Tok::RBracket,
                Tok::Arrow,
                Tok::BackArrow,
                Tok::LBracket,
                Tok::Ident("u".into()),
                Tok::RBracket,
                Tok::Dash,
                Tok::Ne,
                Tok::Le,
                Tok::Ge,
                Tok::Lt,
                Tok::Gt,
                Tok::Eq,
                Tok::Star,
                Tok::Plus,
                Tok::LBrace,
                Tok::RBrace,
                Tok::Semi,
                Tok::Comma,
                Tok::Dot,
                Tok::Colon,
            ]
        );
    }

    #[test]
    fn literals() {
        assert_eq!(
            kinds("42 'hello' 'it''s'"),
            vec![
                Tok::Int(42),
                Tok::Str("hello".into()),
                Tok::Str("it's".into())
            ]
        );
    }

    #[test]
    fn identifiers_and_comments() {
        assert_eq!(
            kinds("SELECT t_id -- comment\n FROM"),
            vec![
                Tok::Ident("SELECT".into()),
                Tok::Ident("t_id".into()),
                Tok::Ident("FROM".into())
            ]
        );
    }

    #[test]
    fn spans_track_offsets() {
        let toks = lex("ab cd").unwrap();
        assert_eq!(toks[0].span, Span { start: 0, end: 2 });
        assert_eq!(toks[1].span, Span { start: 3, end: 5 });
    }

    #[test]
    fn errors() {
        assert!(lex("'unterminated").is_err());
        assert!(lex("@").is_err());
        assert!(lex("99999999999999999999").is_err());
    }

    #[test]
    fn example_1_1_lexes() {
        let sql = r"CREATE PROPERTY GRAPH Transfers (
            NODES TABLE Account KEY ( iban ) LABEL Account ,
            EDGES TABLE Transfer KEY ( t_id )
              SOURCE KEY src_iban REFERENCES Account
              TARGET KEY tgt_iban REFERENCES Account
              LABELS Transfer PROPERTIES ( ts , amount ) ) ;";
        assert!(lex(sql).unwrap().len() > 20);
    }
}
