//! Datalog abstract syntax: terms, atoms, literals, rules, programs.
//!
//! The dialect is classical stratified Datalog with negation:
//!
//! ```text
//! rule    :=  head :- lit, …, lit .
//! lit     :=  atom | !atom
//! atom    :=  p(t, …, t)
//! t       :=  variable | constant
//! ```
//!
//! Set semantics throughout; a program's extensional predicates (EDB) are
//! the relations of the input [`pgq_relational::Database`], and its
//! intensional predicates (IDB) are the rule heads. The reserved predicate
//! [`ADOM`] denotes the active domain of the input database and is
//! supplied by the evaluator (it cannot be a rule head or an EDB
//! relation).

use pgq_relational::RelName;
use pgq_value::{Value, Var};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The reserved unary predicate interpreted as the active domain of the
/// input database (`adom(D)` in the paper, Section 2.1).
pub const ADOM: &str = "$adom";

/// A Datalog term: a variable or a constant.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DlTerm {
    /// A variable.
    Var(Var),
    /// A constant value.
    Const(Value),
}

impl DlTerm {
    /// A variable term.
    pub fn var(v: impl Into<Var>) -> Self {
        DlTerm::Var(v.into())
    }

    /// A constant term.
    pub fn constant(c: impl Into<Value>) -> Self {
        DlTerm::Const(c.into())
    }

    /// The variable inside, if this is a variable term.
    pub fn as_var(&self) -> Option<&Var> {
        match self {
            DlTerm::Var(v) => Some(v),
            DlTerm::Const(_) => None,
        }
    }
}

impl fmt::Display for DlTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DlTerm::Var(v) => write!(f, "{v}"),
            DlTerm::Const(c) => write!(f, "{c}"),
        }
    }
}

impl From<Var> for DlTerm {
    fn from(v: Var) -> Self {
        DlTerm::Var(v)
    }
}

impl From<Value> for DlTerm {
    fn from(c: Value) -> Self {
        DlTerm::Const(c)
    }
}

/// An atom `p(t̄)`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Atom {
    /// The predicate name.
    pub pred: RelName,
    /// The argument terms.
    pub terms: Vec<DlTerm>,
}

impl Atom {
    /// Build an atom from anything convertible.
    pub fn new<N, I, T>(pred: N, terms: I) -> Self
    where
        N: Into<RelName>,
        I: IntoIterator<Item = T>,
        T: Into<DlTerm>,
    {
        Atom {
            pred: pred.into(),
            terms: terms.into_iter().map(Into::into).collect(),
        }
    }

    /// The atom's arity.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// All variables occurring in the atom, in first-occurrence order.
    pub fn vars(&self) -> Vec<&Var> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for t in &self.terms {
            if let DlTerm::Var(v) = t {
                if seen.insert(v) {
                    out.push(v);
                }
            }
        }
        out
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// A body literal: an atom or its negation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Literal {
    /// `false` for a negated literal `!p(t̄)`.
    pub positive: bool,
    /// The literal's atom.
    pub atom: Atom,
}

impl Literal {
    /// A positive literal.
    pub fn pos(atom: Atom) -> Self {
        Literal {
            positive: true,
            atom,
        }
    }

    /// A negated literal.
    pub fn neg(atom: Atom) -> Self {
        Literal {
            positive: false,
            atom,
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.positive {
            write!(f, "!")?;
        }
        write!(f, "{}", self.atom)
    }
}

/// A rule `head :- body`. An empty body makes the rule a (possibly
/// non-ground) fact; safety then requires the head to be ground.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// The head atom.
    pub head: Atom,
    /// The body literals.
    pub body: Vec<Literal>,
}

impl Rule {
    /// Build a rule.
    pub fn new(head: Atom, body: Vec<Literal>) -> Self {
        Rule { head, body }
    }

    /// A ground fact `p(c̄).`
    pub fn fact(head: Atom) -> Self {
        Rule {
            head,
            body: Vec::new(),
        }
    }

    /// Range-restriction (safety): every variable of the head and of
    /// every negative literal must occur in some positive body literal.
    pub fn check_safety(&self) -> Result<(), ProgramError> {
        let mut bound: BTreeSet<&Var> = BTreeSet::new();
        for lit in &self.body {
            if lit.positive {
                bound.extend(lit.atom.vars());
            }
        }
        for v in self.head.vars() {
            if !bound.contains(v) {
                return Err(ProgramError::UnsafeVariable {
                    rule: self.to_string(),
                    var: v.clone(),
                });
            }
        }
        for lit in &self.body {
            if !lit.positive {
                for v in lit.atom.vars() {
                    if !bound.contains(v) {
                        return Err(ProgramError::UnsafeVariable {
                            rule: self.to_string(),
                            var: v.clone(),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        if !self.body.is_empty() {
            write!(f, " :- ")?;
            for (i, lit) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{lit}")?;
            }
        }
        write!(f, ".")
    }
}

/// Static program errors: safety violations, arity clashes, reserved-name
/// misuse, and (at stratification time) negative recursion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// A head or negated-literal variable not bound by a positive body
    /// literal.
    UnsafeVariable {
        /// Rendered rule.
        rule: String,
        /// The offending variable.
        var: Var,
    },
    /// The same predicate used with two different arities.
    ArityClash {
        /// The predicate.
        pred: RelName,
        /// First arity seen.
        first: usize,
        /// Conflicting arity.
        second: usize,
    },
    /// The reserved active-domain predicate used as a rule head.
    ReservedHead {
        /// The predicate (always [`ADOM`]).
        pred: RelName,
    },
    /// A rule head names a relation stored in the input database.
    HeadShadowsEdb {
        /// The predicate.
        pred: RelName,
    },
    /// The program is not stratifiable (recursion through negation).
    NotStratifiable {
        /// A predicate on a negative cycle.
        pred: RelName,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::UnsafeVariable { rule, var } => {
                write!(f, "unsafe variable {var} in rule `{rule}`")
            }
            ProgramError::ArityClash {
                pred,
                first,
                second,
            } => {
                write!(f, "predicate {pred} used with arities {first} and {second}")
            }
            ProgramError::ReservedHead { pred } => {
                write!(f, "reserved predicate {pred} cannot be a rule head")
            }
            ProgramError::HeadShadowsEdb { pred } => {
                write!(f, "rule head {pred} shadows a database relation")
            }
            ProgramError::NotStratifiable { pred } => {
                write!(f, "recursion through negation at predicate {pred}")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

/// A Datalog program: a list of rules plus declared predicates (so that a
/// predicate with no rules — e.g. the translation of `False` — still has
/// a known arity and appears in the output with an empty relation).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// The program's rules, in source order.
    pub rules: Vec<Rule>,
    /// Extra IDB predicate declarations (name → arity) for predicates
    /// that may have no rules.
    pub declared: BTreeMap<RelName, usize>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Append a rule.
    pub fn push(&mut self, rule: Rule) {
        self.rules.push(rule);
    }

    /// Declare an IDB predicate with an arity (used for rule-less
    /// predicates).
    pub fn declare(&mut self, pred: impl Into<RelName>, arity: usize) {
        self.declared.insert(pred.into(), arity);
    }

    /// The set of intensional predicates: rule heads plus declarations.
    pub fn idb_preds(&self) -> BTreeSet<RelName> {
        let mut s: BTreeSet<RelName> = self.declared.keys().cloned().collect();
        s.extend(self.rules.iter().map(|r| r.head.pred.clone()));
        s
    }

    /// Arity of every predicate mentioned anywhere, or an
    /// [`ProgramError::ArityClash`].
    pub fn arities(&self) -> Result<BTreeMap<RelName, usize>, ProgramError> {
        let mut m: BTreeMap<RelName, usize> = self.declared.clone();
        let mut note = |pred: &RelName, arity: usize| -> Result<(), ProgramError> {
            match m.get(pred) {
                Some(&a) if a != arity => Err(ProgramError::ArityClash {
                    pred: pred.clone(),
                    first: a,
                    second: arity,
                }),
                Some(_) => Ok(()),
                None => {
                    m.insert(pred.clone(), arity);
                    Ok(())
                }
            }
        };
        for r in &self.rules {
            note(&r.head.pred, r.head.arity())?;
            for lit in &r.body {
                note(&lit.atom.pred, lit.atom.arity())?;
            }
        }
        Ok(m)
    }

    /// All static checks that do not need the database: safety per rule,
    /// arity coherence, and the reserved-name restriction.
    pub fn validate(&self) -> Result<(), ProgramError> {
        let adom: RelName = ADOM.into();
        for r in &self.rules {
            if r.head.pred == adom {
                return Err(ProgramError::ReservedHead { pred: adom });
            }
            r.check_safety()?;
        }
        if self.declared.contains_key(&adom) {
            return Err(ProgramError::ReservedHead { pred: adom });
        }
        self.arities()?;
        Ok(())
    }
}

/// Lists one rule per line (declarations as `%` comments), so programs
/// can be logged and diffed in tests.
impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (p, a) in &self.declared {
            writeln!(f, "% decl {p}/{a}")?;
        }
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(x: &str, y: &str) -> Atom {
        Atom::new("edge", [DlTerm::var(x), DlTerm::var(y)])
    }

    #[test]
    fn safety_accepts_bound_heads() {
        let r = Rule::new(
            Atom::new("path", [DlTerm::var("x"), DlTerm::var("y")]),
            vec![Literal::pos(edge("x", "y"))],
        );
        assert!(r.check_safety().is_ok());
    }

    #[test]
    fn safety_rejects_free_head_var() {
        let r = Rule::new(
            Atom::new("p", [DlTerm::var("z")]),
            vec![Literal::pos(edge("x", "y"))],
        );
        assert!(matches!(
            r.check_safety(),
            Err(ProgramError::UnsafeVariable { var, .. }) if var == Var::new("z")
        ));
    }

    #[test]
    fn safety_rejects_negation_only_binding() {
        let r = Rule::new(
            Atom::new("p", [DlTerm::var("x")]),
            vec![Literal::neg(Atom::new("q", [DlTerm::var("x")]))],
        );
        assert!(r.check_safety().is_err());
    }

    #[test]
    fn safety_accepts_ground_fact() {
        let r = Rule::fact(Atom::new("p", [DlTerm::constant(1i64)]));
        assert!(r.check_safety().is_ok());
    }

    #[test]
    fn safety_rejects_nonground_fact() {
        let r = Rule::fact(Atom::new("p", [DlTerm::var("x")]));
        assert!(r.check_safety().is_err());
    }

    #[test]
    fn arity_clash_detected() {
        let mut p = Program::new();
        p.push(Rule::new(
            Atom::new("p", [DlTerm::var("x")]),
            vec![Literal::pos(Atom::new("e", [DlTerm::var("x")]))],
        ));
        p.push(Rule::new(
            Atom::new("p", [DlTerm::var("x"), DlTerm::var("y")]),
            vec![Literal::pos(edge("x", "y"))],
        ));
        assert!(matches!(p.validate(), Err(ProgramError::ArityClash { .. })));
    }

    #[test]
    fn reserved_head_rejected() {
        let mut p = Program::new();
        p.push(Rule::new(
            Atom::new(ADOM, [DlTerm::var("x")]),
            vec![Literal::pos(Atom::new("e", [DlTerm::var("x")]))],
        ));
        assert!(matches!(
            p.validate(),
            Err(ProgramError::ReservedHead { .. })
        ));
    }

    #[test]
    fn display_roundtrips_visually() {
        let r = Rule::new(
            Atom::new("path", [DlTerm::var("x"), DlTerm::var("z")]),
            vec![
                Literal::pos(Atom::new("path", [DlTerm::var("x"), DlTerm::var("y")])),
                Literal::pos(edge("y", "z")),
                Literal::neg(Atom::new("blocked", [DlTerm::var("z")])),
            ],
        );
        assert_eq!(
            r.to_string(),
            "path(x, z) :- path(x, y), edge(y, z), !blocked(z)."
        );
    }

    #[test]
    fn vars_first_occurrence_order() {
        let a = Atom::new(
            "p",
            [
                DlTerm::var("b"),
                DlTerm::constant(3i64),
                DlTerm::var("a"),
                DlTerm::var("b"),
            ],
        );
        let vs: Vec<&str> = a.vars().iter().map(|v| v.name()).collect();
        assert_eq!(vs, ["b", "a"]);
    }
}
