//! A small text syntax for Datalog programs, used by examples and tests.
//!
//! ```text
//! % transitive closure
//! path(X, Y) :- edge(X, Y).
//! path(X, Z) :- path(X, Y), edge(Y, Z).
//! unreach(X, Y) :- $adom(X), $adom(Y), !path(X, Y).
//! ```
//!
//! Conventions (Prolog-style): identifiers starting with an uppercase
//! letter or `_` are variables; lowercase identifiers, integers, quoted
//! strings, and `true`/`false` are constants; `%` starts a line comment;
//! `!` negates a literal. Predicate names are identifiers (the reserved
//! `$adom` is allowed in bodies).

use crate::ast::{Atom, DlTerm, Literal, Program, Rule};
use pgq_value::{Value, Var};
use std::fmt;

/// A parse failure with a byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the source.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a Datalog program (see module docs for the grammar).
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let mut p = Parser {
        src: src.as_bytes(),
        pos: 0,
    };
    let mut program = Program::new();
    loop {
        p.skip_trivia();
        if p.at_end() {
            break;
        }
        program.push(p.rule()?);
    }
    Ok(program)
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn at_end(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            offset: self.pos,
            message: message.into(),
        })
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.pos += 1;
                }
                Some(b'%') => {
                    while let Some(c) = self.bump() {
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                _ => break,
            }
        }
    }

    fn expect(&mut self, token: &str) -> Result<(), ParseError> {
        self.skip_trivia();
        if self.src[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            Ok(())
        } else {
            self.err(format!("expected `{token}`"))
        }
    }

    fn try_token(&mut self, token: &str) -> bool {
        self.skip_trivia();
        if self.src[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        self.skip_trivia();
        let start = self.pos;
        if self.peek() == Some(b'$') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return self.err("expected an identifier");
        }
        Ok(std::str::from_utf8(&self.src[start..self.pos])
            .expect("ASCII identifier")
            .to_owned())
    }

    fn rule(&mut self) -> Result<Rule, ParseError> {
        let head = self.atom()?;
        let mut body = Vec::new();
        if self.try_token(":-") {
            loop {
                body.push(self.literal()?);
                if !self.try_token(",") {
                    break;
                }
            }
        }
        self.expect(".")?;
        Ok(Rule::new(head, body))
    }

    fn literal(&mut self) -> Result<Literal, ParseError> {
        if self.try_token("!") {
            Ok(Literal::neg(self.atom()?))
        } else {
            Ok(Literal::pos(self.atom()?))
        }
    }

    fn atom(&mut self) -> Result<Atom, ParseError> {
        let pred = self.ident()?;
        let mut terms = Vec::new();
        if self.try_token("(") && !self.try_token(")") {
            loop {
                terms.push(self.term()?);
                if !self.try_token(",") {
                    break;
                }
            }
            self.expect(")")?;
        }
        Ok(Atom::new(pred, terms))
    }

    fn term(&mut self) -> Result<DlTerm, ParseError> {
        self.skip_trivia();
        match self.peek() {
            Some(b'\'') | Some(b'"') => {
                let quote = self.bump().expect("peeked");
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c == quote {
                        let s = std::str::from_utf8(&self.src[start..self.pos])
                            .map_err(|_| ParseError {
                                offset: start,
                                message: "non-UTF-8 string literal".into(),
                            })?
                            .to_owned();
                        self.pos += 1;
                        return Ok(DlTerm::Const(Value::str(s)));
                    }
                    self.pos += 1;
                }
                self.err("unterminated string literal")
            }
            Some(c) if c.is_ascii_digit() || c == b'-' => {
                let start = self.pos;
                if c == b'-' {
                    self.pos += 1;
                }
                while let Some(d) = self.peek() {
                    if d.is_ascii_digit() {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ASCII");
                match text.parse::<i64>() {
                    Ok(n) => Ok(DlTerm::Const(Value::int(n))),
                    Err(_) => self.err(format!("bad integer literal `{text}`")),
                }
            }
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => {
                let name = self.ident()?;
                let first = name.as_bytes()[0];
                if first.is_ascii_uppercase() || first == b'_' {
                    Ok(DlTerm::Var(Var::new(name)))
                } else if name == "true" {
                    Ok(DlTerm::Const(Value::Bool(true)))
                } else if name == "false" {
                    Ok(DlTerm::Const(Value::Bool(false)))
                } else {
                    Ok(DlTerm::Const(Value::str(name)))
                }
            }
            _ => self.err("expected a term"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::query;
    use pgq_relational::{Database, RelName, Relation};
    use pgq_value::Tuple;

    #[test]
    fn parses_transitive_closure() {
        let p = parse_program(
            "% reachability\n\
             path(X, Y) :- edge(X, Y).\n\
             path(X, Z) :- path(X, Y), edge(Y, Z).",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 2);
        assert_eq!(
            p.rules[1].to_string(),
            "path(X, Z) :- path(X, Y), edge(Y, Z)."
        );
    }

    #[test]
    fn parsed_program_evaluates() {
        let p = parse_program(
            "path(X, Y) :- edge(X, Y).\n\
             path(X, Z) :- path(X, Y), edge(Y, Z).\n\
             isolated(X) :- $adom(X), !touched(X).\n\
             touched(X) :- edge(X, Y).\n\
             touched(Y) :- edge(X, Y).",
        )
        .unwrap();
        let rel = Relation::from_rows(
            2,
            [(1i64, 2i64), (2, 3)]
                .iter()
                .map(|&(a, b)| Tuple::new(vec![Value::int(a), Value::int(b)])),
        )
        .unwrap();
        let db = Database::new()
            .with_relation("edge", rel)
            .with_relation("extra", Relation::unary([Value::int(9)]));
        let paths = query(&p, &db, &RelName::new("path")).unwrap();
        assert_eq!(paths.len(), 3);
        let isolated = query(&p, &db, &RelName::new("isolated")).unwrap();
        assert_eq!(isolated, Relation::unary([Value::int(9)]));
    }

    #[test]
    fn constants_of_each_type() {
        let p = parse_program("p(X) :- q(X, 7, 'str', other, true, -3).").unwrap();
        let terms = &p.rules[0].body[0].atom.terms;
        assert_eq!(terms[1], DlTerm::Const(Value::int(7)));
        assert_eq!(terms[2], DlTerm::Const(Value::str("str")));
        assert_eq!(terms[3], DlTerm::Const(Value::str("other")));
        assert_eq!(terms[4], DlTerm::Const(Value::Bool(true)));
        assert_eq!(terms[5], DlTerm::Const(Value::int(-3)));
    }

    #[test]
    fn zero_ary_atoms_parse() {
        let p = parse_program("flag. copy(X) :- flag, src(X).").unwrap();
        assert_eq!(p.rules[0].head.arity(), 0);
        assert_eq!(p.rules[1].body[0].atom.arity(), 0);
    }

    #[test]
    fn underscore_leading_is_a_variable() {
        let p = parse_program("p(X) :- q(X, _rest).").unwrap();
        assert!(matches!(&p.rules[0].body[0].atom.terms[1], DlTerm::Var(_)));
    }

    #[test]
    fn missing_dot_is_an_error() {
        let e = parse_program("p(X) :- q(X)").unwrap_err();
        assert!(e.message.contains("expected `.`"), "{e}");
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(parse_program("p('oops).").is_err());
    }

    #[test]
    fn garbage_is_an_error() {
        assert!(parse_program("p(X) :- ???.").is_err());
    }
}
