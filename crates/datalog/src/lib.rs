//! # pgq-datalog
//!
//! A stratified Datalog engine with semi-naive evaluation, plus a
//! compiler from FO\[TC\] into *linear* stratified Datalog.
//!
//! This is the executable form of the paper's NL calibration (Section
//! 4.1): NL "corresponds to Datalog's capabilities on CRPQs, as well as
//! SQL's `WITH RECURSIVE`, which supports linear recursion". The crate
//! provides:
//!
//! * classical stratified Datalog with negation ([`ast`], [`mod@stratify`],
//!   [`eval`]) over the same [`pgq_relational::Database`] the rest of
//!   the workspace uses;
//! * a naive reference evaluator ([`eval_naive`]) for differential
//!   testing of the semi-naive engine;
//! * the FO\[TC\] → Datalog bridge ([`bridge`]): a third, independent
//!   implementation of the paper's logic side, property-tested against
//!   both `pgq-logic` evaluators. Every compiled program is stratified
//!   and at most *linearly* recursive — mechanical evidence that
//!   FO\[TC\] (and hence `PGQext`, by Corollary 6.3) fits inside the
//!   `WITH RECURSIVE` fragment the paper uses as its NL benchmark.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod bridge;
pub mod eval;
pub mod eval_naive;
mod parse;
pub mod stratify;

pub use ast::{Atom, DlTerm, Literal, Program, ProgramError, Rule, ADOM};
pub use bridge::{compile_formula, subst_consts, BridgeError, CompiledFormula};
pub use eval::{evaluate, query, reachability_program, EvalError, Model};
pub use eval_naive::evaluate_naive;
pub use parse::{parse_program, ParseError};
pub use stratify::{classify_recursion, stratify, Recursion, Stratification};

#[cfg(test)]
mod prop_tests {
    use super::*;
    use pgq_logic::eval_ordered;
    use pgq_logic::testgen::{arb_database, arb_formula};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The FO[TC]→Datalog bridge agrees with the logic crate's
        /// relational evaluator on random formulas and databases.
        #[test]
        fn bridge_matches_logic_evaluator(
            phi in arb_formula(2),
            db in arb_database(),
        ) {
            let compiled = compile_formula(&phi).unwrap();
            let model = evaluate(&compiled.program, &db).unwrap();
            let got = model.get(&compiled.goal).unwrap();
            let want = eval_ordered(&phi, &compiled.head_vars, &db).unwrap();
            prop_assert_eq!(got, &want, "formula: {:?}", phi);
        }

        /// Semi-naive and naive evaluation produce identical models on
        /// the (deeply stratified, recursive) programs the bridge emits.
        #[test]
        fn semi_naive_matches_naive(
            phi in arb_formula(2),
            db in arb_database(),
        ) {
            let compiled = compile_formula(&phi).unwrap();
            let fast = evaluate(&compiled.program, &db).unwrap();
            let slow = evaluate_naive(&compiled.program, &db).unwrap();
            prop_assert_eq!(fast, slow);
        }

        /// Bridge programs stay within linear recursion (the WITH
        /// RECURSIVE fragment): never `Recursion::NonLinear`.
        #[test]
        fn bridge_programs_are_linear(phi in arb_formula(3)) {
            let compiled = compile_formula(&phi).unwrap();
            prop_assert!(stratify(&compiled.program).is_ok());
            let rec = classify_recursion(&compiled.program);
            prop_assert!(rec != Recursion::NonLinear, "got {:?}", rec);
        }
    }
}
