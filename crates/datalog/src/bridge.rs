//! FO\[TC\] → stratified *linear* Datalog.
//!
//! Section 4.1 of the paper calibrates the read-write fragment against
//! NL, "corresponding to Datalog's capabilities on CRPQs, as well as
//! SQL's `WITH RECURSIVE`, which supports linear recursion". This module
//! makes that correspondence executable: every FO\[TC\] formula compiles
//! to a stratified Datalog program whose only recursion is the linear
//! transitive-closure loop
//!
//! ```text
//! tc(x̄, x̄, p̄) :- $adom(x̄), $adom(p̄).
//! tc(x̄, z̄, p̄) :- tc(x̄, ȳ, p̄), step(ȳ, z̄, p̄).
//! ```
//!
//! so [`classify_recursion`](crate::stratify::classify_recursion) returns
//! [`Recursion::Linear`](crate::stratify::Recursion::Linear) (or `None`
//! for TC-free formulas) on every compiled program — a mechanical check
//! that FO\[TC\] needs no non-linear recursion, which is the reason its
//! data complexity stays in NL rather than P.
//!
//! The translation is exact with respect to the logic crate's
//! active-domain semantics, including the corner cases: equality of
//! constants outside the active domain, vacuous quantification over an
//! empty domain, and TC applications with constant endpoints. For the
//! latter, strict active-domain semantics applies — every tuple of a TC
//! chain, endpoints included, lies in `adom^k` — so the closure
//! predicate materialized over `adom^k` is exact. (An earlier draft of
//! the naive logic evaluator let a constant source outside the active
//! domain take a first step; reconciling the two evaluators on that
//! corner is reproduction finding F3 in EXPERIMENTS.md.)

use crate::ast::{Atom, DlTerm, Literal, Program, Rule, ADOM};
use pgq_logic::{Formula, TcShapeError, Term};
use pgq_relational::RelName;
use pgq_value::{Value, Var, VarGen};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Errors of the FO\[TC\] → Datalog compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BridgeError {
    /// The input formula is malformed (arity mismatch or repeated
    /// closure variables in a `TC` — `Formula::validate` rejects both).
    Shape(TcShapeError),
}

impl fmt::Display for BridgeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BridgeError::Shape(e) => write!(f, "malformed formula: {e:?}"),
        }
    }
}

impl std::error::Error for BridgeError {}

impl From<TcShapeError> for BridgeError {
    fn from(e: TcShapeError) -> Self {
        BridgeError::Shape(e)
    }
}

/// The output of [`compile_formula`]: a program, the goal predicate, and
/// the order of its columns (the formula's free variables, sorted — the
/// same order `pgq_logic::eval_ordered` uses when handed the sorted
/// free-variable list).
#[derive(Debug, Clone)]
pub struct CompiledFormula {
    /// The stratified linear program.
    pub program: Program,
    /// The predicate holding the formula's answer relation.
    pub goal: RelName,
    /// Column order of `goal`: the formula's free variables, sorted.
    pub head_vars: Vec<Var>,
}

/// Compile an FO\[TC\] formula to stratified linear Datalog.
pub fn compile_formula(phi: &Formula) -> Result<CompiledFormula, BridgeError> {
    phi.validate()?;
    let mut c = Compiler::default();
    let pred = c.compile(phi)?;
    Ok(CompiledFormula {
        program: c.program,
        goal: pred.name,
        head_vars: pred.vars,
    })
}

/// A compiled subformula: its predicate and head-variable order.
#[derive(Debug, Clone)]
struct Pred {
    name: RelName,
    vars: Vec<Var>,
}

#[derive(Default)]
struct Compiler {
    program: Program,
    vars: VarGen,
    counter: usize,
}

impl Compiler {
    fn fresh_pred(&mut self, hint: &str) -> RelName {
        let n = self.counter;
        self.counter += 1;
        RelName::new(format!("\u{03c6}{n}_{hint}"))
    }

    fn adom_guard(v: &Var) -> Literal {
        Literal::pos(Atom::new(ADOM, [DlTerm::Var(v.clone())]))
    }

    fn sorted_fv(phi: &Formula) -> Vec<Var> {
        phi.free_vars().into_iter().collect()
    }

    fn compile(&mut self, phi: &Formula) -> Result<Pred, BridgeError> {
        match phi {
            Formula::True => {
                let name = self.fresh_pred("true");
                self.program
                    .push(Rule::fact(Atom::new(name.clone(), Vec::<DlTerm>::new())));
                Ok(Pred { name, vars: vec![] })
            }
            Formula::False => {
                let name = self.fresh_pred("false");
                self.program.declare(name.clone(), 0);
                Ok(Pred { name, vars: vec![] })
            }
            Formula::Atom(rel, terms) => {
                let hv = Self::sorted_fv(phi);
                let name = self.fresh_pred("atom");
                let body = Literal::pos(Atom::new(
                    rel.clone(),
                    terms.iter().map(term_to_dl).collect::<Vec<_>>(),
                ));
                self.program
                    .push(Rule::new(head_atom(&name, &hv), vec![body]));
                Ok(Pred { name, vars: hv })
            }
            Formula::Eq(a, b) => self.compile_eq(a, b),
            Formula::Not(f) => {
                let inner = self.compile(f)?;
                let hv = inner.vars.clone();
                let name = self.fresh_pred("not");
                let mut body: Vec<Literal> = hv.iter().map(Self::adom_guard).collect();
                body.push(Literal::neg(Atom::new(
                    inner.name.clone(),
                    hv.iter()
                        .map(|v| DlTerm::Var(v.clone()))
                        .collect::<Vec<_>>(),
                )));
                self.program.push(Rule::new(head_atom(&name, &hv), body));
                Ok(Pred { name, vars: hv })
            }
            Formula::And(f, g) => {
                let p1 = self.compile(f)?;
                let p2 = self.compile(g)?;
                let hv = Self::sorted_fv(phi);
                let name = self.fresh_pred("and");
                let body = vec![pred_literal(&p1), pred_literal(&p2)];
                self.program.push(Rule::new(head_atom(&name, &hv), body));
                Ok(Pred { name, vars: hv })
            }
            Formula::Or(f, g) => {
                let p1 = self.compile(f)?;
                let p2 = self.compile(g)?;
                let hv = Self::sorted_fv(phi);
                let name = self.fresh_pred("or");
                for p in [&p1, &p2] {
                    let covered: BTreeSet<&Var> = p.vars.iter().collect();
                    let mut body = vec![pred_literal(p)];
                    body.extend(
                        hv.iter()
                            .filter(|v| !covered.contains(v))
                            .map(Self::adom_guard),
                    );
                    self.program.push(Rule::new(head_atom(&name, &hv), body));
                }
                Ok(Pred { name, vars: hv })
            }
            Formula::Exists(vs, f) => {
                let inner = self.compile(f)?;
                let hv = Self::sorted_fv(phi);
                let name = self.fresh_pred("exists");
                let inner_fv: BTreeSet<&Var> = inner.vars.iter().collect();
                let mut body = vec![pred_literal(&inner)];
                // A quantified variable absent from the body still ranges
                // over the active domain: ∃x φ ≡ φ ∧ ∃x adom(x).
                body.extend(
                    vs.iter()
                        .filter(|v| !inner_fv.contains(v))
                        .map(Self::adom_guard),
                );
                self.program.push(Rule::new(head_atom(&name, &hv), body));
                Ok(Pred { name, vars: hv })
            }
            Formula::Forall(vs, f) => {
                // ∀x̄ φ ≡ ¬∃x̄ ¬φ, matching the evaluator's vacuous-domain
                // behaviour (∀ over an empty domain is true).
                let rewritten = Formula::Not(Box::new(Formula::Exists(
                    vs.clone(),
                    Box::new(Formula::Not(f.clone())),
                )));
                self.compile(&rewritten)
            }
            Formula::Tc { u, v, body, x, y } => self.compile_tc(u, v, body, x, y),
        }
    }

    fn compile_eq(&mut self, a: &Term, b: &Term) -> Result<Pred, BridgeError> {
        match (a, b) {
            (Term::Var(x), Term::Var(y)) if x == y => {
                let name = self.fresh_pred("eq");
                self.program.push(Rule::new(
                    head_atom(&name, std::slice::from_ref(x)),
                    vec![Self::adom_guard(x)],
                ));
                Ok(Pred {
                    name,
                    vars: vec![x.clone()],
                })
            }
            (Term::Var(x), Term::Var(y)) => {
                let name = self.fresh_pred("eq");
                let mut hv = vec![x.clone(), y.clone()];
                hv.sort();
                // Both head columns carry the same variable: the derived
                // relation is the adom diagonal.
                let w = self.vars.fresh("eq");
                self.program.push(Rule::new(
                    Atom::new(
                        name.clone(),
                        [DlTerm::Var(w.clone()), DlTerm::Var(w.clone())],
                    ),
                    vec![Self::adom_guard(&w)],
                ));
                Ok(Pred { name, vars: hv })
            }
            (Term::Var(x), Term::Const(c)) | (Term::Const(c), Term::Var(x)) => {
                let name = self.fresh_pred("eq");
                // {(c)} if c is in the active domain, else empty — exactly
                // the evaluator's answer for x = c with x ranging over adom.
                self.program.push(Rule::new(
                    Atom::new(name.clone(), [DlTerm::Const(c.clone())]),
                    vec![Literal::pos(Atom::new(ADOM, [DlTerm::Const(c.clone())]))],
                ));
                Ok(Pred {
                    name,
                    vars: vec![x.clone()],
                })
            }
            (Term::Const(c1), Term::Const(c2)) => {
                // Ground equality: true/false regardless of the domain
                // (the evaluator compares resolved values directly).
                let name = self.fresh_pred("eq");
                if c1 == c2 {
                    self.program
                        .push(Rule::fact(Atom::new(name.clone(), Vec::<DlTerm>::new())));
                } else {
                    self.program.declare(name.clone(), 0);
                }
                Ok(Pred { name, vars: vec![] })
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn compile_tc(
        &mut self,
        u: &[Var],
        v: &[Var],
        body: &Formula,
        x: &[Term],
        y: &[Term],
    ) -> Result<Pred, BridgeError> {
        let k = u.len();
        let step = self.compile(body)?;
        let body_fv: BTreeSet<Var> = body.free_vars();
        let params: Vec<Var> = body_fv
            .iter()
            .filter(|w| !u.contains(w) && !v.contains(w))
            .cloned()
            .collect();

        // The closure predicate tc(s̄, t̄, p̄) over adom^k sources/targets.
        let tc = self.fresh_pred("tc");
        let s = self.vars.fresh_tuple("s", k);
        let t = self.vars.fresh_tuple("t", k);
        let w = self.vars.fresh_tuple("w", k);

        // Base: the reflexive diagonal over adom^k × adom^ℓ.
        {
            let mut terms: Vec<DlTerm> = s.iter().map(|z| DlTerm::Var(z.clone())).collect();
            terms.extend(s.iter().map(|z| DlTerm::Var(z.clone())));
            terms.extend(params.iter().map(|p| DlTerm::Var(p.clone())));
            let mut guards: Vec<Literal> = s.iter().map(Self::adom_guard).collect();
            guards.extend(params.iter().map(Self::adom_guard));
            self.program
                .push(Rule::new(Atom::new(tc.clone(), terms), guards));
        }
        // Step (the only recursive rule — linear by construction):
        // tc(s̄, w̄, p̄) :- tc(s̄, t̄, p̄), step(t̄→ū, w̄→v̄, p̄), guards.
        {
            let mut head: Vec<DlTerm> = s.iter().map(|z| DlTerm::Var(z.clone())).collect();
            head.extend(w.iter().map(|z| DlTerm::Var(z.clone())));
            head.extend(params.iter().map(|p| DlTerm::Var(p.clone())));

            let mut rec: Vec<DlTerm> = s.iter().map(|z| DlTerm::Var(z.clone())).collect();
            rec.extend(t.iter().map(|z| DlTerm::Var(z.clone())));
            rec.extend(params.iter().map(|p| DlTerm::Var(p.clone())));

            let mut lits = vec![Literal::pos(Atom::new(tc.clone(), rec))];
            lits.push(step_literal(&step, u, v, &t, &w, &body_fv));
            // Target coordinates the step formula does not mention range
            // freely over the domain.
            for (i, vi) in v.iter().enumerate() {
                if !body_fv.contains(vi) {
                    lits.push(Self::adom_guard(&w[i]));
                }
            }
            self.program
                .push(Rule::new(Atom::new(tc.clone(), head), lits));
        }

        // Application: p(fv) :- tc(x̄, ȳ, p̄).
        let phi = Formula::Tc {
            u: u.to_vec(),
            v: v.to_vec(),
            body: Box::new(body.clone()),
            x: x.to_vec(),
            y: y.to_vec(),
        };
        let hv = Self::sorted_fv(&phi);
        let name = self.fresh_pred("tcapp");
        {
            let mut args: Vec<DlTerm> = x.iter().map(term_to_dl).collect();
            args.extend(y.iter().map(term_to_dl));
            args.extend(params.iter().map(|p| DlTerm::Var(p.clone())));
            self.program.push(Rule::new(
                head_atom(&name, &hv),
                vec![Literal::pos(Atom::new(tc.clone(), args))],
            ));
        }

        Ok(Pred { name, vars: hv })
    }
}

fn term_to_dl(t: &Term) -> DlTerm {
    match t {
        Term::Var(v) => DlTerm::Var(v.clone()),
        Term::Const(c) => DlTerm::Const(c.clone()),
    }
}

fn head_atom(name: &RelName, vars: &[Var]) -> Atom {
    Atom::new(
        name.clone(),
        vars.iter()
            .map(|v| DlTerm::Var(v.clone()))
            .collect::<Vec<_>>(),
    )
}

fn pred_literal(p: &Pred) -> Literal {
    Literal::pos(Atom::new(
        p.name.clone(),
        p.vars
            .iter()
            .map(|v| DlTerm::Var(v.clone()))
            .collect::<Vec<_>>(),
    ))
}

/// The step literal of the recursive rule: the compiled body predicate
/// with `ū ↦ t̄` (current source block), `v̄ ↦ w̄` (next block), and
/// parameters passed through by name.
fn step_literal(
    step: &Pred,
    u: &[Var],
    v: &[Var],
    t: &[Var],
    w: &[Var],
    _body_fv: &BTreeSet<Var>,
) -> Literal {
    let mut arg_of: BTreeMap<&Var, DlTerm> = BTreeMap::new();
    for (ui, ti) in u.iter().zip(t) {
        arg_of.insert(ui, DlTerm::Var(ti.clone()));
    }
    for (vi, wi) in v.iter().zip(w) {
        arg_of.insert(vi, DlTerm::Var(wi.clone()));
    }
    let args: Vec<DlTerm> = step
        .vars
        .iter()
        .map(|hv| arg_of.get(hv).cloned().unwrap_or(DlTerm::Var(hv.clone())))
        .collect();
    Literal::pos(Atom::new(step.name.clone(), args))
}

/// Capture-respecting substitution of constants for variables:
/// `φ[c̄/x̄]`. Binders (`∃`, `∀`, and a `TC`'s `ū`/`v̄`) shadow the
/// substitution inside their scope; substituting constants cannot
/// capture, so no renaming is needed.
pub fn subst_consts(phi: &Formula, map: &BTreeMap<Var, Value>) -> Formula {
    if map.is_empty() {
        return phi.clone();
    }
    let sub_term = |t: &Term| -> Term {
        match t {
            Term::Var(v) => map
                .get(v)
                .map(|c| Term::Const(c.clone()))
                .unwrap_or_else(|| t.clone()),
            Term::Const(_) => t.clone(),
        }
    };
    match phi {
        Formula::True => Formula::True,
        Formula::False => Formula::False,
        Formula::Atom(r, ts) => Formula::Atom(r.clone(), ts.iter().map(sub_term).collect()),
        Formula::Eq(a, b) => Formula::Eq(sub_term(a), sub_term(b)),
        Formula::Not(f) => Formula::Not(Box::new(subst_consts(f, map))),
        Formula::And(a, b) => Formula::And(
            Box::new(subst_consts(a, map)),
            Box::new(subst_consts(b, map)),
        ),
        Formula::Or(a, b) => Formula::Or(
            Box::new(subst_consts(a, map)),
            Box::new(subst_consts(b, map)),
        ),
        Formula::Exists(vs, f) => {
            let inner: BTreeMap<Var, Value> = map
                .iter()
                .filter(|(k, _)| !vs.contains(k))
                .map(|(k, c)| (k.clone(), c.clone()))
                .collect();
            Formula::Exists(vs.clone(), Box::new(subst_consts(f, &inner)))
        }
        Formula::Forall(vs, f) => {
            let inner: BTreeMap<Var, Value> = map
                .iter()
                .filter(|(k, _)| !vs.contains(k))
                .map(|(k, c)| (k.clone(), c.clone()))
                .collect();
            Formula::Forall(vs.clone(), Box::new(subst_consts(f, &inner)))
        }
        Formula::Tc { u, v, body, x, y } => {
            let inner: BTreeMap<Var, Value> = map
                .iter()
                .filter(|(k, _)| !u.contains(k) && !v.contains(k))
                .map(|(k, c)| (k.clone(), c.clone()))
                .collect();
            Formula::Tc {
                u: u.clone(),
                v: v.clone(),
                body: Box::new(subst_consts(body, &inner)),
                x: x.iter().map(sub_term).collect(),
                y: y.iter().map(sub_term).collect(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use crate::stratify::{classify_recursion, stratify, Recursion};
    use pgq_logic::eval_ordered;
    use pgq_relational::{Database, Relation};
    use pgq_value::Tuple;

    fn edge_db(edges: &[(i64, i64)]) -> Database {
        let rel = Relation::from_rows(
            2,
            edges
                .iter()
                .map(|&(a, b)| Tuple::new(vec![Value::int(a), Value::int(b)])),
        )
        .unwrap();
        Database::new().with_relation("E", rel)
    }

    /// Compile, evaluate, and compare column-for-column with the logic
    /// crate's relational evaluator over the sorted free variables.
    fn check_against_logic(phi: &Formula, db: &Database) {
        let compiled = compile_formula(phi).unwrap();
        let model = evaluate(&compiled.program, db).unwrap();
        let got = model.get(&compiled.goal).unwrap();
        let want = eval_ordered(phi, &compiled.head_vars, db).unwrap();
        assert_eq!(
            got, &want,
            "formula: {phi:?}\nprogram:\n{}",
            compiled.program
        );
    }

    #[test]
    fn atom_and_eq_agree_with_logic() {
        let db = edge_db(&[(1, 2), (2, 3)]);
        check_against_logic(&Formula::atom("E", ["x", "y"]), &db);
        check_against_logic(&Formula::eq("x", "y"), &db);
        check_against_logic(&Formula::eq("x", Term::constant(2i64)), &db);
        check_against_logic(&Formula::eq("x", Term::constant(99i64)), &db);
    }

    #[test]
    fn ground_equalities_ignore_domain() {
        let db = edge_db(&[(1, 2)]);
        // 7 = 7 is true even though 7 is not in the active domain.
        let t = Formula::Eq(Term::constant(7i64), Term::constant(7i64));
        let f = Formula::Eq(Term::constant(7i64), Term::constant(8i64));
        let ct = compile_formula(&t).unwrap();
        let cf = compile_formula(&f).unwrap();
        assert!(evaluate(&ct.program, &db)
            .unwrap()
            .get(&ct.goal)
            .unwrap()
            .as_bool());
        assert!(!evaluate(&cf.program, &db)
            .unwrap()
            .get(&cf.goal)
            .unwrap()
            .as_bool());
    }

    #[test]
    fn boolean_connectives_agree_with_logic() {
        let db = edge_db(&[(0, 1), (1, 2), (2, 0), (3, 3)]);
        let e = Formula::atom("E", ["x", "y"]);
        check_against_logic(&e.clone().not(), &db);
        check_against_logic(&e.clone().and(Formula::eq("x", "y")), &db);
        check_against_logic(&e.clone().or(Formula::eq("x", "y")), &db);
        check_against_logic(&Formula::exists(["y"], e.clone()), &db);
        check_against_logic(
            &Formula::forall(["y"], e.clone().or(Formula::eq("y", "y").not())),
            &db,
        );
    }

    #[test]
    fn vacuous_quantifiers_agree_with_logic() {
        let db = edge_db(&[(1, 2)]);
        // ∃z E(x,y) — z does not occur; still requires a nonempty domain.
        check_against_logic(
            &Formula::Exists(
                vec![Var::new("z")],
                Box::new(Formula::atom("E", ["x", "y"])),
            ),
            &db,
        );
    }

    #[test]
    fn forall_sentence_on_empty_domain_is_true() {
        let db = Database::new()
            .with_relation("E", Relation::empty(2))
            .with_relation("V", Relation::empty(1));
        let phi = Formula::forall(["x"], Formula::atom("V", ["x"]));
        let compiled = compile_formula(&phi).unwrap();
        let model = evaluate(&compiled.program, &db).unwrap();
        assert!(model.get(&compiled.goal).unwrap().as_bool());
        // And the logic evaluator agrees.
        assert!(pgq_logic::eval_sentence(&phi, &db).unwrap());
    }

    #[test]
    fn tc_reachability_agrees_with_logic() {
        let db = edge_db(&[(0, 1), (1, 2), (2, 3), (5, 5)]);
        let phi = Formula::tc(
            vec![Var::new("u")],
            vec![Var::new("v")],
            Formula::atom("E", ["u", "v"]),
            vec![Term::var("x")],
            vec![Term::var("y")],
        );
        check_against_logic(&phi, &db);
    }

    #[test]
    fn tc_with_parameters_agrees_with_logic() {
        // Steps gated on a parameter p: E(u,v) ∧ E(p,p).
        let db = edge_db(&[(0, 1), (1, 2), (3, 3)]);
        let phi = Formula::tc(
            vec![Var::new("u")],
            vec![Var::new("v")],
            Formula::atom("E", ["u", "v"]).and(Formula::atom("E", ["p", "p"])),
            vec![Term::var("x")],
            vec![Term::var("y")],
        );
        check_against_logic(&phi, &db);
    }

    #[test]
    fn tc_with_constant_source_in_adom() {
        let db = edge_db(&[(0, 1), (1, 2)]);
        let phi = Formula::tc(
            vec![Var::new("u")],
            vec![Var::new("v")],
            Formula::atom("E", ["u", "v"]),
            vec![Term::constant(0i64)],
            vec![Term::var("y")],
        );
        check_against_logic(&phi, &db);
    }

    #[test]
    fn tc_with_constant_source_outside_adom_is_empty_f3() {
        // Strict active-domain semantics (finding F3): every chain tuple
        // lies in adom^k, so a source outside the domain reaches nothing
        // even under a `True` step formula. Both logic evaluators and
        // the Datalog translation agree.
        let db = edge_db(&[(0, 1)]);
        let phi = Formula::tc(
            vec![Var::new("u")],
            vec![Var::new("v")],
            Formula::True,
            vec![Term::constant(42i64)],
            vec![Term::var("y")],
        );
        check_against_logic(&phi, &db);
        let compiled = compile_formula(&phi).unwrap();
        let model = evaluate(&compiled.program, &db).unwrap();
        assert!(model.get(&compiled.goal).unwrap().is_empty());
        // The deliberately slow satisfaction-based oracle agrees too.
        let rows = pgq_logic::all_satisfying(&phi, &[Var::new("y")], &db).unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn tc_reflexivity_restricted_to_adom() {
        // TC[c, c] for c outside adom is false (the evaluator's in_adom
        // check); for c inside adom it is true.
        let db = edge_db(&[(0, 1)]);
        for (c, expect) in [(0i64, true), (42i64, false)] {
            let phi = Formula::tc(
                vec![Var::new("u")],
                vec![Var::new("v")],
                Formula::atom("E", ["u", "v"]),
                vec![Term::constant(c)],
                vec![Term::constant(c)],
            );
            let compiled = compile_formula(&phi).unwrap();
            let model = evaluate(&compiled.program, &db).unwrap();
            assert_eq!(
                model.get(&compiled.goal).unwrap().as_bool(),
                expect,
                "c = {c}"
            );
        }
    }

    #[test]
    fn binary_tc_agrees_with_logic() {
        // Pair reachability: step ((u1,u2) → (v1,v2)) iff E(u1,v1) ∧ E(u2,v2).
        let db = edge_db(&[(0, 1), (1, 2), (2, 0)]);
        let phi = Formula::tc(
            vec![Var::new("u1"), Var::new("u2")],
            vec![Var::new("v1"), Var::new("v2")],
            Formula::atom("E", ["u1", "v1"]).and(Formula::atom("E", ["u2", "v2"])),
            vec![Term::var("x1"), Term::var("x2")],
            vec![Term::var("y1"), Term::var("y2")],
        );
        check_against_logic(&phi, &db);
    }

    #[test]
    fn compiled_programs_are_linear_and_stratified() {
        let phi = Formula::tc(
            vec![Var::new("u")],
            vec![Var::new("v")],
            Formula::atom("E", ["u", "v"]).and(Formula::atom("V", ["u"]).not()),
            vec![Term::var("x")],
            vec![Term::var("y")],
        )
        .and(Formula::forall(["z"], Formula::atom("V", ["z"])).not());
        let compiled = compile_formula(&phi).unwrap();
        assert!(stratify(&compiled.program).is_ok());
        assert!(matches!(
            classify_recursion(&compiled.program),
            Recursion::Linear | Recursion::None
        ));
    }

    #[test]
    fn overlapping_tc_vars_rejected() {
        // `Formula::validate` rejects a variable occurring in both ū and
        // v̄; the bridge surfaces that as a shape error.
        let phi = Formula::Tc {
            u: vec![Var::new("u"), Var::new("shared")],
            v: vec![Var::new("shared"), Var::new("v")],
            body: Box::new(Formula::True),
            x: vec![Term::var("a"), Term::var("b")],
            y: vec![Term::var("c"), Term::var("d")],
        };
        assert!(matches!(compile_formula(&phi), Err(BridgeError::Shape(_))));
    }

    #[test]
    fn subst_consts_respects_binders() {
        let map: BTreeMap<Var, Value> = [(Var::new("x"), Value::int(7))].into_iter().collect();
        // ∃x E(x,y) — the bound x must not be substituted.
        let phi = Formula::exists(["x"], Formula::atom("E", ["x", "y"]));
        assert_eq!(subst_consts(&phi, &map), phi);
        // E(x,y) — the free x is substituted.
        let free = Formula::atom("E", ["x", "y"]);
        let expected = Formula::Atom("E".into(), vec![Term::constant(7i64), Term::var("y")]);
        assert_eq!(subst_consts(&free, &map), expected);
    }
}
