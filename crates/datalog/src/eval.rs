//! Semi-naive, stratum-by-stratum evaluation.
//!
//! The evaluator runs a validated, stratified program against a
//! [`Database`]: relations stored in the database are the extensional
//! predicates, the reserved [`ADOM`] predicate is bound
//! to the active domain, and every rule head is intensional. Within a
//! stratum, recursive rules are iterated semi-naively: after the first
//! round, a rule only fires with at least one same-stratum positive
//! literal bound to the previous round's *delta*.
//!
//! Complexity: for a fixed program the evaluation is polynomial in the
//! database (each stratum's fixpoint adds at least one tuple per round,
//! and rounds do polynomial work), matching the Datalog side of the
//! paper's NL discussion (Section 4.1).

use crate::ast::{Atom, DlTerm, Literal, Program, ProgramError, ADOM};
use crate::stratify::{stratify, Stratification};
use pgq_relational::{Database, RelName, Relation};
use pgq_value::{Tuple, Value, Var};
use std::collections::BTreeMap;

/// Errors surfaced while running a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The program failed static validation or stratification.
    Static(ProgramError),
    /// A body literal references a predicate that is neither IDB nor
    /// stored in the database.
    UnknownPredicate {
        /// The missing predicate.
        pred: RelName,
    },
    /// A body literal's arity disagrees with the stored relation.
    EdbArityMismatch {
        /// The predicate.
        pred: RelName,
        /// Arity in the program.
        program: usize,
        /// Arity in the database.
        database: usize,
    },
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::Static(e) => write!(f, "{e}"),
            EvalError::UnknownPredicate { pred } => write!(f, "unknown predicate {pred}"),
            EvalError::EdbArityMismatch {
                pred,
                program,
                database,
            } => write!(
                f,
                "predicate {pred} has arity {program} in the program but {database} in the database"
            ),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<ProgramError> for EvalError {
    fn from(e: ProgramError) -> Self {
        EvalError::Static(e)
    }
}

/// The result of evaluating a program: every IDB relation at fixpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Model {
    relations: BTreeMap<RelName, Relation>,
}

impl Model {
    /// The computed relation for `pred` (every IDB predicate is present,
    /// possibly empty).
    pub fn get(&self, pred: &RelName) -> Option<&Relation> {
        self.relations.get(pred)
    }

    /// Iterate over all IDB relations.
    pub fn iter(&self) -> impl Iterator<Item = (&RelName, &Relation)> {
        self.relations.iter()
    }

    /// Total number of derived tuples.
    pub fn tuple_count(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// Assemble a model from computed relations (used by the naive
    /// reference evaluator).
    pub(crate) fn from_relations(relations: BTreeMap<RelName, Relation>) -> Self {
        Model { relations }
    }
}

/// A variable binding under construction while matching body literals.
type Bindings = BTreeMap<Var, Value>;

/// Evaluate `program` on `db` (see module docs). Validates, stratifies,
/// then computes each stratum's least fixpoint semi-naively.
pub fn evaluate(program: &Program, db: &Database) -> Result<Model, EvalError> {
    program.validate()?;
    let strat = stratify(program)?;
    let arities = program.arities()?;
    let idb = program.idb_preds();

    // Reject heads that shadow stored relations, and check EDB arities.
    let adom_name: RelName = ADOM.into();
    for pred in &idb {
        if db.get(pred).is_some() {
            return Err(ProgramError::HeadShadowsEdb { pred: pred.clone() }.into());
        }
    }
    for rule in &program.rules {
        for lit in &rule.body {
            let pred = &lit.atom.pred;
            if idb.contains(pred) || *pred == adom_name {
                continue;
            }
            match db.get(pred) {
                None => return Err(EvalError::UnknownPredicate { pred: pred.clone() }),
                Some(rel) if rel.arity() != lit.atom.arity() => {
                    return Err(EvalError::EdbArityMismatch {
                        pred: pred.clone(),
                        program: lit.atom.arity(),
                        database: rel.arity(),
                    })
                }
                Some(_) => {}
            }
        }
    }

    let mut total: BTreeMap<RelName, Relation> = idb
        .iter()
        .map(|p| {
            (
                p.clone(),
                Relation::empty(arities.get(p).copied().unwrap_or(0)),
            )
        })
        .collect();
    let adom_rel = db.active_domain_relation();
    run_strata(program, &strat, db, &adom_rel, &mut total);
    Ok(Model { relations: total })
}

/// Shorthand: evaluate and return a single predicate's relation.
pub fn query(program: &Program, db: &Database, goal: &RelName) -> Result<Relation, EvalError> {
    let model = evaluate(program, db)?;
    model
        .get(goal)
        .cloned()
        .ok_or_else(|| EvalError::UnknownPredicate { pred: goal.clone() })
}

fn run_strata(
    program: &Program,
    strat: &Stratification,
    db: &Database,
    adom: &Relation,
    total: &mut BTreeMap<RelName, Relation>,
) {
    let adom_name: RelName = ADOM.into();
    for layer in &strat.layers {
        let rules: Vec<&crate::ast::Rule> = layer.iter().map(|&i| &program.rules[i]).collect();
        // Predicates defined in this stratum (for semi-naive deltas).
        let here: std::collections::BTreeSet<&RelName> =
            rules.iter().map(|r| &r.head.pred).collect();

        // Round 0: naive evaluation of every rule in the stratum.
        let mut delta: BTreeMap<RelName, Relation> = BTreeMap::new();
        for rule in &rules {
            let derived = fire_rule(rule, None, db, adom, total, &adom_name);
            note_new(&mut delta, total, &rule.head.pred, derived);
        }
        absorb(total, &delta);

        // Subsequent rounds: differentiate on same-stratum positives.
        loop {
            let mut next: BTreeMap<RelName, Relation> = BTreeMap::new();
            for rule in &rules {
                for (i, lit) in rule.body.iter().enumerate() {
                    if !lit.positive || !here.contains(&lit.atom.pred) {
                        continue;
                    }
                    let Some(d) = delta.get(&lit.atom.pred) else {
                        continue;
                    };
                    if d.is_empty() {
                        continue;
                    }
                    let derived = fire_rule(rule, Some((i, d)), db, adom, total, &adom_name);
                    note_new(&mut next, total, &rule.head.pred, derived);
                }
            }
            if next.values().all(Relation::is_empty) {
                break;
            }
            absorb(total, &next);
            delta = next;
        }
    }
}

/// Keep only tuples not already in `total`, accumulating them in `delta`.
fn note_new(
    delta: &mut BTreeMap<RelName, Relation>,
    total: &BTreeMap<RelName, Relation>,
    pred: &RelName,
    derived: Vec<Tuple>,
) {
    if derived.is_empty() {
        return;
    }
    let existing = &total[pred];
    let entry = delta
        .entry(pred.clone())
        .or_insert_with(|| Relation::empty(existing.arity()));
    for t in derived {
        if !existing.contains(&t) {
            let _ = entry.insert(t);
        }
    }
}

fn absorb(total: &mut BTreeMap<RelName, Relation>, delta: &BTreeMap<RelName, Relation>) {
    for (p, d) in delta {
        if d.is_empty() {
            continue;
        }
        let r = total.get_mut(p).expect("stratum predicates pre-seeded");
        *r = r.union(d).expect("same arity");
    }
}

/// Full (non-differentiated) firing of a rule — shared with the naive
/// reference evaluator.
pub(crate) fn fire_rule_full(
    rule: &crate::ast::Rule,
    db: &Database,
    adom: &Relation,
    total: &BTreeMap<RelName, Relation>,
    adom_name: &RelName,
) -> Vec<Tuple> {
    fire_rule(rule, None, db, adom, total, adom_name)
}

/// Evaluate one rule body left-to-right, with positive literals first
/// (negatives are checked once their variables are ground — rule safety
/// guarantees this ordering binds them). `delta_at` pins one positive
/// body literal to the given delta relation instead of the full total.
fn fire_rule(
    rule: &crate::ast::Rule,
    delta_at: Option<(usize, &Relation)>,
    db: &Database,
    adom: &Relation,
    total: &BTreeMap<RelName, Relation>,
    adom_name: &RelName,
) -> Vec<Tuple> {
    // Order: positives (in source order), then negatives.
    let mut order: Vec<usize> = (0..rule.body.len())
        .filter(|&i| rule.body[i].positive)
        .collect();
    order.extend((0..rule.body.len()).filter(|&i| !rule.body[i].positive));

    let rel_of = |i: usize| -> Relation {
        if let Some((j, d)) = delta_at {
            if i == j {
                return (*d).clone();
            }
        }
        let pred = &rule.body[i].atom.pred;
        if pred == adom_name {
            adom.clone()
        } else if let Some(r) = total.get(pred) {
            r.clone()
        } else {
            db.get(pred)
                .cloned()
                .expect("EDB checked before evaluation")
        }
    };
    let rels: Vec<Relation> = order.iter().map(|&i| rel_of(i)).collect();

    let mut out = Vec::new();
    let mut bind = Bindings::new();
    join_rec(rule, &order, &rels, 0, &mut bind, &mut out);
    out
}

/// Nested-loop join over the ordered body literals.
fn join_rec(
    rule: &crate::ast::Rule,
    order: &[usize],
    rels: &[Relation],
    depth: usize,
    bind: &mut Bindings,
    out: &mut Vec<Tuple>,
) {
    if depth == order.len() {
        out.push(instantiate(&rule.head, bind));
        return;
    }
    let lit = &rule.body[order[depth]];
    let rel = &rels[depth];
    if lit.positive {
        'tuples: for t in rel.iter() {
            let mut added: Vec<Var> = Vec::new();
            for (term, val) in lit.atom.terms.iter().zip(t.iter()) {
                match term {
                    DlTerm::Const(c) => {
                        if c != val {
                            unwind(bind, &added);
                            continue 'tuples;
                        }
                    }
                    DlTerm::Var(v) => match bind.get(v) {
                        Some(existing) if existing != val => {
                            unwind(bind, &added);
                            continue 'tuples;
                        }
                        Some(_) => {}
                        None => {
                            bind.insert(v.clone(), val.clone());
                            added.push(v.clone());
                        }
                    },
                }
            }
            join_rec(rule, order, rels, depth + 1, bind, out);
            unwind(bind, &added);
        }
    } else {
        // Safety guarantees groundness here.
        let probe = instantiate(&lit.atom, bind);
        if !rel.contains(&probe) {
            join_rec(rule, order, rels, depth + 1, bind, out);
        }
    }
}

fn unwind(bind: &mut Bindings, added: &[Var]) {
    for v in added {
        bind.remove(v);
    }
}

/// Substitute bindings into an atom (all variables must be bound).
fn instantiate(atom: &Atom, bind: &Bindings) -> Tuple {
    atom.terms
        .iter()
        .map(|t| match t {
            DlTerm::Const(c) => c.clone(),
            DlTerm::Var(v) => bind
                .get(v)
                .cloned()
                .expect("safety: head/negative variables bound by positives"),
        })
        .collect()
}

/// Convenience used by tests and benches: transitive-closure program
/// `goal(x,y) :- edge(x,y); goal(x,z) :- goal(x,y), edge(y,z)` over the
/// named edge relation.
pub fn reachability_program(edge: &str, goal: &str) -> Program {
    let mut p = Program::new();
    let x = DlTerm::var("x");
    let y = DlTerm::var("y");
    let z = DlTerm::var("z");
    p.push(crate::ast::Rule::new(
        Atom::new(goal, [x.clone(), y.clone()]),
        vec![Literal::pos(Atom::new(edge, [x.clone(), y.clone()]))],
    ));
    p.push(crate::ast::Rule::new(
        Atom::new(goal, [x.clone(), z.clone()]),
        vec![
            Literal::pos(Atom::new(goal, [x, y.clone()])),
            Literal::pos(Atom::new(edge, [y, z])),
        ],
    ));
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Rule;

    fn pairs(rel: &Relation) -> Vec<(i64, i64)> {
        rel.iter()
            .map(|t| {
                (
                    t.get(0).unwrap().as_int().unwrap(),
                    t.get(1).unwrap().as_int().unwrap(),
                )
            })
            .collect()
    }

    fn edge_db(edges: &[(i64, i64)]) -> Database {
        let rel = Relation::from_rows(
            2,
            edges
                .iter()
                .map(|&(a, b)| Tuple::new(vec![Value::int(a), Value::int(b)])),
        )
        .unwrap();
        Database::new().with_relation("edge", rel)
    }

    #[test]
    fn reachability_on_a_path() {
        let db = edge_db(&[(1, 2), (2, 3), (3, 4)]);
        let p = reachability_program("edge", "path");
        let r = query(&p, &db, &RelName::new("path")).unwrap();
        assert_eq!(
            pairs(&r),
            vec![(1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)]
        );
    }

    #[test]
    fn reachability_on_a_cycle_terminates() {
        let db = edge_db(&[(0, 1), (1, 2), (2, 0)]);
        let p = reachability_program("edge", "path");
        let r = query(&p, &db, &RelName::new("path")).unwrap();
        assert_eq!(r.len(), 9); // complete on {0,1,2}
    }

    #[test]
    fn stratified_negation_complement() {
        // unreach(x,y) :- $adom(x), $adom(y), !path(x,y).
        let db = edge_db(&[(1, 2), (2, 3)]);
        let mut p = reachability_program("edge", "path");
        p.push(Rule::new(
            Atom::new("unreach", [DlTerm::var("x"), DlTerm::var("y")]),
            vec![
                Literal::pos(Atom::new(ADOM, [DlTerm::var("x")])),
                Literal::pos(Atom::new(ADOM, [DlTerm::var("y")])),
                Literal::neg(Atom::new("path", [DlTerm::var("x"), DlTerm::var("y")])),
            ],
        ));
        let m = evaluate(&p, &db).unwrap();
        let path = m.get(&RelName::new("path")).unwrap();
        let unreach = m.get(&RelName::new("unreach")).unwrap();
        assert_eq!(path.len() + unreach.len(), 9); // 3×3 domain
        assert!(unreach.contains(&Tuple::new(vec![Value::int(2), Value::int(1)])));
    }

    #[test]
    fn facts_and_constants_in_heads() {
        let mut p = Program::new();
        p.push(Rule::fact(Atom::new("seed", [DlTerm::constant(7i64)])));
        p.push(Rule::new(
            Atom::new("next", [DlTerm::var("x")]),
            vec![Literal::pos(Atom::new("seed", [DlTerm::var("x")]))],
        ));
        let db = Database::new().with_relation("unused", Relation::empty(1));
        let m = evaluate(&p, &db).unwrap();
        assert!(m
            .get(&RelName::new("next"))
            .unwrap()
            .contains(&Tuple::unary(7i64)));
    }

    #[test]
    fn constants_filter_in_bodies() {
        let db = edge_db(&[(1, 2), (2, 3), (1, 3)]);
        let mut p = Program::new();
        p.push(Rule::new(
            Atom::new("from_one", [DlTerm::var("y")]),
            vec![Literal::pos(Atom::new(
                "edge",
                [DlTerm::constant(1i64), DlTerm::var("y")],
            ))],
        ));
        let r = query(&p, &db, &RelName::new("from_one")).unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn repeated_variables_unify() {
        let db = edge_db(&[(1, 1), (1, 2), (3, 3)]);
        let mut p = Program::new();
        p.push(Rule::new(
            Atom::new("self_loop", [DlTerm::var("x")]),
            vec![Literal::pos(Atom::new(
                "edge",
                [DlTerm::var("x"), DlTerm::var("x")],
            ))],
        ));
        let r = query(&p, &db, &RelName::new("self_loop")).unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn unknown_predicate_is_an_error() {
        let db = Database::new();
        let mut p = Program::new();
        p.push(Rule::new(
            Atom::new("p", [DlTerm::var("x")]),
            vec![Literal::pos(Atom::new("nope", [DlTerm::var("x")]))],
        ));
        assert!(matches!(
            evaluate(&p, &db),
            Err(EvalError::UnknownPredicate { .. })
        ));
    }

    #[test]
    fn head_shadowing_edb_is_an_error() {
        let db = edge_db(&[(1, 2)]);
        let mut p = Program::new();
        p.push(Rule::new(
            Atom::new("edge", [DlTerm::var("x"), DlTerm::var("y")]),
            vec![Literal::pos(Atom::new(
                "edge",
                [DlTerm::var("x"), DlTerm::var("y")],
            ))],
        ));
        assert!(matches!(
            evaluate(&p, &db),
            Err(EvalError::Static(ProgramError::HeadShadowsEdb { .. }))
        ));
    }

    #[test]
    fn edb_arity_mismatch_is_an_error() {
        let db = edge_db(&[(1, 2)]);
        let mut p = Program::new();
        p.push(Rule::new(
            Atom::new("p", [DlTerm::var("x")]),
            vec![Literal::pos(Atom::new("edge", [DlTerm::var("x")]))],
        ));
        assert!(matches!(
            evaluate(&p, &db),
            Err(EvalError::EdbArityMismatch { .. })
        ));
    }

    #[test]
    fn declared_ruleless_predicate_is_empty() {
        let db = edge_db(&[(1, 2)]);
        let mut p = Program::new();
        p.declare("never", 3);
        let m = evaluate(&p, &db).unwrap();
        assert!(m.get(&RelName::new("never")).unwrap().is_empty());
        assert_eq!(m.get(&RelName::new("never")).unwrap().arity(), 3);
    }

    #[test]
    fn zero_ary_predicates_act_as_booleans() {
        let db = edge_db(&[(1, 2)]);
        let mut p = Program::new();
        p.push(Rule::fact(Atom::new("yes", Vec::<DlTerm>::new())));
        p.push(Rule::new(
            Atom::new("copy", [DlTerm::var("x"), DlTerm::var("y")]),
            vec![
                Literal::pos(Atom::new("yes", Vec::<DlTerm>::new())),
                Literal::pos(Atom::new("edge", [DlTerm::var("x"), DlTerm::var("y")])),
            ],
        ));
        let m = evaluate(&p, &db).unwrap();
        assert!(m.get(&RelName::new("yes")).unwrap().as_bool());
        assert_eq!(m.get(&RelName::new("copy")).unwrap().len(), 1);
    }

    #[test]
    fn same_generation_classic() {
        // sg(x,y) :- flat(x,y).
        // sg(x,y) :- up(x,u), sg(u,v), down(v,y).
        let up = Relation::from_rows(
            2,
            [(1i64, 10i64), (2, 10), (3, 20), (4, 20)]
                .iter()
                .map(|&(a, b)| Tuple::new(vec![Value::int(a), Value::int(b)])),
        )
        .unwrap();
        let flat = Relation::from_rows(
            2,
            [(10i64, 20i64)]
                .iter()
                .map(|&(a, b)| Tuple::new(vec![Value::int(a), Value::int(b)])),
        )
        .unwrap();
        let down = Relation::from_rows(
            2,
            [(10i64, 1i64), (10, 2), (20, 3), (20, 4)]
                .iter()
                .map(|&(a, b)| Tuple::new(vec![Value::int(a), Value::int(b)])),
        )
        .unwrap();
        let db = Database::new()
            .with_relation("up", up)
            .with_relation("flat", flat)
            .with_relation("down", down);
        let mut p = Program::new();
        let (x, y, u, v) = (
            DlTerm::var("x"),
            DlTerm::var("y"),
            DlTerm::var("u"),
            DlTerm::var("v"),
        );
        p.push(Rule::new(
            Atom::new("sg", [x.clone(), y.clone()]),
            vec![Literal::pos(Atom::new("flat", [x.clone(), y.clone()]))],
        ));
        p.push(Rule::new(
            Atom::new("sg", [x.clone(), y.clone()]),
            vec![
                Literal::pos(Atom::new("up", [x, u.clone()])),
                Literal::pos(Atom::new("sg", [u, v.clone()])),
                Literal::pos(Atom::new("down", [v, y])),
            ],
        ));
        let r = query(&p, &db, &RelName::new("sg")).unwrap();
        // The flat pair (10,20) is in sg directly; 1 and 2 are
        // up-parents of 10, whose flat partner 20 has down-children 3
        // and 4, so {1,2} × {3,4} joins it.
        assert_eq!(pairs(&r), vec![(1, 3), (1, 4), (2, 3), (2, 4), (10, 20)]);
    }
}
