//! Naive (full re-derivation) evaluation — the differential-testing
//! reference for the semi-naive engine.
//!
//! Same stratification and body-matching machinery as [`crate::eval`],
//! but each round within a stratum re-fires *every* rule against the
//! full current totals until nothing new is derived. Asymptotically
//! wasteful, obviously correct.

use crate::ast::{Program, ADOM};
use crate::eval::{EvalError, Model};
use crate::stratify::stratify;
use pgq_relational::{Database, RelName, Relation};

/// Evaluate `program` on `db` naively. Produces exactly the same
/// [`Model`] as [`crate::eval::evaluate`] (property-tested in
/// `lib.rs`).
pub fn evaluate_naive(program: &Program, db: &Database) -> Result<Model, EvalError> {
    // Reuse all static checks by delegating to the semi-naive entry
    // point on an empty-delta schedule: validation is identical, so any
    // static error comes back unchanged. We still need an independent
    // fixpoint loop, so validation is repeated here cheaply.
    program.validate()?;
    let strat = stratify(program)?;
    let arities = program.arities()?;
    let idb = program.idb_preds();
    let adom_name: RelName = ADOM.into();
    for pred in &idb {
        if db.get(pred).is_some() {
            return Err(crate::ast::ProgramError::HeadShadowsEdb { pred: pred.clone() }.into());
        }
    }
    for rule in &program.rules {
        for lit in &rule.body {
            let pred = &lit.atom.pred;
            if idb.contains(pred) || *pred == adom_name {
                continue;
            }
            match db.get(pred) {
                None => return Err(EvalError::UnknownPredicate { pred: pred.clone() }),
                Some(rel) if rel.arity() != lit.atom.arity() => {
                    return Err(EvalError::EdbArityMismatch {
                        pred: pred.clone(),
                        program: lit.atom.arity(),
                        database: rel.arity(),
                    })
                }
                Some(_) => {}
            }
        }
    }

    let mut total: std::collections::BTreeMap<RelName, Relation> = idb
        .iter()
        .map(|p| {
            (
                p.clone(),
                Relation::empty(arities.get(p).copied().unwrap_or(0)),
            )
        })
        .collect();
    let adom_rel = db.active_domain_relation();

    for layer in &strat.layers {
        loop {
            let mut grew = false;
            for &i in layer {
                let rule = &program.rules[i];
                let derived = crate::eval::fire_rule_full(rule, db, &adom_rel, &total, &adom_name);
                let rel = total.get_mut(&rule.head.pred).expect("pre-seeded");
                for t in derived {
                    if rel.insert(t).expect("arity checked") {
                        grew = true;
                    }
                }
            }
            if !grew {
                break;
            }
        }
    }
    Ok(Model::from_relations(total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{evaluate, reachability_program};
    use pgq_value::{Tuple, Value};

    #[test]
    fn naive_matches_semi_naive_on_reachability() {
        let rel = Relation::from_rows(
            2,
            [(0i64, 1i64), (1, 2), (2, 3), (3, 1), (4, 4)]
                .iter()
                .map(|&(a, b)| Tuple::new(vec![Value::int(a), Value::int(b)])),
        )
        .unwrap();
        let db = Database::new().with_relation("edge", rel);
        let p = reachability_program("edge", "path");
        assert_eq!(evaluate_naive(&p, &db).unwrap(), evaluate(&p, &db).unwrap());
    }
}
