//! Stratification and recursion classification.
//!
//! A program is *stratifiable* when no predicate depends negatively on
//! itself (directly or transitively). Stratification assigns each IDB
//! predicate a stratum number such that positive dependencies stay within
//! or below a stratum and negative dependencies point strictly below.
//!
//! The module also classifies each program's recursion as none / linear /
//! non-linear. *Linear* means every rule has at most one positive body
//! literal mutually recursive with its head — the fragment SQL's
//! `WITH RECURSIVE` implements and the paper's Section 4.1 invokes as the
//! NL benchmark ("Datalog's capabilities on CRPQs, as well as SQL's
//! WITH RECURSIVE, which supports linear recursion").

use crate::ast::{Program, ProgramError};
use pgq_relational::RelName;
use std::collections::{BTreeMap, BTreeSet};

/// How a program recurses (computed against mutual-recursion classes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recursion {
    /// No rule has a body literal mutually recursive with its head.
    None,
    /// Every rule has at most one mutually recursive positive body
    /// literal (the `WITH RECURSIVE` fragment).
    Linear,
    /// Some rule has two or more mutually recursive positive body
    /// literals (e.g. the doubling formulation of transitive closure).
    NonLinear,
}

/// The result of stratifying a program: the per-predicate stratum map and
/// the rule evaluation order it induces.
#[derive(Debug, Clone)]
pub struct Stratification {
    /// Stratum of every IDB predicate (0-based).
    pub stratum: BTreeMap<RelName, usize>,
    /// Rule indices grouped by stratum, in evaluation order.
    pub layers: Vec<Vec<usize>>,
}

impl Stratification {
    /// Number of strata.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }
}

/// Compute a stratification, or report recursion through negation.
///
/// Iterative relaxation: `stratum(head) ≥ stratum(p)` for positive body
/// predicates `p`, and `stratum(head) ≥ stratum(p) + 1` for negated ones;
/// EDB predicates (anything that is not a rule head or declaration) live
/// at stratum 0 implicitly. If a stratum value exceeds the number of IDB
/// predicates the constraints are cyclic through a negation.
pub fn stratify(program: &Program) -> Result<Stratification, ProgramError> {
    let idb = program.idb_preds();
    let mut stratum: BTreeMap<RelName, usize> = idb.iter().map(|p| (p.clone(), 0)).collect();
    let bound = idb.len();
    loop {
        let mut changed = false;
        for rule in &program.rules {
            let mut need = 0usize;
            for lit in &rule.body {
                if let Some(&s) = stratum.get(&lit.atom.pred) {
                    let floor = if lit.positive { s } else { s + 1 };
                    need = need.max(floor);
                }
            }
            let cur = stratum
                .get_mut(&rule.head.pred)
                .expect("head is an IDB predicate");
            if need > *cur {
                if need > bound {
                    return Err(ProgramError::NotStratifiable {
                        pred: rule.head.pred.clone(),
                    });
                }
                *cur = need;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let depth = stratum.values().copied().max().map_or(0, |m| m + 1);
    let mut layers = vec![Vec::new(); depth.max(if program.rules.is_empty() { 0 } else { 1 })];
    for (i, rule) in program.rules.iter().enumerate() {
        layers[stratum[&rule.head.pred]].push(i);
    }
    Ok(Stratification { stratum, layers })
}

/// Strongly connected components of the predicate dependency graph
/// (edges of either polarity), as `pred → component id`. Components are
/// the program's mutual-recursion classes.
pub fn recursion_components(program: &Program) -> BTreeMap<RelName, usize> {
    // Tarjan's algorithm, iterative to avoid recursion limits on the
    // deep chain programs the FO[TC] bridge emits.
    let idb = program.idb_preds();
    let preds: Vec<RelName> = idb.iter().cloned().collect();
    let index_of: BTreeMap<&RelName, usize> =
        preds.iter().enumerate().map(|(i, p)| (p, i)).collect();
    let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); preds.len()];
    for rule in &program.rules {
        let h = index_of[&rule.head.pred];
        for lit in &rule.body {
            if let Some(&b) = index_of.get(&lit.atom.pred) {
                // Dependency: head depends on body predicate.
                adj[h].insert(b);
            }
        }
    }

    let n = preds.len();
    let mut comp = vec![usize::MAX; n];
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut next_comp = 0usize;

    // Explicit DFS machine: (node, iterator position over its succs).
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut call: Vec<(usize, Vec<usize>, usize)> = Vec::new();
        call.push((start, adj[start].iter().copied().collect(), 0));
        index[start] = next_index;
        low[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;
        while let Some((v, succs, pos)) = call.last_mut() {
            if *pos < succs.len() {
                let w = succs[*pos];
                *pos += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    let ws: Vec<usize> = adj[w].iter().copied().collect();
                    call.push((w, ws, 0));
                } else if on_stack[w] {
                    let lv = low[w].min(low[*v]);
                    low[*v] = lv;
                }
            } else {
                let v = *v;
                if low[v] == index[v] {
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp[w] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
                call.pop();
                if let Some((parent, _, _)) = call.last() {
                    let lv = low[*parent].min(low[v]);
                    low[*parent] = lv;
                }
            }
        }
    }

    preds
        .into_iter()
        .enumerate()
        .map(|(i, p)| (p, comp[i]))
        .collect()
}

/// Classify the program's recursion (see [`Recursion`]).
pub fn classify_recursion(program: &Program) -> Recursion {
    let comp = recursion_components(program);
    let mut any_recursive = false;
    for rule in &program.rules {
        let head_comp = comp[&rule.head.pred];
        let mut recursive_positives = 0usize;
        let mut self_loop = false;
        for lit in &rule.body {
            if let Some(&c) = comp.get(&lit.atom.pred) {
                if c == head_comp && lit.positive {
                    // Same SCC counts as mutual recursion only if the SCC
                    // is non-trivial or the literal is the head predicate
                    // itself (a direct self-loop).
                    if lit.atom.pred == rule.head.pred {
                        recursive_positives += 1;
                        self_loop = true;
                    } else if scc_is_nontrivial(&comp, head_comp, program) {
                        recursive_positives += 1;
                    }
                }
            }
        }
        let _ = self_loop;
        if recursive_positives >= 2 {
            return Recursion::NonLinear;
        }
        if recursive_positives == 1 {
            any_recursive = true;
        }
    }
    if any_recursive {
        Recursion::Linear
    } else {
        Recursion::None
    }
}

/// Whether the SCC `id` contains more than one predicate (used to decide
/// if same-component non-head literals witness mutual recursion).
fn scc_is_nontrivial(comp: &BTreeMap<RelName, usize>, id: usize, _program: &Program) -> bool {
    comp.values().filter(|&&c| c == id).count() > 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Atom, DlTerm, Literal, Rule};

    fn v(s: &str) -> DlTerm {
        DlTerm::var(s)
    }

    /// path(x,y) :- edge(x,y).  path(x,z) :- path(x,y), edge(y,z).
    fn tc_program() -> Program {
        let mut p = Program::new();
        p.push(Rule::new(
            Atom::new("path", [v("x"), v("y")]),
            vec![Literal::pos(Atom::new("edge", [v("x"), v("y")]))],
        ));
        p.push(Rule::new(
            Atom::new("path", [v("x"), v("z")]),
            vec![
                Literal::pos(Atom::new("path", [v("x"), v("y")])),
                Literal::pos(Atom::new("edge", [v("y"), v("z")])),
            ],
        ));
        p
    }

    #[test]
    fn tc_is_single_stratum_linear() {
        let p = tc_program();
        let s = stratify(&p).unwrap();
        assert_eq!(s.depth(), 1);
        assert_eq!(classify_recursion(&p), Recursion::Linear);
    }

    #[test]
    fn doubling_tc_is_nonlinear() {
        // path(x,z) :- path(x,y), path(y,z).
        let mut p = tc_program();
        p.push(Rule::new(
            Atom::new("path", [v("x"), v("z")]),
            vec![
                Literal::pos(Atom::new("path", [v("x"), v("y")])),
                Literal::pos(Atom::new("path", [v("y"), v("z")])),
            ],
        ));
        assert_eq!(classify_recursion(&p), Recursion::NonLinear);
    }

    #[test]
    fn negation_pushes_to_higher_stratum() {
        // unreach(x,y) :- $adom-style guards replaced by node(_).
        let mut p = tc_program();
        p.push(Rule::new(
            Atom::new("unreach", [v("x"), v("y")]),
            vec![
                Literal::pos(Atom::new("node", [v("x")])),
                Literal::pos(Atom::new("node", [v("y")])),
                Literal::neg(Atom::new("path", [v("x"), v("y")])),
            ],
        ));
        let s = stratify(&p).unwrap();
        assert_eq!(s.depth(), 2);
        assert_eq!(s.stratum[&RelName::new("path")], 0);
        assert_eq!(s.stratum[&RelName::new("unreach")], 1);
    }

    #[test]
    fn negative_cycle_rejected() {
        // p(x) :- node(x), !q(x).   q(x) :- node(x), !p(x).
        let mut p = Program::new();
        p.push(Rule::new(
            Atom::new("p", [v("x")]),
            vec![
                Literal::pos(Atom::new("node", [v("x")])),
                Literal::neg(Atom::new("q", [v("x")])),
            ],
        ));
        p.push(Rule::new(
            Atom::new("q", [v("x")]),
            vec![
                Literal::pos(Atom::new("node", [v("x")])),
                Literal::neg(Atom::new("p", [v("x")])),
            ],
        ));
        assert!(matches!(
            stratify(&p),
            Err(ProgramError::NotStratifiable { .. })
        ));
    }

    #[test]
    fn mutual_recursion_shares_component() {
        // even(x) :- zero(x).  even(y) :- succ(x,y), odd(x).
        // odd(y) :- succ(x,y), even(x).
        let mut p = Program::new();
        p.push(Rule::new(
            Atom::new("even", [v("x")]),
            vec![Literal::pos(Atom::new("zero", [v("x")]))],
        ));
        p.push(Rule::new(
            Atom::new("even", [v("y")]),
            vec![
                Literal::pos(Atom::new("succ", [v("x"), v("y")])),
                Literal::pos(Atom::new("odd", [v("x")])),
            ],
        ));
        p.push(Rule::new(
            Atom::new("odd", [v("y")]),
            vec![
                Literal::pos(Atom::new("succ", [v("x"), v("y")])),
                Literal::pos(Atom::new("even", [v("x")])),
            ],
        ));
        let comp = recursion_components(&p);
        assert_eq!(comp[&RelName::new("even")], comp[&RelName::new("odd")]);
        assert_eq!(classify_recursion(&p), Recursion::Linear);
    }

    #[test]
    fn nonrecursive_program_classified_none() {
        let mut p = Program::new();
        p.push(Rule::new(
            Atom::new("two_step", [v("x"), v("z")]),
            vec![
                Literal::pos(Atom::new("edge", [v("x"), v("y")])),
                Literal::pos(Atom::new("edge", [v("y"), v("z")])),
            ],
        ));
        assert_eq!(classify_recursion(&p), Recursion::None);
        assert_eq!(stratify(&p).unwrap().depth(), 1);
    }
}
