//! The "increasing values on edges" workload — Examples 5.1/5.3 and
//! Figure 5 (experiment E5).
//!
//! The query "pairs of accounts connected by a path of transfers with
//! strictly increasing amounts" is inexpressible in the pattern-matching
//! layer alone, but `PGQext` expresses it by *constructing a new graph*
//! whose nodes are account copies `(acct, ℓ)` — one per incoming amount
//! `ℓ`, plus a base copy `(acct, 0)` — and whose edges connect
//! `(a, ℓ) → (a′, j)` exactly when a transfer `a → a′` of amount `j > ℓ`
//! exists. Reachability on the constructed graph *is* the query.
//!
//! Three independent implementations are compared:
//! * [`increasing_pairs_query`] — the `PGQext` query built exactly as in
//!   Example 5.3 (composite identifiers, dynamic view);
//! * `increasing_pairs_via_tc` (in the E5 experiment) — the `FO[TC2]` formula routed through
//!   the Theorem 6.2 translation;
//! * [`increasing_pairs_baseline`] — a direct dynamic program (ground
//!   truth).
//!
//! The order comparison `j > ℓ` uses the ordered-domain selection
//! extension `σ_<` (Remark 2.1: structures are ordered; see DESIGN.md
//! note 3), or equivalently a materialized order relation `Lt` for the
//! FO route.

use pgq_core::{builders, Query};
use pgq_logic::{Formula, Term};
use pgq_relational::{CmpOp, Database, Operand, Relation, RowCondition};
use pgq_value::{Tuple, Value, Var};
use std::collections::{BTreeMap, BTreeSet};

/// Base schema for this workload:
/// `Acct(a)` and `Xfer(src, tgt, amount)` with integer amounts ≥ 1.
/// Also materializes `Lt(x, y)` — the strict order on the active
/// domain — for the FO\[TC\] route (ordered structures, Remark 2.1).
pub fn ledger_db(accounts: &[i64], transfers: &[(i64, i64, i64)]) -> Database {
    let mut db = Database::new();
    let mut acct = Relation::empty(1);
    let mut xfer = Relation::empty(3);
    for a in accounts {
        acct.insert(Tuple::unary(*a)).unwrap();
    }
    for (s, t, amt) in transfers {
        assert!(*amt >= 1, "amounts must be ≥ 1 (0 is the base copy)");
        xfer.insert(Tuple::new(vec![
            Value::int(*s),
            Value::int(*t),
            Value::int(*amt),
        ]))
        .unwrap();
    }
    db.add_relation("Acct", acct);
    db.add_relation("Xfer", xfer);
    // Materialized order over the active domain (plus 0, the base-copy
    // tag), so FO formulas can compare amounts.
    let mut dom: BTreeSet<Value> = db.active_domain();
    dom.insert(Value::int(0));
    let mut lt = Relation::empty(2);
    for a in &dom {
        for b in &dom {
            if a < b {
                lt.insert(Tuple::new(vec![a.clone(), b.clone()])).unwrap();
            }
        }
    }
    db.add_relation("Lt", lt);
    // Zero must be in the active domain for the base copies.
    let mut zero = Relation::empty(1);
    zero.insert(Tuple::unary(0i64)).unwrap();
    db.add_relation("Zero", zero);
    db
}

/// The Example 5.3 construction as a `PGQ2` query (identifier arity 2:
/// `(account, incoming-amount)`).
///
/// View subqueries (all plain RA over the base schema):
/// * nodes `N′ := (Acct × {0}) ∪ π_{tgt,amt}(Xfer)`;
/// * edges `E′ := {(a, ℓ, a′, j) | Xfer(a, a′, j), ℓ ∈ amounts(a), ℓ < j}`
///   — identifier arity 4, so this is the Remark 5.1 situation: we
///   follow Lemma 9.4's duplication trick and use arity-4 node ids
///   `(a, ℓ, a, ℓ)` instead, keeping one uniform arity.
///
/// Output: pairs `(x, y)` of account ids with a non-empty strictly
/// increasing transfer path.
pub fn increasing_pairs_query() -> Query {
    // Copies (a, ℓ): base (a, 0) and one per incoming transfer (t, j).
    let copies = Query::rel("Acct")
        .product(Query::rel("Zero"))
        .union(Query::rel("Xfer").project(vec![1, 2]));
    // Raw edge table: (a, ℓ, a2, j) with Xfer(a, a2, j) and ℓ < j, with
    // (a, ℓ) a copy.
    // copies × Xfer = (a, ℓ, s, t2, j); keep s = a and ℓ < j.
    let edges4 = copies
        .clone()
        .product(Query::rel("Xfer"))
        .select(RowCondition::and_all([
            RowCondition::col_eq(0, 2),
            RowCondition::Cmp(Operand::Col(1), CmpOp::Lt, Operand::Col(4)),
        ]))
        .project(vec![0, 1, 3, 4]); // (a, ℓ, t2, j)

    // Uniform arity 4: node ids are duplicated copies (a, ℓ, a, ℓ).
    let nodes4 = copies.clone().project(vec![0, 1, 0, 1]);
    // src((a,ℓ,a2,j)) = (a,ℓ,a,ℓ); tgt = (a2,j,a2,j).
    let src = edges4.clone().project(vec![0, 1, 2, 3, 0, 1, 0, 1]);
    let tgt = edges4.clone().project(vec![0, 1, 2, 3, 2, 3, 2, 3]);
    // Self-copies cannot collide with edges: an edge (a,ℓ,a2,j) equals a
    // node id (b,m,b,m) only if a=a2 ∧ ℓ=j, excluded by ℓ < j.
    let empty_l = Query::rel("Acct")
        .select(RowCondition::col_eq(0, 0).not())
        .project(vec![0; 5]);
    let empty_p = Query::rel("Acct")
        .select(RowCondition::col_eq(0, 0).not())
        .project(vec![0; 6]);
    let reach = Query::pattern_n(
        4,
        builders::reachability_plus_output(),
        [nodes4, edges4, src, tgt, empty_l, empty_p],
    );
    // reach: (a,ℓ,a,ℓ, b,m,b,m) — project the two account columns.
    reach.project(vec![0, 4])
}

/// The same query as an `FO[TC2]` formula
/// `∃ℓ m: TC_{(u,ℓu),(v,ℓv)}[step]((x, 0), (y, m)) ∧ step-from-x`,
/// written directly and routed through the Theorem 6.2 translation in
/// tests/benches. Free variables: `x`, `y`.
pub fn increasing_pairs_formula() -> Formula {
    let (u, lu, v, lv) = (Var::new("u"), Var::new("lu"), Var::new("v"), Var::new("lv"));
    // step((u, lu) → (v, lv)) := Xfer(u, v, lv) ∧ Lt(lu, lv)
    let step = Formula::atom(
        "Xfer",
        [
            Term::Var(u.clone()),
            Term::Var(v.clone()),
            Term::Var(lv.clone()),
        ],
    )
    .and(Formula::atom(
        "Lt",
        [Term::Var(lu.clone()), Term::Var(lv.clone())],
    ));
    // Non-empty increasing path from x to y:
    // ∃m: TC[step]((x, 0), (y, m)) ∧ (x,0) ≠ (y,m) — the TC is
    // reflexive, so exclude the trivial pair; a 1-step witness is
    // Xfer(x, y, m) itself, covered by TC.
    let tc = Formula::tc(
        vec![u, lu],
        vec![v, lv],
        step,
        vec![Term::var("x"), Term::constant(0)],
        vec![Term::var("y"), Term::var("m")],
    );
    let nontrivial = Formula::eq(Term::var("m"), Term::constant(0)).not();
    Formula::exists(
        ["m"],
        tc.and(nontrivial)
            .and(Formula::atom("Acct", ["x"]))
            .and(Formula::atom("Acct", ["y"])),
    )
}

/// Ground truth: all pairs `(x, y)` with a non-empty strictly increasing
/// transfer path, by dynamic programming over copies `(account, last
/// amount)`.
pub fn increasing_pairs_baseline(db: &Database) -> BTreeSet<(i64, i64)> {
    let xfer = db.get(&"Xfer".into()).expect("schema");
    let mut out_edges: BTreeMap<i64, Vec<(i64, i64)>> = BTreeMap::new();
    for row in xfer.iter() {
        let (s, t, a) = (
            row[0].as_int().unwrap(),
            row[1].as_int().unwrap(),
            row[2].as_int().unwrap(),
        );
        out_edges.entry(s).or_default().push((t, a));
    }
    let accts: Vec<i64> = db
        .get(&"Acct".into())
        .expect("schema")
        .iter()
        .map(|t| t[0].as_int().unwrap())
        .collect();
    let mut result = BTreeSet::new();
    for &start in &accts {
        // BFS over copies (node, last_amount).
        let mut seen: BTreeSet<(i64, i64)> = BTreeSet::new();
        let mut frontier: Vec<(i64, i64)> = vec![(start, 0)];
        while let Some((at, last)) = frontier.pop() {
            if let Some(nexts) = out_edges.get(&at) {
                for &(to, amt) in nexts {
                    if amt > last && seen.insert((to, amt)) {
                        result.insert((start, to));
                        frontier.push((to, amt));
                    }
                }
            }
        }
    }
    result
}

/// Size of the constructed graph `G′` (Figure 5's illustration):
/// `(|N′|, |E′|)` for a given base instance.
pub fn constructed_sizes(db: &Database) -> (usize, usize) {
    let q = increasing_pairs_query();
    // Evaluate the node and edge subqueries only.
    let copies = Query::rel("Acct")
        .product(Query::rel("Zero"))
        .union(Query::rel("Xfer").project(vec![1, 2]));
    let edges4 = copies
        .clone()
        .product(Query::rel("Xfer"))
        .select(RowCondition::and_all([
            RowCondition::col_eq(0, 2),
            RowCondition::Cmp(Operand::Col(1), CmpOp::Lt, Operand::Col(4)),
        ]))
        .project(vec![0, 1, 3, 4]);
    let n = pgq_core::eval(&copies, db).expect("valid").len();
    let e = pgq_core::eval(&edges4, db).expect("valid").len();
    let _ = q;
    (n, e)
}

/// A random ledger: `accounts` accounts, `transfers` random transfers
/// with amounts in `1..=max_amount`.
pub fn random_ledger(accounts: usize, transfers: usize, max_amount: i64, seed: u64) -> Database {
    use rand::{RngExt, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let accts: Vec<i64> = (0..accounts as i64).collect();
    let mut xfers = Vec::with_capacity(transfers);
    for _ in 0..transfers {
        let s = rng.random_range(0..accounts) as i64;
        let t = rng.random_range(0..accounts) as i64;
        let a = rng.random_range(1..=max_amount);
        xfers.push((s, t, a));
    }
    ledger_db(&accts, &xfers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgq_core::eval;
    use pgq_logic::eval_ordered;
    use pgq_translate::fo_to_pgq;
    use pgq_value::tuple;

    fn simple() -> Database {
        // 0 →(5)→ 1 →(7)→ 2, plus a decreasing distractor 1 →(3)→ 3.
        ledger_db(&[0, 1, 2, 3], &[(0, 1, 5), (1, 2, 7), (1, 3, 3)])
    }

    #[test]
    fn pgq2_query_matches_baseline_simple() {
        let db = simple();
        let rel = eval(&increasing_pairs_query(), &db).unwrap();
        let expected = increasing_pairs_baseline(&db);
        assert!(expected.contains(&(0, 2))); // 5 then 7 increases
        assert!(expected.contains(&(0, 1)));
        assert!(expected.contains(&(1, 3))); // single step always increases
        for (a, b) in &expected {
            assert!(rel.contains(&tuple![*a, *b]), "missing ({a},{b})");
        }
        assert_eq!(rel.len(), expected.len());
    }

    #[test]
    fn non_increasing_paths_excluded() {
        // 0 →(9)→ 1 →(2)→ 2: no increasing 2-path.
        let db = ledger_db(&[0, 1, 2], &[(0, 1, 9), (1, 2, 2)]);
        let rel = eval(&increasing_pairs_query(), &db).unwrap();
        assert!(!rel.contains(&tuple![0, 2]));
        assert!(rel.contains(&tuple![0, 1]));
        assert!(rel.contains(&tuple![1, 2]));
    }

    #[test]
    fn equal_amounts_do_not_increase() {
        let db = ledger_db(&[0, 1, 2], &[(0, 1, 4), (1, 2, 4)]);
        let rel = eval(&increasing_pairs_query(), &db).unwrap();
        assert!(!rel.contains(&tuple![0, 2]));
    }

    #[test]
    fn fo_tc2_route_agrees() {
        let db = simple();
        let phi = increasing_pairs_formula();
        let order = [Var::new("x"), Var::new("y")];
        let via_fo = eval_ordered(&phi, &order, &db).unwrap();
        let expected = increasing_pairs_baseline(&db);
        assert_eq!(via_fo.len(), expected.len());
        for (a, b) in &expected {
            assert!(via_fo.contains(&tuple![*a, *b]));
        }
        // And through the Theorem 6.2 translation.
        let translated = fo_to_pgq(&phi, &order, &db.schema()).unwrap();
        let via_pgq = eval(&translated.query, &db).unwrap();
        assert_eq!(via_pgq, via_fo);
        // TC over pairs: view arity 2·2 + 0 (Finding F1).
        assert_eq!(translated.max_view_arity, 4);
    }

    #[test]
    fn randomized_agreement() {
        for seed in 0..5u64 {
            let db = random_ledger(6, 10, 5, seed);
            let rel = eval(&increasing_pairs_query(), &db).unwrap();
            let expected = increasing_pairs_baseline(&db);
            assert_eq!(rel.len(), expected.len(), "seed {seed}");
            for (a, b) in &expected {
                assert!(rel.contains(&tuple![*a, *b]), "seed {seed} ({a},{b})");
            }
        }
    }

    #[test]
    fn constructed_sizes_report_blowup() {
        let db = simple();
        let (n, e) = constructed_sizes(&db);
        // Copies: 4 base + 3 incoming = 7; edges: per transfer, one per
        // smaller-amount copy of its source.
        assert_eq!(n, 7);
        assert!(e >= 3);
    }
}
