//! Bank-transfer workloads — the running example of the paper
//! (Examples 1.1, 2.1 and 5.1).

use pgq_relational::{Database, Relation};
use pgq_value::{tuple, Tuple, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The DDL of Example 1.1, ready to feed to `pgq_parser::Session`.
pub const TRANSFERS_DDL: &str = r"
    CREATE TABLE Account (iban);
    CREATE TABLE Transfer (t_id, src_iban, tgt_iban, ts, amount);
    CREATE PROPERTY GRAPH Transfers (
      NODES TABLE Account KEY (iban) LABEL Account,
      EDGES TABLE Transfer KEY (t_id)
        SOURCE KEY src_iban REFERENCES Account
        TARGET KEY tgt_iban REFERENCES Account
        LABELS Transfer PROPERTIES (ts, amount));
";

/// The query of Example 2.1.
pub const TRANSFERS_QUERY: &str = r"
    SELECT * FROM GRAPH_TABLE ( Transfers
      MATCH ( x ) -[ t : Transfer ]->+ ( y )
      WHERE t.amount > 100
      RETURN ( x.iban , y.iban ) );
";

fn iban(i: usize) -> String {
    format!("IL{i:04}")
}

/// A random transfers database in the Example 1.1 base schema:
/// `Account(iban)` and `Transfer(t_id, src_iban, tgt_iban, ts, amount)`.
/// Amounts are drawn from `1..=max_amount`.
pub fn random_transfers_db(
    accounts: usize,
    transfers: usize,
    max_amount: i64,
    seed: u64,
) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    db.add_relation("Account", Relation::empty(1));
    db.add_relation("Transfer", Relation::empty(5));
    for i in 0..accounts {
        db.insert("Account", Tuple::unary(iban(i))).unwrap();
    }
    for t in 0..transfers {
        let src = rng.random_range(0..accounts);
        let tgt = rng.random_range(0..accounts);
        let ts = rng.random_range(0i64..1_000_000);
        let amount = rng.random_range(1..=max_amount);
        db.insert(
            "Transfer",
            tuple![t as i64, iban(src), iban(tgt), ts, amount],
        )
        .unwrap();
    }
    db
}

/// A deterministic chain of `len` transfers
/// `IL0000 → IL0001 → … ` with the given amounts (cycled).
pub fn transfer_chain_db(len: usize, amounts: &[i64]) -> Database {
    let mut db = Database::new();
    db.add_relation("Account", Relation::empty(1));
    db.add_relation("Transfer", Relation::empty(5));
    for i in 0..=len {
        db.insert("Account", Tuple::unary(iban(i))).unwrap();
    }
    for (t, window) in (0..len).enumerate() {
        let amount = amounts[t % amounts.len().max(1)];
        db.insert(
            "Transfer",
            tuple![t as i64, iban(window), iban(window + 1), t as i64, amount],
        )
        .unwrap();
    }
    db
}

/// The same data in the *canonical six relations* of Definition 3.1
/// (unary identifiers: IBANs for nodes, transfer ids for edges), for
/// crates that bypass the parser. Returns a database holding relations
/// `N, E, S, T, L, P`.
pub fn canonical_transfers_db(
    accounts: usize,
    transfers: usize,
    max_amount: i64,
    seed: u64,
) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    let mut n = Relation::empty(1);
    let mut e = Relation::empty(1);
    let mut s = Relation::empty(2);
    let mut t_rel = Relation::empty(2);
    let mut l = Relation::empty(2);
    let mut p = Relation::empty(3);
    for i in 0..accounts {
        let id = Tuple::unary(iban(i));
        l.insert(id.concat(&Tuple::unary("Account"))).unwrap();
        n.insert(id).unwrap();
    }
    for t in 0..transfers {
        let id = Tuple::unary(Value::int(1_000_000 + t as i64));
        let src = Tuple::unary(iban(rng.random_range(0..accounts)));
        let tgt = Tuple::unary(iban(rng.random_range(0..accounts)));
        let amount = rng.random_range(1..=max_amount);
        s.insert(id.concat(&src)).unwrap();
        t_rel.insert(id.concat(&tgt)).unwrap();
        l.insert(id.concat(&Tuple::unary("Transfer"))).unwrap();
        p.insert(id.concat(&Tuple::new(vec![Value::str("amount"), Value::int(amount)])))
            .unwrap();
        e.insert(id).unwrap();
    }
    db.add_relation("N", n);
    db.add_relation("E", e);
    db.add_relation("S", s);
    db.add_relation("T", t_rel);
    db.add_relation("L", l);
    db.add_relation("P", p);
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgq_parser::{Outcome, Session};

    #[test]
    fn ddl_and_query_run_end_to_end() {
        let db = random_transfers_db(20, 40, 1000, 7);
        let mut session = Session::new();
        session.run_script(TRANSFERS_DDL, &db).unwrap();
        let outcomes = session.run_script(TRANSFERS_QUERY, &db).unwrap();
        let Outcome::Rows(rows) = &outcomes[0] else {
            panic!()
        };
        assert_eq!(rows.arity(), 2);
    }

    #[test]
    fn chain_reaches_transitively() {
        let db = transfer_chain_db(5, &[500]);
        let mut session = Session::new();
        session.run_script(TRANSFERS_DDL, &db).unwrap();
        let outcomes = session.run_script(TRANSFERS_QUERY, &db).unwrap();
        let Outcome::Rows(rows) = &outcomes[0] else {
            panic!()
        };
        // 5-chain: 15 ordered pairs.
        assert_eq!(rows.len(), 15);
        assert!(rows.contains(&tuple!["IL0000", "IL0005"]));
    }

    #[test]
    fn canonical_db_forms_valid_view() {
        use pgq_core::{builders, eval, Query};
        let db = canonical_transfers_db(10, 25, 500, 11);
        let q = Query::pattern_ro(
            builders::reachability_output(),
            ["N", "E", "S", "T", "L", "P"],
        );
        let rel = eval(&q, &db).unwrap();
        assert!(rel.len() >= 10); // at least the reflexive pairs
    }

    #[test]
    fn determinism_per_seed() {
        assert_eq!(
            random_transfers_db(5, 9, 100, 42),
            random_transfers_db(5, 9, 100, 42)
        );
        assert_ne!(
            random_transfers_db(5, 9, 100, 42),
            random_transfers_db(5, 9, 100, 43)
        );
    }
}
