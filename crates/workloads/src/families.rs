//! Parameterized instance families: paths, cycles, grids, layered DAGs,
//! plus walk-length spectra (experiments E4, E9, E10).

use pgq_relational::{Database, Relation};
use pgq_value::Tuple;
use std::collections::BTreeMap;

/// Canonical six-relation database (`N,E,S,T,L,P`) for a directed path
/// `0 → 1 → … → n`.
pub fn path_db(n: usize) -> Database {
    graph_db(
        (0..=n as i64).collect(),
        (0..n).map(|i| (i as i64, i as i64 + 1)).collect(),
    )
}

/// Canonical database for a directed cycle of length `n` (nodes
/// `0..n`).
pub fn cycle_db(n: usize) -> Database {
    assert!(n > 0);
    graph_db(
        (0..n as i64).collect(),
        (0..n).map(|i| (i as i64, ((i + 1) % n) as i64)).collect(),
    )
}

/// Canonical database for two disjoint cycles of lengths `p` and `q`
/// (nodes `0..p` and `p..p+q`), bridged by an edge from node 0 to node
/// `p` when `bridge` is set. Used by the E4 spectra experiments.
pub fn two_cycles_db(p: usize, q: usize, bridge: bool) -> Database {
    assert!(p > 0 && q > 0);
    let mut edges: Vec<(i64, i64)> = (0..p).map(|i| (i as i64, ((i + 1) % p) as i64)).collect();
    edges.extend((0..q).map(|i| (p as i64 + i as i64, p as i64 + ((i + 1) % q) as i64)));
    if bridge {
        edges.push((0, p as i64));
    }
    graph_db((0..(p + q) as i64).collect(), edges)
}

/// Canonical database for a `w × h` grid with edges right and down —
/// the layered structure used by the scaling experiment E10.
pub fn grid_db(w: usize, h: usize) -> Database {
    let id = |x: usize, y: usize| (y * w + x) as i64;
    let mut edges = Vec::new();
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                edges.push((id(x, y), id(x + 1, y)));
            }
            if y + 1 < h {
                edges.push((id(x, y), id(x, y + 1)));
            }
        }
    }
    graph_db((0..(w * h) as i64).collect(), edges)
}

/// Assembles the canonical six relations from explicit node ids and
/// edges (edge ids are `10_000 + index`, disjoint from node ids).
pub fn graph_db(nodes: Vec<i64>, edges: Vec<(i64, i64)>) -> Database {
    let mut db = Database::new();
    let mut n = Relation::empty(1);
    let mut e = Relation::empty(1);
    let mut s = Relation::empty(2);
    let mut t = Relation::empty(2);
    for v in &nodes {
        n.insert(Tuple::unary(*v)).unwrap();
    }
    for (i, (from, to)) in edges.iter().enumerate() {
        let eid = Tuple::unary(10_000 + i as i64);
        s.insert(eid.concat(&Tuple::unary(*from))).unwrap();
        t.insert(eid.concat(&Tuple::unary(*to))).unwrap();
        e.insert(eid).unwrap();
    }
    db.add_relation("N", n);
    db.add_relation("E", e);
    db.add_relation("S", s);
    db.add_relation("T", t);
    db.add_relation("L", Relation::empty(2));
    db.add_relation("P", Relation::empty(3));
    db
}

/// The *walk-length spectrum* from `s` to `t`: `bits[ℓ] = true` iff a
/// walk of exactly `ℓ` edges connects them, for `ℓ < horizon`. This is
/// the set the Theorem 4.2 argument proves semilinear for `PGQrw`-
/// definable length detections (experiment E4 certifies the periodicity
/// of measured spectra with `pgq_logic::detect_period`).
pub fn walk_length_spectrum(db: &Database, s: i64, t: i64, horizon: usize) -> Vec<bool> {
    // Successor map from the canonical relations: join S and T on the
    // edge id.
    let src = db.get(&"S".into()).expect("canonical schema");
    let tgt = db.get(&"T".into()).expect("canonical schema");
    let mut succ: BTreeMap<i64, Vec<i64>> = BTreeMap::new();
    let mut tgt_map: BTreeMap<Tuple, i64> = BTreeMap::new();
    for row in tgt.iter() {
        let (e, n) = row.split_at(1);
        tgt_map.insert(e, n[0].as_int().expect("int ids"));
    }
    for row in src.iter() {
        let (e, n) = row.split_at(1);
        if let Some(&to) = tgt_map.get(&e) {
            succ.entry(n[0].as_int().expect("int ids"))
                .or_default()
                .push(to);
        }
    }
    // DP over lengths.
    let mut bits = vec![false; horizon];
    let mut reachable: std::collections::BTreeSet<i64> = [s].into_iter().collect();
    if horizon > 0 {
        bits[0] = s == t;
    }
    for slot in bits.iter_mut().skip(1) {
        let mut next = std::collections::BTreeSet::new();
        for u in &reachable {
            if let Some(vs) = succ.get(u) {
                next.extend(vs.iter().copied());
            }
        }
        *slot = next.contains(&t);
        reachable = next;
        if reachable.is_empty() {
            break;
        }
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgq_core::{builders, eval, Query};
    use pgq_logic::detect_period;

    #[test]
    fn path_and_cycle_shapes() {
        let p = path_db(5);
        assert_eq!(p.get(&"N".into()).unwrap().len(), 6);
        assert_eq!(p.get(&"E".into()).unwrap().len(), 5);
        let c = cycle_db(4);
        assert_eq!(c.get(&"E".into()).unwrap().len(), 4);
        // Valid canonical views: reachability evaluates.
        let q = Query::pattern_ro(
            builders::reachability_output(),
            ["N", "E", "S", "T", "L", "P"],
        );
        assert_eq!(eval(&q, &c).unwrap().len(), 16); // complete on a cycle
    }

    #[test]
    fn grid_counts() {
        let g = grid_db(3, 2);
        assert_eq!(g.get(&"N".into()).unwrap().len(), 6);
        // Horizontal: 2 per row × 2 rows; vertical: 3.
        assert_eq!(g.get(&"E".into()).unwrap().len(), 7);
    }

    #[test]
    fn spectrum_on_a_path_is_a_singleton() {
        let db = path_db(6);
        let bits = walk_length_spectrum(&db, 0, 4, 12);
        let expected: Vec<bool> = (0..12).map(|l| l == 4).collect();
        assert_eq!(bits, expected);
    }

    #[test]
    fn spectrum_on_a_cycle_is_periodic() {
        let db = cycle_db(3);
        let bits = walk_length_spectrum(&db, 0, 0, 64);
        // Multiples of 3.
        assert!(bits[0] && bits[3] && bits[63]);
        assert!(!bits[1] && !bits[2] && !bits[4]);
        let (threshold, period) = detect_period(&bits, 16, 8).unwrap();
        assert_eq!(period, 3);
        assert_eq!(threshold, 0);
    }

    #[test]
    fn spectrum_of_two_bridged_cycles_mixes_periods() {
        // From node 0 (on the p-cycle) to node p (on the q-cycle):
        // lengths a·p + 1 + b·q — an ultimately periodic set with period
        // dividing lcm(p, q) = 6.
        let db = two_cycles_db(2, 3, true);
        let bits = walk_length_spectrum(&db, 0, 2, 96);
        assert!(bits[1]); // direct bridge
        let (_, period) = detect_period(&bits, 48, 12).unwrap();
        assert!(6 % period == 0 || period % 6 == 0 || period <= 6);
    }

    #[test]
    fn spectrum_handles_unreachable() {
        let db = two_cycles_db(2, 3, false);
        let bits = walk_length_spectrum(&db, 0, 2, 32);
        assert!(bits.iter().all(|&b| !b));
    }
}
