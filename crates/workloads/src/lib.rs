//! # pgq-workloads
//!
//! Workload and instance-family generators for the reproduction's
//! experiments (system S10; see DESIGN.md):
//!
//! * [`transfers`] — the paper's running bank-transfer example
//!   (Examples 1.1/2.1), random and deterministic;
//! * [`alternating`] — the Theorem 4.1 red/blue separation family and
//!   its competing queries (E3);
//! * [`families`] — paths, cycles, grids, and walk-length spectra for
//!   the Theorem 4.2 semilinearity experiment (E4) and scaling runs
//!   (E10);
//! * [`increasing`] — the Example 5.3 "increasing values on edges"
//!   workload with three independent implementations (E5);
//! * [`random`] — seeded random databases and navigational patterns for
//!   benches;
//! * [`scale`] — million-scale bulk-layout generators (power-law
//!   preferential attachment and LDBC-style transfers) feeding
//!   `Store::bulk_load` and the PR 9 scaling curves (E18).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alternating;
pub mod families;
pub mod increasing;
pub mod random;
pub mod scale;
pub mod transfers;

#[cfg(test)]
mod smoke {
    /// Deterministic end-to-end smoke across the stack: generate the
    /// Theorem 4.1 alternating-path witness, evaluate the PGQrw query
    /// against it through `pgq-core`, and cross-check the direct graph
    /// search — on both a positive and a broken instance.
    #[test]
    fn alternating_workload_evaluates_end_to_end() {
        let db = crate::alternating::alternating_path_db(6, None);
        assert!(crate::alternating::has_alternating_path(&db, 3));
        let ans = pgq_core::eval(&crate::alternating::rw_alternating_query(3), &db).unwrap();
        assert!(ans.as_bool(), "PGQrw finds the alternating path");

        let broken = crate::alternating::alternating_path_db(6, Some(2));
        assert!(!crate::alternating::has_alternating_path(&broken, 6));
        let none = pgq_core::eval(&crate::alternating::rw_alternating_query(6), &broken).unwrap();
        assert!(!none.as_bool(), "PGQrw rejects the broken instance");
    }

    /// Workload generators are seed-deterministic: the same seed yields
    /// the same database, different seeds differ.
    #[test]
    fn random_transfers_are_seed_deterministic() {
        let a = crate::transfers::random_transfers_db(20, 40, 500, 11);
        let b = crate::transfers::random_transfers_db(20, 40, 500, 11);
        let c = crate::transfers::random_transfers_db(20, 40, 500, 12);
        let dump = |db: &pgq_relational::Database| {
            db.iter()
                .map(|(n, r)| (n.clone(), r.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(dump(&a), dump(&b));
        assert_ne!(dump(&a), dump(&c));
    }
}
