//! # pgq-workloads
//!
//! Workload and instance-family generators for the reproduction's
//! experiments (system S10; see DESIGN.md):
//!
//! * [`transfers`] — the paper's running bank-transfer example
//!   (Examples 1.1/2.1), random and deterministic;
//! * [`alternating`] — the Theorem 4.1 red/blue separation family and
//!   its competing queries (E3);
//! * [`families`] — paths, cycles, grids, and walk-length spectra for
//!   the Theorem 4.2 semilinearity experiment (E4) and scaling runs
//!   (E10);
//! * [`increasing`] — the Example 5.3 "increasing values on edges"
//!   workload with three independent implementations (E5);
//! * [`random`] — seeded random databases and navigational patterns for
//!   benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alternating;
pub mod families;
pub mod increasing;
pub mod random;
pub mod transfers;
