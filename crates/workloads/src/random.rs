//! Seeded random generators (non-proptest) for benches and examples:
//! databases over `{V/1, E/2}`, canonical graph databases, and random
//! navigational patterns.

use pgq_pattern::Pattern;
use pgq_relational::{Database, Relation};
use pgq_value::{tuple, Tuple};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A random database over `{V/1, E/2}` with `n` vertices and `m` edges
/// (the schema of the logic round-trip experiments E6/E7).
pub fn ve_db(n: usize, m: usize, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    db.add_relation("V", Relation::empty(1));
    db.add_relation("E", Relation::empty(2));
    for i in 0..n {
        db.insert("V", tuple![i as i64]).unwrap();
    }
    for _ in 0..m {
        let s = rng.random_range(0..n) as i64;
        let t = rng.random_range(0..n) as i64;
        db.insert("E", tuple![s, t]).unwrap();
    }
    db
}

/// A random canonical graph database (`N,E,S,T,L,P`) with `n` nodes and
/// `m` edges; every edge gets label `T` and an integer weight property
/// `w` in `0..wmax`.
pub fn canonical_graph_db(n: usize, m: usize, wmax: i64, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    let mut nodes = Relation::empty(1);
    let mut edges = Relation::empty(1);
    let mut src = Relation::empty(2);
    let mut tgt = Relation::empty(2);
    let mut labels = Relation::empty(2);
    let mut props = Relation::empty(3);
    for i in 0..n {
        nodes.insert(Tuple::unary(i as i64)).unwrap();
    }
    for j in 0..m {
        let id = Tuple::unary(1_000_000 + j as i64);
        let s = Tuple::unary(rng.random_range(0..n) as i64);
        let t = Tuple::unary(rng.random_range(0..n) as i64);
        src.insert(id.concat(&s)).unwrap();
        tgt.insert(id.concat(&t)).unwrap();
        labels.insert(id.concat(&Tuple::unary("T"))).unwrap();
        props
            .insert(id.concat(&tuple!["w", rng.random_range(0..wmax)]))
            .unwrap();
        edges.insert(id).unwrap();
    }
    db.add_relation("N", nodes);
    db.add_relation("E", edges);
    db.add_relation("S", src);
    db.add_relation("T", tgt);
    db.add_relation("L", labels);
    db.add_relation("P", props);
    db
}

/// A random navigational pattern of roughly `len` atoms: a spine of
/// forward/backward edges with occasional bounded or unbounded
/// repetitions. Always NFA-compilable.
pub fn random_spine_pattern(len: usize, seed: u64) -> Pattern {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut parts: Vec<Pattern> = vec![Pattern::node("x")];
    for _ in 0..len {
        let edge = if rng.random_bool(0.8) {
            Pattern::any_edge()
        } else {
            Pattern::any_edge_back()
        };
        let wrapped = match rng.random_range(0..5u8) {
            0 => edge.star(),
            1 => edge.plus(),
            2 => edge.repeat(1, rng.random_range(1..4)),
            _ => edge,
        };
        parts.push(wrapped);
    }
    parts.push(Pattern::node("y"));
    Pattern::seq(parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgq_core::{builders, eval, Query};

    #[test]
    fn ve_db_shape() {
        let db = ve_db(10, 20, 3);
        assert_eq!(db.get(&"V".into()).unwrap().len(), 10);
        assert!(db.get(&"E".into()).unwrap().len() <= 20);
        assert_eq!(ve_db(10, 20, 3), ve_db(10, 20, 3));
    }

    #[test]
    fn canonical_graph_is_valid_view() {
        let db = canonical_graph_db(12, 30, 10, 4);
        let q = Query::pattern_ro(
            builders::labeled_reachability_output("T"),
            ["N", "E", "S", "T", "L", "P"],
        );
        assert!(eval(&q, &db).is_ok());
    }

    #[test]
    fn spine_patterns_compile_to_nfa() {
        for seed in 0..10 {
            let p = random_spine_pattern(5, seed);
            assert!(pgq_pattern::Nfa::compile(&p).is_ok(), "seed {seed}");
            assert!(p.validate().is_ok());
        }
    }
}
