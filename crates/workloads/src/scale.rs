//! Million-scale seeded graph generators in bulk layout (PR 9, E18).
//!
//! Both generators emit a [`BulkGraph`] — flat identifier vectors plus
//! index-typed edges — so `Store::bulk_load` can go straight to the
//! store's physical layout without materializing a row set first (the
//! register-route comparator is one [`BulkGraph::to_database`] call
//! away). Everything is seed-deterministic: the same `(size, seed)`
//! yields byte-identical output.
//!
//! * [`power_law_graph`] — preferential attachment (Barabási–Albert
//!   flavored): each new node attaches `edges_per_node` out-edges,
//!   picking targets from an endpoint pool so high-degree nodes keep
//!   attracting more — the heavy-tailed degree shape real graph
//!   workloads stress CSR construction with;
//! * [`ldbc_transfers`] — an LDBC-FinBench-style transfer network:
//!   IBAN-identified accounts (with an `isBlocked` property) and
//!   `Transfer`-labeled edges carrying an `amount` property, the
//!   million-row version of the paper's running example.

use pgq_store::BulkGraph;
use pgq_value::Value;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A preferential-attachment graph: `nodes` nodes named `u0..`, and
/// `edges_per_node` out-edges per node (node 0 seeds the pool), each
/// labeled `Knows`. Targets are drawn from an endpoint pool — every
/// attached endpoint re-enters the pool, so attachment probability
/// tracks degree and the degree distribution comes out heavy-tailed —
/// with a 25% uniform-random escape so late nodes stay reachable.
pub fn power_law_graph(nodes: usize, edges_per_node: usize, seed: u64) -> BulkGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = BulkGraph::new();
    for i in 0..nodes {
        g.add_node(Value::str(format!("u{i}")));
    }
    let mut pool: Vec<u32> = Vec::with_capacity(2 * nodes.saturating_sub(1) * edges_per_node);
    let mut eid: i64 = 0;
    for v in 1..nodes {
        for _ in 0..edges_per_node {
            let t = if pool.is_empty() || rng.random_bool(0.25) {
                rng.random_range(0..v) as u32
            } else {
                pool[rng.random_range(0..pool.len())]
            };
            let e = g.add_edge(Value::int(eid), v as u32, t);
            g.labels.push((e, Value::str("Knows")));
            pool.push(v as u32);
            pool.push(t);
            eid += 1;
        }
    }
    g
}

/// An LDBC-style transfer network: `accounts` nodes identified by
/// 10-digit IBAN strings, each carrying an `isBlocked` property (every
/// 97th account is blocked), and `transfers_per_account` outgoing
/// `Transfer` edges per account with a uniform `amount` in `1..10_000`.
pub fn ldbc_transfers(accounts: usize, transfers_per_account: usize, seed: u64) -> BulkGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = BulkGraph::new();
    for i in 0..accounts {
        let a = g.add_node(Value::str(format!("IBAN{i:010}")));
        g.node_props
            .push((a, Value::str("isBlocked"), Value::bool(i % 97 == 0)));
    }
    let mut eid: i64 = 0;
    for s in 0..accounts {
        for _ in 0..transfers_per_account {
            let t = rng.random_range(0..accounts) as u32;
            let e = g.add_edge(Value::int(eid), s as u32, t);
            g.labels.push((e, Value::str("Transfer")));
            g.edge_props.push((
                e,
                Value::str("amount"),
                Value::int(rng.random_range(1..10_000i64)),
            ));
            eid += 1;
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_seed_deterministic() {
        let a = power_law_graph(200, 3, 7);
        let b = power_law_graph(200, 3, 7);
        assert_eq!(a.src, b.src);
        assert_eq!(a.tgt, b.tgt);
        assert_ne!(power_law_graph(200, 3, 8).tgt, a.tgt);

        let x = ldbc_transfers(100, 4, 7);
        let y = ldbc_transfers(100, 4, 7);
        assert_eq!(x.tgt, y.tgt);
        assert_eq!(x.edge_props, y.edge_props);
    }

    #[test]
    fn shapes_match_the_advertised_sizes() {
        let g = power_law_graph(100, 5, 1);
        assert_eq!(g.nodes.len(), 100);
        assert_eq!(g.edges.len(), 99 * 5);
        assert_eq!(g.labels.len(), g.edges.len());
        assert!(g.src.iter().chain(&g.tgt).all(|&i| i < 100));

        let t = ldbc_transfers(50, 2, 1);
        assert_eq!(t.nodes.len(), 50);
        assert_eq!(t.edges.len(), 100);
        assert_eq!(t.node_props.len(), 50);
        assert_eq!(t.edge_props.len(), 100);
    }

    #[test]
    fn preferential_attachment_skews_degrees() {
        // The endpoint pool should concentrate in-degree: the busiest
        // target must collect several times the uniform expectation.
        let g = power_law_graph(500, 4, 3);
        let mut indeg = vec![0usize; 500];
        for &t in &g.tgt {
            indeg[t as usize] += 1;
        }
        let max = indeg.iter().max().copied().unwrap_or(0);
        let uniform = g.edges.len() / 500;
        assert!(max >= 4 * uniform, "max {max} vs uniform {uniform}");
    }
}
