//! The Theorem 4.1 witness: alternating red/blue paths (experiment E3).
//!
//! The appendix instance `D_G` has schema `RedNodes/1, BlueNodes/1,
//! Edges/1, Source/2, Target/2`. We generate the family of instances
//! plus the two queries the proof compares:
//!
//! * [`rw_alternating_query`] — the `PGQrw` query that first
//!   materializes the union view `(RedNodes ∪ BlueNodes, Edges, Source,
//!   Target, labels, ∅)` and then runs a reachability pattern over
//!   color-alternating steps;
//! * [`ro_unrolled_query`] — the radius-`r` `PGQro`/RA surrogate: an
//!   unrolled pattern that can only see paths of length ≤ `r`
//!   (Gaifman locality made concrete);
//! * [`enumerate_ro_views`] — the mechanical content of Proposition 9.2:
//!   *no* assignment of the base relations to `(R1, …, R6)` forms a valid
//!   property graph view on these instances, so `PGQro` pattern calls are
//!   all undefined and `PGQro` collapses to RA here.

use pgq_core::Query;
use pgq_graph::{pg_view, ViewRelations};
use pgq_pattern::{Condition, OutputPattern, Pattern};
use pgq_relational::{Database, Relation};
use pgq_value::{Tuple, Value};

/// An instance of the `D_G` schema: a red/blue-alternating path of the
/// given length (edges), starting red. With `break_at = Some(i)`, edge
/// `i` connects two nodes of the *same* color instead, so no alternating
/// path crosses position `i` (used to make the Boolean property
/// non-trivial).
pub fn alternating_path_db(length: usize, break_at: Option<usize>) -> Database {
    let mut db = Database::new();
    let mut red = Relation::empty(1);
    let mut blue = Relation::empty(1);
    let mut edges = Relation::empty(1);
    let mut source = Relation::empty(2);
    let mut target = Relation::empty(2);
    // Node i is red iff i is even — unless a break duplicates a color:
    // we realize the break by giving node break_at+1 the same color as
    // node break_at.
    let color_of = |i: usize| -> bool {
        // true = red. After the break, node b+1 copies node b's color and
        // alternation resumes — which works out to "red iff odd" for
        // every b.
        match break_at {
            Some(b) if i > b => i % 2 == 1,
            _ => i.is_multiple_of(2),
        }
    };
    for i in 0..=length {
        let id = Tuple::unary(Value::int(i as i64));
        if color_of(i) {
            red.insert(id).unwrap();
        } else {
            blue.insert(id).unwrap();
        }
    }
    for i in 0..length {
        let e = Tuple::unary(Value::int(1000 + i as i64));
        source
            .insert(e.concat(&Tuple::unary(Value::int(i as i64))))
            .unwrap();
        target
            .insert(e.concat(&Tuple::unary(Value::int(i as i64 + 1))))
            .unwrap();
        edges.insert(e).unwrap();
    }
    db.add_relation("RedNodes", red);
    db.add_relation("BlueNodes", blue);
    db.add_relation("Edges", edges);
    db.add_relation("Source", source);
    db.add_relation("Target", target);
    // Figure 4 restricts constant queries to the active domain
    // (`⟦c⟧_D := c where c ∈ adom(D)`), so the label values the derived
    // view attaches must occur in the instance: a `Colors` relation
    // carries them. (A small but real consequence of the paper's
    // constant semantics; see the E3 notes in EXPERIMENTS.md.)
    let mut colors = Relation::empty(1);
    colors.insert(Tuple::unary("Red")).unwrap();
    colors.insert(Tuple::unary("Blue")).unwrap();
    db.add_relation("Colors", colors);
    db
}

/// The six view subqueries of the Theorem 4.1 proof: node set
/// `RedNodes ∪ BlueNodes`, edge set `Edges` with `Source`/`Target`, and
/// a *derived* label relation tagging nodes `Red`/`Blue` so the pattern
/// can test alternation.
pub fn union_view_queries() -> [Query; 6] {
    let labels = Query::rel("RedNodes")
        .product(Query::constant("Red"))
        .union(Query::rel("BlueNodes").product(Query::constant("Blue")));
    // Properties: empty ternary relation (π-duplicated filtered adom).
    let none = Query::rel("Edges")
        .select(pgq_relational::RowCondition::col_eq(0, 0).not())
        .project(vec![0, 0, 0]);
    [
        Query::rel("RedNodes").union(Query::rel("BlueNodes")),
        Query::rel("Edges"),
        Query::rel("Source"),
        Query::rel("Target"),
        labels,
        none,
    ]
}

/// Boolean `PGQrw` query: is there a red→blue→red…​ alternating path with
/// at least `min_edges` edges? (The paper's separating query uses
/// `min_edges = 2`.)
pub fn rw_alternating_query(min_edges: usize) -> Query {
    // One alternating "double step": red --> blue --> red.
    let step = alternating_double_step();
    let pattern = Pattern::Repeat(
        Box::new(step),
        min_edges.div_ceil(2).max(1),
        pgq_pattern::RepBound::Infinite,
    );
    let out = OutputPattern::boolean(pattern).expect("statically valid");
    Query::pattern_rw(out, union_view_queries())
}

/// `((x) -> (y) -> (z))⟨Red(x) ∧ Blue(y) ∧ Red(z)⟩` — the double step of
/// the Theorem 4.1 proof.
fn alternating_double_step() -> Pattern {
    Pattern::node("x")
        .then(Pattern::any_edge())
        .then(Pattern::node("y"))
        .then(Pattern::any_edge())
        .then(Pattern::node("z"))
        .filter(
            Condition::has_label("x", "Red")
                .and(Condition::has_label("y", "Blue"))
                .and(Condition::has_label("z", "Red")),
        )
}

/// The radius-`r` read-only surrogate: a *bounded* unrolling
/// `((x)(→()→())^{1..r/2})` of the same alternating walk, which is
/// `PGQrw` syntax but FO-expressible (no unbounded repetition), hence
/// subject to locality: it answers correctly only on instances whose
/// longest alternating path is ≤ r edges.
pub fn ro_unrolled_query(r: usize) -> Query {
    let step = alternating_double_step();
    let pattern = Pattern::Repeat(
        Box::new(step),
        1,
        pgq_pattern::RepBound::Finite((r / 2).max(1)),
    );
    let out = OutputPattern::boolean(pattern).expect("statically valid");
    Query::pattern_rw(out, union_view_queries())
}

/// The same property as [`rw_alternating_query`] (alternating path with
/// ≥ `min_edges` edges), but detected through an unrolling of at most
/// `radius` edges: `(double-step)^{min/2 .. radius/2}`. No unbounded
/// repetition, hence FO-expressible and locality-bound — it must answer
/// *false* whenever every witness is longer than `radius`, even when the
/// property holds.
pub fn bounded_alternating_query(min_edges: usize, radius: usize) -> Query {
    let step = alternating_double_step();
    let lo = min_edges.div_ceil(2).max(1);
    let hi = (radius / 2).max(1);
    let pattern = if hi < lo {
        // The radius cannot even express the requirement: an
        // unsatisfiable filter keeps the query well-formed but empty.
        Pattern::Repeat(Box::new(step), lo, pgq_pattern::RepBound::Finite(lo))
            .filter(Condition::has_label("\u{2022}unbound", "\u{2022}never"))
    } else {
        Pattern::Repeat(Box::new(step), lo, pgq_pattern::RepBound::Finite(hi))
    };
    let out = OutputPattern::boolean(pattern).expect("statically valid");
    Query::pattern_rw(out, union_view_queries())
}

/// Proposition 9.2, mechanically: tries *every* assignment of the five
/// base relation names to the six view slots (with the right arities:
/// `R1, R2` unary, `R3, R4` binary, `R5` binary, `R6` — no ternary base
/// relation exists, so `R6` must reuse a binary one and always fails the
/// arity check, or the empty choices below). Returns the number of
/// combinations tried and how many produced a valid view (expected: 0).
pub fn enumerate_ro_views(db: &Database) -> (usize, usize) {
    let unary = ["RedNodes", "BlueNodes", "Edges", "Colors"];
    let binary = ["Source", "Target"];
    let mut tried = 0usize;
    let mut valid = 0usize;
    let get = |name: &str| db.get(&name.into()).expect("schema fixed").clone();
    for r1 in unary {
        for r2 in unary {
            for r3 in binary {
                for r4 in binary {
                    // R5 can be any binary base relation or empty; R6 has
                    // no ternary candidate, so only the empty relation is
                    // shape-correct. Try both R5 options and empty.
                    for r5 in [Some(binary[0]), Some(binary[1]), None] {
                        tried += 1;
                        let rels = ViewRelations::new(
                            get(r1),
                            get(r2),
                            get(r3),
                            get(r4),
                            r5.map_or(Relation::empty(2), get),
                            Relation::empty(3),
                        );
                        if pg_view(&rels).is_ok() {
                            valid += 1;
                        }
                    }
                }
            }
        }
    }
    (tried, valid)
}

/// Ground truth for the experiment: does an alternating path with
/// ≥ `min_edges` edges exist? Computed directly by dynamic programming
/// over the instance (independent of any query language).
pub fn has_alternating_path(db: &Database, min_edges: usize) -> bool {
    let red = db.get(&"RedNodes".into()).expect("schema");
    let blue = db.get(&"BlueNodes".into()).expect("schema");
    let source = db.get(&"Source".into()).expect("schema");
    let target = db.get(&"Target".into()).expect("schema");
    let is_red = |t: &Tuple| red.contains(t);
    let is_blue = |t: &Tuple| blue.contains(t);
    // adjacency: node -> successors.
    let mut succ: std::collections::BTreeMap<Tuple, Vec<Tuple>> = Default::default();
    for s in source.iter() {
        let (e, from) = s.split_at(1);
        for t in target.iter() {
            let (e2, to) = t.split_at(1);
            if e == e2 {
                succ.entry(from.clone()).or_default().push(to.clone());
            }
        }
    }
    // Longest alternating walk from each node via BFS with step cap
    // (paths can't be longer than the node count without repeating a
    // color pattern — a walk suffices for existence).
    let nodes: Vec<Tuple> = red.iter().chain(blue.iter()).cloned().collect();
    let mut best = 0usize;
    for start in &nodes {
        if !is_red(start) {
            continue;
        }
        let mut frontier = vec![(start.clone(), 0usize)];
        let mut seen: std::collections::BTreeSet<(Tuple, usize)> = Default::default();
        while let Some((at, len)) = frontier.pop() {
            best = best.max(len);
            if len >= min_edges {
                return true;
            }
            if len > nodes.len() {
                continue;
            }
            if let Some(nexts) = succ.get(&at) {
                for nx in nexts {
                    let expect_red = len % 2 == 1; // after odd # steps: red again
                    let ok = if expect_red { is_red(nx) } else { is_blue(nx) };
                    if ok && seen.insert((nx.clone(), len + 1)) {
                        frontier.push((nx.clone(), len + 1));
                    }
                }
            }
        }
    }
    best >= min_edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgq_core::eval;
    use pgq_value::tuple;

    #[test]
    fn instances_have_expected_colors() {
        let db = alternating_path_db(4, None);
        assert_eq!(db.get(&"RedNodes".into()).unwrap().len(), 3); // 0,2,4
        assert_eq!(db.get(&"BlueNodes".into()).unwrap().len(), 2);
        assert_eq!(db.get(&"Edges".into()).unwrap().len(), 4);
        // Break makes two adjacent nodes share a color.
        let broken = alternating_path_db(4, Some(1));
        let red = broken.get(&"RedNodes".into()).unwrap();
        assert!(red.contains(&tuple![0]));
        // Node 1 blue, node 2 also blue (break at edge 1).
        let blue = broken.get(&"BlueNodes".into()).unwrap();
        assert!(blue.contains(&tuple![1]) && blue.contains(&tuple![2]));
    }

    #[test]
    fn rw_query_detects_alternation_at_any_length() {
        for len in [2usize, 4, 8, 16] {
            let db = alternating_path_db(len, None);
            let q = rw_alternating_query(2);
            assert!(eval(&q, &db).unwrap().as_bool(), "length {len}");
        }
        // A short instance broken in the middle has no red-blue-red
        // double step anywhere: 0r → 1b → 2b → 3r.
        let db = alternating_path_db(3, Some(1));
        let q = rw_alternating_query(2);
        assert!(!eval(&q, &db).unwrap().as_bool());
    }

    #[test]
    fn rw_matches_ground_truth_on_family() {
        for len in 2..10usize {
            for break_at in [None, Some(1), Some(3)] {
                if let Some(b) = break_at {
                    if b + 1 >= len {
                        continue;
                    }
                }
                let db = alternating_path_db(len, break_at);
                let q = rw_alternating_query(2);
                assert_eq!(
                    eval(&q, &db).unwrap().as_bool(),
                    has_alternating_path(&db, 2),
                    "len={len} break={break_at:?}"
                );
            }
        }
    }

    #[test]
    fn unrolled_query_fails_beyond_its_radius() {
        // Property: alternating path with ≥ 12 edges exists.
        let min_edges = 12;
        let db = alternating_path_db(16, None);
        assert!(has_alternating_path(&db, min_edges));
        // Radius-4 unrolling misses it; radius-16 finds it.
        let small = rw_alternating_query_with_radius_check(min_edges, 4);
        assert!(!eval(&small, &db).unwrap().as_bool());
        let large = rw_alternating_query_with_radius_check(min_edges, 16);
        assert!(eval(&large, &db).unwrap().as_bool());
    }

    /// Bounded variant: alternating path with ≥ min_edges edges, seen
    /// through an unrolling of at most `radius` edges.
    fn rw_alternating_query_with_radius_check(min_edges: usize, radius: usize) -> Query {
        let step = super::alternating_double_step();
        let lo = min_edges.div_ceil(2).max(1);
        let hi = (radius / 2).max(1);
        if hi < lo {
            // Radius too small to even express the requirement: the
            // pattern is unsatisfiable; encode as an empty range check
            // replaced by a never-matching filter.
            let p = Pattern::Repeat(Box::new(step), lo, pgq_pattern::RepBound::Finite(lo));
            let never = p.filter(Condition::has_label("nope", "Nope"));
            return Query::pattern_rw(OutputPattern::boolean(never).unwrap(), union_view_queries());
        }
        let p = Pattern::Repeat(Box::new(step), lo, pgq_pattern::RepBound::Finite(hi));
        Query::pattern_rw(OutputPattern::boolean(p).unwrap(), union_view_queries())
    }

    #[test]
    fn proposition_9_2_no_valid_base_views() {
        let db = alternating_path_db(6, None);
        let (tried, valid) = enumerate_ro_views(&db);
        assert!(tried >= 108);
        assert_eq!(valid, 0, "no base-relation assignment forms a view");
    }
}
