//! The PR 8 serve benchmark: a closed-loop mixed read/update load
//! generator against an in-process [`pgq_server::Server`].
//!
//! [`serve_mixed_load`] boots a server on an ephemeral port, loads the
//! canonical transfers schema, then drives `clients` concurrent
//! line-protocol sessions for `iters` closed-loop requests each — an
//! ~80/20 read/write mix where every write inserts a client-unique
//! transfer (so writes commute and the final state is
//! order-independent). It measures end-to-end request latency
//! (socket → parse → snapshot-pinned evaluation → response) and, when
//! the load drains, replays the same statements into a fresh
//! sequential [`Engine`] and asserts the served answer matches —
//! the divergence oracle the `serve_soak` CI step and the
//! `BENCH_8.json` record both stand on.

use crate::perf::BenchEntry;
use pgq_exec::JsonWriter;
use pgq_server::{Client, Engine, Server, SessionState};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

/// Accounts in the seed chain every run starts from.
const BASE_ACCOUNTS: usize = 8;

/// One write per `WRITE_EVERY` requests (the ~80/20 mix).
const WRITE_EVERY: usize = 5;

const GRAPH_DDL: &str = "CREATE PROPERTY GRAPH Transfers ( \
     NODES TABLE Account KEY (iban) LABEL Account, \
     EDGES TABLE Transfer KEY (t_id) \
       SOURCE KEY src_iban REFERENCES Account \
       TARGET KEY tgt_iban REFERENCES Account \
       LABELS Transfer PROPERTIES (ts, amount))";

const QUERY: &str = "SELECT * FROM GRAPH_TABLE (Transfers \
     MATCH (x) -[t:Transfer]->+ (y) WHERE t.amount > 100 \
     RETURN (x.iban, y.iban))";

/// What one [`serve_mixed_load`] run measured.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Concurrent client sessions.
    pub clients: usize,
    /// Closed-loop requests per client.
    pub iters: usize,
    /// Total requests served (`clients × iters`).
    pub requests: usize,
    /// Read requests (graph pattern queries).
    pub reads: usize,
    /// Write requests (transfer inserts, each republishing a snapshot).
    pub writes: usize,
    /// Requests answered with a `!! ` error line (must be zero).
    pub errors: usize,
    /// Wall-clock nanoseconds for the whole load phase.
    pub elapsed_ns: u128,
    /// Served requests per second over the load phase.
    pub qps: f64,
    /// Median request latency in nanoseconds.
    pub p50_ns: u128,
    /// 99th-percentile request latency in nanoseconds.
    pub p99_ns: u128,
}

/// The statement a client sends on its `i`-th request, or the shared
/// read query. Writes insert a client-unique transfer id, so any
/// interleaving of the clients' writes reaches the same final state.
fn write_stmt(client: usize, iters: usize, i: usize) -> String {
    let t_id = 1_000 + client * iters + i;
    let src = (client + i) % BASE_ACCOUNTS;
    let tgt = (client + i + 1) % BASE_ACCOUNTS;
    format!(
        "INSERT INTO Transfer VALUES ({t_id}, 'A{src}', 'A{tgt}', {}, {})",
        700 + i,
        150 + i
    )
}

fn load_seed(client: &mut Client) {
    for stmt in [
        "CREATE TABLE Account (iban)",
        "CREATE TABLE Transfer (t_id, src_iban, tgt_iban, ts, amount)",
        GRAPH_DDL,
    ] {
        let resp = client.request(stmt).expect("seed ddl");
        assert!(
            resp.iter().all(|l| !l.starts_with("!! ")),
            "seed DDL failed: {resp:?}"
        );
    }
    for i in 0..BASE_ACCOUNTS {
        client
            .request(&format!("INSERT INTO Account VALUES ('A{i}')"))
            .expect("seed account");
    }
    for i in 0..BASE_ACCOUNTS - 1 {
        client
            .request(&format!(
                "INSERT INTO Transfer VALUES ({i}, 'A{i}', 'A{}', {}, {})",
                i + 1,
                100 + i,
                500 + i
            ))
            .expect("seed transfer");
    }
}

/// One client session: `iters` closed-loop requests in the read/write
/// mix, returning per-request latencies and the error count.
fn drive_client(addr: SocketAddr, client: usize, iters: usize) -> (Vec<u128>, usize, usize, usize) {
    let mut conn = Client::connect(addr).expect("client connect");
    let mut latencies = Vec::with_capacity(iters);
    let (mut reads, mut writes, mut errors) = (0usize, 0usize, 0usize);
    for i in 0..iters {
        let write = i % WRITE_EVERY == WRITE_EVERY - 1;
        let stmt = if write {
            writes += 1;
            write_stmt(client, iters, i)
        } else {
            reads += 1;
            QUERY.to_string()
        };
        let start = Instant::now();
        match conn.request(&stmt) {
            Ok(resp) => {
                latencies.push(start.elapsed().as_nanos());
                if resp.iter().any(|l| l.starts_with("!! ")) {
                    errors += 1;
                }
            }
            Err(_) => errors += 1,
        }
    }
    (latencies, reads, writes, errors)
}

/// A response with its row lines sorted — the order-independent form
/// the divergence oracle compares, since concurrent writers interleave
/// in an unspecified (but commuting) order.
fn canonical(mut resp: Vec<String>) -> Vec<String> {
    if resp.len() > 1 {
        resp[1..].sort();
    }
    resp
}

/// Boots a server, runs the mixed load, verifies the served final
/// state against a fresh sequential [`Engine`] replay, and returns the
/// measured report. Panics on divergence — this is a correctness gate
/// first and a benchmark second.
pub fn serve_mixed_load(clients: usize, iters: usize) -> ServeReport {
    let (clients, iters) = (clients.max(1), iters.max(1));
    let server = Server::bind(Arc::new(Engine::new()), "127.0.0.1:0").expect("bind server");
    let addr = server.addr();
    let mut setup = Client::connect(addr).expect("setup connect");
    load_seed(&mut setup);

    let start = Instant::now();
    let results: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| scope.spawn(move || drive_client(addr, c, iters)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let elapsed_ns = start.elapsed().as_nanos();

    let mut latencies = Vec::with_capacity(clients * iters);
    let (mut reads, mut writes, mut errors) = (0usize, 0usize, 0usize);
    for (lat, r, w, e) in results {
        latencies.extend(lat);
        reads += r;
        writes += w;
        errors += e;
    }
    latencies.sort_unstable();
    let pct = |p: usize| -> u128 {
        if latencies.is_empty() {
            return 0;
        }
        latencies[(latencies.len() * p / 100).min(latencies.len() - 1)]
    };
    let requests = clients * iters;

    // The divergence oracle: a fresh sequential engine fed the same
    // statements (writes in canonical client order — they commute)
    // must answer the final query with the same row set.
    let served = canonical(setup.request(QUERY).expect("final read"));
    let oracle = Engine::new();
    let mut sess = SessionState::default();
    let mut expected = Vec::new();
    let mut feed = |stmt: &str| expected = oracle.statement(&mut sess, stmt);
    feed("CREATE TABLE Account (iban)");
    feed("CREATE TABLE Transfer (t_id, src_iban, tgt_iban, ts, amount)");
    feed(GRAPH_DDL);
    for i in 0..BASE_ACCOUNTS {
        feed(&format!("INSERT INTO Account VALUES ('A{i}')"));
    }
    for i in 0..BASE_ACCOUNTS - 1 {
        feed(&format!(
            "INSERT INTO Transfer VALUES ({i}, 'A{i}', 'A{}', {}, {})",
            i + 1,
            100 + i,
            500 + i
        ));
    }
    for c in 0..clients {
        for i in 0..iters {
            if i % WRITE_EVERY == WRITE_EVERY - 1 {
                feed(&write_stmt(c, iters, i));
            }
        }
    }
    feed(QUERY);
    assert_eq!(
        served,
        canonical(expected),
        "served final state diverged from the sequential oracle"
    );
    server.stop();

    ServeReport {
        clients,
        iters,
        requests,
        reads,
        writes,
        errors,
        elapsed_ns,
        qps: requests as f64 / (elapsed_ns.max(1) as f64 / 1e9),
        p50_ns: pct(50),
        p99_ns: pct(99),
    }
}

/// The serve measurements as `BENCH_8.json` bench entries: mean, p50
/// and p99 request latency under the `clients × iters` mixed load.
pub fn serve_entries(report: &ServeReport) -> Vec<BenchEntry> {
    let tag = format!("c{}x{}", report.clients, report.iters);
    [
        (
            "serve_mean",
            report.elapsed_ns / report.requests.max(1) as u128,
        ),
        ("serve_p50", report.p50_ns),
        ("serve_p99", report.p99_ns),
    ]
    .into_iter()
    .map(|(name, mean_ns)| BenchEntry {
        name: format!("{name}/{tag}"),
        input_size: report.requests,
        mean_ns,
    })
    .collect()
}

/// The PR 8 acceptance floors, checked on an **optimized** build (the
/// caller gates on `debug_assertions` like the E17/E18 floors): the
/// mixed load must serve error-free at ≥ 100 requests/second with a
/// sub-half-second p99. Both bars sit far below a healthy run —
/// snapshot-pinned reads take microseconds — but a regression that
/// serializes readers behind the writer lock, leaks an error path, or
/// blocks sessions on each other still fails the build.
pub fn assert_serve_floors(report: &ServeReport) {
    assert_eq!(
        report.errors, 0,
        "mixed serve load must complete error-free"
    );
    assert!(
        report.qps >= 100.0,
        "serve throughput floor: expected ≥ 100 QPS, measured {:.1}",
        report.qps
    );
    assert!(
        report.p99_ns <= 500_000_000,
        "serve p99 ceiling: expected ≤ 500ms, measured {} ns",
        report.p99_ns
    );
}

/// Writes the mixed-load report as the `"serve"` section.
pub(crate) fn write_serve_section(w: &mut JsonWriter, serve: &ServeReport) {
    w.key("serve");
    w.begin_object();
    w.key("clients");
    w.number(serve.clients as u64);
    w.key("iters");
    w.number(serve.iters as u64);
    w.key("requests");
    w.number(serve.requests as u64);
    w.key("reads");
    w.number(serve.reads as u64);
    w.key("writes");
    w.number(serve.writes as u64);
    w.key("errors");
    w.number(serve.errors as u64);
    w.key("qps");
    w.float(serve.qps);
    w.key("p50_ns");
    w.number_u128(serve.p50_ns);
    w.key("p99_ns");
    w.number_u128(serve.p99_ns);
    w.end_object();
}

/// The `BENCH_8.json` document: `"benches"` and `"profiles"` as in
/// `BENCH_7.json`, plus a `"serve"` section with the mixed-load
/// QPS/p50/p99 record.
pub fn to_json_with_serve(
    entries: &[BenchEntry],
    profiles: &[(String, pgq_exec::QueryProfile)],
    serve: &ServeReport,
) -> String {
    let mut w = JsonWriter::pretty();
    w.begin_object();
    crate::perf::write_bench_section(&mut w, entries);
    crate::perf::write_profile_section(&mut w, profiles);
    write_serve_section(&mut w, serve);
    w.end_object();
    let mut out = w.finish();
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_mixed_load_is_error_free_and_matches_oracle() {
        // Divergence is checked inside `serve_mixed_load`; this smoke
        // also pins the accounting invariants the floors stand on.
        let report = serve_mixed_load(2, 10);
        assert_eq!(report.requests, 20);
        assert_eq!(report.reads + report.writes, 20);
        assert_eq!(report.writes, 4);
        assert_eq!(report.errors, 0);
        assert!(report.p50_ns <= report.p99_ns);
        assert!(report.qps > 0.0);
    }

    #[test]
    fn serve_json_has_the_three_sections() {
        let report = ServeReport {
            clients: 4,
            iters: 30,
            requests: 120,
            reads: 96,
            writes: 24,
            errors: 0,
            elapsed_ns: 1_000_000,
            qps: 1234.5,
            p50_ns: 10,
            p99_ns: 20,
        };
        let entries = serve_entries(&report);
        assert_eq!(entries.len(), 3);
        assert!(entries.iter().any(|e| e.name == "serve_p99/c4x30"));
        let json = to_json_with_serve(&entries, &[], &report);
        for key in ["\"benches\"", "\"profiles\"", "\"serve\"", "\"qps\""] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.contains("1234.5000"));
    }
}
