//! The PR 9 ingestion scaling curves (experiment E19, `BENCH_9.json`).
//!
//! For each generator in `pgq_workloads::scale` (power-law
//! preferential attachment and LDBC-style transfers) and each decade
//! scale point `10³ … max_nodes` (×[`EDGES_PER_NODE`] edges), one
//! [`ScalePoint`] records:
//!
//! * `bulk_load_ns` — `Store::bulk_load` straight from the generator's
//!   bulk layout (the zero-materialization route);
//! * `register_ns` — the register route (`BulkGraph::to_database` →
//!   `Store::from_database` → `Store::register_view_graph`), measured
//!   up to a cap (default 10⁵ nodes: the route materializes every row
//!   in `BTreeSet`s and re-validates the view, which is exactly why it
//!   does not reach 10⁶ in bench time);
//! * `reach_ns` / `reach_nodes` — a 64-seed multi-source reachability
//!   sweep through the frozen graph entry, reusing one `ReachScratch`
//!   (the post-load read path the loader exists to feed);
//! * `join_ns` / `join_rows` — the coded endpoint join
//!   (`perf::endpoint_join`) executed store-backed with **no decode**
//!   (the result stays a `CodedBatch`);
//! * the post-load [`MemoryBytes`] breakdown from `Store::stats`.
//!
//! [`assert_scaling_floors`] turns the curves into regression gates
//! (release builds only, like every perf floor in this crate): a
//! loader-throughput floor at the largest point, near-linear growth
//! between adjacent decades, and the headline claim — bulk ingest at
//! least 5× faster than the register route at the largest scale where
//! both ran.

use crate::perf::BenchEntry;
use pgq_exec::{
    execute_opts, plan_ra, store_plan, BatchMode, ExecOptions, JsonWriter, QueryProfile,
};
use pgq_relational::{Database, RelName, Relation};
use pgq_store::{GraphForm, MemoryBytes, ReachScratch, Store};
use pgq_workloads::scale::{ldbc_transfers, power_law_graph};
use std::time::Instant;

/// Edges per node at every scale point: 10⁶ nodes ⇒ 10⁷ edges.
pub const EDGES_PER_NODE: usize = 10;

/// Seeds of the multi-source sweep at every scale point.
pub const REACH_SEEDS: usize = 64;

/// The default ceiling on the register-route comparison (nodes).
pub const REGISTER_CAP: usize = 100_000;

fn views() -> [RelName; 6] {
    ["N", "E", "S", "T", "L", "P"].map(Into::into)
}

fn timed<T>(f: impl FnOnce() -> T) -> (T, u128) {
    let start = Instant::now();
    let v = f();
    (v, start.elapsed().as_nanos().max(1))
}

/// One generator × scale measurement.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Generator name (`power_law` / `ldbc_transfers`).
    pub generator: &'static str,
    /// Node count.
    pub nodes: usize,
    /// Edge count.
    pub edges: usize,
    /// Total rows across the six relations.
    pub rows: usize,
    /// Wall-clock of `Store::bulk_load`.
    pub bulk_load_ns: u128,
    /// Wall-clock of the register route; `None` above the cap.
    pub register_ns: Option<u128>,
    /// Wall-clock of the [`REACH_SEEDS`]-seed sweep.
    pub reach_ns: u128,
    /// Nodes touched by the sweep (result sizes, summed).
    pub reach_nodes: usize,
    /// Wall-clock of the coded endpoint join (no decode).
    pub join_ns: u128,
    /// Rows the join produced (stays coded).
    pub join_rows: usize,
    /// Post-load resident-byte estimate by component.
    pub bytes: MemoryBytes,
}

impl ScalePoint {
    /// Loader throughput in rows per second.
    pub fn rows_per_sec(&self) -> f64 {
        self.rows as f64 / (self.bulk_load_ns as f64 / 1e9)
    }
}

/// The decade scale points `10³, 10⁴, …` up to and including
/// `max_nodes` (always at least one point).
pub fn scale_points(max_nodes: usize) -> Vec<usize> {
    let mut pts = Vec::new();
    let mut n = 1_000usize;
    while n <= max_nodes {
        pts.push(n);
        n = n.saturating_mul(10);
    }
    if pts.is_empty() {
        pts.push(max_nodes.max(1));
    }
    pts
}

/// Measures the full curve: both generators at every decade point up
/// to `max_nodes`, the register route up to `register_cap`, with
/// `threads` interning/executor workers.
pub fn scaling_suite(max_nodes: usize, register_cap: usize, threads: usize) -> Vec<ScalePoint> {
    let mut out = Vec::new();
    for generator in ["power_law", "ldbc_transfers"] {
        for n in scale_points(max_nodes) {
            // Seed fixed per (generator, scale): the curves measure
            // scale, not instance luck.
            let g = match generator {
                "power_law" => power_law_graph(n, EDGES_PER_NODE, 9),
                _ => ldbc_transfers(n, EDGES_PER_NODE, 9),
            };
            let mut store = Store::new();
            let (stats, bulk_load_ns) = timed(|| {
                store
                    .bulk_load("G", views(), GraphForm::Exact(1), &g, threads)
                    .expect("generator output is well-formed")
            });
            let register_ns = (n <= register_cap).then(|| {
                let start = Instant::now();
                let db = g.to_database(&views());
                let mut reg = Store::from_database(&db);
                reg.register_view_graph("G", views(), &db, GraphForm::Exact(1))
                    .expect("generator views are valid");
                start.elapsed().as_nanos().max(1)
            });
            // Read path 1: multi-source reachability through the
            // frozen entry, scratch reused across seeds.
            let entry = store.graph("G").expect("just loaded");
            let view = entry.adjacency();
            let k = REACH_SEEDS.min(n.max(1));
            let seeds: Vec<u32> = (0..k).map(|i| (i * n / k) as u32).collect();
            let mut scratch = ReachScratch::new();
            let mut reached: Vec<u32> = Vec::new();
            let (reach_nodes, reach_ns) = timed(|| {
                let mut touched = 0usize;
                for &s in &seeds {
                    view.reach_from_into([s], &mut scratch, &mut reached);
                    touched += reached.len();
                }
                touched
            });
            // Read path 2: the coded endpoint join, result left coded.
            // The schema-only database carries the view shapes; the
            // rows come from the store's columnar relations.
            let mut empty = Database::new();
            for (name, arity) in views().iter().zip([1, 1, 2, 2, 2, 3]) {
                empty.add_relation(name.clone(), Relation::empty(arity));
            }
            let plan = store_plan(
                plan_ra(&crate::perf::endpoint_join(), &empty.schema())
                    .expect("view schema has S/T"),
                &store,
            );
            let opts = ExecOptions::with_threads(threads);
            let (join_rows, join_ns) = timed(|| {
                execute_opts(&plan, &empty, Some(&store), BatchMode::Coded, &opts)
                    .expect("endpoint join runs store-backed")
                    .len()
            });
            out.push(ScalePoint {
                generator,
                nodes: stats.nodes,
                edges: stats.edges,
                rows: stats.rows,
                bulk_load_ns,
                register_ns,
                reach_ns,
                reach_nodes,
                join_ns,
                join_rows,
                bytes: stats.bytes,
            });
        }
    }
    out
}

/// The scaling curves as flat [`BenchEntry`] points (for callers that
/// want them alongside the classic suite output).
pub fn scaling_entries(points: &[ScalePoint]) -> Vec<BenchEntry> {
    points
        .iter()
        .map(|p| BenchEntry {
            name: format!("bulk_load/{}/{}", p.generator, p.nodes),
            input_size: p.rows,
            mean_ns: p.bulk_load_ns,
        })
        .collect()
}

/// The E19 regression gates, asserted per generator curve:
///
/// 1. **throughput floor** — the largest point must load at ≥ 250k
///    rows/s (a 1-core floor; the loader measures well above it);
/// 2. **near-linear growth** — a ×10 decade step may cost at most
///    5× more than proportional time;
/// 3. **bulk ≥ 5× register** — at the largest scale where the
///    register route ran.
///
/// # Panics
///
/// When a floor is broken (the caller gates on release builds).
pub fn assert_scaling_floors(points: &[ScalePoint]) {
    for generator in ["power_law", "ldbc_transfers"] {
        let curve: Vec<&ScalePoint> = points.iter().filter(|p| p.generator == generator).collect();
        assert!(!curve.is_empty(), "no scale points for {generator}");
        let top = curve.last().expect("non-empty");
        assert!(
            top.rows_per_sec() >= 250_000.0,
            "{generator}: loader throughput floor broken at {} nodes: {:.0} rows/s < 250k",
            top.nodes,
            top.rows_per_sec()
        );
        for w in curve.windows(2) {
            let (a, b) = (w[0], w[1]);
            let row_ratio = b.rows as f64 / a.rows as f64;
            let time_ratio = b.bulk_load_ns as f64 / a.bulk_load_ns as f64;
            // 5× proportional absorbs the decade step that crosses out
            // of last-level cache (~3× measured at 10⁵ → 10⁶) and
            // small-point timer noise, while still failing anything
            // accidentally quadratic (a 10× step would cost 10×
            // proportional).
            assert!(
                time_ratio <= 5.0 * row_ratio,
                "{generator}: super-linear growth {} → {} nodes: {time_ratio:.1}× time for {row_ratio:.1}× rows",
                a.nodes,
                b.nodes
            );
        }
        if let Some(p) = curve.iter().rev().find(|p| p.register_ns.is_some()) {
            let register = p.register_ns.expect("filtered on Some");
            assert!(
                register >= 5 * p.bulk_load_ns,
                "{generator}: bulk_load must be ≥ 5× the register route at {} nodes \
                 (bulk {} ns vs register {} ns = {:.1}×)",
                p.nodes,
                p.bulk_load_ns,
                register,
                register as f64 / p.bulk_load_ns as f64
            );
        }
    }
}

/// Writes the `"scaling"` section: one object per
/// `generator/nodes` point.
pub fn write_scaling_section(w: &mut JsonWriter, points: &[ScalePoint]) {
    w.key("scaling");
    w.begin_object();
    for p in points {
        w.key(&format!("{}/{}", p.generator, p.nodes));
        w.begin_object();
        w.key("nodes");
        w.number(p.nodes as u64);
        w.key("edges");
        w.number(p.edges as u64);
        w.key("rows");
        w.number(p.rows as u64);
        w.key("bulk_load_ns");
        w.number_u128(p.bulk_load_ns);
        if let Some(r) = p.register_ns {
            w.key("register_ns");
            w.number_u128(r);
        }
        w.key("reach_ns");
        w.number_u128(p.reach_ns);
        w.key("reach_nodes");
        w.number(p.reach_nodes as u64);
        w.key("join_ns");
        w.number_u128(p.join_ns);
        w.key("join_rows");
        w.number(p.join_rows as u64);
        w.key("bytes_dictionary");
        w.number(p.bytes.dictionary as u64);
        w.key("bytes_columns");
        w.number(p.bytes.columns as u64);
        w.key("bytes_csr");
        w.number(p.bytes.csr as u64);
        w.key("bytes_overlays");
        w.number(p.bytes.overlays as u64);
        w.key("bytes_total");
        w.number(p.bytes.total() as u64);
        w.end_object();
    }
    w.end_object();
}

/// The full `BENCH_9.json` document: `"benches"`, `"profiles"` and
/// `"serve"` exactly as in `BENCH_8.json`, plus the `"scaling"`
/// curves.
pub fn to_json_with_scaling(
    entries: &[BenchEntry],
    profiles: &[(String, QueryProfile)],
    serve: &crate::serve::ServeReport,
    points: &[ScalePoint],
) -> String {
    let mut w = JsonWriter::pretty();
    w.begin_object();
    crate::perf::write_bench_section(&mut w, entries);
    crate::perf::write_profile_section(&mut w, profiles);
    crate::serve::write_serve_section(&mut w, serve);
    write_scaling_section(&mut w, points);
    w.end_object();
    let mut out = w.finish();
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decade_points_cover_the_requested_range() {
        assert_eq!(
            scale_points(1_000_000),
            vec![1_000, 10_000, 100_000, 1_000_000]
        );
        assert_eq!(scale_points(10_000), vec![1_000, 10_000]);
        assert_eq!(scale_points(50), vec![50]);
    }

    #[test]
    fn tiny_suite_measures_and_serializes() {
        // One tiny point per generator (decades collapse to the floor
        // point): the measurement plumbing and JSON shape, not perf.
        let points = scaling_suite(60, 60, 2);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert_eq!(p.nodes, 60);
            assert!(p.edges > 0 && p.rows > p.edges);
            // The join projects endpoint pairs, so parallel edges
            // collapse under set semantics.
            assert!(
                p.join_rows > 0 && p.join_rows <= p.edges,
                "S⋈T yields one row per distinct endpoint pair"
            );
            assert!(p.reach_nodes > 0);
            assert!(p.bytes.total() > 0);
            assert!(p.register_ns.is_some());
        }
        let mut w = JsonWriter::pretty();
        w.begin_object();
        write_scaling_section(&mut w, &points);
        w.end_object();
        let json = w.finish();
        assert!(json.contains("\"power_law/60\""));
        assert!(json.contains("\"ldbc_transfers/60\""));
        assert!(json.contains("\"bytes_total\""));
        assert_eq!(scaling_entries(&points).len(), 2);
    }
}
