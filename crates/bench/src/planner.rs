//! The PR 10 planner ablation (experiment E20, `BENCH_10.json`).
//!
//! For each `pgq_workloads::scale` generator and each decade scale
//! point `10³ … max_nodes` (×[`crate::scaling::EDGES_PER_NODE`]
//! edges), the suite runs a fixed workload set through **both**
//! planners — `cost_plan` (the PR 10 statistics-driven pass) and
//! `store_plan` (the rule pass it replaced as the default) — over the
//! same bulk-loaded store, and records best-of-[`BEST_OF`] wall-clock
//! per side:
//!
//! * `endpoint_join` (both generators) — the S ⋈ T endpoint pairs of
//!   E17. The two passes pick the same shape here, so this is the
//!   parity control: the cost pass must not regress what the rule pass
//!   already planned well;
//! * `one_hop_selective` (transfers) — incoming transfers of one
//!   account: σ pushdown leaves a tiny filtered side that both passes
//!   must exploit;
//! * `two_hop_transfers` (transfers, the **multi-join** workload) —
//!   two transfer hops ending in one constrained account, written in
//!   the worst syntactic order (the constant lands on the *last*
//!   factor). The rule pass executes the joins as written and
//!   materializes every intermediate hop; the cost pass re-orders the
//!   chain around the filtered factor. This is where the estimate
//!   layer pays for itself — [`assert_planner_floors`] demands ≥
//!   [`MULTI_JOIN_FLOOR`]× here.
//!
//! Both sides execute on the coded pipeline with identical
//! [`ExecOptions`]; the suite asserts both planners return the same
//! row count (full result equivalence is property-tested in
//! `tests/prop_engine.rs` and `tests/prop_store.rs`).

use pgq_exec::{
    cost_plan, execute_opts, optimize_plan, plan_ra, store_plan, BatchMode, ExecOptions,
    JsonWriter, PhysPlan,
};
use pgq_relational::{Database, RaExpr, RelName, Relation, RowCondition};
use pgq_store::{GraphForm, Store};
use pgq_value::Value;
use pgq_workloads::scale::{ldbc_transfers, power_law_graph};
use std::time::Instant;

use crate::scaling::{scale_points, EDGES_PER_NODE};

/// Timed repetitions per (workload, planner, scale); the minimum is
/// recorded.
pub const BEST_OF: usize = 3;

/// The parity floor: the cost pass may not run slower than the rule
/// pass beyond timer tolerance (≥ 1.0× up to 5% measurement noise —
/// identical plans measure identically only in expectation).
pub const PARITY_FLOOR: f64 = 0.95;

/// The headline floor on the multi-join transfers workload.
pub const MULTI_JOIN_FLOOR: f64 = 1.5;

fn views() -> [RelName; 6] {
    ["N", "E", "S", "T", "L", "P"].map(Into::into)
}

/// The schema-only database carrying the view shapes — rows come from
/// the store's columnar relations (same trick as the scaling suite).
fn view_schema() -> Database {
    let mut empty = Database::new();
    for (name, arity) in views().into_iter().zip([1, 1, 2, 2, 2, 3]) {
        empty.add_relation(name, Relation::empty(arity));
    }
    empty
}

/// `π_{src,tgt}(σ_{e=e}(S × T))` — the E17 endpoint join.
fn endpoint_join() -> RaExpr {
    crate::perf::endpoint_join()
}

/// Incoming transfers of `target`: σ pushdown leaves a ~degree-sized
/// filtered `T` factor.
fn one_hop_selective(target: Value) -> RaExpr {
    RaExpr::rel("S")
        .product(RaExpr::rel("T"))
        .select(RowCondition::col_eq(0, 2).and(RowCondition::col_eq_const(3, target)))
        .project(vec![1, 3])
}

/// Two transfer hops `a → b → c` with `c` fixed, written so the
/// selective constant sits on the syntactically *last* factor —
/// columns: S₁(e₁,a)=0‥1, T₁(e₁,b)=2‥3, S₂(e₂,b)=4‥5, T₂(e₂,c)=6‥7.
fn two_hop_transfers(target: Value) -> RaExpr {
    RaExpr::rel("S")
        .product(RaExpr::rel("T"))
        .product(RaExpr::rel("S"))
        .product(RaExpr::rel("T"))
        .select(RowCondition::and_all([
            RowCondition::col_eq(0, 2),
            RowCondition::col_eq(3, 5),
            RowCondition::col_eq(4, 6),
            RowCondition::col_eq_const(7, target),
        ]))
        .project(vec![1, 3, 7])
}

/// One workload × generator × scale measurement: the same logical plan
/// through both planners.
#[derive(Debug, Clone)]
pub struct PlannerPoint {
    /// Workload name (`endpoint_join` / `one_hop_selective` /
    /// `two_hop_transfers`).
    pub workload: &'static str,
    /// Generator name (`power_law` / `ldbc_transfers`).
    pub generator: &'static str,
    /// Node count.
    pub nodes: usize,
    /// Edge count.
    pub edges: usize,
    /// Result rows (identical across planners, asserted).
    pub rows: usize,
    /// Best-of-[`BEST_OF`] wall-clock of the cost-planned execution.
    pub cost_ns: u128,
    /// Best-of-[`BEST_OF`] wall-clock of the rule-planned execution.
    pub rule_ns: u128,
    /// Whether [`assert_planner_floors`] holds this point to
    /// [`MULTI_JOIN_FLOOR`] (the multi-join transfers workload).
    pub multi_join: bool,
}

impl PlannerPoint {
    /// Rule time over cost time: > 1 means the cost pass is faster.
    pub fn speedup(&self) -> f64 {
        self.rule_ns as f64 / self.cost_ns as f64
    }
}

fn run(plan: &PhysPlan, db: &Database, store: &Store, opts: &ExecOptions) -> (usize, u128) {
    let start = Instant::now();
    let rows = execute_opts(plan, db, Some(store), BatchMode::Coded, opts)
        .expect("planner workloads run store-backed")
        .len();
    (rows, start.elapsed().as_nanos().max(1))
}

#[allow(clippy::too_many_arguments)] // one measurement point, all inputs load-bearing
fn measure(
    workload: &'static str,
    generator: &'static str,
    nodes: usize,
    edges: usize,
    q: &RaExpr,
    db: &Database,
    store: &Store,
    opts: &ExecOptions,
    multi_join: bool,
) -> PlannerPoint {
    let schema = db.schema();
    let base = optimize_plan(
        plan_ra(q, &schema).expect("workloads match the view schema"),
        &schema,
    )
    .expect("workloads are well-typed");
    let costed = cost_plan(base.clone(), store, &schema);
    let ruled = store_plan(base, store);
    // One untimed warm-up each, then alternating timed repetitions:
    // caches and allocator state stay symmetric across the two sides.
    let (cost_rows, _) = run(&costed, db, store, opts);
    let (rule_rows, _) = run(&ruled, db, store, opts);
    let mut cost_ns = u128::MAX;
    let mut rule_ns = u128::MAX;
    for _ in 0..BEST_OF {
        cost_ns = cost_ns.min(run(&costed, db, store, opts).1);
        rule_ns = rule_ns.min(run(&ruled, db, store, opts).1);
    }
    assert_eq!(
        cost_rows, rule_rows,
        "{workload}/{generator}/{nodes}: planners disagree on the result"
    );
    PlannerPoint {
        workload,
        generator,
        nodes,
        edges,
        rows: cost_rows,
        cost_ns,
        rule_ns,
        multi_join,
    }
}

/// Measures the E20 ablation: every workload × generator × decade
/// point up to `max_nodes`, with `threads` executor workers.
pub fn planner_suite(max_nodes: usize, threads: usize) -> Vec<PlannerPoint> {
    let opts = ExecOptions::with_threads(threads);
    let db = view_schema();
    let mut out = Vec::new();
    for generator in ["power_law", "ldbc_transfers"] {
        for n in scale_points(max_nodes) {
            // Seed fixed per (generator, scale), as in E19: the curves
            // measure planning quality, not instance luck.
            let g = match generator {
                "power_law" => power_law_graph(n, EDGES_PER_NODE, 9),
                _ => ldbc_transfers(n, EDGES_PER_NODE, 9),
            };
            let mut store = Store::new();
            let stats = store
                .bulk_load("G", views(), GraphForm::Exact(1), &g, threads)
                .expect("generator output is well-formed");
            out.push(measure(
                "endpoint_join",
                generator,
                stats.nodes,
                stats.edges,
                &endpoint_join(),
                &db,
                &store,
                &opts,
                false,
            ));
            if generator == "ldbc_transfers" {
                // A mid-range account: in-degree ≈ EDGES_PER_NODE, so
                // the constant is selective at every scale.
                let target = Value::str(format!("IBAN{:010}", n / 2));
                out.push(measure(
                    "one_hop_selective",
                    generator,
                    stats.nodes,
                    stats.edges,
                    &one_hop_selective(target.clone()),
                    &db,
                    &store,
                    &opts,
                    false,
                ));
                out.push(measure(
                    "two_hop_transfers",
                    generator,
                    stats.nodes,
                    stats.edges,
                    &two_hop_transfers(target),
                    &db,
                    &store,
                    &opts,
                    true,
                ));
            }
        }
    }
    out
}

/// The E20 regression gates:
///
/// 1. **parity** — on every point, the cost pass runs at ≥
///    [`PARITY_FLOOR`]× the rule pass (no regression beyond timer
///    noise on workloads both plan identically);
/// 2. **multi-join payoff** — at the largest scale of every
///    `multi_join` workload, cost ≥ [`MULTI_JOIN_FLOOR`]× rule.
///
/// # Panics
///
/// When a floor is broken (the caller gates on release builds, like
/// every perf floor in this crate).
pub fn assert_planner_floors(points: &[PlannerPoint]) {
    assert!(!points.is_empty(), "no planner ablation points");
    for p in points {
        assert!(
            p.speedup() >= PARITY_FLOOR,
            "{}/{}/{}: cost pass regressed below the rule pass: {:.2}× < {PARITY_FLOOR}×",
            p.workload,
            p.generator,
            p.nodes,
            p.speedup()
        );
    }
    let multi: Vec<&PlannerPoint> = points.iter().filter(|p| p.multi_join).collect();
    assert!(!multi.is_empty(), "no multi-join ablation points");
    let top = multi
        .iter()
        .max_by_key(|p| p.nodes)
        .expect("non-empty multi-join curve");
    assert!(
        top.speedup() >= MULTI_JOIN_FLOOR,
        "{}/{}/{}: multi-join floor broken: cost {:.2}× rule < {MULTI_JOIN_FLOOR}×",
        top.workload,
        top.generator,
        top.nodes,
        top.speedup()
    );
}

/// Writes the `"planner"` section: one object per
/// `workload/generator/nodes` point.
pub fn write_planner_section(w: &mut JsonWriter, points: &[PlannerPoint]) {
    w.key("planner");
    w.begin_object();
    for p in points {
        w.key(&format!("{}/{}/{}", p.workload, p.generator, p.nodes));
        w.begin_object();
        w.key("nodes");
        w.number(p.nodes as u64);
        w.key("edges");
        w.number(p.edges as u64);
        w.key("rows");
        w.number(p.rows as u64);
        w.key("cost_ns");
        w.number_u128(p.cost_ns);
        w.key("rule_ns");
        w.number_u128(p.rule_ns);
        w.key("speedup");
        w.float(p.speedup());
        w.key("multi_join");
        w.boolean(p.multi_join);
        w.end_object();
    }
    w.end_object();
}

/// The full `BENCH_10.json` document: everything `BENCH_9.json`
/// carried, plus the `"planner"` ablation.
pub fn to_json_with_planner(
    entries: &[crate::perf::BenchEntry],
    profiles: &[(String, pgq_exec::QueryProfile)],
    serve: &crate::serve::ServeReport,
    scaling: &[crate::scaling::ScalePoint],
    planner: &[PlannerPoint],
) -> String {
    let mut w = JsonWriter::pretty();
    w.begin_object();
    crate::perf::write_bench_section(&mut w, entries);
    crate::perf::write_profile_section(&mut w, profiles);
    crate::serve::write_serve_section(&mut w, serve);
    crate::scaling::write_scaling_section(&mut w, scaling);
    write_planner_section(&mut w, planner);
    w.end_object();
    let mut out = w.finish();
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_suite_measures_and_serializes() {
        // One tiny point per generator: plumbing and JSON shape, not
        // perf (the floors are release-gated by the binaries).
        let points = planner_suite(60, 2);
        assert_eq!(points.len(), 4, "{points:?}");
        for p in &points {
            assert_eq!(p.nodes, 60);
            assert!(p.edges > 0);
            assert!(p.cost_ns > 0 && p.rule_ns > 0);
        }
        let multi: Vec<_> = points.iter().filter(|p| p.multi_join).collect();
        assert_eq!(multi.len(), 1);
        assert_eq!(multi[0].workload, "two_hop_transfers");
        // The selective workloads actually select: a handful of rows,
        // not the cross product.
        for p in &points {
            if p.workload != "endpoint_join" {
                assert!(p.rows < p.edges, "{p:?}");
            }
        }
        let mut w = JsonWriter::pretty();
        w.begin_object();
        write_planner_section(&mut w, &points);
        w.end_object();
        let json = w.finish();
        assert!(json.contains("\"endpoint_join/power_law/60\""));
        assert!(json.contains("\"two_hop_transfers/ldbc_transfers/60\""));
        assert!(json.contains("\"speedup\""));
    }
}
