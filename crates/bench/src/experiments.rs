//! The experiment harness behind `EXPERIMENTS.md` and the Criterion
//! benches: one function per experiment E1–E18 (see DESIGN.md §3),
//! each checking the paper's claim mechanically and returning a small
//! report.

use pgq_core::{builders, eval as eval_query, eval_with, eval_with_store, EvalConfig, Query};
use pgq_logic::{detect_period, eval_ordered, powers_of_two_bits, Formula, Term};
use pgq_pattern::{
    endpoint_pairs, eval_pattern, eval_pattern_paths, project_endpoints, try_eval_pairs,
};
use pgq_translate::{fo_to_pgq, pgq_to_fo};
use pgq_value::Var;
use pgq_workloads::{alternating, families, increasing, random, transfers};
use std::fmt::Write as _;

/// Runs every experiment at report scale and returns the markdown body
/// of `EXPERIMENTS.md`'s measured section.
pub fn full_report() -> String {
    let mut out = String::new();
    for (name, body) in [
        ("E1 — Examples 1.1/2.1 end to end", e1_transfers()),
        (
            "E2 — Figure 2 ≡ Figure 6 (Prop 9.1) and engine agreement",
            e2_semantics(),
        ),
        ("E3 — Theorem 4.1: PGQro ⊊ PGQrw", e3_alternating()),
        (
            "E4 — Theorem 4.2: semilinear spectra vs powers of two",
            e4_semilinear(),
        ),
        (
            "E5 — Example 5.3 / Figure 5: increasing amounts",
            e5_increasing(),
        ),
        ("E6 — Theorem 6.1: PGQext → FO[TC]", e6_pgq_to_fo()),
        ("E7 — Theorem 6.2: FO[TC] → PGQext", e7_fo_to_pgq()),
        (
            "E8 — Theorems 6.5/6.6: arity accounting (Finding F1)",
            e8_arity(),
        ),
        ("E9 — Theorem 5.2/6.8: hierarchy evidence", e9_hierarchy()),
        (
            "E10 — Corollary 6.4: data-complexity scaling",
            e10_scaling(),
        ),
        (
            "E11 — Section 4.1: the NL baselines (FO[TC] ≡ linear Datalog ≡ PGQrw)",
            e11_baselines(),
        ),
        (
            "E12 — Related work: RPQ/CRPQ containment in the pattern layer and PGQro",
            e12_rpq(),
        ),
        (
            "E13 — Section 7: updates by rebuild-and-reapply",
            e13_updates(),
        ),
        (
            "E14 — Section 8: compositional graph queries",
            e14_compose(),
        ),
        (
            "E15 — substrate S15: the physical engine ablation",
            e15_engine(),
        ),
        (
            "E16 — substrate S16: the columnar store ablation",
            e16_store(),
        ),
        (
            "E17 — coded execution: dictionary codes end-to-end vs decode-at-scan",
            e17_coded(),
        ),
        (
            "E18 — incremental store maintenance: apply_updates vs full re-registration",
            e18_updates(),
        ),
    ] {
        let _ = writeln!(out, "## {name}\n\n{body}");
    }
    out
}

/// E1: the paper's running example through the full surface stack.
pub fn e1_transfers() -> String {
    use pgq_parser::{Outcome, Session};
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| accounts | transfers | result pairs | claim |\n|---|---|---|---|"
    );
    for (n, m) in [(20usize, 40usize), (50, 120), (100, 300)] {
        let db = transfers::random_transfers_db(n, m, 1000, 7);
        let mut session = Session::new();
        session.run_script(transfers::TRANSFERS_DDL, &db).unwrap();
        let outcomes = session.run_script(transfers::TRANSFERS_QUERY, &db).unwrap();
        let Outcome::Rows(rows) = &outcomes[0] else {
            unreachable!()
        };
        let _ = writeln!(
            out,
            "| {n} | {m} | {} | parse→catalog→pgView→match runs ✓ |",
            rows.len()
        );
    }
    out
}

/// E2: Proposition 9.1 and engine agreement, counted over a pattern/
/// graph sample.
pub fn e2_semantics() -> String {
    let mut checked = 0usize;
    for seed in 0..8u64 {
        let db = random::canonical_graph_db(5, 8, 5, seed);
        let views = ["N", "E", "S", "T", "L", "P"].map(Query::rel);
        let g = pgq_core::build_view(&views, pgq_core::ViewOp::Unary, &db, EvalConfig::default())
            .unwrap();
        for plen in 1..=3usize {
            let p = random::random_spine_pattern(plen, seed * 10 + plen as u64);
            let endpoint = eval_pattern(&p, &g).unwrap();
            // The Figure 6 evaluator materializes every path; samples
            // that blow its resource bound are skipped (the bound is a
            // feature, not a failure — see eval_path docs).
            match eval_pattern_paths(&p, &g) {
                Ok(paths) => {
                    assert_eq!(project_endpoints(&paths), endpoint, "Prop 9.1");
                }
                Err(pgq_pattern::PathEvalError::PathExplosion { .. }) => {}
                Err(e) => panic!("unexpected path-eval error: {e}"),
            }
            let fast = try_eval_pairs(&p, &g).unwrap();
            assert_eq!(endpoint_pairs(&endpoint), fast, "NFA engine");
            checked += 1;
        }
    }
    format!(
        "π_end(⟦ψ⟧^path) = ⟦ψ⟧ and NFA ≡ reference on {checked}/{checked} \
         random (graph, pattern) samples ✓\n"
    )
}

/// E3: the Theorem 4.1 detection table.
pub fn e3_alternating() -> String {
    let mut out = String::new();
    let db = alternating::alternating_path_db(8, None);
    let (tried, valid) = alternating::enumerate_ro_views(&db);
    let _ = writeln!(
        out,
        "Proposition 9.2 check: {tried} base-relation view assignments, {valid} valid \
         (claim: 0) ✓\n"
    );
    let min_edges = 8;
    let _ = writeln!(
        out,
        "| path length | ground truth (≥{min_edges} edges) | bounded r=4 | bounded r=8 | PGQrw (recursive) |\n|---|---|---|---|---|"
    );
    for length in [4usize, 8, 16, 32] {
        let db = alternating::alternating_path_db(length, None);
        let truth = alternating::has_alternating_path(&db, min_edges);
        let rw = eval_query(&alternating::rw_alternating_query(min_edges), &db)
            .unwrap()
            .as_bool();
        // r=4 < min_edges: the bounded query cannot even see a witness —
        // locality in action. r=8 = min_edges: exact-length witnesses
        // fit, so it happens to agree on this family.
        let b4 = eval_query(&alternating::bounded_alternating_query(min_edges, 4), &db)
            .unwrap()
            .as_bool();
        let b8 = eval_query(&alternating::bounded_alternating_query(min_edges, 8), &db)
            .unwrap()
            .as_bool();
        assert_eq!(rw, truth);
        if length >= min_edges {
            assert!(!b4, "radius-4 unrolling must miss the ≥8-edge witness");
        }
        let _ = writeln!(out, "| {length} | {truth} | {b4} | {b8} | {rw} |");
    }
    let _ = writeln!(
        out,
        "\nPGQrw matches ground truth at every length; the FO-bounded query \
         is locality-blind beyond its radius ✓"
    );
    out
}

/// E4: spectra of walk lengths are ultimately periodic; the powers of
/// two are not.
pub fn e4_semilinear() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| instance | spectrum | detected (threshold, period) |\n|---|---|---|"
    );
    let cases: Vec<(&str, pgq_relational::Database, i64, i64)> = vec![
        ("path(12), 0→7", families::path_db(12), 0, 7),
        ("cycle(3), 0→0", families::cycle_db(3), 0, 0),
        ("cycle(5), 0→2", families::cycle_db(5), 0, 2),
        (
            "two cycles 2,3 bridged, 0→2",
            families::two_cycles_db(2, 3, true),
            0,
            2,
        ),
    ];
    for (name, db, s, t) in cases {
        let bits = families::walk_length_spectrum(&db, s, t, 128);
        let detected = detect_period(&bits, 64, 16);
        assert!(detected.is_some(), "PGQrw-reachable spectra are semilinear");
        let shown: Vec<String> = bits
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .take(6)
            .map(|(i, _)| i.to_string())
            .collect();
        let _ = writeln!(
            out,
            "| {name} | {{{}, …}} | {:?} |",
            shown.join(", "),
            detected.unwrap()
        );
    }
    let p2 = powers_of_two_bits(512);
    let verdict = detect_period(&p2, 256, 32);
    assert_eq!(verdict, None);
    let _ = writeln!(
        out,
        "| powers of two (0..512) | {{1, 2, 4, 8, …}} | none up to threshold 256 / period 32 \
         — not semilinear ✓ |"
    );
    out
}

/// E5: three-way agreement on increasing-amount paths and the Figure 5
/// blow-up.
pub fn e5_increasing() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| transfers | |N′| | |E′| | pairs | PGQext = FO[TC2] = DP |\n|---|---|---|---|---|"
    );
    for m in [10usize, 20, 40] {
        let db = increasing::random_ledger(12, m, 20, 42);
        let via_pgq = eval_query(&increasing::increasing_pairs_query(), &db).unwrap();
        let phi = increasing::increasing_pairs_formula();
        let order = [Var::new("x"), Var::new("y")];
        let via_fo = eval_ordered(&phi, &order, &db).unwrap();
        let baseline = increasing::increasing_pairs_baseline(&db);
        let agree = via_pgq.len() == baseline.len() && via_fo.len() == baseline.len();
        assert!(agree);
        let (n, e) = increasing::constructed_sizes(&db);
        let _ = writeln!(out, "| {m} | {n} | {e} | {} | ✓ |", baseline.len());
    }
    out
}

/// E6: τ round trip on navigational queries.
pub fn e6_pgq_to_fo() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| graph (n, m) | pattern atoms | |⟦Q⟧| | ⟦Q⟧ = ⟦τ(Q)⟧ | TC arity |\n|---|---|---|---|---|"
    );
    for (n, m, plen, seed) in [
        (6usize, 10usize, 2usize, 1u64),
        (8, 16, 3, 2),
        (10, 20, 4, 3),
    ] {
        let db = random::canonical_graph_db(n, m, 5, seed);
        let p = random::random_spine_pattern(plen, seed);
        let q = Query::pattern_ro(
            pgq_pattern::OutputPattern::vars(p, ["x", "y"]).unwrap(),
            ["N", "E", "S", "T", "L", "P"],
        );
        let fo = pgq_to_fo(&q, &db.schema()).unwrap();
        let direct = eval_query(&q, &db).unwrap();
        let via_fo = eval_ordered(&fo.formula, &fo.vars, &db).unwrap();
        assert_eq!(direct, via_fo);
        let _ = writeln!(
            out,
            "| ({n}, {m}) | {plen} | {} | ✓ | {} |",
            direct.len(),
            fo.formula.max_tc_arity()
        );
    }
    out
}

/// E7: T round trip on FO\[TC\] formulas.
pub fn e7_fo_to_pgq() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| database (n, m) | formula | |⟦φ⟧| | ⟦φ⟧ = ⟦T(φ)⟧ | view arity |\n|---|---|---|---|---|"
    );
    let reach = Formula::tc(
        vec![Var::new("u")],
        vec![Var::new("w")],
        Formula::atom("E", ["u", "w"]),
        vec![Term::var("x")],
        vec![Term::var("y")],
    );
    let sink_reach = Formula::exists(
        ["y"],
        reach
            .clone()
            .and(Formula::forall(["z"], Formula::atom("E", ["y", "z"]).not())),
    );
    let formulas = [("TC[E](x, y)", reach), ("∃y (TC ∧ sink(y))", sink_reach)];
    for (n, m, seed) in [(8usize, 14usize, 1u64), (12, 24, 2)] {
        let db = random::ve_db(n, m, seed);
        for (name, phi) in &formulas {
            let order: Vec<Var> = phi.free_vars().into_iter().collect();
            let res = fo_to_pgq(phi, &order, &db.schema()).unwrap();
            let via_fo = eval_ordered(phi, &order, &db).unwrap();
            let via_pgq = eval_query(&res.query, &db).unwrap();
            assert_eq!(via_fo, via_pgq);
            let _ = writeln!(
                out,
                "| ({n}, {m}) | {name} | {} | ✓ | {} |",
                via_fo.len(),
                res.max_view_arity
            );
        }
    }
    out
}

/// E8: the per-arity fragments and Finding F1's measured arities.
pub fn e8_arity() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| TC arity k | params ℓ | round trip | paper claims view arity | measured |\n|---|---|---|---|---|"
    );
    let db = random::ve_db(5, 9, 4);
    for k in 1..=3usize {
        for l in 0..=1usize {
            let u: Vec<Var> = (0..k).map(|i| Var::new(format!("u{i}"))).collect();
            let w: Vec<Var> = (0..k).map(|i| Var::new(format!("w{i}"))).collect();
            let mut body =
                Formula::and_all((0..k).map(|i| {
                    Formula::atom("E", [Term::Var(u[i].clone()), Term::Var(w[i].clone())])
                }));
            if l == 1 {
                body = body.and(Formula::atom("V", ["p"]));
            }
            let x: Vec<Term> = (0..k).map(|i| Term::var(format!("x{i}"))).collect();
            let y: Vec<Term> = (0..k).map(|i| Term::var(format!("y{i}"))).collect();
            let phi = Formula::Tc {
                u,
                v: w,
                body: Box::new(body),
                x: x.clone(),
                y: y.clone(),
            };
            let order: Vec<Var> = phi.free_vars().into_iter().collect();
            let res = pgq_translate::fo_tcn_to_pgq(&phi, &order, &db.schema(), k).unwrap();
            let via_fo = eval_ordered(&phi, &order, &db).unwrap();
            let via_pgq = eval_query(&res.query, &db).unwrap();
            assert_eq!(via_fo, via_pgq);
            let _ = writeln!(out, "| {k} | {l} | ✓ | {k} | {} |", res.max_view_arity);
        }
    }
    let _ = writeln!(
        out,
        "\nPGQn → FO[TCn] preserves arity exactly (the τ direction); the constructive\n\
         T direction needs identifier arity 2k+ℓ — Finding F1 (see DESIGN.md §4.10)."
    );
    out
}

/// E9: hierarchy evidence — pair reachability is beyond unary
/// identifiers by cardinality, and the PGQ2 query is correct.
pub fn e9_hierarchy() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| pair-step instance | |adom| | pair edges | unary ids possible? | PGQ(2k) correct vs FO |\n|---|---|---|---|---|"
    );
    for n in [3usize, 4, 5] {
        // Pair-walk steps on an n-cycle × n-cycle: ((a,b) → (a+1,b+1)).
        let mut rows = Vec::new();
        for a in 0..n as i64 {
            for b in 0..n as i64 {
                rows.push((a, b, (a + 1) % n as i64, (b + 1) % n as i64));
            }
        }
        let mut db = pgq_relational::Database::new();
        for (a, b, c, d) in &rows {
            db.insert("E4", pgq_value::tuple![*a, *b, *c, *d]).unwrap();
        }
        let adom = db.active_domain().len();
        let pair_edges = rows.len();
        // Unary representability needs |edge ids| + |node ids| ≤ |adom|
        // with ids disjoint; here edge count alone exceeds adom.
        let possible = pair_edges < adom;
        let phi = Formula::tc(
            vec![Var::new("u1"), Var::new("u2")],
            vec![Var::new("w1"), Var::new("w2")],
            Formula::atom("E4", ["u1", "u2", "w1", "w2"]),
            vec![Term::constant(0), Term::constant(0)],
            vec![Term::constant(1), Term::constant(1)],
        );
        let res = fo_to_pgq(&phi, &[], &db.schema()).unwrap();
        let via_fo = eval_ordered(&phi, &[], &db).unwrap();
        let via_pgq = eval_query(&res.query, &db).unwrap();
        assert_eq!(via_fo, via_pgq);
        let _ = writeln!(
            out,
            "| {n}×{n} torus diag | {adom} | {pair_edges} | {possible} | ✓ |"
        );
    }
    let _ = writeln!(
        out,
        "\nWith more pair-steps than domain elements, no unary-identifier view can even\n\
         carry the step relation (R2 ⊆ adom and R1 ∩ R2 = ∅) — the pigeonhole face of\n\
         FO[TC1] ⊊ FO[TC2]. The PGQ(2k) translation answers every instance correctly."
    );
    out
}

/// E10: data-complexity scaling table (counts, not wall-times — the
/// Criterion benches measure time).
pub fn e10_scaling() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| instance | |D| | reach pairs | fast = reference |\n|---|---|---|---|"
    );
    for n in [20usize, 40, 80] {
        let db = families::grid_db(n / 4, 4);
        let q = Query::pattern_ro(
            builders::reachability_output(),
            ["N", "E", "S", "T", "L", "P"],
        );
        let fast = eval_with(&q, &db, EvalConfig::default()).unwrap();
        let slow = eval_with(&q, &db, EvalConfig::reference()).unwrap();
        assert_eq!(fast, slow);
        let _ = writeln!(
            out,
            "| grid {}×4 | {} | {} | ✓ |",
            n / 4,
            db.tuple_count(),
            fast.len()
        );
    }
    let _ = writeln!(
        out,
        "\nEvaluation is polynomial in |D| for fixed queries (NL ⊆ P data complexity);\n\
         see `cargo bench` for wall-clock curves and the NFA-vs-reference ablation."
    );
    out
}

/// E11: the paper's Section 4.1 NL calibration, executed. One
/// reachability question, four independent engines: the `PGQrw`
/// view+pattern route, the FO\[TC\] relational evaluator, a hand-written
/// linear Datalog program (the `WITH RECURSIVE` shape), and the
/// FO\[TC\]→Datalog bridge. All four answers must coincide, and both
/// Datalog programs must classify as (at most) *linear* recursion.
pub fn e11_baselines() -> String {
    use pgq_datalog::{classify_recursion, compile_formula, evaluate, parse_program, Recursion};
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| instance | |D| | reach pairs | PGQrw = FO[TC] = Datalog = bridge | recursion |\n|---|---|---|---|---|"
    );
    let program = parse_program(
        "reach(X, X) :- N(X).\n\
         reach(X, Z) :- reach(X, Y), step(Y, Z).\n\
         step(X, Y) :- S(E, X), T(E, Y).",
    )
    .unwrap();
    let rec = classify_recursion(&program);
    assert_eq!(rec, Recursion::Linear);

    // FO[TC]: TC over the edge relation reconstituted from S/T.
    let step = Formula::exists(
        ["e"],
        Formula::atom("S", ["e", "u"]).and(Formula::atom("T", ["e", "v"])),
    );
    let phi = Formula::tc(
        vec![Var::new("u")],
        vec![Var::new("v")],
        step,
        vec![Term::var("x")],
        vec![Term::var("y")],
    )
    // The paper's TC is reflexive over adom^k, which on the canonical
    // schema includes edge ids; restrict endpoints to nodes to match
    // the three graph-native routes.
    .and(Formula::atom("N", ["x"]).and(Formula::atom("N", ["y"])));

    for (name, db) in [
        ("grid 4×4", families::grid_db(4, 4)),
        ("grid 8×4", families::grid_db(8, 4)),
        ("cycle 24", families::cycle_db(24)),
    ] {
        let q = Query::pattern_ro(
            builders::reachability_output(),
            ["N", "E", "S", "T", "L", "P"],
        );
        let via_pgq = eval_query(&q, &db).unwrap();
        let via_logic = eval_ordered(&phi, &[Var::new("x"), Var::new("y")], &db).unwrap();
        let via_datalog = pgq_datalog::query(&program, &db, &"reach".into()).unwrap();
        let compiled = compile_formula(&phi).unwrap();
        let via_bridge = evaluate(&compiled.program, &db).unwrap();
        let via_bridge = via_bridge.get(&compiled.goal).unwrap();
        assert_eq!(via_pgq, via_logic, "{name}: PGQrw vs FO[TC]");
        assert_eq!(via_pgq, via_datalog, "{name}: PGQrw vs Datalog");
        assert_eq!(&via_pgq, via_bridge, "{name}: PGQrw vs bridge");
        assert!(matches!(
            classify_recursion(&compiled.program),
            Recursion::Linear | Recursion::None
        ));
        let _ = writeln!(
            out,
            "| {name} | {} | {} | ✓ | linear |",
            db.tuple_count(),
            via_pgq.len()
        );
    }
    let _ = writeln!(
        out,
        "\nFour independent engines agree; both Datalog programs are linear —\n\
         the `WITH RECURSIVE` fragment suffices, as Section 4.1's NL framing predicts."
    );
    out
}

/// E12: the related-work baselines. (2)RPQs evaluated by product
/// automaton coincide with their lowering into the Figure 1 pattern
/// language, and CRPQs with their lowering into full `PGQro` queries —
/// the executable containments RPQ ⊆ patterns and CRPQ ⊆ PGQro.
pub fn e12_rpq() -> String {
    use pgq_core::Fragment;
    use pgq_graph::{pg_view, ViewRelations};
    use pgq_pattern::{endpoint_pairs as ep, eval_pattern as evp};
    use pgq_rpq::{eval_rpq, rpq_to_pattern, Crpq, CrpqAtom, Rpq};

    let mut out = String::new();
    // A labeled graph: a 12-cycle alternating labels a/b, plus chords
    // labeled c.
    let n = 12i64;
    let mut nodes = pgq_relational::Relation::empty(1);
    let mut eids = pgq_relational::Relation::empty(1);
    let mut src = pgq_relational::Relation::empty(2);
    let mut tgt = pgq_relational::Relation::empty(2);
    let mut lab = pgq_relational::Relation::empty(2);
    use pgq_value::{Tuple, Value};
    for i in 0..n {
        nodes.insert(Tuple::unary(i)).unwrap();
    }
    let mut add_edge = |id: i64, s: i64, t: i64, l: &str| {
        let e = Tuple::unary(100 + id);
        eids.insert(e.clone()).unwrap();
        src.insert(e.concat(&Tuple::unary(s))).unwrap();
        tgt.insert(e.concat(&Tuple::unary(t))).unwrap();
        lab.insert(e.concat(&Tuple::unary(Value::str(l)))).unwrap();
    };
    for i in 0..n {
        add_edge(i, i, (i + 1) % n, if i % 2 == 0 { "a" } else { "b" });
    }
    for i in 0..4 {
        add_edge(n + i, i * 3, (i * 3 + 6) % n, "c");
    }
    let rels = ViewRelations::new(
        nodes.clone(),
        eids.clone(),
        src.clone(),
        tgt.clone(),
        lab.clone(),
        pgq_relational::Relation::empty(3),
    );
    let g = pg_view(&rels).unwrap();
    let db = pgq_relational::Database::new()
        .with_relation("N", nodes)
        .with_relation("E", eids)
        .with_relation("S", src)
        .with_relation("T", tgt)
        .with_relation("L", lab)
        .with_relation("P", pgq_relational::Relation::empty(3));

    let _ = writeln!(
        out,
        "| query | pairs | routes agree | fragment |\n|---|---|---|---|"
    );
    let rpqs: Vec<(&str, Rpq)> = vec![
        ("(a·b)*", Rpq::label("a").then(Rpq::label("b")).star()),
        ("(a|b)+", Rpq::label("a").or(Rpq::label("b")).plus()),
        (
            "c·(a|b)*",
            Rpq::label("c").then(Rpq::label("a").or(Rpq::label("b")).star()),
        ),
        ("a⁻·c (2RPQ)", Rpq::inverse("a").then(Rpq::label("c"))),
    ];
    for (name, r) in &rpqs {
        let via_auto = eval_rpq(r, &g);
        let via_pattern = ep(&evp(&rpq_to_pattern(r), &g).unwrap());
        assert_eq!(via_auto, via_pattern, "{name}");
        let _ = writeln!(
            out,
            "| RPQ {name} | {} | ✓ | pattern layer |",
            via_auto.len()
        );
    }

    // A CRPQ joining two atoms, lowered to PGQro.
    let crpq = Crpq::new(
        ["x", "z"],
        vec![
            CrpqAtom::new("x", Rpq::label("c"), "y"),
            CrpqAtom::new("y", Rpq::label("a").or(Rpq::label("b")).star(), "z"),
        ],
    )
    .unwrap();
    let direct = crpq.eval(&g).unwrap();
    let lowered = crpq
        .to_pgqro(&["N", "E", "S", "T", "L", "P"].map(Into::into))
        .unwrap();
    assert!(lowered.fragment().within(Fragment::Ro));
    let via_core = eval_query(&lowered, &db).unwrap();
    assert_eq!(direct, via_core);
    let _ = writeln!(
        out,
        "| CRPQ (x)-c->(y)-(a|b)*->(z) | {} | ✓ | {} |",
        direct.len(),
        lowered.fragment()
    );
    let _ = writeln!(
        out,
        "\nAutomaton ≡ pattern-semantics ≡ PGQro lowering: the classical RPQ/CRPQ\n\
         formalisms sit strictly inside the paper's weakest fragment."
    );
    out
}

/// E13: Section 7's update simulation — edit the canonical relations,
/// reapply `pgView`, and watch a fixed reachability query change
/// accordingly. Also round-trips `relations_of ∘ pg_view`.
pub fn e13_updates() -> String {
    use pgq_graph::{apply_all, pg_view, relations_of, Update, ViewRelations};
    use pgq_value::{Tuple, Value};

    let mut out = String::new();
    let db = families::grid_db(3, 3);
    let rels = ViewRelations::new(
        db.get(&"N".into()).unwrap().clone(),
        db.get(&"E".into()).unwrap().clone(),
        db.get(&"S".into()).unwrap().clone(),
        db.get(&"T".into()).unwrap().clone(),
        db.get(&"L".into()).unwrap().clone(),
        db.get(&"P".into()).unwrap().clone(),
    );
    let g0 = pg_view(&rels).unwrap();
    let back = relations_of(&g0);
    assert_eq!(back.nodes, rels.nodes);
    assert_eq!(back.src, rels.src);

    let reach_pairs = |g: &pgq_graph::PropertyGraph| -> usize {
        let outp = builders::reachability_output();
        outp.eval(g).unwrap().len()
    };

    let _ = writeln!(
        out,
        "| step | nodes | edges | reach pairs |\n|---|---|---|---|"
    );
    let _ = writeln!(
        out,
        "| initial 3×3 grid | {} | {} | {} |",
        g0.node_count(),
        g0.edge_count(),
        reach_pairs(&g0)
    );

    // Add a shortcut edge from the sink corner back to the source:
    // reachability becomes total.
    let (rels1, g1) = apply_all(
        &rels,
        &[Update::AddEdge {
            id: Tuple::unary(Value::int(77_000)),
            src: Tuple::unary(Value::int(8)),
            tgt: Tuple::unary(Value::int(0)),
        }],
    )
    .unwrap();
    let _ = writeln!(
        out,
        "| + edge 8→0 | {} | {} | {} |",
        g1.node_count(),
        g1.edge_count(),
        reach_pairs(&g1)
    );
    assert_eq!(
        reach_pairs(&g1),
        81,
        "cycle closure makes reachability total"
    );

    // Detach-remove the center node: the grid loses its crossing paths.
    let (_, g2) = apply_all(
        &rels1,
        &[Update::DetachRemoveNode(Tuple::unary(Value::int(4)))],
    )
    .unwrap();
    let _ = writeln!(
        out,
        "| − node 4 (detach) | {} | {} | {} |",
        g2.node_count(),
        g2.edge_count(),
        reach_pairs(&g2)
    );
    assert!(reach_pairs(&g2) < 81);
    let _ = writeln!(
        out,
        "\nEvery update is a rebuild of (R1,…,R6) plus one `pgView` reapplication —\n\
         the simulation Section 7 claims loses no generality."
    );
    out
}

/// E14: the conclusion's future-work direction — graphs as first-class
/// query values. Two view layers over one database are composed with
/// the graph algebra; pattern matching runs on the composition; the
/// composed graph is "outputted" back into six relations and re-viewed.
pub fn e14_compose() -> String {
    use pgq_compose::{eval_graph, eval_match, output_graph, GraphExpr};
    use pgq_graph::pg_view;
    use pgq_value::{Tuple, Value};

    let mut out = String::new();
    // Layers: a 12-cycle split into two 6-chains stored separately.
    let mut n = pgq_relational::Relation::empty(1);
    for i in 0..12i64 {
        n.insert(Tuple::unary(Value::int(i))).unwrap();
    }
    let layer = |base: i64, edges: Vec<(i64, i64)>| {
        let mut e = pgq_relational::Relation::empty(1);
        let mut s = pgq_relational::Relation::empty(2);
        let mut t = pgq_relational::Relation::empty(2);
        for (j, (from, to)) in edges.iter().enumerate() {
            let id = Tuple::unary(Value::int(base + j as i64));
            e.insert(id.clone()).unwrap();
            s.insert(id.concat(&Tuple::unary(Value::int(*from))))
                .unwrap();
            t.insert(id.concat(&Tuple::unary(Value::int(*to)))).unwrap();
        }
        (e, s, t)
    };
    let (e1, s1, t1) = layer(100, (0..6).map(|i| (i, i + 1)).collect());
    let (e2, s2, t2) = layer(200, (6..12).map(|i| (i, (i + 1) % 12)).collect());
    let db = pgq_relational::Database::new()
        .with_relation("N", n)
        .with_relation("E1", e1)
        .with_relation("S1", s1)
        .with_relation("T1", t1)
        .with_relation("E2", e2)
        .with_relation("S2", s2)
        .with_relation("T2", t2)
        .with_relation("L0", pgq_relational::Relation::empty(2))
        .with_relation("P0", pgq_relational::Relation::empty(3));

    let a = GraphExpr::view_ro(["N", "E1", "S1", "T1", "L0", "P0"], pgq_core::ViewOp::Unary);
    let b = GraphExpr::view_ro(["N", "E2", "S2", "T2", "L0", "P0"], pgq_core::ViewOp::Unary);
    let reach = builders::reachability_plus_output();

    let _ = writeln!(
        out,
        "| expression | nodes | edges | →+ pairs |\n|---|---|---|---|"
    );
    for (name, expr) in [
        ("pgView(layer A)", a.clone()),
        ("pgView(layer B)", b.clone()),
        ("A ∪ B", a.clone().union(b.clone())),
        (
            "(A ∪ B) ∖ₑ B",
            a.clone().union(b.clone()).minus_edges(b.clone()),
        ),
    ] {
        let g = eval_graph(&expr, &db).unwrap();
        let pairs = eval_match(&expr, &reach, &db).unwrap();
        let _ = writeln!(
            out,
            "| {name} | {} | {} | {} |",
            g.node_count(),
            g.edge_count(),
            pairs.len()
        );
    }
    // The union closes the 12-cycle: every ordered pair is connected.
    let total = eval_match(&a.clone().union(b.clone()), &reach, &db).unwrap();
    assert_eq!(total.len(), 144);
    // Edge-difference undoes the union.
    assert_eq!(
        eval_graph(&a.clone().union(b.clone()).minus_edges(b.clone()), &db).unwrap(),
        eval_graph(&a, &db).unwrap()
    );
    // "Outputted": the composed graph re-enters the relational model
    // and reconstructs identically.
    let rels = output_graph(&a.clone().union(b), &db).unwrap();
    let rebuilt = pg_view(&rels).unwrap();
    assert_eq!(rebuilt.edge_count(), 12);
    let _ = writeln!(
        out,
        "\nGraphs compose as first-class values and round-trip back into\n\
         six relations — the Section 8 direction, executable."
    );
    out
}

/// E15: the S15 physical engine (`pgq-exec`). Differential:
/// `Engine::Physical` returns exactly the NFA and reference routes'
/// answers on scaling instances and the canonical transfers workload;
/// measured: the hash-join plan against the product-then-filter
/// reference on the endpoint join, with the speedup asserted on the
/// largest instance (full-size numbers accumulate in `BENCH_2.json`
/// via `report --json`).
pub fn e15_engine() -> String {
    use crate::perf::{endpoint_join, mean_ns};
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| instance | |D| | physical = NFA | join ref (µs) | join hash (µs) | speedup |\n|---|---|---|---|---|---|"
    );
    let join = endpoint_join();
    let reach = Query::pattern_ro(
        builders::reachability_output(),
        ["N", "E", "S", "T", "L", "P"],
    );
    // Speedup on the *largest* instance by tuple count — the one the
    // acceptance bar is about (order-independent).
    let mut largest = (0usize, 0.0f64);
    for (name, db) in [
        ("grid 20×5", families::grid_db(20, 5)),
        ("cycle 60", families::cycle_db(60)),
        (
            "transfers 200×400",
            transfers::canonical_transfers_db(200, 400, 1_000, 7),
        ),
    ] {
        let phys = eval_with(&reach, &db, EvalConfig::physical()).unwrap();
        let nfa = eval_with(&reach, &db, EvalConfig::default()).unwrap();
        assert_eq!(phys, nfa, "{name}: physical vs NFA");
        let t_ref = mean_ns(3, || {
            join.eval(&db).unwrap();
        });
        let t_hash = mean_ns(3, || {
            pgq_exec::eval_ra(&join, &db).unwrap();
        });
        let speedup = t_ref as f64 / t_hash.max(1) as f64;
        if db.tuple_count() > largest.0 {
            largest = (db.tuple_count(), speedup);
        }
        let _ = writeln!(
            out,
            "| {name} | {} | ✓ | {:.1} | {:.1} | {:.1}× |",
            db.tuple_count(),
            t_ref as f64 / 1_000.0,
            t_hash as f64 / 1_000.0,
            speedup
        );
    }
    let largest_speedup = largest.1;
    // The reference route agrees too (checked at a size it can afford).
    let db = families::grid_db(10, 5);
    assert_eq!(
        eval_with(&reach, &db, EvalConfig::physical()).unwrap(),
        eval_with(&reach, &db, EvalConfig::reference()).unwrap()
    );
    // Conservative floor — the measured ratio on the largest instance
    // is far higher (see BENCH_2.json); ≥ 2 keeps CI noise-proof.
    assert!(
        largest_speedup >= 2.0,
        "hash join should beat product-then-filter (got {largest_speedup:.1}×)"
    );
    let _ = writeln!(
        out,
        "\nThe physical engine (hash joins + semi-naive fixpoints, substrate S15)\n\
         matches the reference routes exactly and replaces the O(|S|·|T|)\n\
         product-then-filter with an O(|S|+|T|) hash join."
    );
    out
}

/// E16: the S16 columnar store (`pgq-store`). Differential: the
/// store-backed route returns exactly the hash-join physical, NFA and
/// reference answers on scaling instances; measured: the same
/// reachability/TC workload through the PR 2 physical engine (which
/// re-materializes and revalidates the view per query) and through the
/// session store (CSR sweeps over adjacency frozen once at
/// registration), with the speedup asserted on the largest instance
/// (full-size numbers accumulate in `BENCH_3.json` via `report
/// --json`).
pub fn e16_store() -> String {
    use crate::perf::{canonical_store, mean_ns};
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| instance | |D| | store = physical = NFA | register (µs) | reach physical (µs) | reach store (µs) | speedup |\n|---|---|---|---|---|---|---|"
    );
    let reach = Query::pattern_ro(
        builders::reachability_output(),
        ["N", "E", "S", "T", "L", "P"],
    );
    // Speedup on the largest instance by tuple count — the acceptance
    // bar's instance (order-independent).
    let mut largest = (0usize, 0.0f64);
    for (name, db) in [
        ("grid 20×5", families::grid_db(20, 5)),
        ("cycle 100", families::cycle_db(100)),
        ("grid 40×5", families::grid_db(40, 5)),
    ] {
        let store = canonical_store(&db);
        let via_store = eval_with_store(&reach, &db, EvalConfig::physical(), &store).unwrap();
        assert_eq!(
            via_store,
            eval_with(&reach, &db, EvalConfig::physical()).unwrap(),
            "{name}: store vs physical"
        );
        assert_eq!(
            via_store,
            eval_with(&reach, &db, EvalConfig::default()).unwrap(),
            "{name}: store vs NFA"
        );
        let t_register = mean_ns(3, || {
            canonical_store(&db);
        });
        let t_phys = mean_ns(3, || {
            eval_with(&reach, &db, EvalConfig::physical()).unwrap();
        });
        let t_store = mean_ns(3, || {
            eval_with_store(&reach, &db, EvalConfig::physical(), &store).unwrap();
        });
        let speedup = t_phys as f64 / t_store.max(1) as f64;
        if db.tuple_count() > largest.0 {
            largest = (db.tuple_count(), speedup);
        }
        let _ = writeln!(
            out,
            "| {name} | {} | ✓ | {:.1} | {:.1} | {:.1} | {:.1}× |",
            db.tuple_count(),
            t_register as f64 / 1_000.0,
            t_phys as f64 / 1_000.0,
            t_store as f64 / 1_000.0,
            speedup
        );
    }
    // The reference route agrees too (checked at a size it can afford).
    let db = families::grid_db(10, 5);
    let store = canonical_store(&db);
    assert_eq!(
        eval_with_store(&reach, &db, EvalConfig::physical(), &store).unwrap(),
        eval_with(&reach, &db, EvalConfig::reference()).unwrap()
    );
    // Conservative floor — the measured ratio on the largest instance
    // is far higher (see BENCH_3.json); ≥ 2 keeps CI noise-proof.
    let largest_speedup = largest.1;
    assert!(
        largest_speedup >= 2.0,
        "the frozen store should beat per-query rebuilds (got {largest_speedup:.1}×)"
    );
    let _ = writeln!(
        out,
        "\nThe store-backed route (S16: dictionary-coded columns, CSR adjacency frozen\n\
         once per session) matches every other engine exactly and replaces the\n\
         per-query view rebuild + hash-join fixpoint with frontier sweeps over the\n\
         index. Registration costs one view build and is amortized across the session."
    );
    out
}

/// E17: the coded-execution ablation (PR 4). Differential: the coded
/// pipeline (dictionary codes through every operator, one decode at
/// the set-semantics boundary) returns exactly the decoded PR 3
/// store route's answers; measured: the reachability closure of the
/// derived step relation on the grid/cycle workloads and the endpoint
/// join on the string-valued transfers instance, coded vs. decoded.
/// The wall-clock floors are enforced elsewhere — by
/// `crate::perf::assert_coded_floors` in the release `report --json`
/// bench smoke, where `BENCH_4.json` accumulates the full-size
/// numbers; a 3-sample mean inside a test binary is too noise-prone
/// to gate a build on a ~1.3× effect, so this experiment asserts the
/// correctness claims only.
pub fn e17_coded() -> String {
    use crate::perf::{endpoint_join, mean_ns, reach_tc_plan};
    use pgq_exec::{execute_mode, store_plan, BatchMode};
    use pgq_store::Store;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| workload | |D| | coded = decoded = storeless | decoded (µs) | coded (µs) | speedup |\n|---|---|---|---|---|---|"
    );
    for (name, db) in [
        ("reach grid 20×5", families::grid_db(20, 5)),
        ("reach cycle 100", families::cycle_db(100)),
        ("reach grid 40×5", families::grid_db(40, 5)),
    ] {
        let store = Store::from_database(&db);
        let plan = store_plan(reach_tc_plan(&db), &store);
        let coded = execute_mode(&plan, &db, Some(&store), BatchMode::Coded)
            .unwrap()
            .into_relation(Some(&store))
            .unwrap();
        let decoded = execute_mode(&plan, &db, Some(&store), BatchMode::Decoded)
            .unwrap()
            .into_relation(Some(&store))
            .unwrap();
        let storeless = pgq_exec::execute(&reach_tc_plan(&db), &db)
            .unwrap()
            .into_relation();
        assert_eq!(coded, decoded, "{name}: coded vs decoded");
        assert_eq!(coded, storeless, "{name}: coded vs storeless");
        let t_decoded = mean_ns(3, || {
            execute_mode(&plan, &db, Some(&store), BatchMode::Decoded)
                .unwrap()
                .into_relation(Some(&store))
                .unwrap();
        });
        let t_coded = mean_ns(3, || {
            execute_mode(&plan, &db, Some(&store), BatchMode::Coded)
                .unwrap()
                .into_relation(Some(&store))
                .unwrap();
        });
        let speedup = t_decoded as f64 / t_coded.max(1) as f64;
        let _ = writeln!(
            out,
            "| {name} | {} | ✓ | {:.1} | {:.1} | {:.2}× |",
            db.tuple_count(),
            t_decoded as f64 / 1_000.0,
            t_coded as f64 / 1_000.0,
            speedup
        );
    }
    // The string-valued join: the widest representation gap (heap
    // compares decoded, u32 compares coded).
    let join = endpoint_join();
    let db = transfers::canonical_transfers_db(200, 400, 1_000, 7);
    let store = Store::from_database(&db);
    let coded = pgq_exec::eval_ra_mode(&join, &db, &store, pgq_exec::BatchMode::Coded).unwrap();
    assert_eq!(
        coded,
        pgq_exec::eval_ra_mode(&join, &db, &store, pgq_exec::BatchMode::Decoded).unwrap()
    );
    assert_eq!(coded, join.eval(&db).unwrap());
    let t_decoded = mean_ns(3, || {
        pgq_exec::eval_ra_mode(&join, &db, &store, pgq_exec::BatchMode::Decoded).unwrap();
    });
    let t_coded = mean_ns(3, || {
        pgq_exec::eval_ra_mode(&join, &db, &store, pgq_exec::BatchMode::Coded).unwrap();
    });
    let join_speedup = t_decoded as f64 / t_coded.max(1) as f64;
    let _ = writeln!(
        out,
        "| join transfers 200×400 | {} | ✓ | {:.1} | {:.1} | {:.2}× |",
        db.tuple_count(),
        t_decoded as f64 / 1_000.0,
        t_coded as f64 / 1_000.0,
        join_speedup
    );
    let _ = writeln!(
        out,
        "\nThe coded pipeline (PR 4) flows dictionary codes through every Figure 4\n\
         operator — hash probes, selection predicates, fixpoint dedup are u32 work —\n\
         and decodes exactly once at the set-semantics boundary. Per Gheerbrant–\n\
         Peterfreund's model the dictionary is a bijection, so coded evaluation is\n\
         reference evaluation; the differential suites hold all routes identical."
    );
    out
}

/// E18: the incremental-maintenance ablation (PR 5). Differential:
/// applying the standard update batch through `Store::apply_updates`
/// (append/tombstone + delta overlays, no re-validation) leaves the
/// store answering exactly like a store re-registered from the updated
/// database — and exactly like the S2 reference on the updated
/// instance, before and after `Store::compact()`. Measured: the apply
/// cost vs. the full re-registration, and the reachability latency
/// reading through the overlay. The wall-clock floor (incremental ≥ 2×
/// cheaper) is enforced by `crate::perf::assert_update_floors` in the
/// release `report --json` bench smoke (`BENCH_5.json`); here the
/// differential claims are asserted at any optimization level.
pub fn e18_updates() -> String {
    use crate::perf::{
        canonical_database_of, canonical_store, canonical_update_batch, mean_ns,
        time_incremental_apply,
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| workload | |D| | Δ ops | incremental = re-register = reference | re-register (µs) | incremental (µs) | speedup |\n|---|---|---|---|---|---|---|"
    );
    let batch = canonical_update_batch(16, 4);
    for (name, db) in [
        ("grid 20×5", families::grid_db(20, 5)),
        ("cycle 100", families::cycle_db(100)),
        ("grid 40×5", families::grid_db(40, 5)),
    ] {
        let base = canonical_store(&db);
        let mut updated = base.clone();
        updated.apply_updates("G", &batch).unwrap();
        // The updated database, reconstructed from the store's live
        // rows; re-registering it is the pre-PR 5 path.
        let db2 = canonical_database_of(&updated);
        let fresh = canonical_store(&db2);
        let reach = Query::pattern_ro(
            builders::reachability_output(),
            ["N", "E", "S", "T", "L", "P"],
        );
        let reference = eval_with(&reach, &db2, EvalConfig::reference()).unwrap();
        let incremental = eval_with_store(&reach, &db2, EvalConfig::physical(), &updated).unwrap();
        let reregistered = eval_with_store(&reach, &db2, EvalConfig::physical(), &fresh).unwrap();
        assert_eq!(incremental, reference, "{name}: incremental vs reference");
        assert_eq!(
            incremental, reregistered,
            "{name}: incremental vs re-register"
        );
        // Compaction drops the stale codes without changing the answer.
        let mut compacted = updated.clone();
        compacted.compact().unwrap();
        assert_eq!(compacted.stats().dictionary_stale(), 0, "{name}");
        assert_eq!(
            eval_with_store(&reach, &db2, EvalConfig::physical(), &compacted).unwrap(),
            reference,
            "{name}: post-compact"
        );
        // Measure: apply on a pristine clone (clone untimed) vs full
        // re-registration.
        let iters = 5usize;
        let t_incremental = time_incremental_apply(&base, &batch, iters);
        let t_reregister = mean_ns(iters, || {
            canonical_store(&db2);
        });
        let speedup = t_reregister as f64 / t_incremental.max(1) as f64;
        let _ = writeln!(
            out,
            "| {name} | {} | {} | ✓ | {:.1} | {:.1} | {:.2}× |",
            db.tuple_count(),
            batch.len(),
            t_reregister as f64 / 1_000.0,
            t_incremental as f64 / 1_000.0,
            speedup
        );
    }
    let _ = writeln!(
        out,
        "\nThe store absorbs Section 7 updates in place (PR 5): columnar relations\n\
         append or tombstone, CSR adjacency takes deltas as an overlay consulted by\n\
         AdjacencyExpand and the fixpoint sweeps, and the registered graph entry is\n\
         maintained without pgView re-validation — so the apply cost tracks the\n\
         delta while re-registration re-interns and re-freezes the whole database.\n\
         Store::compact() folds every overlay and reclaims stale dictionary codes\n\
         with no observable change to any answer."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e18_runs() {
        assert!(e18_updates().contains('✓'));
    }

    #[test]
    fn e17_runs() {
        assert!(e17_coded().contains('✓'));
    }

    #[test]
    fn e16_runs() {
        assert!(e16_store().contains('✓'));
    }

    #[test]
    fn e15_runs() {
        assert!(e15_engine().contains('✓'));
    }

    #[test]
    fn e1_runs() {
        assert!(e1_transfers().contains('✓'));
    }
    #[test]
    fn e2_runs() {
        assert!(e2_semantics().contains('✓'));
    }
    #[test]
    fn e3_runs() {
        let r = e3_alternating();
        assert!(
            r.contains("0 valid")
                || r.contains(", 0 valid")
                || r.contains("0 valid (claim: 0)")
                || r.contains('✓')
        );
    }
    #[test]
    fn e4_runs() {
        assert!(e4_semilinear().contains("not semilinear"));
    }
    #[test]
    fn e5_runs() {
        assert!(e5_increasing().contains('✓'));
    }
    #[test]
    fn e6_runs() {
        assert!(e6_pgq_to_fo().contains('✓'));
    }
    #[test]
    fn e7_runs() {
        assert!(e7_fo_to_pgq().contains('✓'));
    }
    #[test]
    fn e8_runs() {
        let r = e8_arity();
        assert!(r.contains("Finding F1"));
    }
    #[test]
    fn e9_runs() {
        assert!(e9_hierarchy().contains("pigeonhole"));
    }
    #[test]
    fn e10_runs() {
        assert!(e10_scaling().contains('✓'));
    }
    #[test]
    fn e11_runs() {
        assert!(e11_baselines().contains("linear"));
    }
    #[test]
    fn e12_runs() {
        assert!(e12_rpq().contains("PGQro"));
    }
    #[test]
    fn e13_runs() {
        assert!(e13_updates().contains("pgView"));
    }
    #[test]
    fn e14_runs() {
        assert!(e14_compose().contains("first-class"));
    }
}
