//! The E20 planner-ablation driver (PR 10):
//!
//! ```sh
//! # CI planner-ablation smoke: 10³–10⁴ nodes, floors gated in release
//! cargo run --release -p pgq-bench --bin planner -- --max-nodes 10000
//!
//! # the committed full-scale record rides in BENCH_10.json (see the
//! # `report` binary); a standalone curve can be written with --json
//! cargo run --release -p pgq-bench --bin planner -- --max-nodes 100000 --json planner.json
//! ```
//!
//! Runs `pgq_bench::planner_suite` over both `pgq_workloads::scale`
//! generators at every decade up to `--max-nodes`, executing each
//! workload through both the cost-based planner (`cost_plan`) and the
//! rule pass (`store_plan`), prints one line per point with the
//! rule-over-cost speedup, and in optimized builds gates the curves on
//! `pgq_bench::assert_planner_floors` — parity everywhere, ≥ 1.5× on
//! the multi-join transfers workload at the largest scale.

use pgq_bench::planner;

fn arg(args: &[String], flag: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|p| args.get(p + 1))
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("{flag} takes a number, got {v:?}"))
        })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let max_nodes = arg(&args, "--max-nodes").unwrap_or(10_000);
    let threads = pgq_exec::ExecOptions::auto().threads;
    let points = planner::planner_suite(max_nodes, threads);
    for p in &points {
        println!(
            "{}/{}/{}: {} rows, cost {} µs vs rule {} µs = {:.2}x{}",
            p.workload,
            p.generator,
            p.nodes,
            p.rows,
            p.cost_ns / 1_000,
            p.rule_ns / 1_000,
            p.speedup(),
            if p.multi_join { " (multi-join)" } else { "" }
        );
    }
    if let Some(pos) = args.iter().position(|a| a == "--json") {
        let path = args
            .get(pos + 1)
            .map(String::as_str)
            .unwrap_or("planner.json");
        let mut w = pgq_exec::JsonWriter::pretty();
        w.begin_object();
        planner::write_planner_section(&mut w, &points);
        w.end_object();
        let mut json = w.finish();
        json.push('\n');
        std::fs::write(path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("planner ablation written to {path}.");
    }
    // Debug builds measure the interpreter, not the planner's plan
    // quality; only optimized runs are held to the E20 floors.
    if !cfg!(debug_assertions) {
        planner::assert_planner_floors(&points);
        println!("planner ablation floors hold (E20).");
    } else {
        println!("planner ablation floors skipped (debug build).");
    }
}
