//! The E19 ingestion scaling driver (PR 9):
//!
//! ```sh
//! # CI scaling-smoke: 10³–10⁴ nodes, floors gated in release mode
//! cargo run --release -p pgq-bench --bin scaling -- --max-nodes 10000
//!
//! # the committed full-scale record: 10³–10⁶ nodes (10⁷ edges)
//! cargo run --release -p pgq-bench --bin scaling -- --max-nodes 1000000 --json BENCH_9.json
//! ```
//!
//! Runs `pgq_bench::scaling_suite` over both `pgq_workloads::scale`
//! generators at every decade up to `--max-nodes` (the register-route
//! comparison stops at `--register-cap`, default 10⁵), prints one line
//! per scale point, and in optimized builds gates the curves on
//! `pgq_bench::assert_scaling_floors` — the loader-throughput floor,
//! the near-linear-growth bound, and bulk ≥ 5× the register route at
//! the largest common scale. With `--json <path>` it also writes the
//! curves as a standalone `{"scaling": …}` document.

use pgq_bench::scaling;

fn arg(args: &[String], flag: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|p| args.get(p + 1))
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("{flag} takes a number, got {v:?}"))
        })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let max_nodes = arg(&args, "--max-nodes").unwrap_or(10_000);
    let register_cap = arg(&args, "--register-cap").unwrap_or(scaling::REGISTER_CAP);
    let threads = pgq_exec::ExecOptions::auto().threads;
    let points = scaling::scaling_suite(max_nodes, register_cap, threads);
    for p in &points {
        let register = p
            .register_ns
            .map(|r| format!("{:.1}x bulk", r as f64 / p.bulk_load_ns as f64))
            .unwrap_or_else(|| "skipped".into());
        println!(
            "{}/{}: {} rows in {} ms ({:.0} rows/s), register {register}, \
             reach64 {} ms ({} nodes), coded join {} ms ({} rows), {} bytes resident",
            p.generator,
            p.nodes,
            p.rows,
            p.bulk_load_ns / 1_000_000,
            p.rows_per_sec(),
            p.reach_ns / 1_000_000,
            p.reach_nodes,
            p.join_ns / 1_000_000,
            p.join_rows,
            p.bytes.total()
        );
    }
    if let Some(pos) = args.iter().position(|a| a == "--json") {
        let path = args
            .get(pos + 1)
            .map(String::as_str)
            .unwrap_or("BENCH_9.json");
        let mut w = pgq_exec::JsonWriter::pretty();
        w.begin_object();
        scaling::write_scaling_section(&mut w, &points);
        w.end_object();
        let mut json = w.finish();
        json.push('\n');
        std::fs::write(path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("scaling curves written to {path}.");
    }
    // Debug builds measure the interpreter, not the loader; only
    // optimized runs are held to the E19 floors.
    if !cfg!(debug_assertions) {
        scaling::assert_scaling_floors(&points);
        println!("ingestion scaling floors hold (E19).");
    } else {
        println!("ingestion scaling floors skipped (debug build).");
    }
}
