//! Regenerates the measured section of `EXPERIMENTS.md`:
//!
//! ```sh
//! cargo run -p pgq-bench --bin report
//! ```
//!
//! Every experiment asserts its claim internally; reaching the end of
//! the output means every check passed.
//!
//! `--json [path]` instead runs the reduced-size engine-ablation smoke
//! (the `e12_engine`, `e13_store`, `e14_coded` and `e15_updates`
//! shapes: reference vs. hash-join engine vs. S16 store-backed engine,
//! coded vs. decoded, incremental apply vs. full re-registration, plus
//! the PR 6 morsel-parallelism ablation at 1 vs. 4 worker threads) and
//! writes the machine-readable bench record (default `BENCH_8.json`),
//! so CI accumulates a perf data point per run. Since PR 7 the record
//! also embeds per-operator `EXPLAIN ANALYZE` profiles for the E17
//! coded reachability closure and the E18 query-after-update shape
//! (`pgq_bench::profile_records`) under a `"profiles"` key; since PR 8
//! it adds a `"serve"` section — the mixed read/update QPS + p50/p99
//! record from the closed-loop `pgq-server` load generator
//! (`pgq_bench::serve_mixed_load`, which also replays the load into a
//! fresh sequential engine and panics on divergence). In optimized
//! builds the record is additionally held to the E17 coded-execution
//! floors (`pgq_bench::assert_coded_floors`), the E18 update floors
//! (`pgq_bench::assert_update_floors`), the PR 8 serve floors
//! (`pgq_bench::assert_serve_floors`: error-free at ≥ 100 QPS with a
//! bounded p99) and — on machines with at least 4 cores — the parallel
//! speedup floors (`pgq_bench::assert_parallel_floors`) plus the PR 7
//! metrics-overhead ceiling (`pgq_bench::assert_metrics_overhead`:
//! collecting metrics may cost at most 5% on the parallel transfers
//! join). Since PR 9 the record carries a `"scaling"` section — the
//! E19 bulk-ingestion curves over the `pgq_workloads::scale`
//! generators (`pgq_bench::scaling_suite`), sized by `--max-nodes`
//! (default 10⁴ for the CI smoke; the committed `BENCH_9.json` is a
//! full `--max-nodes 1000000` run) and held in optimized builds to the
//! loader-throughput, near-linear-growth and bulk-vs-register floors
//! (`pgq_bench::assert_scaling_floors`). Since PR 10 the record carries
//! a `"planner"` section — the E20 cost-vs-rule planner ablation
//! (`pgq_bench::planner_suite`, same generators and `--max-nodes`
//! decades) held in optimized builds to `assert_planner_floors`: the
//! cost-based planner at parity or better on every workload and ≥ 1.5×
//! the rule pass on the multi-join transfers workload at the largest
//! scale:
//!
//! ```sh
//! cargo run --release -p pgq-bench --bin report -- --json BENCH_10.json
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--json") {
        let path = args
            .get(pos + 1)
            .map(String::as_str)
            .unwrap_or("BENCH_10.json");
        let max_nodes = args
            .iter()
            .position(|a| a == "--max-nodes")
            .and_then(|p| args.get(p + 1))
            .map(|v| v.parse().expect("--max-nodes takes a node count"))
            .unwrap_or(10_000);
        let threads = pgq_exec::ExecOptions::auto().threads;
        let mut entries = pgq_bench::full_suite(1);
        let profiles = pgq_bench::profile_records(1);
        let serve = pgq_bench::serve_mixed_load(4, 30);
        entries.extend(pgq_bench::serve_entries(&serve));
        let scaling =
            pgq_bench::scaling_suite(max_nodes, pgq_bench::scaling::REGISTER_CAP, threads);
        entries.extend(pgq_bench::scaling_entries(&scaling));
        let planner = pgq_bench::planner_suite(max_nodes, threads);
        let json = pgq_bench::to_json_with_planner(&entries, &profiles, &serve, &scaling, &planner);
        std::fs::write(path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        for e in &entries {
            println!("{}: {} ns (|D| = {})", e.name, e.mean_ns, e.input_size);
        }
        for p in &scaling {
            println!(
                "scaling/{}/{}: {:.0} rows/s over {} rows",
                p.generator,
                p.nodes,
                p.rows_per_sec(),
                p.rows
            );
        }
        for p in &planner {
            println!(
                "planner/{}/{}/{}: cost {:.2}x rule over {} rows",
                p.workload,
                p.generator,
                p.nodes,
                p.speedup(),
                p.rows
            );
        }
        println!(
            "serve: {:.1} QPS over {} mixed requests ({} error(s))",
            serve.qps, serve.requests, serve.errors
        );
        // Debug builds drown the representation effect in uniform
        // interpretation overhead; only optimized runs are held to the
        // coded-vs-decoded and incremental-vs-reregister floors.
        if !cfg!(debug_assertions) {
            pgq_bench::assert_coded_floors(&entries);
            println!("coded-execution floors hold (E17).");
            pgq_bench::assert_update_floors(&entries);
            println!("incremental-update floors hold (E18).");
            pgq_bench::assert_serve_floors(&serve);
            println!("serve floors hold (PR 8).");
            pgq_bench::assert_scaling_floors(&scaling);
            println!("ingestion scaling floors hold (E19).");
            pgq_bench::assert_planner_floors(&planner);
            println!("planner ablation floors hold (E20).");
            // The speedup floors additionally need real cores to
            // parallelize onto; a 1-core runner measures only the
            // scheduling overhead.
            let cores = std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1);
            if cores >= 4 {
                pgq_bench::assert_parallel_floors(&entries);
                println!("parallel speedup floors hold (PR 6).");
                pgq_bench::assert_metrics_overhead(1);
                println!("metrics overhead ceiling holds (PR 7).");
            } else {
                println!("parallel speedup floors skipped ({cores} core(s) < 4).");
            }
        }
        println!("bench smoke written to {path}.");
        return;
    }
    println!("# Experiment report (generated by `cargo run -p pgq-bench --bin report`)\n");
    print!("{}", pgq_bench::full_report());
    println!("\nall experiment assertions passed.");
}
