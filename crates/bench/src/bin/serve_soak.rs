//! The CI serve-soak step (PR 8):
//!
//! ```sh
//! cargo run --release -p pgq-bench --bin serve_soak -- [clients] [iters]
//! ```
//!
//! Boots an in-process `pgq-server`, drives the closed-loop mixed
//! read/update load (`pgq_bench::serve_mixed_load`, default 4 clients
//! × 40 requests each), and fails on any error response, any
//! non-graceful disconnect, or divergence from the sequential-engine
//! oracle. Optimized builds are additionally held to the PR 8 serve
//! floors (`pgq_bench::assert_serve_floors`). CI runs it twice: under
//! `PGQ_THREADS=1` and at the default worker count.

fn main() {
    let mut args = std::env::args().skip(1);
    let clients: usize = args
        .next()
        .map(|a| a.parse().expect("clients must be a number"))
        .unwrap_or(4);
    let iters: usize = args
        .next()
        .map(|a| a.parse().expect("iters must be a number"))
        .unwrap_or(40);
    let report = pgq_bench::serve_mixed_load(clients, iters);
    println!(
        "serve soak: {} clients x {} iters, {} reads / {} writes, {} error(s)",
        report.clients, report.iters, report.reads, report.writes, report.errors
    );
    println!(
        "  {:.1} QPS, p50 {} us, p99 {} us",
        report.qps,
        report.p50_ns / 1_000,
        report.p99_ns / 1_000
    );
    assert_eq!(report.errors, 0, "serve soak saw error responses");
    // Latency/throughput floors only mean something optimized; debug
    // runs still get the error-free + oracle-agreement gates above
    // (divergence panics inside `serve_mixed_load`).
    if !cfg!(debug_assertions) {
        pgq_bench::assert_serve_floors(&report);
        println!("serve floors hold (PR 8).");
    }
    println!("serve soak passed.");
}
