//! The machine-readable perf smoke behind `BENCH_2.json`.
//!
//! `cargo run --release -p pgq-bench --bin report -- --json [path]`
//! runs a reduced-size engine-ablation suite (the `e12_engine`
//! Criterion bench's shapes at CI-friendly sizes) and serializes
//! `bench name → { mean ns, input size }`, so the perf trajectory
//! accumulates a data point per PR instead of living only in bench
//! logs.

use pgq_core::{builders, eval_with, EvalConfig, Query};
use pgq_relational::{Database, RaExpr, RowCondition};
use pgq_workloads::{families, transfers};
use std::fmt::Write as _;
use std::time::Instant;

/// One measured bench point.
#[derive(Debug, Clone)]
pub struct BenchEntry {
    /// Bench name, `shape/instance`.
    pub name: String,
    /// Instance size as total tuple count.
    pub input_size: usize,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: u128,
}

/// Mean nanoseconds of `f` over `iters` timed runs (after one warm-up).
pub fn mean_ns<F: FnMut()>(iters: usize, mut f: F) -> u128 {
    f(); // warm-up
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() / iters as u128
}

/// The edge-endpoint join `π_{$2,$4}(σ_{$1=$3}(S × T))` — the
/// product-then-filter shape the reference evaluator materializes in
/// full and the physical planner turns into a hash join.
pub fn endpoint_join() -> RaExpr {
    RaExpr::rel("S")
        .product(RaExpr::rel("T"))
        .select(RowCondition::col_eq(0, 2))
        .project(vec![1, 3])
}

/// Runs the reduced-size engine ablation and returns the measured
/// entries. `scale` multiplies the instance sizes (1 = CI smoke).
pub fn engine_suite(scale: usize) -> Vec<BenchEntry> {
    let scale = scale.max(1);
    let reach = Query::pattern_ro(
        builders::reachability_output(),
        ["N", "E", "S", "T", "L", "P"],
    );
    let join = endpoint_join();
    let mut out = Vec::new();

    let instances: Vec<(String, Database, usize)> = vec![
        (
            format!("grid_{}x5", 40 * scale),
            families::grid_db(40 * scale, 5),
            10,
        ),
        (
            format!("transfers_{}x{}", 500 * scale, 1000 * scale),
            transfers::canonical_transfers_db(500 * scale, 1000 * scale, 1_000, 7),
            3,
        ),
    ];
    for (name, db, iters) in &instances {
        let size = db.tuple_count();
        out.push(BenchEntry {
            name: format!("join_reference/{name}"),
            input_size: size,
            mean_ns: mean_ns(*iters, || {
                join.eval(db).unwrap();
            }),
        });
        out.push(BenchEntry {
            name: format!("join_physical/{name}"),
            input_size: size,
            mean_ns: mean_ns(*iters, || {
                pgq_exec::eval_ra(&join, db).unwrap();
            }),
        });
    }

    // Reachability routes on the grid instance only (the closure is the
    // dominant cost; the join ablation above covers the transfers db).
    let (name, db, _) = &instances[0];
    let size = db.tuple_count();
    out.push(BenchEntry {
        name: format!("reach_nfa/{name}"),
        input_size: size,
        mean_ns: mean_ns(5, || {
            eval_with(&reach, db, EvalConfig::default()).unwrap();
        }),
    });
    out.push(BenchEntry {
        name: format!("reach_physical/{name}"),
        input_size: size,
        mean_ns: mean_ns(5, || {
            eval_with(&reach, db, EvalConfig::physical()).unwrap();
        }),
    });
    out
}

/// Serializes entries as the `BENCH_2.json` object:
/// `{ "<name>": { "mean_ns": …, "input_size": … }, … }`.
pub fn to_json(entries: &[BenchEntry]) -> String {
    let mut out = String::from("{\n");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "  \"{}\": {{ \"mean_ns\": {}, \"input_size\": {} }}{comma}",
            e.name, e.mean_ns, e.input_size
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_stable() {
        let entries = vec![
            BenchEntry {
                name: "join_reference/tiny".into(),
                input_size: 10,
                mean_ns: 1234,
            },
            BenchEntry {
                name: "join_physical/tiny".into(),
                input_size: 10,
                mean_ns: 56,
            },
        ];
        let json = to_json(&entries);
        assert!(
            json.contains("\"join_reference/tiny\": { \"mean_ns\": 1234, \"input_size\": 10 },")
        );
        assert!(json.trim_end().ends_with('}'));
        // Exactly one entry separator: the last entry has no trailing comma.
        assert_eq!(json.matches("},").count(), 1);
        assert!(json.contains("\"join_physical/tiny\": { \"mean_ns\": 56, \"input_size\": 10 }\n"));
    }

    #[test]
    fn join_shapes_agree_on_a_small_instance() {
        let db = families::grid_db(4, 3);
        let join = endpoint_join();
        assert_eq!(
            pgq_exec::eval_ra(&join, &db).unwrap(),
            join.eval(&db).unwrap()
        );
    }
}
