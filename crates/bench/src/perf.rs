//! The machine-readable perf smoke behind the `BENCH_*.json` records
//! (`BENCH_2.json` through `BENCH_8.json`).
//!
//! `cargo run --release -p pgq-bench --bin report -- --json [path]`
//! runs a reduced-size engine-ablation suite (the `e12_engine`,
//! `e13_store` and `e14_coded` Criterion benches' shapes at
//! CI-friendly sizes) and serializes `bench name → { mean ns, input
//! size }`, so the perf trajectory accumulates a data point per PR
//! instead of living only in bench logs. `BENCH_2.json` (committed
//! with PR 2) records the hash-join engine against the reference;
//! `BENCH_3.json` adds the S16 store-backed route ([`store_suite`]);
//! `BENCH_4.json` adds the coded-vs-decoded execution ablation
//! ([`coded_suite`], experiment E17); `BENCH_5.json` adds the
//! incremental-update ablation ([`update_suite`], E18);
//! `BENCH_6.json` adds the morsel-parallelism ablation
//! ([`parallel_suite`], 1 vs. 4 worker threads); `BENCH_7.json` nests
//! the flat entries under `"benches"` and adds a `"profiles"` section
//! with per-operator `EXPLAIN ANALYZE` trees for the E17/E18 shapes
//! ([`profile_records`]), plus the metrics-overhead gate
//! ([`assert_metrics_overhead`]).

use pgq_core::{builders, eval_with, eval_with_store, EvalConfig, Query};
use pgq_exec::{
    execute_mode, execute_opts, execute_profiled, plan_ra, store_plan, BatchMode, ExecOptions,
    JsonWriter, PhysPlan, QueryProfile,
};
use pgq_relational::{Database, RaExpr, RelName, RowCondition};
use pgq_store::{GraphForm, Store};
use pgq_workloads::{families, transfers};
use std::fmt::Write as _;
use std::time::Instant;

/// One measured bench point.
#[derive(Debug, Clone)]
pub struct BenchEntry {
    /// Bench name, `shape/instance`.
    pub name: String,
    /// Instance size as total tuple count.
    pub input_size: usize,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: u128,
}

/// Mean nanoseconds of `f` over `iters` timed runs (after one warm-up).
pub fn mean_ns<F: FnMut()>(iters: usize, mut f: F) -> u128 {
    f(); // warm-up
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() / iters as u128
}

/// The edge-endpoint join `π_{$2,$4}(σ_{$1=$3}(S × T))` — the
/// product-then-filter shape the reference evaluator materializes in
/// full and the physical planner turns into a hash join.
pub fn endpoint_join() -> RaExpr {
    RaExpr::rel("S")
        .product(RaExpr::rel("T"))
        .select(RowCondition::col_eq(0, 2))
        .project(vec![1, 3])
}

/// Runs the reduced-size engine ablation and returns the measured
/// entries. `scale` multiplies the instance sizes (1 = CI smoke).
pub fn engine_suite(scale: usize) -> Vec<BenchEntry> {
    engine_suite_entries(scale, true)
}

/// The shared transfers instance both suites measure — one
/// constructor, so the `(name, data)` pair can never drift apart
/// between [`engine_suite`] and [`store_suite`].
fn transfers_instance(scale: usize) -> (String, Database) {
    (
        format!("transfers_{}x{}", 500 * scale, 1000 * scale),
        transfers::canonical_transfers_db(500 * scale, 1000 * scale, 1_000, 7),
    )
}

/// The engine ablation, optionally without the shapes [`store_suite`]
/// also measures (`join_physical` on the transfers instance,
/// `reach_physical` on the grid) — [`full_suite`] composes the two
/// without measuring anything twice.
fn engine_suite_entries(scale: usize, with_shared: bool) -> Vec<BenchEntry> {
    let scale = scale.max(1);
    let reach = Query::pattern_ro(
        builders::reachability_output(),
        ["N", "E", "S", "T", "L", "P"],
    );
    let join = endpoint_join();
    let mut out = Vec::new();

    let (transfers_name, transfers_db) = transfers_instance(scale);
    let instances: Vec<(String, Database, usize)> = vec![
        (
            format!("grid_{}x5", 40 * scale),
            families::grid_db(40 * scale, 5),
            10,
        ),
        (transfers_name.clone(), transfers_db, 3),
    ];
    for (name, db, iters) in &instances {
        let size = db.tuple_count();
        out.push(BenchEntry {
            name: format!("join_reference/{name}"),
            input_size: size,
            mean_ns: mean_ns(*iters, || {
                join.eval(db).unwrap();
            }),
        });
        // The transfers join baseline is the store suite's when
        // composing.
        if with_shared || *name != transfers_name {
            out.push(BenchEntry {
                name: format!("join_physical/{name}"),
                input_size: size,
                mean_ns: mean_ns(*iters, || {
                    pgq_exec::eval_ra(&join, db).unwrap();
                }),
            });
        }
    }

    // Reachability routes on the grid instance only (the closure is the
    // dominant cost; the join ablation above covers the transfers db).
    let (name, db, _) = &instances[0];
    let size = db.tuple_count();
    out.push(BenchEntry {
        name: format!("reach_nfa/{name}"),
        input_size: size,
        mean_ns: mean_ns(5, || {
            eval_with(&reach, db, EvalConfig::default()).unwrap();
        }),
    });
    // Likewise the grid reachability baseline.
    if with_shared {
        out.push(BenchEntry {
            name: format!("reach_physical/{name}"),
            input_size: size,
            mean_ns: mean_ns(5, || {
                eval_with(&reach, db, EvalConfig::physical()).unwrap();
            }),
        });
    }
    out
}

/// The canonical six view relation names.
fn canonical_views() -> [RelName; 6] {
    ["N", "E", "S", "T", "L", "P"].map(Into::into)
}

/// A session store over `db` with the canonical graph registered —
/// the one-time setup whose amortization the store suite measures.
pub fn canonical_store(db: &Database) -> Store {
    let mut store = Store::from_database(db);
    store
        .register_view_graph("G", canonical_views(), db, GraphForm::Exact(1))
        .expect("canonical workload views are valid");
    store
}

/// The S16 store ablation (experiment E16, `BENCH_3.json`): the same
/// reachability/TC workload through the PR 2 hash-join engine
/// (`reach_physical`, which rebuilds and revalidates the view per
/// query) and through the frozen store (`reach_store`, CSR sweeps over
/// the session catalog), plus the one-time registration cost
/// (`store_register`) and the endpoint join on columnar indexes
/// (`join_store`).
pub fn store_suite(scale: usize) -> Vec<BenchEntry> {
    let scale = scale.max(1);
    let reach = Query::pattern_ro(
        builders::reachability_output(),
        ["N", "E", "S", "T", "L", "P"],
    );
    let join = endpoint_join();
    let mut out = Vec::new();

    let instances: Vec<(String, Database, usize)> = vec![
        (
            format!("grid_{}x5", 40 * scale),
            families::grid_db(40 * scale, 5),
            10,
        ),
        (
            format!("cycle_{}", 150 * scale),
            families::cycle_db(150 * scale),
            10,
        ),
    ];
    for (name, db, iters) in &instances {
        let size = db.tuple_count();
        let store = canonical_store(db);
        out.push(BenchEntry {
            name: format!("store_register/{name}"),
            input_size: size,
            mean_ns: mean_ns(*iters, || {
                canonical_store(db);
            }),
        });
        out.push(BenchEntry {
            name: format!("reach_physical/{name}"),
            input_size: size,
            mean_ns: mean_ns(*iters, || {
                eval_with(&reach, db, EvalConfig::physical()).unwrap();
            }),
        });
        out.push(BenchEntry {
            name: format!("reach_store/{name}"),
            input_size: size,
            mean_ns: mean_ns(*iters, || {
                eval_with_store(&reach, db, EvalConfig::physical(), &store).unwrap();
            }),
        });
    }

    // The endpoint join on the transfers instance: hash join over row
    // vectors vs. AdjacencyExpand over the columnar store. The shared
    // constructor keeps the baseline name/instance identical to
    // `engine_suite`'s, which is why `full_suite` measures it once.
    let (instance, db) = transfers_instance(scale);
    let store = Store::from_database(&db);
    let size = db.tuple_count();
    out.push(BenchEntry {
        name: format!("join_physical/{instance}"),
        input_size: size,
        mean_ns: mean_ns(3, || {
            pgq_exec::eval_ra(&join, &db).unwrap();
        }),
    });
    out.push(BenchEntry {
        name: format!("join_store/{instance}"),
        input_size: size,
        mean_ns: mean_ns(3, || {
            pgq_exec::eval_ra_with(&join, &db, &store).unwrap();
        }),
    });
    out
}

/// The reachability plan of the coded-vs-decoded ablation: the
/// transitive closure of the *derived* step relation
/// `π_{$2,$4}(σ_{$1=$3}(S × T))` over a canonical graph database —
/// the FO\[TC\]-style pipeline every layer of the engine participates
/// in. The optimizer turns the step into a hash join (the store pass
/// then into a CSR `AdjacencyExpand`) with an explicit `Distinct`, and
/// the closure runs on the general semi-naive fixpoint, so the
/// ablation exercises coded scans, expansion, projection, dedup and
/// fixpoint accumulation — per-tuple `u32` work coded vs. per-tuple
/// `Value` work decoded.
pub fn reach_tc_plan(db: &Database) -> PhysPlan {
    let step = plan_ra(&endpoint_join(), &db.schema()).expect("canonical schema has S/T");
    PhysPlan::Fixpoint {
        base: Box::new(step.clone()),
        step: Box::new(step),
        join: vec![(1, 0)],
        project: vec![0, 3],
    }
}

/// The E17 coded-execution ablation (`BENCH_4.json`): the
/// reachability closure over the grid/cycle workloads and the endpoint
/// join over the (string-valued) transfers instance, each through the
/// store-backed engine in both representations —
/// `*_coded` (dictionary codes end-to-end, one decode at the result
/// boundary) vs. `*_decoded` (the PR 3 decode-at-scan route).
pub fn coded_suite(scale: usize) -> Vec<BenchEntry> {
    let scale = scale.max(1);
    let mut out = Vec::new();
    let instances: Vec<(String, Database, usize)> = vec![
        (
            format!("grid_{}x5", 40 * scale),
            families::grid_db(40 * scale, 5),
            10,
        ),
        (
            format!("cycle_{}", 150 * scale),
            families::cycle_db(150 * scale),
            10,
        ),
    ];
    for (name, db, iters) in &instances {
        let size = db.tuple_count();
        let store = Store::from_database(db);
        let plan = store_plan(reach_tc_plan(db), &store);
        for (mode_name, mode) in [("coded", BatchMode::Coded), ("decoded", BatchMode::Decoded)] {
            out.push(BenchEntry {
                name: format!("reach_store_{mode_name}/{name}"),
                input_size: size,
                mean_ns: mean_ns(*iters, || {
                    execute_mode(&plan, db, Some(&store), mode)
                        .unwrap()
                        .into_relation(Some(&store))
                        .unwrap();
                }),
            });
        }
    }
    // The endpoint join over string IBANs: per-tuple work is a heap
    // compare decoded and a `u32` compare coded, so this is where the
    // representation gap is widest.
    let (instance, db) = transfers_instance(scale);
    let store = Store::from_database(&db);
    let join = endpoint_join();
    let size = db.tuple_count();
    for (mode_name, mode) in [("coded", BatchMode::Coded), ("decoded", BatchMode::Decoded)] {
        out.push(BenchEntry {
            name: format!("join_store_{mode_name}/{instance}"),
            input_size: size,
            mean_ns: mean_ns(3, || {
                pgq_exec::eval_ra_mode(&join, &db, &store, mode).unwrap();
            }),
        });
    }
    out
}

/// A database holding one binary relation `R` — the edge endpoint
/// pairs of a canonical instance, joined out of `S`/`T`. Registering it
/// gives the store a per-relation CSR over `R`, so the PR 6 parallel
/// suite's fixpoint runs as source-sharded frontier sweeps rather than
/// the per-round semi-naive join (whose tiny deltas leave nothing to
/// parallelize on path-like workloads).
fn pair_db(db: &Database) -> Database {
    let pairs = pgq_exec::eval_ra(&endpoint_join(), db).expect("canonical S/T");
    let mut out = Database::new();
    out.add_relation("R", pairs);
    out
}

/// The CSR-shaped reachability closure over the pair relation `R`: the
/// exact `Fixpoint` pattern the executor routes onto the adjacency
/// index (base arity 2, step `IndexScan`, join `$1 = $0`, project
/// endpoints).
fn pair_reach_plan() -> PhysPlan {
    let scan = || Box::new(PhysPlan::IndexScan("R".into()));
    PhysPlan::Fixpoint {
        base: scan(),
        step: scan(),
        join: vec![(1, 0)],
        project: vec![0, 3],
    }
}

/// The PR 6 morsel-parallelism ablation (`BENCH_6.json`): the coded
/// executor at 1 vs. 4 worker threads, measured at the executor
/// boundary (`execute_opts` without the sorted-set decode, which is
/// sequential and identical on both sides) —
///
/// * `reach_par{1,4}`: the CSR reachability fixpoint over grid/cycle
///   pair relations, sharded by source node;
/// * `join_par{1,4}`: the endpoint hash join on a transfers instance
///   large enough for several 1024-row morsels per worker
///   (radix-partitioned build, morsel-parallel probe).
///
/// Instances are sized above the other suites' so the parallel
/// sections dominate scan/merge overheads; names stay disjoint from
/// [`store_suite`]/[`coded_suite`] keys.
pub fn parallel_suite(scale: usize) -> Vec<BenchEntry> {
    let scale = scale.max(1);
    let mut out = Vec::new();
    let threads = [
        ("par1", ExecOptions::with_threads(1)),
        ("par4", ExecOptions::with_threads(4)),
    ];

    let instances: Vec<(String, Database, usize)> = vec![
        (
            format!("grid_{}x5", 80 * scale),
            families::grid_db(80 * scale, 5),
            5,
        ),
        (
            format!("cycle_{}", 300 * scale),
            families::cycle_db(300 * scale),
            5,
        ),
    ];
    for (name, db, iters) in &instances {
        let rdb = pair_db(db);
        let store = Store::from_database(&rdb);
        let plan = store_plan(pair_reach_plan(), &store);
        let size = db.tuple_count();
        for (tag, opts) in &threads {
            out.push(BenchEntry {
                name: format!("reach_{tag}/{name}"),
                input_size: size,
                mean_ns: mean_ns(*iters, || {
                    execute_opts(&plan, &rdb, Some(&store), BatchMode::Coded, opts).unwrap();
                }),
            });
        }
    }

    // The endpoint join on a transfers instance with tens of thousands
    // of rows per side: string IBANs intern to `u32` codes, the probe
    // is the hot loop.
    let (accounts, xfers) = (10_000 * scale, 20_000 * scale);
    let instance = format!("transfers_{accounts}x{xfers}");
    let db = transfers::canonical_transfers_db(accounts, xfers, 1_000, 7);
    let store = Store::from_database(&db);
    let plan = store_plan(
        plan_ra(&endpoint_join(), &db.schema()).expect("canonical schema has S/T"),
        &store,
    );
    let size = db.tuple_count();
    for (tag, opts) in &threads {
        out.push(BenchEntry {
            name: format!("join_{tag}/{instance}"),
            input_size: size,
            mean_ns: mean_ns(3, || {
                execute_opts(&plan, &db, Some(&store), BatchMode::Coded, opts).unwrap();
            }),
        });
    }
    out
}

/// The PR 6 acceptance floors, checked on a measured entry set from an
/// **optimized** build on a machine with ≥ 4 cores (the CI runner; the
/// caller gates on `std::thread::available_parallelism`): 4 workers
/// must beat 1 worker by ≥ 1.8× on the grid/cycle reachability sweeps
/// and the transfers join. The floor is far below the near-linear
/// sweep scaling so scheduler noise cannot flake CI, but a regression
/// that serializes the executor (or a merge that eats the parallel
/// gain) still fails the build.
pub fn assert_parallel_floors(entries: &[BenchEntry]) {
    let find = |name: &str| {
        entries
            .iter()
            .find(|e| e.name == name)
            .unwrap_or_else(|| panic!("parallel floor gate: bench entry {name} missing"))
    };
    for inst in ["grid_80x5", "cycle_300"] {
        let one = find(&format!("reach_par1/{inst}"));
        let four = find(&format!("reach_par4/{inst}"));
        let speedup = one.mean_ns as f64 / four.mean_ns.max(1) as f64;
        assert!(
            speedup >= 1.8,
            "4-worker reachability should beat 1 worker on {inst} (got {speedup:.2}×)"
        );
    }
    let one = find("join_par1/transfers_10000x20000");
    let four = find("join_par4/transfers_10000x20000");
    let speedup = one.mean_ns as f64 / four.mean_ns.max(1) as f64;
    assert!(
        speedup >= 1.8,
        "the 4-worker endpoint join should beat 1 worker (got {speedup:.2}×)"
    );
}

/// The E18 update batch against a canonical `families` instance:
/// `adds` fresh nodes chained off node `0` and `removes` of the
/// generated edges (ids `10_000 + i`), plus one property write — a
/// mixed insert/delete workload whose size is independent of the
/// database, so incremental maintenance has something to amortize.
pub fn canonical_update_batch(adds: usize, removes: usize) -> Vec<pgq_graph::Update> {
    use pgq_graph::Update;
    use pgq_value::{Tuple, Value};
    let node = |i: i64| Tuple::unary(Value::int(i));
    let mut out = Vec::with_capacity(2 * adds + removes + 1);
    let mut prev = node(0);
    for i in 0..adds {
        let fresh = node(900_000 + i as i64);
        out.push(Update::AddNode(fresh.clone()));
        out.push(Update::AddEdge {
            id: node(910_000 + i as i64),
            src: prev,
            tgt: fresh.clone(),
        });
        prev = fresh;
    }
    for i in 0..removes {
        out.push(Update::RemoveEdge(node(10_000 + i as i64)));
    }
    out.push(Update::SetProp(
        node(0),
        Value::str("w"),
        Value::int(adds as i64),
    ));
    out
}

/// Reconstructs a [`Database`] from a store's live canonical six
/// relations — how the E18 shapes obtain "the updated database" for
/// the re-registration baseline and the post-update queries. Shared by
/// [`update_suite`], experiment E18, and the `e15_updates` bench so
/// the three can never measure different instances.
pub fn canonical_database_of(store: &Store) -> Database {
    let mut db = Database::new();
    for rel in ["N", "E", "S", "T", "L", "P"] {
        let arity = store
            .relation(&rel.into())
            .expect("canonical relation registered")
            .arity();
        let rows = store.scan(&rel.into()).expect("registered");
        db.add_relation(
            rel,
            pgq_relational::Relation::from_rows(arity, rows).expect("scan is well-typed"),
        );
    }
    db
}

/// Mean nanoseconds to absorb `batch` through `Store::apply_updates`,
/// each iteration on a pristine clone of `base` — the clone is
/// excluded from the timing (it is setup, not the work under
/// measurement).
pub fn time_incremental_apply(base: &Store, batch: &[pgq_graph::Update], iters: usize) -> u128 {
    let mut total = 0u128;
    for _ in 0..iters {
        let mut s = base.clone();
        let t0 = Instant::now();
        s.apply_updates("G", batch).expect("valid batch");
        total += t0.elapsed().as_nanos();
    }
    total / iters as u128
}

/// The E18 update ablation (`BENCH_5.json`): for each canonical
/// instance, the cost of absorbing [`canonical_update_batch`]
/// **incrementally** (`Store::apply_updates` on a registered store:
/// append/tombstone + delta overlays) vs. the only pre-PR 5 option — a
/// **full re-registration** of the updated database (re-intern, CSR
/// rebuild, `pgView` re-validation) — plus the reachability latency on
/// the updated store (`query_after_update`, reads through the
/// overlay).
pub fn update_suite(scale: usize) -> Vec<BenchEntry> {
    let scale = scale.max(1);
    let reach = Query::pattern_ro(
        builders::reachability_output(),
        ["N", "E", "S", "T", "L", "P"],
    );
    let batch = canonical_update_batch(16, 4);
    let mut out = Vec::new();
    let instances: Vec<(String, Database, usize)> = vec![
        (
            format!("grid_{}x5", 40 * scale),
            families::grid_db(40 * scale, 5),
            10,
        ),
        (
            format!("cycle_{}", 150 * scale),
            families::cycle_db(150 * scale),
            10,
        ),
    ];
    for (name, db, iters) in &instances {
        let size = db.tuple_count();
        let base = canonical_store(db);
        // The updated database, for the re-registration baseline and
        // the query measurements.
        let mut updated = base.clone();
        updated
            .apply_updates("G", &batch)
            .expect("the canonical batch is valid");
        let updated_db = canonical_database_of(&updated);
        out.push(BenchEntry {
            name: format!("update_incremental/{name}"),
            input_size: size,
            mean_ns: time_incremental_apply(&base, &batch, *iters),
        });
        // Full re-registration of the updated state — the pre-PR 5
        // way to make a store see an update.
        out.push(BenchEntry {
            name: format!("update_reregister/{name}"),
            input_size: size,
            mean_ns: mean_ns(*iters, || {
                canonical_store(&updated_db);
            }),
        });
        // Query latency straight after the update (overlay reads).
        out.push(BenchEntry {
            name: format!("query_after_update/{name}"),
            input_size: size,
            mean_ns: mean_ns(*iters, || {
                eval_with_store(&reach, &updated_db, EvalConfig::physical(), &updated).unwrap();
            }),
        });
    }
    out
}

/// The E18 acceptance floor, checked on a measured entry set from an
/// **optimized** build: absorbing the standard update batch
/// incrementally must be strictly cheaper than a full re-registration
/// on every instance — with a 2× margin so scheduler noise cannot
/// flake CI (the measured gap is far larger: the batch is O(Δ) work,
/// the rebuild is O(|D|) re-interning plus `pgView` re-validation).
pub fn assert_update_floors(entries: &[BenchEntry]) {
    let find = |name: &str| {
        entries
            .iter()
            .find(|e| e.name == name)
            .unwrap_or_else(|| panic!("update floor gate: bench entry {name} missing"))
    };
    for inst in ["grid_40x5", "cycle_150"] {
        let incremental = find(&format!("update_incremental/{inst}"));
        let reregister = find(&format!("update_reregister/{inst}"));
        let speedup = reregister.mean_ns as f64 / incremental.mean_ns.max(1) as f64;
        assert!(
            speedup >= 2.0,
            "incremental apply should beat re-registration on {inst} (got {speedup:.2}×)"
        );
    }
}

/// [`engine_suite`] plus [`store_suite`] plus [`coded_suite`] plus
/// [`update_suite`] plus [`parallel_suite`] — the `BENCH_6.json`
/// record. The hash-join baselines the first two suites both cover are
/// measured once, by the store suite; key uniqueness is asserted so a
/// drift between the suites' naming can never silently corrupt the
/// record.
pub fn full_suite(scale: usize) -> Vec<BenchEntry> {
    let mut out = engine_suite_entries(scale, false);
    out.extend(store_suite(scale));
    out.extend(coded_suite(scale));
    out.extend(update_suite(scale));
    out.extend(parallel_suite(scale));
    let mut seen = std::collections::HashSet::new();
    for e in &out {
        assert!(seen.insert(&e.name), "duplicate bench key {}", e.name);
    }
    out
}

/// The E17 acceptance floors, checked on a measured entry set from an
/// **optimized** build (the CI bench smoke runs `report --json` in
/// release): the coded route must beat the decoded PR 3 route on the
/// largest grid/cycle reachability instance (≥ 1.05×) and on the
/// string-valued join (≥ 1.2×). The floors are far below the measured
/// ratios (~1.3–1.5× and ~2×) so scheduler noise cannot flake CI, but
/// a regression that makes coded execution *slower* than decoding at
/// scan still fails the build.
pub fn assert_coded_floors(entries: &[BenchEntry]) {
    // Entry names are asserted present so a rename in `coded_suite`
    // cannot silently turn this gate into a no-op.
    let find = |name: &str| {
        entries
            .iter()
            .find(|e| e.name == name)
            .unwrap_or_else(|| panic!("coded floor gate: bench entry {name} missing"))
    };
    let ratio = |decoded: &str, coded: &str| -> (usize, f64) {
        let (d, c) = (find(decoded), find(coded));
        (c.input_size, d.mean_ns as f64 / c.mean_ns.max(1) as f64)
    };
    let (_, speedup) = ["grid_40x5", "cycle_150"]
        .iter()
        .map(|i| {
            ratio(
                &format!("reach_store_decoded/{i}"),
                &format!("reach_store_coded/{i}"),
            )
        })
        .max_by_key(|&(size, _)| size)
        .expect("two reachability instances");
    assert!(
        speedup >= 1.05,
        "coded reachability should beat decode-at-scan (got {speedup:.2}×)"
    );
    let (_, speedup) = ratio(
        "join_store_decoded/transfers_500x1000",
        "join_store_coded/transfers_500x1000",
    );
    assert!(
        speedup >= 1.2,
        "the coded string join should beat decode-at-scan (got {speedup:.2}×)"
    );
}

/// Per-operator `EXPLAIN ANALYZE` profiles for the E17 and E18 shapes —
/// the `"profiles"` section of `BENCH_7.json`. E17 is the coded
/// reachability closure ([`reach_tc_plan`]) executed instrumented; E18
/// is the store-route reachability query on a freshly-updated store
/// (the `query_after_update` shape), profiled through
/// `pgq_core::eval_with_store_profiled`. Deterministic fields (rows,
/// Δ-frontier sizes, build sizes) are stable across runs; timing fields
/// are runtime facts.
pub fn profile_records(scale: usize) -> Vec<(String, QueryProfile)> {
    let scale = scale.max(1);
    let mut out = Vec::new();

    // E17: the coded TC pipeline, per-operator.
    let name = format!("grid_{}x5", 40 * scale);
    let db = families::grid_db(40 * scale, 5);
    let store = Store::from_database(&db);
    let plan = store_plan(reach_tc_plan(&db), &store);
    let opts = ExecOptions::with_threads(4).with_metrics(true);
    let start = Instant::now();
    let (batch, root) = execute_profiled(&plan, &db, Some(&store), BatchMode::Coded, &opts)
        .expect("the E17 plan executes");
    let rel = batch.into_relation(Some(&store)).expect("decodable");
    out.push((
        format!("e17_reach_tc_coded/{name}"),
        QueryProfile {
            rows: rel.len() as u64,
            threads: opts.threads,
            elapsed_ns: start.elapsed().as_nanos() as u64,
            root,
        },
    ));

    // E18: reachability on the updated store (overlay reads).
    let reach = Query::pattern_ro(
        builders::reachability_output(),
        ["N", "E", "S", "T", "L", "P"],
    );
    let mut updated = canonical_store(&db);
    updated
        .apply_updates("G", &canonical_update_batch(16, 4))
        .expect("the canonical batch is valid");
    let updated_db = canonical_database_of(&updated);
    let (_, profile) = pgq_core::eval_with_store_profiled(
        &reach,
        &updated_db,
        EvalConfig::physical().with_threads(4),
        &updated,
    )
    .expect("the E18 query evaluates");
    out.push((format!("e18_query_after_update/{name}"), profile));
    out
}

/// The PR 7 observability gate: collecting per-operator metrics must
/// cost at most 5% wall clock on the parallel suite's join shape (the
/// hot-loop-heavy one; recording is per batch/operator, never per
/// tuple). Both sides take the **minimum** of three measured means so
/// scheduler noise cannot flake CI; only optimized builds are gated.
pub fn assert_metrics_overhead(scale: usize) {
    let scale = scale.max(1);
    let (accounts, xfers) = (10_000 * scale, 20_000 * scale);
    let db = transfers::canonical_transfers_db(accounts, xfers, 1_000, 7);
    let store = Store::from_database(&db);
    let plan = store_plan(
        plan_ra(&endpoint_join(), &db.schema()).expect("canonical schema has S/T"),
        &store,
    );
    let opts = ExecOptions::with_threads(4);
    let profiled = opts.clone().with_metrics(true);
    let best = |opts: &ExecOptions| {
        (0..3)
            .map(|_| {
                mean_ns(3, || {
                    execute_opts(&plan, &db, Some(&store), BatchMode::Coded, opts).unwrap();
                })
            })
            .min()
            .expect("three runs")
    };
    let off = best(&opts);
    let on = best(&profiled);
    let overhead = on as f64 / off.max(1) as f64;
    assert!(
        overhead <= 1.05,
        "metrics collection should cost ≤ 5% on the parallel join (got {overhead:.3}×)"
    );
}

/// Serializes entries as the `BENCH_*.json` object:
/// `{ "<name>": { "mean_ns": …, "input_size": … }, … }`.
pub fn to_json(entries: &[BenchEntry]) -> String {
    let mut out = String::from("{\n");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "  \"{}\": {{ \"mean_ns\": {}, \"input_size\": {} }}{comma}",
            e.name, e.mean_ns, e.input_size
        );
    }
    out.push_str("}\n");
    out
}

/// Writes the flat entry map as the `"benches"` section.
pub(crate) fn write_bench_section(w: &mut JsonWriter, entries: &[BenchEntry]) {
    w.key("benches");
    w.begin_object();
    for e in entries {
        w.key(&e.name);
        w.begin_object();
        w.key("mean_ns");
        w.number_u128(e.mean_ns);
        w.key("input_size");
        w.number(e.input_size as u64);
        w.end_object();
    }
    w.end_object();
}

/// Writes the per-operator trees as the `"profiles"` section.
pub(crate) fn write_profile_section(w: &mut JsonWriter, profiles: &[(String, QueryProfile)]) {
    w.key("profiles");
    w.begin_object();
    for (name, p) in profiles {
        w.key(name);
        p.write_json(w);
    }
    w.end_object();
}

/// The `BENCH_7.json` document: the flat entry map under `"benches"`
/// plus the per-operator [`QueryProfile`] trees under `"profiles"` —
/// one shared [`JsonWriter`], no serde.
pub fn to_json_with_profiles(
    entries: &[BenchEntry],
    profiles: &[(String, QueryProfile)],
) -> String {
    let mut w = JsonWriter::pretty();
    w.begin_object();
    write_bench_section(&mut w, entries);
    write_profile_section(&mut w, profiles);
    w.end_object();
    let mut out = w.finish();
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_stable() {
        let entries = vec![
            BenchEntry {
                name: "join_reference/tiny".into(),
                input_size: 10,
                mean_ns: 1234,
            },
            BenchEntry {
                name: "join_physical/tiny".into(),
                input_size: 10,
                mean_ns: 56,
            },
        ];
        let json = to_json(&entries);
        assert!(
            json.contains("\"join_reference/tiny\": { \"mean_ns\": 1234, \"input_size\": 10 },")
        );
        assert!(json.trim_end().ends_with('}'));
        // Exactly one entry separator: the last entry has no trailing comma.
        assert_eq!(json.matches("},").count(), 1);
        assert!(json.contains("\"join_physical/tiny\": { \"mean_ns\": 56, \"input_size\": 10 }\n"));
    }

    #[test]
    fn join_shapes_agree_on_a_small_instance() {
        let db = families::grid_db(4, 3);
        let join = endpoint_join();
        assert_eq!(
            pgq_exec::eval_ra(&join, &db).unwrap(),
            join.eval(&db).unwrap()
        );
    }

    #[test]
    fn parallel_suite_plans_agree_with_sequential() {
        // The exact shapes `parallel_suite` times, at bench-irrelevant
        // sizes: 4 workers must return byte-identical batches to 1.
        let rdb = pair_db(&families::grid_db(6, 3));
        let store = Store::from_database(&rdb);
        let plan = store_plan(pair_reach_plan(), &store);
        let one = execute_opts(
            &plan,
            &rdb,
            Some(&store),
            BatchMode::Coded,
            &ExecOptions::with_threads(1),
        )
        .unwrap();
        let four = execute_opts(
            &plan,
            &rdb,
            Some(&store),
            BatchMode::Coded,
            &ExecOptions::with_threads(4),
        )
        .unwrap();
        assert_eq!(
            one.into_relation(Some(&store)).unwrap(),
            four.into_relation(Some(&store)).unwrap()
        );

        let db = transfers::canonical_transfers_db(40, 120, 50, 7);
        let store = Store::from_database(&db);
        let plan = store_plan(plan_ra(&endpoint_join(), &db.schema()).unwrap(), &store);
        let one = execute_opts(
            &plan,
            &db,
            Some(&store),
            BatchMode::Coded,
            &ExecOptions::with_threads(1),
        )
        .unwrap();
        let four = execute_opts(
            &plan,
            &db,
            Some(&store),
            BatchMode::Coded,
            &ExecOptions::with_threads(4),
        )
        .unwrap();
        assert_eq!(
            one.into_relation(Some(&store)).unwrap(),
            four.into_relation(Some(&store)).unwrap()
        );
        assert_eq!(
            endpoint_join().eval(&db).unwrap(),
            execute_opts(
                &plan,
                &db,
                Some(&store),
                BatchMode::Coded,
                &ExecOptions::with_threads(4)
            )
            .unwrap()
            .into_relation(Some(&store))
            .unwrap()
        );
    }

    #[test]
    fn coded_and_decoded_reach_plans_agree() {
        let db = families::grid_db(4, 3);
        let store = Store::from_database(&db);
        let plan = store_plan(reach_tc_plan(&db), &store);
        let coded = execute_mode(&plan, &db, Some(&store), BatchMode::Coded)
            .unwrap()
            .into_relation(Some(&store))
            .unwrap();
        let decoded = execute_mode(&plan, &db, Some(&store), BatchMode::Decoded)
            .unwrap()
            .into_relation(Some(&store))
            .unwrap();
        let storeless = pgq_exec::execute(&reach_tc_plan(&db), &db)
            .unwrap()
            .into_relation();
        assert_eq!(coded, decoded);
        assert_eq!(coded, storeless);
        // The ablation really measures two representations: the plan
        // runs fully coded in Coded mode.
        assert!(plan.runs_coded(&store));
    }
}
