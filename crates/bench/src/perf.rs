//! The machine-readable perf smoke behind `BENCH_2.json` and
//! `BENCH_3.json`.
//!
//! `cargo run --release -p pgq-bench --bin report -- --json [path]`
//! runs a reduced-size engine-ablation suite (the `e12_engine` and
//! `e13_store` Criterion benches' shapes at CI-friendly sizes) and
//! serializes `bench name → { mean ns, input size }`, so the perf
//! trajectory accumulates a data point per PR instead of living only
//! in bench logs. `BENCH_2.json` (committed with PR 2) records the
//! hash-join engine against the reference; `BENCH_3.json` adds the
//! S16 store-backed route ([`store_suite`]).

use pgq_core::{builders, eval_with, eval_with_store, EvalConfig, Query};
use pgq_relational::{Database, RaExpr, RelName, RowCondition};
use pgq_store::{GraphForm, Store};
use pgq_workloads::{families, transfers};
use std::fmt::Write as _;
use std::time::Instant;

/// One measured bench point.
#[derive(Debug, Clone)]
pub struct BenchEntry {
    /// Bench name, `shape/instance`.
    pub name: String,
    /// Instance size as total tuple count.
    pub input_size: usize,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: u128,
}

/// Mean nanoseconds of `f` over `iters` timed runs (after one warm-up).
pub fn mean_ns<F: FnMut()>(iters: usize, mut f: F) -> u128 {
    f(); // warm-up
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() / iters as u128
}

/// The edge-endpoint join `π_{$2,$4}(σ_{$1=$3}(S × T))` — the
/// product-then-filter shape the reference evaluator materializes in
/// full and the physical planner turns into a hash join.
pub fn endpoint_join() -> RaExpr {
    RaExpr::rel("S")
        .product(RaExpr::rel("T"))
        .select(RowCondition::col_eq(0, 2))
        .project(vec![1, 3])
}

/// Runs the reduced-size engine ablation and returns the measured
/// entries. `scale` multiplies the instance sizes (1 = CI smoke).
pub fn engine_suite(scale: usize) -> Vec<BenchEntry> {
    engine_suite_entries(scale, true)
}

/// The shared transfers instance both suites measure — one
/// constructor, so the `(name, data)` pair can never drift apart
/// between [`engine_suite`] and [`store_suite`].
fn transfers_instance(scale: usize) -> (String, Database) {
    (
        format!("transfers_{}x{}", 500 * scale, 1000 * scale),
        transfers::canonical_transfers_db(500 * scale, 1000 * scale, 1_000, 7),
    )
}

/// The engine ablation, optionally without the shapes [`store_suite`]
/// also measures (`join_physical` on the transfers instance,
/// `reach_physical` on the grid) — [`full_suite`] composes the two
/// without measuring anything twice.
fn engine_suite_entries(scale: usize, with_shared: bool) -> Vec<BenchEntry> {
    let scale = scale.max(1);
    let reach = Query::pattern_ro(
        builders::reachability_output(),
        ["N", "E", "S", "T", "L", "P"],
    );
    let join = endpoint_join();
    let mut out = Vec::new();

    let (transfers_name, transfers_db) = transfers_instance(scale);
    let instances: Vec<(String, Database, usize)> = vec![
        (
            format!("grid_{}x5", 40 * scale),
            families::grid_db(40 * scale, 5),
            10,
        ),
        (transfers_name.clone(), transfers_db, 3),
    ];
    for (name, db, iters) in &instances {
        let size = db.tuple_count();
        out.push(BenchEntry {
            name: format!("join_reference/{name}"),
            input_size: size,
            mean_ns: mean_ns(*iters, || {
                join.eval(db).unwrap();
            }),
        });
        // The transfers join baseline is the store suite's when
        // composing.
        if with_shared || *name != transfers_name {
            out.push(BenchEntry {
                name: format!("join_physical/{name}"),
                input_size: size,
                mean_ns: mean_ns(*iters, || {
                    pgq_exec::eval_ra(&join, db).unwrap();
                }),
            });
        }
    }

    // Reachability routes on the grid instance only (the closure is the
    // dominant cost; the join ablation above covers the transfers db).
    let (name, db, _) = &instances[0];
    let size = db.tuple_count();
    out.push(BenchEntry {
        name: format!("reach_nfa/{name}"),
        input_size: size,
        mean_ns: mean_ns(5, || {
            eval_with(&reach, db, EvalConfig::default()).unwrap();
        }),
    });
    // Likewise the grid reachability baseline.
    if with_shared {
        out.push(BenchEntry {
            name: format!("reach_physical/{name}"),
            input_size: size,
            mean_ns: mean_ns(5, || {
                eval_with(&reach, db, EvalConfig::physical()).unwrap();
            }),
        });
    }
    out
}

/// The canonical six view relation names.
fn canonical_views() -> [RelName; 6] {
    ["N", "E", "S", "T", "L", "P"].map(Into::into)
}

/// A session store over `db` with the canonical graph registered —
/// the one-time setup whose amortization the store suite measures.
pub fn canonical_store(db: &Database) -> Store {
    let mut store = Store::from_database(db);
    store
        .register_view_graph("G", canonical_views(), db, GraphForm::Exact(1))
        .expect("canonical workload views are valid");
    store
}

/// The S16 store ablation (experiment E16, `BENCH_3.json`): the same
/// reachability/TC workload through the PR 2 hash-join engine
/// (`reach_physical`, which rebuilds and revalidates the view per
/// query) and through the frozen store (`reach_store`, CSR sweeps over
/// the session catalog), plus the one-time registration cost
/// (`store_register`) and the endpoint join on columnar indexes
/// (`join_store`).
pub fn store_suite(scale: usize) -> Vec<BenchEntry> {
    let scale = scale.max(1);
    let reach = Query::pattern_ro(
        builders::reachability_output(),
        ["N", "E", "S", "T", "L", "P"],
    );
    let join = endpoint_join();
    let mut out = Vec::new();

    let instances: Vec<(String, Database, usize)> = vec![
        (
            format!("grid_{}x5", 40 * scale),
            families::grid_db(40 * scale, 5),
            10,
        ),
        (
            format!("cycle_{}", 150 * scale),
            families::cycle_db(150 * scale),
            10,
        ),
    ];
    for (name, db, iters) in &instances {
        let size = db.tuple_count();
        let store = canonical_store(db);
        out.push(BenchEntry {
            name: format!("store_register/{name}"),
            input_size: size,
            mean_ns: mean_ns(*iters, || {
                canonical_store(db);
            }),
        });
        out.push(BenchEntry {
            name: format!("reach_physical/{name}"),
            input_size: size,
            mean_ns: mean_ns(*iters, || {
                eval_with(&reach, db, EvalConfig::physical()).unwrap();
            }),
        });
        out.push(BenchEntry {
            name: format!("reach_store/{name}"),
            input_size: size,
            mean_ns: mean_ns(*iters, || {
                eval_with_store(&reach, db, EvalConfig::physical(), &store).unwrap();
            }),
        });
    }

    // The endpoint join on the transfers instance: hash join over row
    // vectors vs. AdjacencyExpand over the columnar store. The shared
    // constructor keeps the baseline name/instance identical to
    // `engine_suite`'s, which is why `full_suite` measures it once.
    let (instance, db) = transfers_instance(scale);
    let store = Store::from_database(&db);
    let size = db.tuple_count();
    out.push(BenchEntry {
        name: format!("join_physical/{instance}"),
        input_size: size,
        mean_ns: mean_ns(3, || {
            pgq_exec::eval_ra(&join, &db).unwrap();
        }),
    });
    out.push(BenchEntry {
        name: format!("join_store/{instance}"),
        input_size: size,
        mean_ns: mean_ns(3, || {
            pgq_exec::eval_ra_with(&join, &db, &store).unwrap();
        }),
    });
    out
}

/// [`engine_suite`] plus [`store_suite`] — the `BENCH_3.json` record.
/// The hash-join baselines both suites cover are measured once, by the
/// store suite; key uniqueness is asserted so a drift between the two
/// suites' naming can never silently corrupt the record.
pub fn full_suite(scale: usize) -> Vec<BenchEntry> {
    let mut out = engine_suite_entries(scale, false);
    out.extend(store_suite(scale));
    let mut seen = std::collections::HashSet::new();
    for e in &out {
        assert!(seen.insert(&e.name), "duplicate bench key {}", e.name);
    }
    out
}

/// Serializes entries as the `BENCH_2.json`/`BENCH_3.json` object:
/// `{ "<name>": { "mean_ns": …, "input_size": … }, … }`.
pub fn to_json(entries: &[BenchEntry]) -> String {
    let mut out = String::from("{\n");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "  \"{}\": {{ \"mean_ns\": {}, \"input_size\": {} }}{comma}",
            e.name, e.mean_ns, e.input_size
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_stable() {
        let entries = vec![
            BenchEntry {
                name: "join_reference/tiny".into(),
                input_size: 10,
                mean_ns: 1234,
            },
            BenchEntry {
                name: "join_physical/tiny".into(),
                input_size: 10,
                mean_ns: 56,
            },
        ];
        let json = to_json(&entries);
        assert!(
            json.contains("\"join_reference/tiny\": { \"mean_ns\": 1234, \"input_size\": 10 },")
        );
        assert!(json.trim_end().ends_with('}'));
        // Exactly one entry separator: the last entry has no trailing comma.
        assert_eq!(json.matches("},").count(), 1);
        assert!(json.contains("\"join_physical/tiny\": { \"mean_ns\": 56, \"input_size\": 10 }\n"));
    }

    #[test]
    fn join_shapes_agree_on_a_small_instance() {
        let db = families::grid_db(4, 3);
        let join = endpoint_join();
        assert_eq!(
            pgq_exec::eval_ra(&join, &db).unwrap(),
            join.eval(&db).unwrap()
        );
    }
}
