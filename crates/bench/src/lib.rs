//! # pgq-bench
//!
//! Experiment harness (system S11; DESIGN.md §3): the E1–E20 experiments
//! as library functions shared by the `report` binary (which regenerates
//! the measured section of `EXPERIMENTS.md`), the `scaling` binary (the
//! E19 ingestion scaling curves and their CI gates), the `planner`
//! binary (the E20 cost-vs-rule planner ablation and its CI gates), and
//! the Criterion benches under `benches/` (which measure wall-clock
//! shapes).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod perf;
pub mod planner;
pub mod scaling;
pub mod serve;

pub use experiments::full_report;
pub use perf::{
    assert_coded_floors, assert_metrics_overhead, assert_parallel_floors, assert_update_floors,
    canonical_store, coded_suite, engine_suite, full_suite, parallel_suite, profile_records,
    store_suite, to_json, to_json_with_profiles, update_suite,
};
pub use planner::{assert_planner_floors, planner_suite, to_json_with_planner, PlannerPoint};
pub use scaling::{
    assert_scaling_floors, scaling_entries, scaling_suite, to_json_with_scaling, ScalePoint,
};
pub use serve::{assert_serve_floors, serve_entries, serve_mixed_load, to_json_with_serve};
