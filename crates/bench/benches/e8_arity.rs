//! E8 — Theorems 6.5/6.6: evaluation cost per TC arity k (configuration
//! space ≈ n^k) and the Finding F1 translation arities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgq_core::eval;
use pgq_logic::{eval_ordered, Formula, Term};
use pgq_translate::fo_to_pgq;
use pgq_value::Var;
use pgq_workloads::random::ve_db;
use std::time::Duration;

fn tck_formula(k: usize) -> (Formula, Vec<Var>) {
    let u: Vec<Var> = (0..k).map(|i| Var::new(format!("u{i}"))).collect();
    let w: Vec<Var> = (0..k).map(|i| Var::new(format!("w{i}"))).collect();
    let body = Formula::and_all(
        (0..k).map(|i| Formula::atom("E", [Term::Var(u[i].clone()), Term::Var(w[i].clone())])),
    );
    let x: Vec<Term> = (0..k).map(|i| Term::var(format!("x{i}"))).collect();
    let y: Vec<Term> = (0..k).map(|i| Term::var(format!("y{i}"))).collect();
    let phi = Formula::Tc {
        u,
        v: w,
        body: Box::new(body),
        x: x.clone(),
        y: y.clone(),
    };
    let order: Vec<Var> = x
        .iter()
        .chain(&y)
        .filter_map(|t| t.as_var().cloned())
        .collect();
    (phi, order)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_arity");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    let db = ve_db(8, 16, 4);
    for k in [1usize, 2] {
        let (phi, order) = tck_formula(k);
        group.bench_with_input(BenchmarkId::new("native_tc_k", k), &db, |b, db| {
            b.iter(|| eval_ordered(&phi, &order, db).unwrap())
        });
        let res = fo_to_pgq(&phi, &order, &db.schema()).unwrap();
        assert_eq!(res.max_view_arity, 2 * k); // Finding F1
        group.bench_with_input(BenchmarkId::new("translated_pgq_2k", k), &db, |b, db| {
            b.iter(|| eval(&res.query, db).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
