//! E10 — Corollary 6.4: data-complexity scaling of a fixed reachability
//! query across instance sizes and shapes, with the NFA-vs-reference
//! evaluator ablation (DESIGN.md §3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgq_core::{builders, eval_with, EvalConfig, Query};
use pgq_workloads::families::{cycle_db, grid_db, path_db};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_scaling");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    let q = Query::pattern_ro(
        builders::reachability_output(),
        ["N", "E", "S", "T", "L", "P"],
    );
    for n in [50usize, 100, 200] {
        for (shape, db) in [
            ("path", path_db(n)),
            ("cycle", cycle_db(n)),
            ("grid", grid_db(n / 5, 5)),
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{shape}_fast"), n),
                &db,
                |b, db| b.iter(|| eval_with(&q, db, EvalConfig::default()).unwrap()),
            );
            // Ablation: reference evaluator (no NFA fast path).
            if n <= 100 {
                group.bench_with_input(
                    BenchmarkId::new(format!("{shape}_reference"), n),
                    &db,
                    |b, db| b.iter(|| eval_with(&q, db, EvalConfig::reference()).unwrap()),
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
