//! E1 — Examples 1.1/2.1: full surface-stack cost (parse, catalog,
//! pgView, match) on growing transfer ledgers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgq_parser::Session;
use pgq_workloads::transfers::{random_transfers_db, TRANSFERS_DDL, TRANSFERS_QUERY};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_transfers");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for (accounts, transfers) in [(50usize, 150usize), (100, 300), (200, 600)] {
        let db = random_transfers_db(accounts, transfers, 1000, 7);
        // Parse + DDL only.
        group.bench_with_input(BenchmarkId::new("parse_and_ddl", accounts), &db, |b, db| {
            b.iter(|| {
                let mut s = Session::new();
                s.run_script(TRANSFERS_DDL, db).unwrap()
            })
        });
        // Full query (Example 2.1).
        let mut session = Session::new();
        session.run_script(TRANSFERS_DDL, &db).unwrap();
        group.bench_with_input(
            BenchmarkId::new("graph_table_query", accounts),
            &db,
            |b, db| b.iter(|| session.run_script(TRANSFERS_QUERY, db).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
