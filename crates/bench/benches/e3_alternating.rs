//! E3 — Theorem 4.1: cost of the recursive `PGQrw` query vs the bounded
//! unrolling on alternating-path instances of growing length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgq_core::eval;
use pgq_workloads::alternating::{
    alternating_path_db, enumerate_ro_views, ro_unrolled_query, rw_alternating_query,
};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_alternating");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for length in [8usize, 16, 32] {
        let db = alternating_path_db(length, None);
        let rw = rw_alternating_query(2);
        group.bench_with_input(BenchmarkId::new("pgqrw_recursive", length), &db, |b, db| {
            b.iter(|| eval(&rw, db).unwrap())
        });
        let bounded = ro_unrolled_query(8);
        group.bench_with_input(BenchmarkId::new("bounded_r8", length), &db, |b, db| {
            b.iter(|| eval(&bounded, db).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("prop_9_2_enumeration", length),
            &db,
            |b, db| b.iter(|| enumerate_ro_views(db)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
