//! E6 — Theorem 6.1: cost of the τ translation and the overhead of
//! evaluating τ(Q) in the logic engine vs Q natively.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgq_core::{builders, eval, Query};
use pgq_logic::eval_ordered;
use pgq_translate::pgq_to_fo;
use pgq_workloads::random::canonical_graph_db;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_pgq_to_fo");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    let q = Query::pattern_ro(
        builders::reachability_output(),
        ["N", "E", "S", "T", "L", "P"],
    );
    for n in [8usize, 16, 32] {
        let db = canonical_graph_db(n, 2 * n, 5, 5);
        let schema = db.schema();
        group.bench_with_input(BenchmarkId::new("translate", n), &schema, |b, schema| {
            b.iter(|| pgq_to_fo(&q, schema).unwrap())
        });
        let fo = pgq_to_fo(&q, &schema).unwrap();
        group.bench_with_input(BenchmarkId::new("eval_native", n), &db, |b, db| {
            b.iter(|| eval(&q, db).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("eval_translated", n), &db, |b, db| {
            b.iter(|| eval_ordered(&fo.formula, &fo.vars, db).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
