//! E5 — Example 5.3 / Figure 5: the PGQext copy-graph construction vs
//! the FO[TC2] route vs the direct dynamic program.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgq_core::eval;
use pgq_logic::eval_ordered;
use pgq_value::Var;
use pgq_workloads::increasing::{
    increasing_pairs_baseline, increasing_pairs_formula, increasing_pairs_query, random_ledger,
};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_increasing");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for m in [20usize, 40, 80] {
        let db = random_ledger(15, m, 25, 42);
        let q = increasing_pairs_query();
        group.bench_with_input(BenchmarkId::new("pgqext_view", m), &db, |b, db| {
            b.iter(|| eval(&q, db).unwrap())
        });
        let phi = increasing_pairs_formula();
        let order = [Var::new("x"), Var::new("y")];
        group.bench_with_input(BenchmarkId::new("fo_tc2", m), &db, |b, db| {
            b.iter(|| eval_ordered(&phi, &order, db).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("dp_baseline", m), &db, |b, db| {
            b.iter(|| increasing_pairs_baseline(db))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
