//! E14 bench — the coded-execution ablation (experiment E17): the
//! same store-backed plans in both batch representations. `coded`
//! flows dictionary codes through every operator (hash probes,
//! selection predicates, fixpoint dedup are `u32` work) and decodes
//! once at the set-semantics boundary; `decoded` is the PR 3
//! decode-at-scan route, paying `Value` clones and compares in every
//! hot loop. Shapes: the reachability closure of the derived step
//! relation on grid/cycle, and the endpoint join on the string-valued
//! transfers instance (the widest representation gap).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgq_bench::perf::{endpoint_join, reach_tc_plan};
use pgq_exec::{eval_ra_mode, execute_mode, store_plan, BatchMode};
use pgq_store::Store;
use pgq_workloads::{families, transfers};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e14_coded");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));

    for (name, db) in [
        ("grid_40x5", families::grid_db(40, 5)),
        ("cycle_150", families::cycle_db(150)),
    ] {
        let store = Store::from_database(&db);
        let plan = store_plan(reach_tc_plan(&db), &store);
        for (mode_name, mode) in [("coded", BatchMode::Coded), ("decoded", BatchMode::Decoded)] {
            group.bench_with_input(
                BenchmarkId::new(format!("reach_store_{mode_name}"), name),
                &db,
                |b, db| {
                    b.iter(|| {
                        execute_mode(&plan, db, Some(&store), mode)
                            .unwrap()
                            .into_relation(Some(&store))
                    })
                },
            );
        }
    }

    let join = endpoint_join();
    let db = transfers::canonical_transfers_db(500, 1000, 1_000, 7);
    let store = Store::from_database(&db);
    for (mode_name, mode) in [("coded", BatchMode::Coded), ("decoded", BatchMode::Decoded)] {
        group.bench_with_input(
            BenchmarkId::new(format!("join_store_{mode_name}"), "transfers_500x1000"),
            &db,
            |b, db| b.iter(|| eval_ra_mode(&join, db, &store, mode).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
