//! E7 — Theorem 6.2: cost of the T translation and of evaluating T(φ)
//! (reachability over a constructed view) vs native TC evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgq_core::eval;
use pgq_logic::{eval_ordered, Formula, Term};
use pgq_translate::fo_to_pgq;
use pgq_value::Var;
use pgq_workloads::random::ve_db;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_fo_to_pgq");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    let phi = Formula::tc(
        vec![Var::new("u")],
        vec![Var::new("w")],
        Formula::atom("E", ["u", "w"]),
        vec![Term::var("x")],
        vec![Term::var("y")],
    );
    let order = [Var::new("x"), Var::new("y")];
    for n in [10usize, 20, 40] {
        let db = ve_db(n, 3 * n, 6);
        let schema = db.schema();
        group.bench_with_input(BenchmarkId::new("translate", n), &schema, |b, schema| {
            b.iter(|| fo_to_pgq(&phi, &order, schema).unwrap())
        });
        let res = fo_to_pgq(&phi, &order, &schema).unwrap();
        group.bench_with_input(BenchmarkId::new("eval_native_tc", n), &db, |b, db| {
            b.iter(|| eval_ordered(&phi, &order, db).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("eval_translated", n), &db, |b, db| {
            b.iter(|| eval(&res.query, db).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
