//! E12 bench — the S15 engine ablation (experiment E15): the hash-join
//! physical path against the product-then-filter reference on the
//! largest `e10_scaling` and `transfers` instances, plus the
//! reachability routes (semi-naive fixpoint vs NFA BFS vs reference).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgq_bench::perf::endpoint_join;
use pgq_core::{builders, eval_with, EvalConfig, Query};
use pgq_workloads::{families, transfers};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_engine");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));

    let join = endpoint_join();
    let reach = Query::pattern_ro(
        builders::reachability_output(),
        ["N", "E", "S", "T", "L", "P"],
    );

    for (name, db) in [
        ("path_200", families::path_db(200)),
        ("grid_40x5", families::grid_db(40, 5)),
        (
            "transfers_500x1000",
            transfers::canonical_transfers_db(500, 1000, 1_000, 7),
        ),
    ] {
        group.bench_with_input(BenchmarkId::new("join_reference", name), &db, |b, db| {
            b.iter(|| join.eval(db).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("join_physical", name), &db, |b, db| {
            b.iter(|| pgq_exec::eval_ra(&join, db).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("reach_nfa", name), &db, |b, db| {
            b.iter(|| eval_with(&reach, db, EvalConfig::default()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("reach_physical", name), &db, |b, db| {
            b.iter(|| eval_with(&reach, db, EvalConfig::physical()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
