//! E13 bench — the S16 store ablation (experiment E16): one
//! reachability/TC workload through three engines — the Figure 2/NFA
//! routes, the PR 2 hash-join physical engine (which re-materializes
//! and revalidates the view per query), and the store-backed engine
//! (frozen CSR adjacency, registered once per session) — plus the
//! endpoint join on columnar indexes and the one-time registration
//! cost the session amortizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgq_bench::perf::{canonical_store, endpoint_join};
use pgq_core::{builders, eval_with, eval_with_store, EvalConfig, Query};
use pgq_store::Store;
use pgq_workloads::{families, transfers};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_store");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));

    let reach = Query::pattern_ro(
        builders::reachability_output(),
        ["N", "E", "S", "T", "L", "P"],
    );
    for (name, db) in [
        ("grid_40x5", families::grid_db(40, 5)),
        ("cycle_150", families::cycle_db(150)),
    ] {
        let store = canonical_store(&db);
        group.bench_with_input(BenchmarkId::new("store_register", name), &db, |b, db| {
            b.iter(|| canonical_store(db))
        });
        group.bench_with_input(BenchmarkId::new("reach_nfa", name), &db, |b, db| {
            b.iter(|| eval_with(&reach, db, EvalConfig::default()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("reach_physical", name), &db, |b, db| {
            b.iter(|| eval_with(&reach, db, EvalConfig::physical()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("reach_store", name), &db, |b, db| {
            b.iter(|| eval_with_store(&reach, db, EvalConfig::physical(), &store).unwrap())
        });
    }

    let join = endpoint_join();
    let db = transfers::canonical_transfers_db(500, 1000, 1_000, 7);
    let store = Store::from_database(&db);
    group.bench_with_input(
        BenchmarkId::new("join_physical", "transfers_500x1000"),
        &db,
        |b, db| b.iter(|| pgq_exec::eval_ra(&join, db).unwrap()),
    );
    group.bench_with_input(
        BenchmarkId::new("join_store", "transfers_500x1000"),
        &db,
        |b, db| b.iter(|| pgq_exec::eval_ra_with(&join, db, &store).unwrap()),
    );
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
