//! E11 — the Section 4.1 NL baselines, measured: the same reachability
//! question through four engines (PGQrw view+pattern, the FO[TC]
//! relational evaluator, hand-written linear Datalog, and the
//! FO[TC]→Datalog bridge), on grids of growing size. The shapes to
//! look for: all four are polynomial in |D| (NL ⊆ P data complexity);
//! semi-naive Datalog and the NFA pattern engine sit well below the
//! quantifier-enumerating logic evaluator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgq_core::{builders, Query};
use pgq_datalog::{compile_formula, evaluate, evaluate_naive, parse_program};
use pgq_logic::{eval_ordered, Formula, Term};
use pgq_value::Var;
use pgq_workloads::families;
use std::time::Duration;

fn reach_formula() -> Formula {
    let step = Formula::exists(
        ["e"],
        Formula::atom("S", ["e", "u"]).and(Formula::atom("T", ["e", "v"])),
    );
    Formula::tc(
        vec![Var::new("u")],
        vec![Var::new("v")],
        step,
        vec![Term::var("x")],
        vec![Term::var("y")],
    )
    .and(Formula::atom("N", ["x"]).and(Formula::atom("N", ["y"])))
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_baselines");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));

    let program = parse_program(
        "reach(X, X) :- N(X).\n\
         reach(X, Z) :- reach(X, Y), step(Y, Z).\n\
         step(X, Y) :- S(E, X), T(E, Y).",
    )
    .unwrap();
    let phi = reach_formula();
    let compiled = compile_formula(&phi).unwrap();

    for w in [4usize, 8, 12] {
        let db = families::grid_db(w, 4);
        group.bench_with_input(BenchmarkId::new("pgqrw_pattern", w), &db, |b, db| {
            let q = Query::pattern_ro(
                builders::reachability_output(),
                ["N", "E", "S", "T", "L", "P"],
            );
            b.iter(|| pgq_core::eval(&q, db).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("fo_tc_eval", w), &db, |b, db| {
            b.iter(|| eval_ordered(&phi, &[Var::new("x"), Var::new("y")], db).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("datalog_semi_naive", w), &db, |b, db| {
            b.iter(|| evaluate(&program, db).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("datalog_naive", w), &db, |b, db| {
            b.iter(|| evaluate_naive(&program, db).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("bridge_compiled", w), &db, |b, db| {
            b.iter(|| evaluate(&compiled.program, db).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
