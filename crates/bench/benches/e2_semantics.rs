//! E2 — Figure 2 vs Figure 6 vs the NFA engine: relative evaluator cost
//! on the same pattern and graph (Prop 9.1 equivalence is asserted in
//! tests; here we measure the price of each semantics).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgq_core::{build_view, EvalConfig, Query, ViewOp};
use pgq_pattern::{eval_pattern, eval_pattern_paths, try_eval_pairs, Pattern};
use pgq_workloads::random::canonical_graph_db;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_semantics");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for n in [10usize, 20, 40] {
        let db = canonical_graph_db(n, 2 * n, 5, 3);
        let views = ["N", "E", "S", "T", "L", "P"].map(Query::rel);
        let g = build_view(&views, ViewOp::Unary, &db, EvalConfig::default()).unwrap();
        let pattern = Pattern::node("x")
            .then(Pattern::any_edge().repeat(1, 3))
            .then(Pattern::node("y"));
        group.bench_with_input(BenchmarkId::new("endpoint_fig2", n), &g, |b, g| {
            b.iter(|| eval_pattern(&pattern, g).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("paths_fig6", n), &g, |b, g| {
            b.iter(|| eval_pattern_paths(&pattern, g).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("nfa_engine", n), &g, |b, g| {
            b.iter(|| try_eval_pairs(&pattern, g).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
