//! E4 — Theorem 4.2: spectrum computation, periodicity detection, and
//! semilinear-set algebra costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgq_logic::{detect_period, powers_of_two_bits, UpSet};
use pgq_workloads::families::{two_cycles_db, walk_length_spectrum};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_semilinear");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for (p, q) in [(3usize, 5usize), (7, 11), (13, 17)] {
        let db = two_cycles_db(p, q, true);
        group.bench_with_input(
            BenchmarkId::new("spectrum", format!("{p}x{q}")),
            &db,
            |b, db| b.iter(|| walk_length_spectrum(db, 0, p as i64, 512)),
        );
        let bits = walk_length_spectrum(&db, 0, p as i64, 512);
        group.bench_with_input(
            BenchmarkId::new("detect_period", format!("{p}x{q}")),
            &bits,
            |b, bits| b.iter(|| detect_period(bits, 256, 64)),
        );
    }
    // The non-semilinear witness: exhaustive failure to find a period.
    let p2 = powers_of_two_bits(1024);
    group.bench_function("powers_of_two_refutation", |b| {
        b.iter(|| {
            assert_eq!(detect_period(&p2, 512, 64), None);
        })
    });
    // UpSet Boolean algebra.
    let evens = UpSet::from_linear(0, 2);
    let mult3 = UpSet::from_linear(1, 3);
    group.bench_function("upset_algebra", |b| {
        b.iter(|| {
            evens
                .union(&mult3)
                .complement()
                .intersect(&evens.sum(&mult3))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
