//! E15 bench — incremental store maintenance (experiment E18): the
//! cost of making a registered store see an update. `incremental`
//! applies the standard mixed batch through `Store::apply_updates`
//! (columnar append/tombstone, CSR delta overlays, in-place graph
//! entry maintenance — O(Δ) work); `reregister` is the pre-PR 5
//! alternative, a full `Store::from_database` + `register_view_graph`
//! of the updated instance (re-intern everything, rebuild every CSR,
//! re-validate `pgView` — O(|D|) work). `query_after_update` measures
//! the reachability read through the resulting overlay.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgq_bench::perf::{canonical_database_of, canonical_store, canonical_update_batch};
use pgq_core::{builders, eval_with_store, EvalConfig, Query};
use pgq_workloads::families;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e15_updates");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));

    let batch = canonical_update_batch(16, 4);
    for (name, db) in [
        ("grid_40x5", families::grid_db(40, 5)),
        ("cycle_150", families::cycle_db(150)),
    ] {
        let base = canonical_store(&db);
        let mut updated = base.clone();
        updated.apply_updates("G", &batch).unwrap();
        let updated_db = canonical_database_of(&updated);

        group.bench_with_input(BenchmarkId::new("incremental", name), &base, |b, base| {
            b.iter_batched(
                || base.clone(),
                |mut s| s.apply_updates("G", &batch).unwrap(),
                criterion::BatchSize::SmallInput,
            )
        });
        group.bench_with_input(
            BenchmarkId::new("reregister", name),
            &updated_db,
            |b, db| b.iter(|| canonical_store(db)),
        );
        let reach = Query::pattern_ro(
            builders::reachability_output(),
            ["N", "E", "S", "T", "L", "P"],
        );
        group.bench_with_input(
            BenchmarkId::new("query_after_update", name),
            &updated_db,
            |b, db| {
                b.iter(|| eval_with_store(&reach, db, EvalConfig::physical(), &updated).unwrap())
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
