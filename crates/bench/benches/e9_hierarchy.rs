//! E9 — Theorem 5.2 / Theorem 6.8: pair-reachability (the separating
//! query φ⁽²⁾) on torus-diagonal instances, via the constructive
//! translation, plus the cardinality check that rules unary identifiers
//! out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgq_core::eval;
use pgq_logic::{eval_ordered, Formula, Term};
use pgq_relational::Database;
use pgq_translate::fo_to_pgq;
use pgq_value::{tuple, Var};
use std::time::Duration;

fn torus_db(n: usize) -> Database {
    let mut db = Database::new();
    for a in 0..n as i64 {
        for b in 0..n as i64 {
            db.insert("E4", tuple![a, b, (a + 1) % n as i64, (b + 1) % n as i64])
                .unwrap();
        }
    }
    db
}

fn pair_reach() -> Formula {
    Formula::tc(
        vec![Var::new("u1"), Var::new("u2")],
        vec![Var::new("w1"), Var::new("w2")],
        Formula::atom("E4", ["u1", "u2", "w1", "w2"]),
        vec![Term::constant(0), Term::constant(0)],
        vec![Term::constant(1), Term::constant(1)],
    )
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_hierarchy");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    let phi = pair_reach();
    for n in [3usize, 5, 8] {
        let db = torus_db(n);
        // Cardinality evidence: more pair-steps than domain elements.
        assert!(db.get(&"E4".into()).unwrap().len() > db.active_domain().len());
        group.bench_with_input(BenchmarkId::new("fo_tc2_native", n), &db, |b, db| {
            b.iter(|| eval_ordered(&phi, &[], db).unwrap())
        });
        let res = fo_to_pgq(&phi, &[], &db.schema()).unwrap();
        group.bench_with_input(BenchmarkId::new("pgq_pair_view", n), &db, |b, db| {
            b.iter(|| eval(&res.query, db).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
