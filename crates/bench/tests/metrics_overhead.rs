//! Manual smoke for the PR 7 metrics-overhead ceiling
//! (`pgq_bench::assert_metrics_overhead`): collecting per-operator
//! metrics may cost at most 5% on the parallel transfers join.
//!
//! Perf-asserting, so ignored by default; CI runs it through the
//! release `report --json` binary on multi-core runners. To run
//! locally:
//!
//! ```sh
//! cargo test -p pgq-bench --release -- --ignored
//! ```

#[test]
#[ignore = "perf assertion; run in release on a multi-core machine"]
fn metrics_overhead_within_ceiling() {
    pgq_bench::assert_metrics_overhead(1);
}
