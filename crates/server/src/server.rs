//! The TCP line protocol: one session per connection over the shared
//! [`Engine`].
//!
//! Wire format (UTF-8 text, newline-framed):
//!
//! * on connect the server sends a greeting line, then a lone `.`;
//! * the client sends **one line per request** — a shell-grammar
//!   statement, a `;`-separated batch of them, or `QUIT`;
//! * the server answers with zero or more response lines (the shell's
//!   `-- ` / `!! ` / bare-row conventions) terminated by a lone `.`;
//! * protocol-level failures (a line longer than [`MAX_LINE`], bytes
//!   that are not valid UTF-8) produce a typed `!! protocol: …`
//!   response — the connection stays up and the next line is read
//!   normally;
//! * `QUIT` (or `EXIT`, or just closing the socket — mid-line
//!   included) ends the session; the server and its shared store are
//!   unaffected.

use crate::engine::{split_statements, Engine, SessionState};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Upper bound on one request line, terminator included. Longer lines
/// are drained and answered with a typed protocol error.
pub const MAX_LINE: usize = 64 * 1024;

/// The response terminator line.
pub const TERMINATOR: &str = ".";

/// A running server: background accept loop plus per-connection
/// session threads, all sharing one [`Engine`].
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral test port)
    /// and starts accepting connections on a background thread.
    pub fn bind(engine: Arc<Engine>, addr: impl ToSocketAddrs) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || accept_loop(&listener, &engine, &flag));
        Ok(Server {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (the source of the ephemeral port in tests).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting new connections and joins the accept loop.
    /// Existing sessions run to completion on their own threads.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, engine: &Arc<Engine>, stop: &Arc<AtomicBool>) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = conn else { continue };
        let engine = Arc::clone(engine);
        // Session threads are detached: they end when their client
        // disconnects, and they hold no lock between requests, so
        // server shutdown never waits on an idle client.
        std::thread::spawn(move || {
            let _ = serve_connection(stream, &engine);
        });
    }
}

/// One request line, read with a hard size bound.
enum LineRead {
    /// A complete line (terminator stripped).
    Line(String),
    /// The peer closed the connection (mid-line counts: a partial
    /// trailing line without its newline is discarded, not executed).
    Eof,
    /// The line exceeded [`MAX_LINE`]; the excess was drained.
    Oversized,
    /// The line was not valid UTF-8.
    BadUtf8,
}

fn read_line_bounded(reader: &mut impl BufRead) -> io::Result<LineRead> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            return Ok(LineRead::Eof);
        }
        if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
            buf.extend_from_slice(&chunk[..pos]);
            reader.consume(pos + 1);
            if buf.len() > MAX_LINE {
                return Ok(LineRead::Oversized);
            }
            if buf.last() == Some(&b'\r') {
                buf.pop();
            }
            return match String::from_utf8(buf) {
                Ok(s) => Ok(LineRead::Line(s)),
                Err(_) => Ok(LineRead::BadUtf8),
            };
        }
        let len = chunk.len();
        // Keep accumulating only up to the bound; oversized lines are
        // drained chunk by chunk without buffering the flood.
        if buf.len() <= MAX_LINE {
            buf.extend_from_slice(chunk);
        }
        reader.consume(len);
    }
}

fn send(stream: &mut TcpStream, lines: &[String]) -> io::Result<()> {
    let mut out = String::new();
    for line in lines {
        out.push_str(line);
        out.push('\n');
    }
    out.push_str(TERMINATOR);
    out.push('\n');
    stream.write_all(out.as_bytes())?;
    stream.flush()
}

/// Serves one connection until `QUIT` or disconnect. Any statement
/// failure is a typed `!! ` response; only genuine socket errors
/// terminate the loop, and those only end *this* session.
fn serve_connection(mut stream: TcpStream, engine: &Arc<Engine>) -> io::Result<()> {
    // Request/response lines are tiny; without this Nagle + delayed
    // ACK can stall each round trip by tens of milliseconds.
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut session = SessionState::default();
    send(
        &mut stream,
        &["-- pgq-server ready (one statement batch per line; QUIT to leave)".to_string()],
    )?;
    loop {
        match read_line_bounded(&mut reader)? {
            LineRead::Eof => return Ok(()),
            LineRead::Oversized => send(
                &mut stream,
                &[format!("!! protocol: request exceeds {MAX_LINE} bytes")],
            )?,
            LineRead::BadUtf8 => send(
                &mut stream,
                &["!! protocol: request is not valid UTF-8".to_string()],
            )?,
            LineRead::Line(line) => {
                let trimmed = line.trim();
                if trimmed.eq_ignore_ascii_case("QUIT") || trimmed.eq_ignore_ascii_case("EXIT") {
                    send(&mut stream, &["-- bye".to_string()])?;
                    return Ok(());
                }
                let mut lines = Vec::new();
                for stmt in split_statements(&line) {
                    lines.extend(engine.statement(&mut session, stmt.trim()));
                }
                send(&mut stream, &lines)?;
            }
        }
    }
}

/// A blocking line-protocol client — the counterpart the protocol
/// tests and the `pgq-bench` load generator drive.
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects and consumes the greeting.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let mut client = Client { stream, reader };
        client.read_response()?;
        Ok(client)
    }

    /// Sends one request line and returns the response lines (without
    /// the terminator).
    pub fn request(&mut self, line: &str) -> io::Result<Vec<String>> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()?;
        self.read_response()
    }

    /// Sends raw bytes without framing — the malformed-input tests'
    /// entry point.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Reads one `.`-terminated response.
    pub fn read_response(&mut self) -> io::Result<Vec<String>> {
        let mut lines = Vec::new();
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed mid-response",
                ));
            }
            let line = line.trim_end_matches(['\n', '\r']);
            if line == TERMINATOR {
                return Ok(lines);
            }
            lines.push(line.to_string());
        }
    }

    /// Half-closes the write side (simulates a client vanishing
    /// mid-line) and drains whatever the server still sends.
    pub fn abort_write(&mut self) -> io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Write)?;
        let mut rest = Vec::new();
        let _ = self.reader.read_to_end(&mut rest);
        Ok(())
    }
}
