//! The shared query engine behind every connection: one serialized
//! writer over a [`ConcurrentStore`], readers pinned to published
//! [`StoreSnapshot`]s (ARCHITECTURE.md §2 step 11).
//!
//! The engine speaks the shell grammar (`examples/sqlpgq_shell.rs`):
//! DDL and `GRAPH_TABLE` queries go through the real parser, row
//! mutations / `STATS` / `METRICS` / `COMPACT` / `SET THREADS` /
//! `SET PLANNER` are the shell's session commands. The concurrency discipline layered on
//! top:
//!
//! * the **base state** (live [`Database`] + parser [`Session`]
//!   catalog) sits behind a mutex, held only while parsing/lowering a
//!   statement or applying a mutation — never across query execution;
//! * the **store** holds, per catalog graph `G`, the six canonical
//!   view relations staged under reserved names (`⟨N:G⟩` … `⟨P:G⟩`)
//!   plus the frozen view graph, maintained by the single serialized
//!   writer and republished as an immutable snapshot after every
//!   committed batch;
//! * reads grab the current read view (an `Arc` swap), drop every
//!   lock, and evaluate on the morsel-parallel coded pipeline against
//!   their pinned snapshot — a concurrent writer or `COMPACT` never
//!   perturbs an in-flight query.

use pgq_core::{eval_with_snapshot, eval_with_snapshot_profiled, EvalConfig, Query};
use pgq_exec::PlannerChoice;
use pgq_parser::{lower_query, parse_statement, Outcome, Session, Statement};
use pgq_relational::{Database, RelName, Relation};
use pgq_store::{
    AccessSnapshot, ConcurrentStore, DegreeHistogram, GraphForm, Store, StoreSnapshot,
    StoreStatistics, StoreStats,
};
use pgq_value::{Tuple, Value};
use std::collections::BTreeMap;
use std::convert::Infallible;
use std::sync::{Arc, Mutex, PoisonError, RwLock};

/// Per-connection session knobs (each TCP connection gets its own).
#[derive(Debug, Default, Clone)]
pub struct SessionState {
    /// `SET THREADS n;` — 0 means the environment default.
    pub threads: usize,
    /// `SET PLANNER {cost|rule};` — cost-based is the default.
    pub planner: PlannerChoice,
}

/// One catalog graph staged for snapshot evaluation: the six canonical
/// view relations under this graph's reserved names, plus the
/// identifier arity bound the view graph was frozen with.
#[derive(Debug, Clone)]
struct GraphView {
    names: [RelName; 6],
    k: usize,
    /// The staged relations as a database — the schema/fallback side
    /// of evaluation (the store side lives in the published snapshot).
    db: Database,
}

/// An immutable read configuration: a pinned store snapshot plus the
/// staged graphs that snapshot serves. Swapped atomically as one
/// `Arc` — a reader's snapshot and graph map always agree.
#[derive(Debug)]
struct ReadView {
    snap: StoreSnapshot,
    graphs: BTreeMap<String, GraphView>,
}

/// The protected base state: live rows plus the parser catalog.
#[derive(Debug, Default)]
struct BaseState {
    db: Database,
    session: Session,
}

/// The shared engine — one per server process, `Arc`-shared across
/// connection threads.
#[derive(Debug)]
pub struct Engine {
    base: Mutex<BaseState>,
    store: ConcurrentStore,
    view: RwLock<Arc<ReadView>>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

/// The reserved staged-relation names of catalog graph `g`.
fn staged_names(g: &str) -> [RelName; 6] {
    ["N", "E", "S", "T", "L", "P"].map(|c| RelName::new(format!("⟨{c}:{g}⟩")))
}

impl Engine {
    /// An empty engine: no tables, no graphs, an empty published
    /// snapshot.
    pub fn new() -> Self {
        let store = ConcurrentStore::new(Store::new());
        let snap = store.pin();
        Engine {
            base: Mutex::new(BaseState::default()),
            store,
            view: RwLock::new(Arc::new(ReadView {
                snap,
                graphs: BTreeMap::new(),
            })),
        }
    }

    /// Executes one shell-grammar statement (no trailing `;`) and
    /// returns the response lines — the same `-- ` / `!! ` / bare-row
    /// conventions the shell prints.
    pub fn statement(&self, conn: &mut SessionState, stmt: &str) -> Vec<String> {
        let stmt = stmt.trim();
        if stmt.is_empty() {
            return Vec::new();
        }
        let upper = stmt.to_ascii_uppercase();
        if upper.starts_with("INSERT INTO") || upper.starts_with("DELETE FROM") {
            return match self.mutate(stmt) {
                Ok(text) => vec![format!("-- {text}")],
                Err(e) => vec![format!("!! {e}")],
            };
        }
        if upper == "STATS" || upper.starts_with("STATS ") {
            return self.stats(stmt["STATS".len()..].trim());
        }
        if upper == "METRICS" || upper.starts_with("METRICS ") {
            return self.metrics(stmt["METRICS".len()..].trim());
        }
        if upper == "COMPACT" {
            return match self.compact() {
                Ok(effect) => vec![format!("-- compacted: {effect}")],
                Err(e) => vec![format!("!! {e}")],
            };
        }
        if upper.starts_with("SET THREADS") {
            return match stmt["SET THREADS".len()..].trim().parse::<usize>() {
                Ok(n) => {
                    conn.threads = n;
                    let resolved = pgq_exec::ExecOptions::with_threads(n).threads;
                    vec![format!(
                        "-- threads set to {n} (executor runs {resolved} worker(s))"
                    )]
                }
                Err(_) => vec!["!! SET THREADS needs a non-negative integer (0 = default)".into()],
            };
        }
        if upper.starts_with("SET PLANNER") {
            return match PlannerChoice::parse(stmt["SET PLANNER".len()..].trim()) {
                Some(p) => {
                    conn.planner = p;
                    vec![format!("-- planner set to {p}")]
                }
                None => vec!["!! SET PLANNER needs cost or rule".into()],
            };
        }
        if let Some((inner, analyze)) = strip_explain(stmt) {
            let result = if analyze {
                self.explain_analyze(conn, inner)
                    .map(|t| ("query profile", t))
            } else {
                self.explain(conn, inner).map(|t| ("physical plan", t))
            };
            return match result {
                Ok((head, text)) => {
                    let mut lines = vec![format!("-- {head}")];
                    lines.extend(text.lines().map(|l| format!("   {l}")));
                    lines
                }
                Err(e) => vec![format!("!! {e}")],
            };
        }
        if upper.starts_with("SELECT") {
            return match self.select(conn, stmt) {
                Ok(rows) => {
                    let mut lines = vec![format!("-- {} row(s)", rows.len())];
                    lines.extend(rows.iter().map(|row| row.to_string()));
                    lines
                }
                Err(e) => vec![format!("!! {e}")],
            };
        }
        self.script(stmt)
    }

    /// A whole script (`;`-separated statements) through one session
    /// state — the oracle entry point the load generator's divergence
    /// check replays transcripts against.
    pub fn script(&self, stmt: &str) -> Vec<String> {
        // Only reached for DDL (everything else is dispatched above);
        // public because a `;`-joined DDL batch is the natural setup
        // call for embedders and tests.
        let mut lines = Vec::new();
        let mut defined: Vec<String> = Vec::new();
        {
            let mut base = self.lock_base();
            let BaseState { db, session } = &mut *base;
            match session.run_script(&format!("{stmt};"), db) {
                Ok(outcomes) => {
                    for outcome in outcomes {
                        match outcome {
                            Outcome::TableDefined(n) => lines.push(format!("-- table {n} defined")),
                            Outcome::GraphDefined(n) => {
                                lines.push(format!("-- property graph {n} defined"));
                                defined.push(n);
                            }
                            Outcome::Rows(rows) => {
                                lines.push(format!("-- {} row(s)", rows.len()));
                                lines.extend(rows.iter().map(|row| row.to_string()));
                            }
                        }
                    }
                }
                Err(e) => lines.push(format!("!! {e}")),
            }
            if !defined.is_empty() {
                let mut note = String::new();
                self.restage(&base, &defined, &mut note);
                if !note.is_empty() {
                    lines.push(format!("-- staging{note}"));
                }
            }
        }
        lines
    }

    /// `INSERT INTO t VALUES (…)` / `DELETE FROM t VALUES (…)`:
    /// mutates the live database, then re-stages every catalog graph
    /// built over the mutated table through the serialized writer and
    /// publishes the new snapshot.
    fn mutate(&self, stmt: &str) -> Result<String, String> {
        let delete = stmt.to_ascii_uppercase().starts_with("DELETE FROM");
        let open = stmt.find('(').ok_or("mutation needs VALUES (…)")?;
        let close = stmt.rfind(')').ok_or("mutation needs a closing paren")?;
        let table = stmt["INSERT INTO".len()..] // both prefixes have length 11
            .split_whitespace()
            .next()
            .ok_or("mutation needs a table name")?
            .to_string();
        let values: Vec<Value> = stmt[open + 1..close]
            .split(',')
            .map(|v| parse_value(v.trim()))
            .collect::<Result<_, _>>()?;
        let row = Tuple::new(values);
        let mut base = self.lock_base();
        let changed = if delete {
            base.db.remove(&table.as_str().into(), &row)
        } else {
            base.db
                .insert(table.clone(), row.clone())
                .map_err(|e| e.to_string())?
        };
        let affected: Vec<String> = base
            .session
            .catalog
            .graph_names()
            .filter(|g| {
                base.session.catalog.graph(g).is_ok_and(|cg| {
                    cg.node_tables.iter().any(|nt| nt.table == table)
                        || cg.edge_tables.iter().any(|et| et.table == table)
                })
            })
            .map(String::from)
            .collect();
        let mut note = String::new();
        self.restage(&base, &affected, &mut note);
        let verb = if delete {
            "deleted from"
        } else {
            "inserted into"
        };
        let effect = if changed { "" } else { " (no-op)" };
        Ok(format!("{verb} {table}{effect}{note}"))
    }

    /// Re-stages the named catalog graphs from the current base state
    /// through one serialized writer batch, then publishes the new
    /// snapshot + graph map as an atomic [`ReadView`] swap. Staging
    /// failures (a graph whose view became invalid, a table with no
    /// rows yet) drop the graph from the read view with a note —
    /// queries on it fall back to per-query evaluation.
    ///
    /// Caller holds the base lock, which also serializes publication:
    /// two writers cannot interleave their view swaps.
    fn restage(&self, base: &BaseState, graphs: &[String], note: &mut String) {
        if graphs.is_empty() {
            return;
        }
        let mut staged: Vec<(String, Option<GraphView>)> = Vec::new();
        for g in graphs {
            match stage_graph(&base.session, &base.db, g) {
                Ok(gv) => staged.push((g.clone(), Some(gv))),
                Err(e) => {
                    note.push_str(&format!("; graph {g} unstaged: {e}"));
                    staged.push((g.clone(), None));
                }
            }
        }
        let installed = self
            .store
            .write(
                |s| -> Result<Vec<(String, Option<GraphView>)>, Infallible> {
                    let mut out = Vec::with_capacity(staged.len());
                    for (g, gv) in staged {
                        match gv {
                            Some(gv) => match install_graph(s, &g, &gv) {
                                Ok(()) => out.push((g, Some(gv))),
                                Err(e) => {
                                    s.drop_graph(&g);
                                    note.push_str(&format!("; graph {g} unstaged: {e}"));
                                    out.push((g, None));
                                }
                            },
                            None => {
                                s.drop_graph(&g);
                                out.push((g, None));
                            }
                        }
                    }
                    Ok(out)
                },
            )
            .unwrap_or_else(|e| match e {});
        let mut map = self.pin_view().graphs.clone();
        for (g, gv) in installed {
            match gv {
                Some(gv) => {
                    map.insert(g, gv);
                }
                None => {
                    map.remove(&g);
                }
            }
        }
        self.publish(map);
    }

    /// Swaps in a new [`ReadView`] pairing the latest published
    /// snapshot with `graphs`.
    fn publish(&self, graphs: BTreeMap<String, GraphView>) {
        let snap = self.store.pin();
        *self.view.write().unwrap_or_else(PoisonError::into_inner) =
            Arc::new(ReadView { snap, graphs });
    }

    fn pin_view(&self) -> Arc<ReadView> {
        self.view
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    fn lock_base(&self) -> std::sync::MutexGuard<'_, BaseState> {
        // A connection thread that panicked mid-statement cannot have
        // left a half-applied store batch behind (the writer publishes
        // only committed clones), so the base lock is recoverable.
        self.base.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Runs a `GRAPH_TABLE` query: parse/lower under the base lock,
    /// then evaluate lock-free against the pinned [`ReadView`].
    fn select(&self, conn: &SessionState, stmt: &str) -> Result<Relation, String> {
        let (graph, out, k) = self.lower(stmt)?;
        let view = self.pin_view();
        let cfg = EvalConfig::physical()
            .with_threads(conn.threads)
            .with_planner(conn.planner);
        if let Some(gv) = view.graphs.get(&graph) {
            let q = Query::pattern_n(gv.k, out, gv.names.clone().map(Query::rel));
            return eval_with_snapshot(&q, &gv.db, cfg, &view.snap).map_err(|e| e.to_string());
        }
        // Not staged (invalid view or empty tables): per-query scratch
        // evaluation under the base lock, exactly the shell's route.
        let base = self.lock_base();
        let gv = stage_graph(&base.session, &base.db, &graph)?;
        let mut scratch = Store::from_database(&gv.db);
        let _ = scratch.register_view_graph(
            graph.clone(),
            gv.names.clone(),
            &gv.db,
            GraphForm::Bounded(gv.k),
        );
        let q = Query::pattern_n(k, out, gv.names.clone().map(Query::rel));
        let rel =
            pgq_core::eval_with_store(&q, &gv.db, cfg, &scratch).map_err(|e| e.to_string())?;
        // Fold the scratch run's access counters into the shared ones
        // so METRICS stays session-cumulative.
        self.store
            .pin()
            .counters()
            .absorb(&scratch.counters().snapshot());
        Ok(rel)
    }

    /// `EXPLAIN SELECT …` — the plan against the pinned snapshot.
    fn explain(&self, conn: &SessionState, inner: &str) -> Result<String, String> {
        let (graph, out, k) = self.lower(inner)?;
        let view = self.pin_view();
        let opts = pgq_exec::ExecOptions::with_threads(conn.threads).with_planner(conn.planner);
        if let Some(gv) = view.graphs.get(&graph) {
            let q = Query::pattern_n(gv.k, out, gv.names.clone().map(Query::rel));
            return pgq_core::explain_with_exec_opts(
                &q,
                &gv.db.schema(),
                Some(view.snap.as_store()),
                opts,
            )
            .map_err(|e| e.to_string());
        }
        let base = self.lock_base();
        let gv = stage_graph(&base.session, &base.db, &graph)?;
        let scratch = Store::from_database(&gv.db);
        let q = Query::pattern_n(k, out, gv.names.clone().map(Query::rel));
        pgq_core::explain_with_exec_opts(&q, &gv.db.schema(), Some(&scratch), opts)
            .map_err(|e| e.to_string())
    }

    /// `EXPLAIN ANALYZE SELECT …` — runs on the pinned snapshot with
    /// per-operator metrics and renders the profile tree.
    fn explain_analyze(&self, conn: &SessionState, inner: &str) -> Result<String, String> {
        let (graph, out, _) = self.lower(inner)?;
        let view = self.pin_view();
        let cfg = EvalConfig::physical()
            .with_threads(conn.threads)
            .with_planner(conn.planner);
        let gv = view
            .graphs
            .get(&graph)
            .ok_or_else(|| format!("graph {graph} is not staged (no rows yet?)"))?;
        let q = Query::pattern_n(gv.k, out, gv.names.clone().map(Query::rel));
        let (_rel, profile) =
            eval_with_snapshot_profiled(&q, &gv.db, cfg, &view.snap).map_err(|e| e.to_string())?;
        Ok(profile.render(true))
    }

    /// Parses and lowers a `GRAPH_TABLE` statement under a brief base
    /// lock. Returns `(graph name, lowered output pattern, id arity)`.
    fn lower(&self, stmt: &str) -> Result<(String, pgq_pattern::OutputPattern, usize), String> {
        let parsed = parse_statement(&format!("{stmt};")).map_err(|e| e.to_string())?;
        let Statement::GraphQuery(gq) = parsed else {
            return Err("expected a GRAPH_TABLE query".to_string());
        };
        let base = self.lock_base();
        let out = lower_query(&gq, &base.session.catalog).map_err(|e| e.to_string())?;
        let k = base
            .session
            .catalog
            .id_arity(&gq.graph)
            .map_err(|e| e.to_string())?;
        Ok((gq.graph.clone(), out, k))
    }

    fn stats(&self, arg: &str) -> Vec<String> {
        if !arg.is_empty() && !arg.eq_ignore_ascii_case("JSON") {
            return vec!["!! STATS takes no argument or JSON".into()];
        }
        let view = self.pin_view();
        let stats = view.snap.stats();
        // Planner statistics off the pinned snapshot: a snapshot's
        // statistics cache is frozen with it, so repeated STATS calls
        // against one published view recompute nothing.
        let statistics = view.snap.as_store().statistics();
        if arg.is_empty() {
            let mut lines = vec!["-- store layout".to_string()];
            lines.extend(stats.to_string().lines().map(|l| format!("   {l}")));
            lines.push("-- planner statistics".to_string());
            lines.extend(statistics.to_string().lines().map(|l| format!("   {l}")));
            lines
        } else {
            stats_json(&stats, &statistics)
                .lines()
                .map(String::from)
                .collect()
        }
    }

    fn metrics(&self, arg: &str) -> Vec<String> {
        let counters = self.pin_view().snap.counters().snapshot();
        if arg.eq_ignore_ascii_case("RESET") {
            self.pin_view().snap.counters().reset();
            vec!["-- store access counters reset".into()]
        } else if arg.eq_ignore_ascii_case("JSON") {
            metrics_json(&counters).lines().map(String::from).collect()
        } else if arg.is_empty() {
            let text = counters.to_string();
            let mut lines = Vec::new();
            let mut it = text.lines();
            if let Some(head) = it.next() {
                lines.push(format!("-- {head}"));
            }
            lines.extend(it.map(|l| format!("   {l}")));
            lines
        } else {
            vec!["!! METRICS takes no argument, JSON, or RESET".into()]
        }
    }

    /// `COMPACT;` as a snapshot swap: the writer rebuilds dictionary
    /// and indexes, publishes, and the read view re-pins — readers on
    /// the old snapshot keep decoding through their pinned dictionary.
    fn compact(&self) -> Result<pgq_store::CompactionStats, String> {
        let base = self.lock_base();
        let stats = self.store.compact().map_err(|e| e.to_string())?;
        let map = self.pin_view().graphs.clone();
        drop(base);
        self.publish(map);
        Ok(stats)
    }
}

/// Builds the staged database + reserved names for catalog graph `g`
/// from the live base state.
fn stage_graph(session: &Session, db: &Database, g: &str) -> Result<GraphView, String> {
    let rels = session
        .catalog
        .view_relations(g, db)
        .map_err(|e| e.to_string())?;
    let k = session.catalog.id_arity(g).map_err(|e| e.to_string())?;
    let names = staged_names(g);
    let mut sdb = Database::new();
    for (name, rel) in names.clone().into_iter().zip([
        rels.nodes,
        rels.edges,
        rels.src,
        rels.tgt,
        rels.labels,
        rels.props,
    ]) {
        sdb.add_relation(name, rel);
    }
    Ok(GraphView { names, k, db: sdb })
}

/// Registers a staged graph's six relations and frozen view graph into
/// the writer's working store.
fn install_graph(s: &mut Store, g: &str, gv: &GraphView) -> Result<(), pgq_store::StoreError> {
    // Drop the previous freeze first: `register_relation` re-freezes
    // any view graph backed by the relation, and doing that after only
    // some of the six views have been replaced validates a torn view
    // (new edges against the old src/tgt) — spuriously unstaging the
    // graph. The consistent freeze is rebuilt from `gv.db` below.
    s.drop_graph(g);
    for (name, rel) in gv.db.iter() {
        s.register_relation(name.clone(), rel)?;
    }
    s.register_view_graph(g, gv.names.clone(), &gv.db, GraphForm::Bounded(gv.k))
}

/// `EXPLAIN [ANALYZE] <statement>` → inner statement + ANALYZE flag.
fn strip_explain(stmt: &str) -> Option<(&str, bool)> {
    let rest = strip_keyword(stmt, "EXPLAIN")?;
    if let Some(inner) = strip_keyword(rest, "ANALYZE") {
        return Some((inner, true));
    }
    Some((rest, false))
}

fn strip_keyword<'a>(s: &'a str, kw: &str) -> Option<&'a str> {
    if s.len() <= kw.len() || !s[..kw.len()].eq_ignore_ascii_case(kw) {
        return None;
    }
    let rest = &s[kw.len()..];
    rest.starts_with(char::is_whitespace)
        .then(|| rest.trim_start())
}

/// Shell literal syntax: integers, booleans, single-quoted strings.
fn parse_value(v: &str) -> Result<Value, String> {
    if let Some(stripped) = v.strip_prefix('\'') {
        return Ok(Value::str(stripped.trim_end_matches('\'')));
    }
    if v.eq_ignore_ascii_case("true") {
        return Ok(Value::bool(true));
    }
    if v.eq_ignore_ascii_case("false") {
        return Ok(Value::bool(false));
    }
    v.parse()
        .map(Value::int)
        .map_err(|_| format!("bad literal {v}: expected an integer, boolean, or 'string'"))
}

/// Splits a script on `;` while respecting single-quoted strings —
/// the shell's statement splitter, reused by the line protocol.
pub fn split_statements(script: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut current = String::new();
    let mut in_string = false;
    for c in script.chars() {
        match c {
            '\'' => {
                in_string = !in_string;
                current.push(c);
            }
            ';' if !in_string => {
                out.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        out.push(current);
    }
    out
}

/// `METRICS JSON;` through the hand-rolled writer.
fn metrics_json(snap: &AccessSnapshot) -> String {
    let mut w = pgq_exec::JsonWriter::pretty();
    w.begin_object();
    w.key("index_scan_rows");
    w.number(snap.index_scan_rows);
    w.key("csr_neighbor_rows");
    w.number(snap.csr_neighbor_rows);
    w.key("csr_sweep_sources");
    w.number(snap.csr_sweep_sources);
    w.key("overlay_reads");
    w.number(snap.overlay_reads);
    w.key("dense_reads");
    w.number(snap.dense_reads);
    w.key("dict_decodes");
    w.number(snap.dict_decodes);
    w.key("writer_probes");
    w.number(snap.writer_probes);
    w.key("writer_probe_rows");
    w.number(snap.writer_probe_rows);
    w.end_object();
    w.finish()
}

/// One direction of a degree histogram as a JSON object.
fn histogram_json(w: &mut pgq_exec::JsonWriter, key: &str, h: &DegreeHistogram) {
    w.key(key);
    w.begin_object();
    w.key("nodes");
    w.number(h.nodes as u64);
    w.key("edges");
    w.number(h.edges as u64);
    w.key("min");
    w.number(h.min as u64);
    w.key("mean");
    w.float(h.mean);
    w.key("p99");
    w.number(h.p99 as u64);
    w.key("max");
    w.number(h.max as u64);
    w.end_object();
}

/// `STATS JSON;` — the storage-layout report plus the planner
/// statistics as JSON.
fn stats_json(stats: &StoreStats, statistics: &StoreStatistics) -> String {
    let mut w = pgq_exec::JsonWriter::pretty();
    w.begin_object();
    w.key("dictionary_total");
    w.number(stats.dictionary_total as u64);
    w.key("dictionary_live");
    w.number(stats.dictionary_live as u64);
    w.key("dictionary_stale");
    w.number(stats.dictionary_stale() as u64);
    w.key("overlay_entries");
    w.number(stats.overlay_entries() as u64);
    w.key("tombstone_rows");
    w.number(stats.tombstone_rows() as u64);
    w.key("bytes");
    w.begin_object();
    w.key("dictionary");
    w.number(stats.bytes.dictionary as u64);
    w.key("columns");
    w.number(stats.bytes.columns as u64);
    w.key("csr");
    w.number(stats.bytes.csr as u64);
    w.key("overlays");
    w.number(stats.bytes.overlays as u64);
    w.key("total");
    w.number(stats.bytes.total() as u64);
    w.end_object();
    w.key("relations");
    w.number(stats.relations.len() as u64);
    w.key("graphs");
    w.number(stats.graphs.len() as u64);
    w.key("statistics");
    w.begin_object();
    w.key("epoch");
    w.number(statistics.epoch);
    w.key("dictionary_codes");
    w.number(statistics.dictionary_codes as u64);
    w.key("relations");
    w.begin_array();
    for (name, r) in &statistics.relations {
        w.begin_object();
        w.key("name");
        w.string(&name.to_string());
        w.key("live_rows");
        w.number(r.live_rows as u64);
        w.key("tombstone_rows");
        w.number(r.tombstone_rows as u64);
        w.key("distinct");
        w.begin_array();
        for d in &r.distinct {
            w.number(*d as u64);
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.key("graphs");
    w.begin_array();
    for (name, g) in &statistics.graphs {
        w.begin_object();
        w.key("name");
        w.string(name);
        histogram_json(&mut w, "forward", &g.adjacency.forward);
        histogram_json(&mut w, "reverse", &g.adjacency.reverse);
        w.key("overlay");
        w.number(g.adjacency.overlay as u64);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.end_object();
    w.finish()
}
