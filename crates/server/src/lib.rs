//! # pgq-server
//!
//! The front door (PR 8; ROADMAP open item 2): a threaded TCP
//! line-protocol server over the concurrent snapshot store, serving
//! the shell grammar to any number of simultaneous sessions.
//!
//! * [`Engine`] — the shared state machine: parser catalog + live
//!   rows behind a mutex, staged view graphs inside a
//!   [`pgq_store::ConcurrentStore`], reads pinned to published
//!   [`pgq_store::StoreSnapshot`]s and evaluated lock-free on the
//!   morsel-parallel coded pipeline;
//! * [`Server`] — the accept loop + per-connection session threads;
//! * [`Client`] — a blocking client for tests and the `pgq-bench`
//!   load generator.
//!
//! Concurrency contract (held by `tests/protocol.rs` here and the
//! snapshot-isolation suite in the workspace `tests/prop_store.rs`):
//! every query answers against exactly one published snapshot —
//! byte-identical to single-threaded evaluation of that snapshot — and
//! a writer batch either publishes completely or not at all. Malformed
//! input (bad statements, oversized lines, invalid UTF-8, mid-line
//! disconnects) produces typed `!! ` responses or a clean session end,
//! never a dead server or a poisoned store lock.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod engine;
pub mod server;

pub use engine::{Engine, SessionState};
pub use server::{Client, Server, MAX_LINE, TERMINATOR};
