//! `pgq-server` — serve the sqlpgq shell grammar over TCP.
//!
//! ```sh
//! pgq-server                  # bind 127.0.0.1:5432-ish default
//! pgq-server 0.0.0.0:7878     # explicit bind address
//! ```
//!
//! Try it with netcat: `printf 'CREATE TABLE t (a);\nQUIT\n' | nc 127.0.0.1 7878`

use pgq_server::{Engine, Server};
use std::sync::Arc;

const DEFAULT_ADDR: &str = "127.0.0.1:7878";

fn main() {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| DEFAULT_ADDR.to_string());
    let engine = Arc::new(Engine::new());
    let server = match Server::bind(engine, &addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("!! cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("-- pgq-server listening on {}", server.addr());
    println!("-- line protocol: one statement batch per line, responses end with '.'");
    // Serve until the process is killed; the accept loop owns the
    // socket and session threads are detached.
    loop {
        std::thread::park();
    }
}
