//! The PR 8 protocol battery: concurrent-connection smoke with
//! deterministic per-client transcripts, and the malformed-input /
//! oversized-line / mid-line-disconnect suite — all against one shared
//! server. Nothing here may kill the server or poison the shared
//! store lock.

use pgq_server::{Client, Engine, Server, MAX_LINE};
use std::sync::Arc;

const GRAPH_DDL: &str = "CREATE PROPERTY GRAPH Transfers ( \
     NODES TABLE Account KEY (iban) LABEL Account, \
     EDGES TABLE Transfer KEY (t_id) \
       SOURCE KEY src_iban REFERENCES Account \
       TARGET KEY tgt_iban REFERENCES Account \
       LABELS Transfer PROPERTIES (ts, amount))";

const QUERY: &str = "SELECT * FROM GRAPH_TABLE (Transfers \
     MATCH (x) -[t:Transfer]->+ (y) WHERE t.amount > 100 \
     RETURN (x.iban, y.iban))";

fn start_server() -> Server {
    Server::bind(Arc::new(Engine::new()), "127.0.0.1:0").expect("bind ephemeral port")
}

/// Loads the canonical transfers schema plus `extra` accounts/edges.
fn load_demo(client: &mut Client, accounts: usize) {
    for stmt in [
        "CREATE TABLE Account (iban)",
        "CREATE TABLE Transfer (t_id, src_iban, tgt_iban, ts, amount)",
        GRAPH_DDL,
    ] {
        let resp = client.request(stmt).expect("ddl");
        assert!(
            resp.iter().all(|l| !l.starts_with("!! ")),
            "DDL failed: {resp:?}"
        );
    }
    for i in 0..accounts {
        client
            .request(&format!("INSERT INTO Account VALUES ('A{i}')"))
            .expect("insert account");
    }
    for i in 0..accounts.saturating_sub(1) {
        client
            .request(&format!(
                "INSERT INTO Transfer VALUES ({i}, 'A{i}', 'A{}', {}, {})",
                i + 1,
                100 + i,
                500 + i
            ))
            .expect("insert transfer");
    }
}

#[test]
fn concurrent_clients_get_deterministic_transcripts() {
    let server = start_server();
    let addr = server.addr();
    let mut setup = Client::connect(addr).expect("connect");
    load_demo(&mut setup, 6);
    let expected = setup.request(QUERY).expect("oracle query");
    assert_eq!(
        expected[0], "-- 15 row(s)",
        "unexpected oracle: {expected:?}"
    );

    // k clients × m queries each, racing: every transcript must be m
    // copies of the oracle response — same rows, same order.
    let handles: Vec<_> = (0..4)
        .map(|c| {
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                // Per-connection SET THREADS exercises both executor modes.
                let threads = if c % 2 == 0 { 1 } else { 2 };
                client
                    .request(&format!("SET THREADS {threads}"))
                    .expect("set threads");
                for _ in 0..8 {
                    let resp = client.request(QUERY).expect("query");
                    assert_eq!(resp, expected, "client {c} diverged");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    server.stop();
}

#[test]
fn statement_batches_and_session_commands_round_trip() {
    let server = start_server();
    let mut client = Client::connect(server.addr()).expect("connect");
    load_demo(&mut client, 4);
    // A `;`-separated batch on one line answers in statement order.
    let resp = client
        .request("STATS; METRICS; SET THREADS 2")
        .expect("batch");
    let joined = resp.join("\n");
    assert!(joined.contains("store layout"), "missing STATS: {joined}");
    assert!(
        joined.contains("store access counters"),
        "missing METRICS: {joined}"
    );
    assert!(joined.contains("threads set to 2"), "missing SET: {joined}");
    // JSON variants and COMPACT.
    let stats = client.request("STATS JSON").expect("stats json").join("\n");
    assert!(stats.trim_start().starts_with('{'), "not JSON: {stats}");
    for key in [
        "\"bytes\"",
        "\"dictionary\"",
        "\"csr\"",
        "\"overlays\"",
        "\"total\"",
    ] {
        assert!(stats.contains(key), "missing {key} in STATS JSON: {stats}");
    }
    let resp = client.request("COMPACT").expect("compact");
    assert!(resp[0].starts_with("-- compacted:"), "{resp:?}");
    // EXPLAIN and EXPLAIN ANALYZE both answer.
    let plan = client
        .request(&format!("EXPLAIN {QUERY}"))
        .expect("explain");
    assert_eq!(plan[0], "-- physical plan");
    let profile = client
        .request(&format!("EXPLAIN ANALYZE {QUERY}"))
        .expect("analyze");
    assert_eq!(profile[0], "-- query profile");
    server.stop();
}

#[test]
fn planner_switch_and_statistics_sections_round_trip() {
    let server = start_server();
    let mut client = Client::connect(server.addr()).expect("connect");
    load_demo(&mut client, 5);

    // STATS grows a planner-statistics section: per-relation live-row
    // and distinct counts plus degree-histogram summaries.
    let stats = client.request("STATS").expect("stats").join("\n");
    assert!(
        stats.contains("-- planner statistics"),
        "missing planner statistics section: {stats}"
    );
    assert!(
        stats.contains("statistics (epoch"),
        "missing epoch header: {stats}"
    );
    assert!(stats.contains("distinct ["), "missing distinct: {stats}");
    assert!(stats.contains("/ p99 "), "missing histogram: {stats}");

    // STATS JSON carries the same data under a "statistics" object.
    let json = client.request("STATS JSON").expect("stats json").join("\n");
    for key in [
        "\"statistics\"",
        "\"epoch\"",
        "\"distinct\"",
        "\"live_rows\"",
        "\"forward\"",
        "\"p99\"",
    ] {
        assert!(json.contains(key), "missing {key} in STATS JSON: {json}");
    }

    // SET PLANNER switches per connection; both planners answer the
    // same rows, and a bad argument is a typed error.
    let cost_rows = client.request(QUERY).expect("cost query");
    let resp = client.request("SET PLANNER rule").expect("set rule");
    assert_eq!(resp, ["-- planner set to rule"]);
    let rule_rows = client.request(QUERY).expect("rule query");
    assert_eq!(cost_rows, rule_rows, "planners diverged");
    let resp = client.request("SET PLANNER greedy").expect("bad planner");
    assert_eq!(resp, ["!! SET PLANNER needs cost or rule"]);
    let resp = client.request("SET PLANNER COST").expect("set cost");
    assert_eq!(resp, ["-- planner set to cost"]);

    // EXPLAIN and EXPLAIN ANALYZE answer under both planners (pattern
    // profiles are leaf operators — the est= column is exercised on
    // the relational route in tests/prop_engine.rs).
    for planner in ["cost", "rule"] {
        client
            .request(&format!("SET PLANNER {planner}"))
            .expect("set planner");
        let plan = client
            .request(&format!("EXPLAIN {QUERY}"))
            .expect("explain");
        assert_eq!(plan[0], "-- physical plan", "under {planner}: {plan:?}");
        let profile = client
            .request(&format!("EXPLAIN ANALYZE {QUERY}"))
            .expect("analyze");
        assert_eq!(
            profile[0], "-- query profile",
            "under {planner}: {profile:?}"
        );
    }
    server.stop();
}

#[test]
fn malformed_inputs_return_typed_errors_and_server_survives() {
    let server = start_server();
    let addr = server.addr();
    let mut client = Client::connect(addr).expect("connect");
    load_demo(&mut client, 3);

    // Unknown grammar → parser's typed error, session continues.
    let resp = client.request("FROB THE STORE").expect("bad stmt");
    assert!(resp[0].starts_with("!! "), "{resp:?}");
    // Malformed mutation → shell-style typed error.
    let resp = client
        .request("INSERT INTO Account 'oops'")
        .expect("bad insert");
    assert!(resp[0].starts_with("!! "), "{resp:?}");
    // Query on an unknown graph → typed error, not a hang or panic.
    let resp = client
        .request("SELECT * FROM GRAPH_TABLE (Nope MATCH (x) RETURN (x.iban))")
        .expect("unknown graph");
    assert!(resp[0].starts_with("!! "), "{resp:?}");

    // Invalid UTF-8 → typed protocol error on the same connection.
    client.send_raw(b"SELECT \xff\xfe\n").expect("raw send");
    let resp = client.read_response().expect("utf8 response");
    assert_eq!(resp, ["!! protocol: request is not valid UTF-8"]);

    // Oversized request → typed protocol error; the flood is drained.
    let flood = "X".repeat(MAX_LINE + 512);
    let resp = client.request(&flood).expect("oversized");
    assert_eq!(
        resp,
        [format!("!! protocol: request exceeds {MAX_LINE} bytes")]
    );

    // The same session still works after every abuse…
    let resp = client.request("STATS").expect("stats after abuse");
    assert_eq!(resp[0], "-- store layout");

    // …and a mid-line disconnect (no trailing newline) doesn't take
    // the server or the shared store down with it.
    let mut rude = Client::connect(addr).expect("connect rude");
    rude.send_raw(b"INSERT INTO Account VALUES ('half")
        .expect("partial");
    rude.abort_write().expect("abort");
    drop(rude);

    // A fresh client can still read *and write* — the store lock is
    // not poisoned, and the partial line was never executed.
    let mut after = Client::connect(addr).expect("connect after");
    let resp = after
        .request("INSERT INTO Account VALUES ('A9')")
        .expect("write after disconnect");
    assert!(resp[0].starts_with("-- inserted into Account"), "{resp:?}");
    let resp = after.request(QUERY).expect("read after disconnect");
    assert!(resp[0].starts_with("-- "), "{resp:?}");
    assert!(
        !resp.iter().any(|l| l.contains("half")),
        "partial statement leaked: {resp:?}"
    );
    server.stop();
}

#[test]
fn writer_and_readers_interleave_without_divergence() {
    let server = start_server();
    let addr = server.addr();
    let mut setup = Client::connect(addr).expect("connect");
    load_demo(&mut setup, 5);

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect reader");
                let mut seen = 0usize;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let resp = client.request(QUERY).expect("read");
                    // Every answer is a complete, well-formed result
                    // for SOME published snapshot: a count header
                    // matching the row lines, never an error.
                    assert!(resp[0].starts_with("-- "), "{resp:?}");
                    let n: usize = resp[0]
                        .trim_start_matches("-- ")
                        .split_whitespace()
                        .next()
                        .unwrap()
                        .parse()
                        .expect("row count header");
                    assert_eq!(n, resp.len() - 1, "torn result: {resp:?}");
                    seen += 1;
                }
                seen
            })
        })
        .collect();

    // The single writer keeps growing the chain and compacting.
    for i in 5..25 {
        setup
            .request(&format!("INSERT INTO Account VALUES ('A{i}')"))
            .expect("write account");
        setup
            .request(&format!(
                "INSERT INTO Transfer VALUES ({}, 'A{}', 'A{i}', {}, {})",
                i - 1,
                i - 1,
                100 + i,
                500 + i
            ))
            .expect("write transfer");
        if i % 8 == 0 {
            setup.request("COMPACT").expect("compact");
        }
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for r in readers {
        assert!(r.join().expect("reader thread") > 0);
    }
    // Final state agrees with a fresh sequential engine fed the same
    // statements (the divergence oracle).
    let final_rows = setup.request(QUERY).expect("final read");
    let oracle = Engine::new();
    let mut sess = pgq_server::SessionState::default();
    let mut expected = Vec::new();
    let mut feed = |stmt: &str| expected = oracle.statement(&mut sess, stmt);
    feed("CREATE TABLE Account (iban)");
    feed("CREATE TABLE Transfer (t_id, src_iban, tgt_iban, ts, amount)");
    feed(GRAPH_DDL);
    for i in 0..25 {
        feed(&format!("INSERT INTO Account VALUES ('A{i}')"));
    }
    for i in 0..4 {
        feed(&format!(
            "INSERT INTO Transfer VALUES ({i}, 'A{i}', 'A{}', {}, {})",
            i + 1,
            100 + i,
            500 + i
        ));
    }
    for i in 5..25 {
        feed(&format!(
            "INSERT INTO Transfer VALUES ({}, 'A{}', 'A{i}', {}, {})",
            i - 1,
            i - 1,
            100 + i,
            500 + i
        ));
    }
    feed(QUERY);
    assert_eq!(final_rows, expected, "server diverged from oracle");
    server.stop();
}
