//! A small algebra on property graphs with shared identifier arity.
//!
//! The operations are defined relationally — each is a set operation on
//! the canonical relations `(R1, …, R6)` followed by an unchanged
//! `pgView` validation pass — so "graph union" really is six relational
//! unions, and a union that would violate Definition 3.1 (an edge id
//! colliding with a node id, an edge acquiring two sources, a property
//! acquiring two values) is rejected by the very validator the paper
//! defines, with no extra machinery.
//!
//! Semantics choices the paper leaves open (documented per operation):
//!
//! * **union** is strict: structural conflicts are errors, not
//!   resolutions (labels union freely; properties must agree).
//! * **intersection** keeps an edge only when both operands agree on
//!   its endpoints and both endpoints survive; labels and properties
//!   intersect.
//! * **difference** removes the right operand's *elements*: surviving
//!   edges are those of the left graph not in the right graph whose
//!   endpoints both survive; annotations are restricted to survivors.
//!   (Set difference on the raw relations would dangle edges.)
//! * **induced subgraphs** restrict the node set (by label) and keep
//!   exactly the edges with both endpoints surviving.

use pgq_graph::{pg_view_ext, relations_of, PropertyGraph, ViewError, ViewMode, ViewRelations};
use pgq_relational::RelError;
use pgq_value::Label;
use std::fmt;

/// Errors of graph-algebra operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlgebraError {
    /// The operands have different identifier arities.
    ArityMismatch {
        /// Left operand's identifier arity.
        left: usize,
        /// Right operand's identifier arity.
        right: usize,
    },
    /// The combined relations are not a valid property graph view — the
    /// wrapped error says which Definition 3.1 condition failed (id
    /// disjointness, endpoint functionality, annotation domains).
    Invalid(ViewError),
    /// Relational-layer arity error (unreachable for well-formed
    /// inputs; surfaced rather than panicking).
    Rel(RelError),
}

impl fmt::Display for AlgebraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgebraError::ArityMismatch { left, right } => {
                write!(f, "identifier arities differ: {left} vs {right}")
            }
            AlgebraError::Invalid(e) => write!(f, "combined graph invalid: {e}"),
            AlgebraError::Rel(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AlgebraError {}

impl From<ViewError> for AlgebraError {
    fn from(e: ViewError) -> Self {
        AlgebraError::Invalid(e)
    }
}

impl From<RelError> for AlgebraError {
    fn from(e: RelError) -> Self {
        AlgebraError::Rel(e)
    }
}

fn check_arity(a: &PropertyGraph, b: &PropertyGraph) -> Result<(), AlgebraError> {
    if a.id_arity() == b.id_arity()
        || a.node_count() + a.edge_count() == 0
        || b.node_count() + b.edge_count() == 0
    {
        Ok(())
    } else {
        Err(AlgebraError::ArityMismatch {
            left: a.id_arity(),
            right: b.id_arity(),
        })
    }
}

/// Graph union: six relational unions, validated by `pgView`. Strict —
/// any structural conflict is a typed error.
pub fn union(a: &PropertyGraph, b: &PropertyGraph) -> Result<PropertyGraph, AlgebraError> {
    check_arity(a, b)?;
    if a.node_count() + a.edge_count() == 0 {
        return Ok(b.clone());
    }
    if b.node_count() + b.edge_count() == 0 {
        return Ok(a.clone());
    }
    let ra = relations_of(a);
    let rb = relations_of(b);
    let combined = ViewRelations::new(
        ra.nodes.union(&rb.nodes)?,
        ra.edges.union(&rb.edges)?,
        ra.src.union(&rb.src)?,
        ra.tgt.union(&rb.tgt)?,
        ra.labels.union(&rb.labels)?,
        ra.props.union(&rb.props)?,
    );
    Ok(pg_view_ext(&combined, ViewMode::Strict)?)
}

/// Graph intersection: common nodes; common edges on which both graphs
/// agree about endpoints; common labels; properties equal in both.
pub fn intersect(a: &PropertyGraph, b: &PropertyGraph) -> Result<PropertyGraph, AlgebraError> {
    check_arity(a, b)?;
    let k = a.id_arity();
    if a.node_count() + a.edge_count() == 0 || b.node_count() + b.edge_count() == 0 {
        return Ok(PropertyGraph::empty(k));
    }
    let ra = relations_of(a);
    let rb = relations_of(b);
    let nodes = ra.nodes.intersection(&rb.nodes)?;
    // Edge rows agree on endpoints exactly when the (id, endpoint) rows
    // intersect; additionally both endpoints must survive.
    let src = ra.src.intersection(&rb.src)?;
    let tgt = ra.tgt.intersection(&rb.tgt)?;
    let edges = ra.edges.intersection(&rb.edges)?.select(|e| {
        let s = src.iter().find(|t| prefix(t, e, k)).map(|t| suffix(t, k));
        let g = tgt.iter().find(|t| prefix(t, e, k)).map(|t| suffix(t, k));
        matches!((s, g), (Some(s), Some(g)) if nodes.contains(&s) && nodes.contains(&g))
    });
    let src = src.select(|t| edges.contains(&head(t, k)));
    let tgt = tgt.select(|t| edges.contains(&head(t, k)));
    let keep = |t: &pgq_value::Tuple| {
        let id = head(t, k);
        nodes.contains(&id) || edges.contains(&id)
    };
    let labels = ra.labels.intersection(&rb.labels)?.select(keep);
    let props = ra.props.intersection(&rb.props)?.select(keep);
    let combined = ViewRelations::new(nodes, edges, src, tgt, labels, props);
    Ok(pg_view_ext(&combined, ViewMode::Strict)?)
}

/// Graph difference: remove the right operand's elements from the left;
/// edges survive only if not removed and with both endpoints surviving.
pub fn minus(a: &PropertyGraph, b: &PropertyGraph) -> Result<PropertyGraph, AlgebraError> {
    check_arity(a, b)?;
    let k = a.id_arity();
    let ra = relations_of(a);
    let rb = relations_of(b);
    let nodes = ra.nodes.difference(&rb.nodes)?;
    let edges = ra.edges.difference(&rb.edges)?.select(|e| {
        let s = a.src(e).expect("total in a");
        let t = a.tgt(e).expect("total in a");
        nodes.contains(s) && nodes.contains(t)
    });
    restrict_and_view(&ra, nodes, edges, k)
}

/// Edge-only difference: keep all of `a`'s nodes, drop `a`'s edges that
/// occur in `b` (with their annotations). The natural "remove a layer"
/// operation when two views share a node relation — element-wise
/// [`minus`] would remove the shared nodes and take everything with
/// them.
pub fn minus_edges(a: &PropertyGraph, b: &PropertyGraph) -> Result<PropertyGraph, AlgebraError> {
    check_arity(a, b)?;
    let k = a.id_arity();
    let ra = relations_of(a);
    let rb = relations_of(b);
    let nodes = ra.nodes.clone();
    let edges = ra.edges.difference(&rb.edges)?;
    restrict_and_view(&ra, nodes, edges, k)
}

/// The subgraph induced by nodes carrying `label`: those nodes, plus
/// exactly the edges with both endpoints kept (with all annotations).
pub fn induced_by_node_label(
    g: &PropertyGraph,
    label: &Label,
) -> Result<PropertyGraph, AlgebraError> {
    let k = g.id_arity();
    let r = relations_of(g);
    let nodes = r.nodes.select(|n| g.has_label(n, label));
    let edges = r.edges.select(|e| {
        let s = g.src(e).expect("total");
        let t = g.tgt(e).expect("total");
        nodes.contains(s) && nodes.contains(t)
    });
    restrict_and_view(&r, nodes, edges, k)
}

/// Keep only edges carrying `label` (all nodes survive).
pub fn filter_edges_by_label(
    g: &PropertyGraph,
    label: &Label,
) -> Result<PropertyGraph, AlgebraError> {
    let k = g.id_arity();
    let r = relations_of(g);
    let edges = r.edges.select(|e| g.has_label(e, label));
    let nodes = r.nodes.clone();
    restrict_and_view(&r, nodes, edges, k)
}

/// Shared tail: restrict `src`/`tgt`/`labels`/`props` of `r` to the
/// surviving `nodes`/`edges` and re-validate.
fn restrict_and_view(
    r: &ViewRelations,
    nodes: pgq_relational::Relation,
    edges: pgq_relational::Relation,
    k: usize,
) -> Result<PropertyGraph, AlgebraError> {
    let src = r.src.select(|t| edges.contains(&head(t, k)));
    let tgt = r.tgt.select(|t| edges.contains(&head(t, k)));
    let keep = |t: &pgq_value::Tuple| {
        let id = head(t, k);
        nodes.contains(&id) || edges.contains(&id)
    };
    let labels = r.labels.select(keep);
    let props = r.props.select(keep);
    let combined = ViewRelations::new(nodes, edges, src, tgt, labels, props);
    Ok(pg_view_ext(&combined, ViewMode::Strict)?)
}

fn head(t: &pgq_value::Tuple, k: usize) -> pgq_value::Tuple {
    t.project(&(0..k).collect::<Vec<_>>()).expect("arity ≥ k")
}

fn suffix(t: &pgq_value::Tuple, k: usize) -> pgq_value::Tuple {
    t.project(&(k..t.arity()).collect::<Vec<_>>())
        .expect("arity 2k")
}

fn prefix(t: &pgq_value::Tuple, id: &pgq_value::Tuple, k: usize) -> bool {
    (0..k).all(|i| t.get(i) == id.get(i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgq_graph::PropertyGraphBuilder;
    use pgq_value::{Tuple, Value};

    fn nid(i: i64) -> Tuple {
        Tuple::unary(Value::int(i))
    }

    /// nodes 0,1 with edge 10: 0→1 labeled "a", prop w=1 on node 0.
    fn g1() -> PropertyGraph {
        let mut b = PropertyGraphBuilder::unary();
        b.node1(Value::int(0)).unwrap();
        b.node1(Value::int(1)).unwrap();
        b.edge1(Value::int(10), Value::int(0), Value::int(1))
            .unwrap();
        b.label(nid(10), Value::str("a")).unwrap();
        b.prop(nid(0), Value::str("w"), Value::int(1)).unwrap();
        b.finish()
    }

    /// nodes 1,2 with edge 11: 1→2 labeled "b".
    fn g2() -> PropertyGraph {
        let mut b = PropertyGraphBuilder::unary();
        b.node1(Value::int(1)).unwrap();
        b.node1(Value::int(2)).unwrap();
        b.edge1(Value::int(11), Value::int(1), Value::int(2))
            .unwrap();
        b.label(nid(11), Value::str("b")).unwrap();
        b.finish()
    }

    #[test]
    fn union_glues_overlapping_graphs() {
        let u = union(&g1(), &g2()).unwrap();
        assert_eq!(u.node_count(), 3);
        assert_eq!(u.edge_count(), 2);
        assert!(u.has_label(&nid(10), &Value::str("a")));
        assert!(u.has_label(&nid(11), &Value::str("b")));
    }

    #[test]
    fn union_is_commutative_and_idempotent_here() {
        let a = g1();
        let b = g2();
        assert_eq!(union(&a, &b).unwrap(), union(&b, &a).unwrap());
        assert_eq!(union(&a, &a).unwrap(), a);
    }

    #[test]
    fn union_rejects_endpoint_conflict() {
        // Edge 10 exists in both, but points 0→1 in g1 and 1→0 here.
        let mut b = PropertyGraphBuilder::unary();
        b.node1(Value::int(0)).unwrap();
        b.node1(Value::int(1)).unwrap();
        b.edge1(Value::int(10), Value::int(1), Value::int(0))
            .unwrap();
        let conflicting = b.finish();
        assert!(matches!(
            union(&g1(), &conflicting),
            Err(AlgebraError::Invalid(_))
        ));
    }

    #[test]
    fn union_rejects_node_edge_id_clash() {
        // 10 is an edge in g1 and a node here.
        let mut b = PropertyGraphBuilder::unary();
        b.node1(Value::int(10)).unwrap();
        let clashing = b.finish();
        assert!(matches!(
            union(&g1(), &clashing),
            Err(AlgebraError::Invalid(_))
        ));
    }

    #[test]
    fn union_rejects_property_conflict_but_accepts_agreement() {
        let mut b = PropertyGraphBuilder::unary();
        b.node1(Value::int(0)).unwrap();
        b.prop(nid(0), Value::str("w"), Value::int(2)).unwrap();
        let conflicting = b.finish();
        assert!(matches!(
            union(&g1(), &conflicting),
            Err(AlgebraError::Invalid(_))
        ));

        let mut b = PropertyGraphBuilder::unary();
        b.node1(Value::int(0)).unwrap();
        b.prop(nid(0), Value::str("w"), Value::int(1)).unwrap();
        let agreeing = b.finish();
        assert_eq!(union(&g1(), &agreeing).unwrap(), g1());
    }

    #[test]
    fn intersection_keeps_common_structure() {
        let i = intersect(&g1(), &g2()).unwrap();
        assert_eq!(i.node_count(), 1); // node 1
        assert_eq!(i.edge_count(), 0);
    }

    #[test]
    fn intersection_drops_edges_with_disagreeing_endpoints() {
        let mut b = PropertyGraphBuilder::unary();
        b.node1(Value::int(0)).unwrap();
        b.node1(Value::int(1)).unwrap();
        b.edge1(Value::int(10), Value::int(1), Value::int(0))
            .unwrap(); // reversed
        let reversed = b.finish();
        let i = intersect(&g1(), &reversed).unwrap();
        assert_eq!(i.node_count(), 2);
        assert_eq!(i.edge_count(), 0);
    }

    #[test]
    fn minus_removes_elements_and_dangling_edges() {
        // Remove node 1: edge 10 must go with it.
        let mut b = PropertyGraphBuilder::unary();
        b.node1(Value::int(1)).unwrap();
        let just_node1 = b.finish();
        let d = minus(&g1(), &just_node1).unwrap();
        assert_eq!(d.node_count(), 1);
        assert_eq!(d.edge_count(), 0);
        // Node 0 keeps its property.
        assert_eq!(d.prop(&nid(0), &Value::str("w")), Some(&Value::int(1)));
    }

    #[test]
    fn induced_subgraph_by_label() {
        let mut b = PropertyGraphBuilder::unary();
        for i in 0..4i64 {
            b.node1(Value::int(i)).unwrap();
        }
        for i in 0..3i64 {
            b.edge1(Value::int(10 + i), Value::int(i), Value::int(i + 1))
                .unwrap();
        }
        for i in [0i64, 1, 2] {
            b.label(nid(i), Value::str("Core")).unwrap();
        }
        let g = b.finish();
        let core = induced_by_node_label(&g, &Value::str("Core")).unwrap();
        assert_eq!(core.node_count(), 3);
        assert_eq!(core.edge_count(), 2); // 0→1, 1→2 survive; 2→3 dangles
    }

    #[test]
    fn filter_edges_by_label_keeps_all_nodes() {
        let u = union(&g1(), &g2()).unwrap();
        let only_a = filter_edges_by_label(&u, &Value::str("a")).unwrap();
        assert_eq!(only_a.node_count(), 3);
        assert_eq!(only_a.edge_count(), 1);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut b = PropertyGraphBuilder::new(2);
        b.node(Tuple::new(vec![Value::int(0), Value::int(0)]))
            .unwrap();
        let wide = b.finish();
        assert!(matches!(
            union(&g1(), &wide),
            Err(AlgebraError::ArityMismatch { left: 1, right: 2 })
        ));
    }

    #[test]
    fn empty_graph_is_a_union_identity() {
        let e = PropertyGraph::empty(1);
        assert_eq!(union(&g1(), &e).unwrap(), g1());
        assert_eq!(union(&e, &g1()).unwrap(), g1());
    }
}
