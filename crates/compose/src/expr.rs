//! Graph-valued query expressions.
//!
//! Section 8 of the paper: "our formalization opens the door to
//! compositional graph-query languages: `pgView` constructs full
//! property graphs that can be queried or outputted." [`GraphExpr`] is
//! that door, opened: the `pgView` family is the base constructor
//! (its six arguments are arbitrary relational/PGQ queries, exactly as
//! in `PGQrw`/`PGQext`), the graph algebra of [`crate::algebra`]
//! composes graph values, and [`eval_match`] closes the loop back into
//! relations by running an output pattern (Figure 2) on the composed
//! graph — so a query can move between the relational and graph models
//! as many times as it likes.

use crate::algebra::{self, AlgebraError};
use pgq_core::{build_view, EvalConfig, Query, QueryError, ViewOp};
use pgq_graph::{relations_of, PropertyGraph, ViewRelations};
use pgq_pattern::{OutputError, OutputPattern};
use pgq_relational::{Database, Relation};
use pgq_value::Label;
use std::fmt;

/// A graph-valued query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphExpr {
    /// The paper's base constructor: `pgView⋆(Q1, …, Q6)` over six
    /// relational subqueries (Figure 4, generalized by Definition 5.3).
    View {
        /// The six subqueries in canonical order.
        views: Box<[Query; 6]>,
        /// Which `pgView` family member to apply.
        op: ViewOp,
    },
    /// A literal graph value (useful for staging and tests).
    Literal(PropertyGraph),
    /// Strict graph union.
    Union(Box<GraphExpr>, Box<GraphExpr>),
    /// Graph intersection.
    Intersect(Box<GraphExpr>, Box<GraphExpr>),
    /// Graph difference (removes elements, restricts dangling edges).
    Minus(Box<GraphExpr>, Box<GraphExpr>),
    /// Edge-only difference (keeps the left operand's nodes).
    MinusEdges(Box<GraphExpr>, Box<GraphExpr>),
    /// Subgraph induced by nodes carrying a label.
    InducedByNodeLabel(Box<GraphExpr>, Label),
    /// Keep only edges carrying a label.
    FilterEdgesByLabel(Box<GraphExpr>, Label),
}

impl GraphExpr {
    /// `pgView⋆(Q̄)` from six queries.
    pub fn view(views: [Query; 6], op: ViewOp) -> Self {
        GraphExpr::View {
            views: Box::new(views),
            op,
        }
    }

    /// `pgView(R1, …, R6)` over six stored relations.
    pub fn view_ro(rels: [&str; 6], op: ViewOp) -> Self {
        GraphExpr::view(rels.map(|r| Query::Rel(r.into())), op)
    }

    /// `self ∪ other`.
    pub fn union(self, other: GraphExpr) -> Self {
        GraphExpr::Union(Box::new(self), Box::new(other))
    }

    /// `self ∩ other`.
    pub fn intersect(self, other: GraphExpr) -> Self {
        GraphExpr::Intersect(Box::new(self), Box::new(other))
    }

    /// `self − other` (element difference).
    pub fn minus(self, other: GraphExpr) -> Self {
        GraphExpr::Minus(Box::new(self), Box::new(other))
    }

    /// `self ∖ₑ other` (edge-only difference).
    pub fn minus_edges(self, other: GraphExpr) -> Self {
        GraphExpr::MinusEdges(Box::new(self), Box::new(other))
    }

    /// Node-label-induced subgraph.
    pub fn induced(self, label: impl Into<Label>) -> Self {
        GraphExpr::InducedByNodeLabel(Box::new(self), label.into())
    }

    /// Edge-label filter.
    pub fn edges_labeled(self, label: impl Into<Label>) -> Self {
        GraphExpr::FilterEdgesByLabel(Box::new(self), label.into())
    }

    /// Number of AST nodes (diagnostics).
    pub fn size(&self) -> usize {
        match self {
            GraphExpr::View { .. } | GraphExpr::Literal(_) => 1,
            GraphExpr::Union(a, b)
            | GraphExpr::Intersect(a, b)
            | GraphExpr::Minus(a, b)
            | GraphExpr::MinusEdges(a, b) => 1 + a.size() + b.size(),
            GraphExpr::InducedByNodeLabel(a, _) | GraphExpr::FilterEdgesByLabel(a, _) => {
                1 + a.size()
            }
        }
    }
}

impl fmt::Display for GraphExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphExpr::View { op, .. } => write!(f, "{op}(Q̄)"),
            GraphExpr::Literal(g) => write!(f, "⟨graph {}N/{}E⟩", g.node_count(), g.edge_count()),
            GraphExpr::Union(a, b) => write!(f, "({a} ∪ {b})"),
            GraphExpr::Intersect(a, b) => write!(f, "({a} ∩ {b})"),
            GraphExpr::Minus(a, b) => write!(f, "({a} − {b})"),
            GraphExpr::MinusEdges(a, b) => write!(f, "({a} ∖ₑ {b})"),
            GraphExpr::InducedByNodeLabel(a, l) => write!(f, "{a}[nodes: {l}]"),
            GraphExpr::FilterEdgesByLabel(a, l) => write!(f, "{a}[edges: {l}]"),
        }
    }
}

/// Composition errors: the view layer's, the algebra's, or the output
/// pattern's.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ComposeError {
    /// Evaluating a `View` base case failed.
    Query(QueryError),
    /// A graph-algebra operation failed.
    Algebra(AlgebraError),
    /// The final output pattern failed.
    Output(OutputError),
}

impl fmt::Display for ComposeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComposeError::Query(e) => write!(f, "{e}"),
            ComposeError::Algebra(e) => write!(f, "{e}"),
            ComposeError::Output(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ComposeError {}

impl From<QueryError> for ComposeError {
    fn from(e: QueryError) -> Self {
        ComposeError::Query(e)
    }
}

impl From<AlgebraError> for ComposeError {
    fn from(e: AlgebraError) -> Self {
        ComposeError::Algebra(e)
    }
}

impl From<OutputError> for ComposeError {
    fn from(e: OutputError) -> Self {
        ComposeError::Output(e)
    }
}

/// Evaluate a graph expression to a property graph value.
pub fn eval_graph(e: &GraphExpr, db: &Database) -> Result<PropertyGraph, ComposeError> {
    match e {
        GraphExpr::View { views, op } => Ok(build_view(views, *op, db, EvalConfig::default())?),
        GraphExpr::Literal(g) => Ok(g.clone()),
        GraphExpr::Union(a, b) => Ok(algebra::union(&eval_graph(a, db)?, &eval_graph(b, db)?)?),
        GraphExpr::Intersect(a, b) => Ok(algebra::intersect(
            &eval_graph(a, db)?,
            &eval_graph(b, db)?,
        )?),
        GraphExpr::Minus(a, b) => Ok(algebra::minus(&eval_graph(a, db)?, &eval_graph(b, db)?)?),
        GraphExpr::MinusEdges(a, b) => Ok(algebra::minus_edges(
            &eval_graph(a, db)?,
            &eval_graph(b, db)?,
        )?),
        GraphExpr::InducedByNodeLabel(a, l) => {
            Ok(algebra::induced_by_node_label(&eval_graph(a, db)?, l)?)
        }
        GraphExpr::FilterEdgesByLabel(a, l) => {
            Ok(algebra::filter_edges_by_label(&eval_graph(a, db)?, l)?)
        }
    }
}

/// Evaluate a graph expression, then run an output pattern on the
/// result — back from the graph model to the relational model.
pub fn eval_match(
    e: &GraphExpr,
    out: &OutputPattern,
    db: &Database,
) -> Result<Relation, ComposeError> {
    let g = eval_graph(e, db)?;
    Ok(out.eval(&g)?)
}

/// "Outputted", per Section 8: materialize a composed graph back into
/// its six canonical relations, ready to be stored as a database or fed
/// to another `pgView`.
pub fn output_graph(e: &GraphExpr, db: &Database) -> Result<ViewRelations, ComposeError> {
    Ok(relations_of(&eval_graph(e, db)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgq_pattern::Pattern;
    use pgq_relational::Relation;
    use pgq_value::{Tuple, Value};

    /// Two stored graph layers over one database: "wire" edges in
    /// (N,E1,S1,T1,L1,P0) and "cash" edges in (N,E2,S2,T2,L2,P0).
    fn layered_db() -> Database {
        let mut n = Relation::empty(1);
        for i in 0..4i64 {
            n.insert(Tuple::unary(Value::int(i))).unwrap();
        }
        let layer = |base: i64, edges: &[(i64, i64)], label: &str| {
            let mut e = Relation::empty(1);
            let mut s = Relation::empty(2);
            let mut t = Relation::empty(2);
            let mut l = Relation::empty(2);
            for (j, (from, to)) in edges.iter().enumerate() {
                let id = Tuple::unary(Value::int(base + j as i64));
                e.insert(id.clone()).unwrap();
                s.insert(id.concat(&Tuple::unary(Value::int(*from))))
                    .unwrap();
                t.insert(id.concat(&Tuple::unary(Value::int(*to)))).unwrap();
                l.insert(id.concat(&Tuple::unary(Value::str(label))))
                    .unwrap();
            }
            (e, s, t, l)
        };
        let (e1, s1, t1, l1) = layer(100, &[(0, 1), (1, 2)], "wire");
        let (e2, s2, t2, l2) = layer(200, &[(2, 3)], "cash");
        Database::new()
            .with_relation("N", n)
            .with_relation("E1", e1)
            .with_relation("S1", s1)
            .with_relation("T1", t1)
            .with_relation("L1", l1)
            .with_relation("E2", e2)
            .with_relation("S2", s2)
            .with_relation("T2", t2)
            .with_relation("L2", l2)
            .with_relation("P0", Relation::empty(3))
    }

    fn wire() -> GraphExpr {
        GraphExpr::view_ro(["N", "E1", "S1", "T1", "L1", "P0"], ViewOp::Unary)
    }

    fn cash() -> GraphExpr {
        GraphExpr::view_ro(["N", "E2", "S2", "T2", "L2", "P0"], ViewOp::Unary)
    }

    fn reach() -> OutputPattern {
        OutputPattern::vars(
            Pattern::node("x")
                .then(Pattern::any_edge().plus())
                .then(Pattern::node("y")),
            ["x", "y"],
        )
        .unwrap()
    }

    #[test]
    fn union_of_views_extends_reachability() {
        let db = layered_db();
        let wire_only = eval_match(&wire(), &reach(), &db).unwrap();
        let both = eval_match(&wire().union(cash()), &reach(), &db).unwrap();
        // wire: 0→1→2 gives 3 pairs; with cash 2→3: 0→3, 1→3, 2→3 appear.
        assert_eq!(wire_only.len(), 3);
        assert_eq!(both.len(), 6);
    }

    #[test]
    fn minus_edges_undoes_union() {
        let db = layered_db();
        // Both layers share the node relation N, so edge-only
        // difference is the "remove the cash layer" operation.
        let roundabout = wire().union(cash()).minus_edges(cash());
        let g = eval_graph(&roundabout, &db).unwrap();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(eval_match(&roundabout, &reach(), &db).unwrap().len(), 3);
    }

    #[test]
    fn element_minus_takes_shared_nodes_too() {
        let db = layered_db();
        // Element difference removes the cash layer's *nodes* — which
        // are all of N — so everything goes: the documented strictness.
        let g = eval_graph(&wire().union(cash()).minus(cash()), &db).unwrap();
        assert_eq!(g.node_count() + g.edge_count(), 0);
    }

    #[test]
    fn edge_filter_equals_base_layer() {
        let db = layered_db();
        let filtered = wire().union(cash()).edges_labeled("wire");
        let direct = wire();
        assert_eq!(
            eval_graph(&filtered, &db).unwrap(),
            eval_graph(&direct, &db).unwrap()
        );
    }

    #[test]
    fn output_graph_re_enters_the_relational_model() {
        let db = layered_db();
        let rels = output_graph(&wire().union(cash()), &db).unwrap();
        assert_eq!(rels.nodes.len(), 4);
        assert_eq!(rels.edges.len(), 3);
        // And the six relations reconstruct the same graph.
        let g1 = pgq_graph::pg_view(&rels).unwrap();
        let g2 = eval_graph(&wire().union(cash()), &db).unwrap();
        assert_eq!(g1, g2);
    }

    #[test]
    fn display_is_readable() {
        let e = wire().union(cash()).edges_labeled("wire");
        assert_eq!(e.to_string(), "(pgView(Q̄) ∪ pgView(Q̄))[edges: \"wire\"]");
    }

    #[test]
    fn query_layer_errors_propagate() {
        let db = layered_db();
        let bad = GraphExpr::view_ro(["N", "E1", "S1", "T1", "L1", "MISSING"], ViewOp::Unary);
        assert!(matches!(eval_graph(&bad, &db), Err(ComposeError::Query(_))));
    }
}
