//! # pgq-compose
//!
//! Compositional graph queries — the future-work direction the paper's
//! conclusion sketches, made executable: "our formalization opens the
//! door to compositional graph-query languages: `pgView` constructs
//! full property graphs that can be queried or outputted" (Section 8).
//!
//! * [`algebra`] — union / intersection / difference / induced
//!   subgraphs on property graph values, defined as set operations on
//!   the canonical relations with `pgView` itself as the validator;
//! * [`expr`] — [`expr::GraphExpr`], a query language whose
//!   values are *graphs*: `pgView⋆(Q̄)` is the base constructor, graphs
//!   compose algebraically, [`expr::eval_match`] runs a
//!   Figure 2 output pattern on the composed value, and
//!   [`expr::output_graph`] materializes it back into six
//!   relations — relational ↔ graph, round and round.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algebra;
pub mod expr;

pub use algebra::{
    filter_edges_by_label, induced_by_node_label, intersect, minus, minus_edges, union,
    AlgebraError,
};
pub use expr::{eval_graph, eval_match, output_graph, ComposeError, GraphExpr};

#[cfg(test)]
mod prop_tests {
    use super::*;
    use pgq_graph::{pg_view_ext, relations_of, PropertyGraph, ViewMode};
    use pgq_pattern::testgen::{arb_graph, arb_nfa_pattern, strip_vars};
    use pgq_pattern::{endpoint_pairs, eval_pattern};
    use proptest::prelude::*;

    /// Rebuild through the canonical relations (normalizes adjacency
    /// order so structural equality is meaningful).
    fn canon(g: &PropertyGraph) -> PropertyGraph {
        pg_view_ext(&relations_of(g), ViewMode::Strict).unwrap()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Union is commutative and idempotent whenever it is defined.
        #[test]
        fn union_laws(a in arb_graph(), b in arb_graph()) {
            match (union(&a, &b), union(&b, &a)) {
                (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
                (Err(_), Err(_)) => {}
                (x, y) => prop_assert!(false, "asymmetric: {:?} vs {:?}", x, y),
            }
            prop_assert_eq!(union(&a, &a).unwrap(), canon(&a));
        }

        /// Intersection is commutative and below both operands.
        #[test]
        fn intersection_laws(a in arb_graph(), b in arb_graph()) {
            let i1 = intersect(&a, &b).unwrap();
            let i2 = intersect(&b, &a).unwrap();
            prop_assert_eq!(&i1, &i2);
            prop_assert!(i1.node_count() <= a.node_count().min(b.node_count()));
            prop_assert!(i1.edge_count() <= a.edge_count().min(b.edge_count()));
            prop_assert_eq!(intersect(&a, &a).unwrap(), canon(&a));
        }

        /// a − a is empty; a − ∅ is a.
        #[test]
        fn difference_laws(a in arb_graph()) {
            let empty = PropertyGraph::empty(a.id_arity());
            let d = minus(&a, &a).unwrap();
            prop_assert_eq!(d.node_count() + d.edge_count(), 0);
            prop_assert_eq!(minus(&a, &empty).unwrap(), canon(&a));
        }

        /// Pattern matching is monotone under graph union for
        /// filter-free navigational patterns: every endpoint pair found
        /// in `a` is still found in `a ∪ b` (when the union is defined).
        #[test]
        fn matching_monotone_under_union(
            a in arb_graph(),
            b in arb_graph(),
            p in arb_nfa_pattern(3),
        ) {
            let p = strip_vars(&p);
            if let Ok(u) = union(&a, &b) {
                let small = endpoint_pairs(&eval_pattern(&p, &a).unwrap());
                let big = endpoint_pairs(&eval_pattern(&p, &u).unwrap());
                prop_assert!(small.is_subset(&big), "pattern {:?}", p);
            }
        }
    }
}
