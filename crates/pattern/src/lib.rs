//! # pgq-pattern
//!
//! The pattern-matching layer of SQL/PGQ (Sections 2.2–2.3 and
//! Appendix 9.1 of the paper): pattern syntax (Figure 1), endpoint
//! semantics (Figure 2), path semantics (Figure 6), output patterns, and
//! an optimized NFA/product-graph engine.
//!
//! Substrate S4 of the reproduction; see DESIGN.md. Experiment E2 checks
//! Proposition 9.1 (`π_end(⟦ψ⟧^path) = ⟦ψ⟧`) and engine agreement by
//! property testing (see the `prop_tests` module and `tests/`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod binding;
pub mod condition;
pub mod eval_endpoint;
pub mod eval_path;
pub mod nfa;
pub mod output;

pub use ast::{Direction, Pattern, PatternError, RepBound};
pub use binding::Binding;
pub use condition::Condition;
pub use eval_endpoint::{endpoint_pairs, eval_pattern, MatchSet, MatchTriple, PairSet};
pub use eval_path::{
    eval_pattern_paths, eval_pattern_paths_limited, project_endpoints, Path, PathEvalError,
    PathLimits, PathMatchSet,
};
pub use nfa::{try_eval_pairs, Nfa, Unsupported};
pub use output::{OutputError, OutputItem, OutputPattern};

/// Proptest generators shared by this crate's property tests and by
/// integration tests in other crates (enable the `testgen` feature).
#[cfg(any(test, feature = "testgen"))]
pub mod testgen {
    use super::*;
    use pgq_graph::{PropertyGraph, PropertyGraphBuilder};
    use pgq_relational::CmpOp;
    use proptest::prelude::*;

    /// A small random unary property graph with labels `L0/L1` and an
    /// integer property `w` on every edge.
    pub fn arb_graph() -> impl Strategy<Value = PropertyGraph> {
        (1usize..6, 0usize..10).prop_flat_map(|(n, m)| {
            proptest::collection::vec((0..n, 0..n, 0i64..4, prop::bool::ANY), m).prop_map(
                move |edges| {
                    let mut b = PropertyGraphBuilder::unary();
                    for i in 0..n {
                        b.node1(i as i64).unwrap();
                        if i % 2 == 0 {
                            b.label(pgq_value::Tuple::unary(i as i64), "L0").unwrap();
                        }
                    }
                    for (k, (s, t, w, lab)) in edges.into_iter().enumerate() {
                        let eid = 1000 + k as i64;
                        b.edge1(eid, s as i64, t as i64).unwrap();
                        b.prop(pgq_value::Tuple::unary(eid), "w", w).unwrap();
                        if lab {
                            b.label(pgq_value::Tuple::unary(eid), "L1").unwrap();
                        }
                    }
                    b.finish()
                },
            )
        })
    }

    /// Patterns in the NFA-supported fragment (distinct variables, local
    /// filters only). `depth` bounds the AST height.
    pub fn arb_nfa_pattern(depth: u32) -> impl Strategy<Value = Pattern> {
        let ctr = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        arb_nfa_pattern_inner(depth, ctr)
    }

    fn fresh_var(ctr: &std::sync::Arc<std::sync::atomic::AtomicUsize>) -> pgq_value::Var {
        let n = ctr.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        pgq_value::Var::new(format!("v{n}"))
    }

    fn arb_nfa_pattern_inner(
        depth: u32,
        ctr: std::sync::Arc<std::sync::atomic::AtomicUsize>,
    ) -> BoxedStrategy<Pattern> {
        let c1 = ctr.clone();
        let c2 = ctr.clone();
        let c3 = ctr.clone();
        let leaf = prop_oneof![
            Just(Pattern::any_node()),
            Just(Pattern::any_edge()),
            Just(Pattern::any_edge_back()),
            // Labeled-edge atom with a local filter.
            (0i64..4, prop::bool::ANY).prop_map(move |(w, use_label)| {
                let v = fresh_var(&c1);
                let cond = if use_label {
                    Condition::has_label(v.clone(), "L1")
                } else {
                    Condition::prop_cmp(v.clone(), "w", CmpOp::Ge, w)
                };
                Pattern::Edge(Some(v), Direction::Forward).filter(cond)
            }),
            Just(()).prop_map(move |()| {
                let v = fresh_var(&c2);
                let cond = Condition::has_label(v.clone(), "L0");
                Pattern::Node(Some(v)).filter(cond)
            }),
        ];
        if depth == 0 {
            return leaf.boxed();
        }
        let sub = arb_nfa_pattern_inner(depth - 1, c3);
        let sub2 = sub.clone();
        prop_oneof![
            4 => leaf,
            2 => (sub.clone(), sub2.clone()).prop_map(|(a, b)| a.then(b)),
            1 => sub.clone().prop_map(|p| {
                // Union branches must have equal fv; anonymize to be safe.
                let q = strip_vars(&p);
                strip_vars(&p).or(q)
            }),
            1 => (sub.clone(), 0usize..3, 0usize..3).prop_map(|(p, n, extra)| {
                p.repeat(n, n + extra)
            }),
            1 => sub.prop_map(|p| p.repeat_at_least(1)),
        ]
        .boxed()
    }

    /// Replaces every variable with `None` (and drops filters, whose
    /// conditions would dangle), producing an equal-fv pattern for union.
    pub fn strip_vars(p: &Pattern) -> Pattern {
        match p {
            Pattern::Node(_) => Pattern::Node(None),
            Pattern::Edge(_, d) => Pattern::Edge(None, *d),
            Pattern::Concat(a, b) => strip_vars(a).then(strip_vars(b)),
            Pattern::Union(a, b) => strip_vars(a).or(strip_vars(b)),
            Pattern::Repeat(q, n, m) => Pattern::Repeat(Box::new(strip_vars(q)), *n, *m),
            Pattern::Filter(q, _) => strip_vars(q),
        }
    }
}

#[cfg(test)]
mod prop_tests {
    use super::testgen::*;
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Proposition 9.1: π_end(⟦ψ⟧^path) = ⟦ψ⟧ (experiment E2).
        /// Samples that blow the Figure 6 evaluator's path-materialization
        /// budget are skipped — the bound is an explicit resource guard,
        /// not a semantic failure (see `eval_path` docs).
        #[test]
        fn endpoint_path_equivalence(g in arb_graph(), p in arb_nfa_pattern(2)) {
            let endpoint = eval_pattern(&p, &g).unwrap();
            let limits = PathLimits { max_paths: 20_000 };
            match eval_pattern_paths_limited(&p, &g, limits) {
                Ok(paths) => prop_assert_eq!(project_endpoints(&paths), endpoint),
                Err(PathEvalError::PathExplosion { .. }) => {}
                Err(e) => prop_assert!(false, "unexpected error: {e}"),
            }
        }

        /// NFA engine agrees with the reference evaluator on the
        /// supported fragment (experiment E2).
        #[test]
        fn nfa_agrees_with_reference(g in arb_graph(), p in arb_nfa_pattern(3)) {
            let reference = endpoint_pairs(&eval_pattern(&p, &g).unwrap());
            match try_eval_pairs(&p, &g) {
                Ok(fast) => prop_assert_eq!(reference, fast),
                Err(e) => prop_assert!(false, "generator produced unsupported pattern: {e}"),
            }
        }

        /// Endpoint pairs are invariant under variable renaming/stripping
        /// (variables only affect mappings) — for filter-free patterns.
        #[test]
        fn endpoint_pairs_ignore_variable_names(g in arb_graph(), p in arb_nfa_pattern(2)) {
            let has_filter = matches!(&p, Pattern::Filter(..)) || format!("{p}").contains('⟨');
            if !has_filter {
                let original = endpoint_pairs(&eval_pattern(&p, &g).unwrap());
                let stripped = endpoint_pairs(&eval_pattern(&testgen::strip_vars(&p), &g).unwrap());
                prop_assert_eq!(original, stripped);
            }
        }

        /// Kleene star always contains the reflexive pairs on all nodes.
        #[test]
        fn star_contains_identity(g in arb_graph(), p in arb_nfa_pattern(1)) {
            let star = eval_pattern(&Pattern::Repeat(Box::new(p), 0, RepBound::Infinite), &g).unwrap();
            let pairs = endpoint_pairs(&star);
            for n in g.nodes() {
                prop_assert!(pairs.contains(&(n.clone(), n.clone())));
            }
        }

        /// ψ^{n..m} ⊆ ψ^{n..m+1} ⊆ ψ^{n..∞} (monotonicity in the bound).
        #[test]
        fn repetition_monotone_in_upper_bound(
            g in arb_graph(),
            p in arb_nfa_pattern(1),
            n in 0usize..3,
            m_extra in 0usize..3,
        ) {
            let m = n + m_extra;
            let bounded = endpoint_pairs(&eval_pattern(&p.clone().repeat(n, m), &g).unwrap());
            let bigger = endpoint_pairs(&eval_pattern(&p.clone().repeat(n, m + 1), &g).unwrap());
            let unbounded = endpoint_pairs(&eval_pattern(&p.repeat_at_least(n), &g).unwrap());
            prop_assert!(bounded.is_subset(&bigger));
            prop_assert!(bigger.is_subset(&unbounded));
        }
    }
}
