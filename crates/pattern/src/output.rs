//! Output patterns `ψ_Ω` (Figure 1) and their semantics (Figure 2,
//! Section 2.3.2): the bridge from pattern matching to relations.
//!
//! `Ω = (ω1, …, ωn)` with pairwise-distinct `ωi ∈ Vars ∪ {x.k}`. Each
//! `μ_Ω(ωi)` is a node identifier, an edge identifier, or a property
//! value; with `N ∪ E ∪ P ⊆ C` the result is a relation.
//!
//! With composite (k-ary) identifiers the paper informally also projects
//! identifier *components* (Example 5.1 outputs `x.bank` where `bank` is
//! an identifier column, `R6 = ∅`). We make this precise with
//! [`OutputItem::Component`]; see DESIGN.md deviation note 6.

use crate::ast::{Pattern, PatternError};
use crate::eval_endpoint::{eval_pattern, MatchSet};
use pgq_graph::PropertyGraph;
use pgq_relational::Relation;
use pgq_value::{Key, Value, Var};
use std::collections::BTreeSet;
use std::fmt;

/// One output element `ω`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OutputItem {
    /// `ω = x`: the full identifier of `μ(x)` — contributes `k` columns
    /// on a graph with `k`-ary identifiers (flattened).
    Var(Var),
    /// `ω = x.k`: the property value `prop(μ(x), k)`; mappings where the
    /// property is undefined produce no tuple.
    Prop(Var, Key),
    /// `ω = x#i`: the `i`-th component (0-based) of the composite
    /// identifier `μ(x)` — the Example 5.1 projection.
    Component(Var, usize),
}

impl OutputItem {
    fn var(&self) -> &Var {
        match self {
            OutputItem::Var(x) | OutputItem::Prop(x, _) | OutputItem::Component(x, _) => x,
        }
    }
}

impl fmt::Display for OutputItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OutputItem::Var(x) => write!(f, "{x}"),
            OutputItem::Prop(x, k) => write!(f, "{x}.{k}"),
            OutputItem::Component(x, i) => write!(f, "{x}#{i}"),
        }
    }
}

/// An output pattern `ψ_Ω`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputPattern {
    /// The underlying path pattern `ψ`.
    pub pattern: Pattern,
    /// The output tuple `Ω` (possibly empty: a Boolean query, like the
    /// `ψ∅` of Theorem 4.1's alternating-path query).
    pub items: Vec<OutputItem>,
}

/// Static violations of the output-pattern side conditions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OutputError {
    /// The underlying pattern is ill-formed.
    Pattern(PatternError),
    /// `ωi = ωj` for `i ≠ j` (Figure 1 requires distinct elements).
    DuplicateItem(String),
    /// An output references a variable not free in `ψ` — such an output
    /// would be vacuously empty, so we reject it statically.
    VarNotFree(Var),
    /// A component index at or beyond the graph's identifier arity
    /// (detected at evaluation time, when the arity is known).
    ComponentOutOfRange {
        /// Offending variable.
        var: Var,
        /// Requested component.
        index: usize,
        /// The graph's identifier arity.
        id_arity: usize,
    },
}

impl fmt::Display for OutputError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OutputError::Pattern(e) => write!(f, "{e}"),
            OutputError::DuplicateItem(s) => write!(f, "duplicate output element {s}"),
            OutputError::VarNotFree(v) => {
                write!(f, "output references {v}, which is not free in the pattern")
            }
            OutputError::ComponentOutOfRange {
                var,
                index,
                id_arity,
            } => write!(
                f,
                "component {var}#{index} out of range for identifier arity {id_arity}"
            ),
        }
    }
}

impl std::error::Error for OutputError {}

impl From<PatternError> for OutputError {
    fn from(e: PatternError) -> Self {
        OutputError::Pattern(e)
    }
}

impl OutputPattern {
    /// Builds and statically validates an output pattern.
    pub fn new(pattern: Pattern, items: Vec<OutputItem>) -> Result<Self, OutputError> {
        pattern.validate()?;
        let fv = pattern.free_vars();
        let mut seen = BTreeSet::new();
        for item in &items {
            if !seen.insert(item.clone()) {
                return Err(OutputError::DuplicateItem(item.to_string()));
            }
            if !fv.contains(item.var()) {
                return Err(OutputError::VarNotFree(item.var().clone()));
            }
        }
        Ok(OutputPattern { pattern, items })
    }

    /// A Boolean output pattern `ψ∅` (empty `Ω`).
    pub fn boolean(pattern: Pattern) -> Result<Self, OutputError> {
        OutputPattern::new(pattern, Vec::new())
    }

    /// Convenience: output the listed variables.
    pub fn vars<I, V>(pattern: Pattern, vars: I) -> Result<Self, OutputError>
    where
        I: IntoIterator<Item = V>,
        V: Into<Var>,
    {
        OutputPattern::new(
            pattern,
            vars.into_iter()
                .map(|v| OutputItem::Var(v.into()))
                .collect(),
        )
    }

    /// The output arity on a graph with the given identifier arity:
    /// full-identifier items contribute `id_arity` columns, property and
    /// component items one each.
    pub fn output_arity(&self, id_arity: usize) -> usize {
        self.items
            .iter()
            .map(|i| match i {
                OutputItem::Var(_) => id_arity,
                OutputItem::Prop(..) | OutputItem::Component(..) => 1,
            })
            .sum()
    }

    /// `⟦ψ_Ω⟧_G` (Figure 2): evaluates the pattern and projects each
    /// mapping through `Ω`.
    pub fn eval(&self, g: &PropertyGraph) -> Result<Relation, OutputError> {
        let matches = eval_pattern(&self.pattern, g)?;
        self.eval_with(&matches, g)
    }

    /// Like [`OutputPattern::eval`] but over a precomputed match set
    /// (used by engines that share pattern results).
    pub fn eval_with(
        &self,
        matches: &MatchSet,
        g: &PropertyGraph,
    ) -> Result<Relation, OutputError> {
        // Validate component ranges once against the graph's arity.
        for item in &self.items {
            if let OutputItem::Component(x, i) = item {
                if *i >= g.id_arity() {
                    return Err(OutputError::ComponentOutOfRange {
                        var: x.clone(),
                        index: *i,
                        id_arity: g.id_arity(),
                    });
                }
            }
        }
        let arity = self.output_arity(g.id_arity());
        let mut rel = Relation::empty(arity);
        'triples: for (_, _, mu) in matches {
            let mut row: Vec<Value> = Vec::with_capacity(arity);
            for item in &self.items {
                match item {
                    OutputItem::Var(x) => match mu.get(x) {
                        Some(idv) => row.extend(idv.iter().cloned()),
                        None => continue 'triples, // μ_Ω undefined
                    },
                    OutputItem::Prop(x, k) => {
                        let Some(idv) = mu.get(x) else {
                            continue 'triples;
                        };
                        match g.prop(idv, k) {
                            Some(v) => row.push(v.clone()),
                            None => continue 'triples,
                        }
                    }
                    OutputItem::Component(x, i) => {
                        let Some(idv) = mu.get(x) else {
                            continue 'triples;
                        };
                        row.push(idv[*i].clone());
                    }
                }
            }
            rel.insert(row.into()).expect("arity computed above");
        }
        Ok(rel)
    }
}

impl fmt::Display for OutputPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({})", self.pattern)?;
        write!(f, "_(")?;
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::Condition;
    use pgq_graph::PropertyGraphBuilder;
    use pgq_value::{tuple, Tuple};

    /// Two accounts with IBANs and one labeled transfer between them.
    fn transfers() -> PropertyGraph {
        let mut b = PropertyGraphBuilder::unary();
        b.node1("acc1").unwrap();
        b.node1("acc2").unwrap();
        b.prop(Tuple::unary("acc1"), "iban", "IL01").unwrap();
        b.prop(Tuple::unary("acc2"), "iban", "IL02").unwrap();
        b.edge1("t1", "acc1", "acc2").unwrap();
        b.label(Tuple::unary("t1"), "Transfer").unwrap();
        b.prop(Tuple::unary("t1"), "amount", 500i64).unwrap();
        b.finish()
    }

    #[test]
    fn var_output_returns_identifiers() {
        let g = transfers();
        let p = Pattern::node("x")
            .then(Pattern::edge("t"))
            .then(Pattern::node("y"));
        let out = OutputPattern::vars(p, ["x", "y"]).unwrap();
        let rel = out.eval(&g).unwrap();
        assert_eq!(rel.arity(), 2);
        assert!(rel.contains(&tuple!["acc1", "acc2"]));
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn prop_output_and_undefined_skipping() {
        let g = transfers();
        let p = Pattern::node("x")
            .then(Pattern::edge("t"))
            .then(Pattern::node("y"));
        let out = OutputPattern::new(
            p.clone(),
            vec![
                OutputItem::Prop(Var::new("x"), "iban".into()),
                OutputItem::Prop(Var::new("y"), "iban".into()),
            ],
        )
        .unwrap();
        let rel = out.eval(&g).unwrap();
        assert!(rel.contains(&tuple!["IL01", "IL02"]));

        // Property undefined on every match → empty result, not an error.
        let out =
            OutputPattern::new(p, vec![OutputItem::Prop(Var::new("x"), "missing".into())]).unwrap();
        assert!(out.eval(&g).unwrap().is_empty());
    }

    #[test]
    fn boolean_output() {
        let g = transfers();
        let yes = OutputPattern::boolean(Pattern::any_edge()).unwrap();
        assert!(yes.eval(&g).unwrap().as_bool());
        let no = OutputPattern::boolean(Pattern::any_edge().filter_into("nope")).unwrap();
        assert!(!no.eval(&g).unwrap().as_bool());
    }

    // Tiny helper so the Boolean test reads naturally.
    trait FilterInto {
        fn filter_into(self, label: &str) -> Pattern;
    }
    impl FilterInto for Pattern {
        fn filter_into(self, label: &str) -> Pattern {
            let v = Var::new("e_");
            Pattern::Edge(Some(v.clone()), crate::ast::Direction::Forward)
                .filter(Condition::has_label(v, label))
        }
    }

    #[test]
    fn duplicate_items_rejected() {
        let p = Pattern::node("x");
        let err = OutputPattern::vars(p, ["x", "x"]).unwrap_err();
        assert!(matches!(err, OutputError::DuplicateItem(_)));
    }

    #[test]
    fn non_free_vars_rejected() {
        // x is hidden by the repetition (fv(ψ^{n..m}) = ∅).
        let p = Pattern::node("x").then(Pattern::any_edge()).repeat(1, 2);
        let err = OutputPattern::vars(p, ["x"]).unwrap_err();
        assert!(matches!(err, OutputError::VarNotFree(_)));
    }

    #[test]
    fn component_output_on_composite_ids() {
        // Binary identifiers (bank, branch).
        let mut b = PropertyGraphBuilder::new(2);
        b.node(tuple!["hapoalim", 1]).unwrap();
        b.node(tuple!["leumi", 2]).unwrap();
        b.edge(tuple!["t", 0], tuple!["hapoalim", 1], tuple!["leumi", 2])
            .unwrap();
        let g = b.finish();
        let p = Pattern::node("x")
            .then(Pattern::edge("t"))
            .then(Pattern::node("y"));
        let out = OutputPattern::new(
            p.clone(),
            vec![
                OutputItem::Component(Var::new("x"), 0),
                OutputItem::Component(Var::new("y"), 0),
            ],
        )
        .unwrap();
        let rel = out.eval(&g).unwrap();
        assert!(rel.contains(&tuple!["hapoalim", "leumi"]));

        // Out-of-range component is a typed error.
        let out =
            OutputPattern::new(p.clone(), vec![OutputItem::Component(Var::new("x"), 5)]).unwrap();
        assert!(matches!(
            out.eval(&g).unwrap_err(),
            OutputError::ComponentOutOfRange { .. }
        ));

        // Full-identifier output flattens to 2 columns per variable.
        let out = OutputPattern::vars(p, ["x", "y"]).unwrap();
        let rel = out.eval(&g).unwrap();
        assert_eq!(rel.arity(), 4);
        assert!(rel.contains(&tuple!["hapoalim", 1, "leumi", 2]));
    }

    #[test]
    fn output_arity_accounting() {
        let p = Pattern::node("x")
            .then(Pattern::edge("t"))
            .then(Pattern::node("y"));
        let out = OutputPattern::new(
            p,
            vec![
                OutputItem::Var(Var::new("x")),
                OutputItem::Prop(Var::new("t"), "amount".into()),
                OutputItem::Component(Var::new("y"), 0),
            ],
        )
        .unwrap();
        assert_eq!(out.output_arity(1), 3);
        assert_eq!(out.output_arity(3), 5);
    }

    #[test]
    fn example_2_1_shape() {
        // ((x) (-t->⟨Transfer(t) ∧ t.amount>100⟩)^{1..∞} (y))_{x.iban, y.iban}
        let g = transfers();
        let step = Pattern::edge("t").filter(Condition::has_label("t", "Transfer").and(
            Condition::prop_cmp("t", "amount", pgq_relational::CmpOp::Gt, 100i64),
        ));
        let p = Pattern::node("x")
            .then(step.repeat_at_least(1))
            .then(Pattern::node("y"));
        let out = OutputPattern::new(
            p,
            vec![
                OutputItem::Prop(Var::new("x"), "iban".into()),
                OutputItem::Prop(Var::new("y"), "iban".into()),
            ],
        )
        .unwrap();
        let rel = out.eval(&g).unwrap();
        assert_eq!(rel.len(), 1);
        assert!(rel.contains(&tuple!["IL01", "IL02"]));
    }
}
