//! An optimized pattern-matching engine: compile the pattern to an NFA
//! and run a product-graph BFS.
//!
//! This is the kind of evaluator a real SQL/PGQ engine would use for the
//! *navigational* core of the language. It computes **endpoint pairs
//! only** (no variable mappings), which is exactly what the unbounded
//! repetitions of the translations need (`ψreach = (x̄) →* (ȳ)` in
//! Lemma 9.4), and what Boolean output patterns consume.
//!
//! ## Supported fragment
//!
//! Compilation succeeds for patterns where
//! * every filter wraps a single atom and mentions only that atom's
//!   variable (label tests, property/constant comparisons, same-variable
//!   property equalities), and
//! * no variable occurs in two different atoms (cross-atom equality
//!   constraints are not regular, so an NFA cannot track them).
//!
//! Everything else returns [`Unsupported`], and callers fall back to the
//! reference evaluator (`eval_endpoint`). Agreement on the supported
//! fragment is property-tested (experiment E2).

use crate::ast::{Direction, Pattern, RepBound};
use crate::binding::Binding;
use crate::condition::Condition;
use crate::eval_endpoint::PairSet;
use pgq_graph::{ElementId, PropertyGraph};
use pgq_value::Var;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Why a pattern cannot be compiled to an NFA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Unsupported {
    /// A filter wraps a non-atomic sub-pattern.
    FilterOverNonAtom,
    /// A filter mentions a variable other than its atom's own.
    NonLocalCondition(Var),
    /// A condition on an anonymous atom (nothing to test against).
    ConditionOnAnonymousAtom,
    /// A variable occurs in two atoms (cross-atom join constraint).
    RepeatedVariable(Var),
}

impl fmt::Display for Unsupported {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Unsupported::FilterOverNonAtom => write!(f, "filter over a non-atomic pattern"),
            Unsupported::NonLocalCondition(v) => {
                write!(f, "condition mentions non-local variable {v}")
            }
            Unsupported::ConditionOnAnonymousAtom => {
                write!(f, "condition on an anonymous atom")
            }
            Unsupported::RepeatedVariable(v) => {
                write!(f, "variable {v} occurs in more than one atom")
            }
        }
    }
}

impl std::error::Error for Unsupported {}

/// A per-element test: the atom's condition, evaluated with the atom's
/// variable bound to the candidate element.
#[derive(Debug, Clone)]
struct LocalTest {
    var: Var,
    cond: Condition,
}

impl LocalTest {
    fn passes(&self, id: &ElementId, g: &PropertyGraph) -> bool {
        let mu = Binding::singleton(self.var.clone(), id.clone());
        self.cond.eval(&mu, g)
    }
}

/// A labeled NFA transition.
#[derive(Debug, Clone)]
enum Step {
    /// Stay on the current node; optionally test it.
    Node(Option<LocalTest>),
    /// Traverse an out-edge (testing the edge), arriving at its target.
    EdgeFwd(Option<LocalTest>),
    /// Traverse an in-edge backwards, arriving at its source.
    EdgeBwd(Option<LocalTest>),
}

/// A compiled pattern automaton.
#[derive(Debug, Clone)]
pub struct Nfa {
    /// Per-state epsilon successors.
    eps: Vec<Vec<usize>>,
    /// Labeled transitions `(from, step, to)` grouped by `from`.
    steps: Vec<Vec<(Step, usize)>>,
    start: usize,
    accept: usize,
}

impl Nfa {
    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.eps.len()
    }

    /// Compiles a pattern, or reports why it is outside the supported
    /// fragment.
    pub fn compile(psi: &Pattern) -> Result<Nfa, Unsupported> {
        // Reject repeated variables across atoms (non-regular).
        let mut seen = BTreeSet::new();
        check_distinct_vars(psi, &mut seen)?;
        let mut b = Builder::default();
        let start = b.fresh();
        let accept = b.fresh();
        b.emit(psi, start, accept)?;
        Ok(Nfa {
            eps: b.eps,
            steps: b.steps,
            start,
            accept,
        })
    }

    /// All endpoint pairs `(s, t)` such that a path matching the pattern
    /// leads from `s` to `t` — `endpoint_pairs(⟦ψ⟧_G)` on the supported
    /// fragment.
    pub fn eval_pairs(&self, g: &PropertyGraph) -> PairSet {
        let nodes: Vec<&ElementId> = g.nodes().collect();
        let node_index: BTreeMap<&ElementId, usize> =
            nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
        let q = self.state_count();
        let mut out = PairSet::new();
        // BFS from every start node over the product space (node, state).
        let mut visited = vec![false; nodes.len() * q];
        let mut frontier: Vec<(usize, usize)> = Vec::new();
        for (start_i, start_node) in nodes.iter().enumerate() {
            visited.iter_mut().for_each(|v| *v = false);
            frontier.clear();
            self.push_closure(start_i, self.start, q, &mut visited, &mut frontier);
            while let Some((ni, state)) = frontier.pop() {
                let n = nodes[ni];
                for (step, to) in &self.steps[state] {
                    match step {
                        Step::Node(test) => {
                            if test.as_ref().is_none_or(|t| t.passes(n, g)) {
                                self.push_closure(ni, *to, q, &mut visited, &mut frontier);
                            }
                        }
                        Step::EdgeFwd(test) => {
                            for e in g.out_edges(n) {
                                if test.as_ref().is_none_or(|t| t.passes(e, g)) {
                                    let m = g.tgt(e).expect("edge has tgt");
                                    let mi = node_index[m];
                                    self.push_closure(mi, *to, q, &mut visited, &mut frontier);
                                }
                            }
                        }
                        Step::EdgeBwd(test) => {
                            for e in g.in_edges(n) {
                                if test.as_ref().is_none_or(|t| t.passes(e, g)) {
                                    let m = g.src(e).expect("edge has src");
                                    let mi = node_index[m];
                                    self.push_closure(mi, *to, q, &mut visited, &mut frontier);
                                }
                            }
                        }
                    }
                }
            }
            for (ni, n) in nodes.iter().enumerate() {
                if visited[ni * q + self.accept] {
                    out.insert(((*start_node).clone(), (*n).clone()));
                }
            }
        }
        out
    }

    /// Marks `(node, state)` and everything reachable from it by epsilon
    /// moves, pushing newly-visited product states onto the frontier.
    fn push_closure(
        &self,
        node: usize,
        state: usize,
        q: usize,
        visited: &mut [bool],
        frontier: &mut Vec<(usize, usize)>,
    ) {
        let mut stack = vec![state];
        while let Some(s) = stack.pop() {
            let slot = node * q + s;
            if visited[slot] {
                continue;
            }
            visited[slot] = true;
            frontier.push((node, s));
            for &t in &self.eps[s] {
                stack.push(t);
            }
        }
    }
}

#[derive(Default)]
struct Builder {
    eps: Vec<Vec<usize>>,
    steps: Vec<Vec<(Step, usize)>>,
}

impl Builder {
    fn fresh(&mut self) -> usize {
        self.eps.push(Vec::new());
        self.steps.push(Vec::new());
        self.eps.len() - 1
    }

    fn eps_edge(&mut self, from: usize, to: usize) {
        self.eps[from].push(to);
    }

    fn step_edge(&mut self, from: usize, step: Step, to: usize) {
        self.steps[from].push((step, to));
    }

    /// Thompson-style construction of `psi` between `from` and `to`.
    fn emit(&mut self, psi: &Pattern, from: usize, to: usize) -> Result<(), Unsupported> {
        match psi {
            Pattern::Node(_) => {
                self.step_edge(from, Step::Node(None), to);
                Ok(())
            }
            Pattern::Edge(_, Direction::Forward) => {
                self.step_edge(from, Step::EdgeFwd(None), to);
                Ok(())
            }
            Pattern::Edge(_, Direction::Backward) => {
                self.step_edge(from, Step::EdgeBwd(None), to);
                Ok(())
            }
            Pattern::Filter(inner, cond) => match &**inner {
                // Nested filters over the same atom: conjoin first.
                Pattern::Filter(..) => self.emit_conjoined_filter(psi, from, to),
                Pattern::Node(_) | Pattern::Edge(..) => {
                    let test = local_test(inner, cond)?;
                    let step = match &**inner {
                        Pattern::Node(_) => Step::Node(Some(test)),
                        Pattern::Edge(_, Direction::Forward) => Step::EdgeFwd(Some(test)),
                        Pattern::Edge(_, Direction::Backward) => Step::EdgeBwd(Some(test)),
                        _ => unreachable!("outer match covers atoms only"),
                    };
                    self.step_edge(from, step, to);
                    Ok(())
                }
                _ => Err(Unsupported::FilterOverNonAtom),
            },
            Pattern::Concat(a, b) => {
                let mid = self.fresh();
                self.emit(a, from, mid)?;
                self.emit(b, mid, to)
            }
            Pattern::Union(a, b) => {
                self.emit(a, from, to)?;
                self.emit(b, from, to)
            }
            Pattern::Repeat(p, n, m) => {
                // n mandatory copies…
                let mut cur = from;
                for _ in 0..*n {
                    let next = self.fresh();
                    self.emit(p, cur, next)?;
                    cur = next;
                }
                match m {
                    RepBound::Finite(m) => {
                        debug_assert!(*m >= *n);
                        // …then (m - n) optional copies.
                        for _ in *n..*m {
                            let next = self.fresh();
                            self.emit(p, cur, next)?;
                            self.eps_edge(cur, to);
                            cur = next;
                        }
                        self.eps_edge(cur, to);
                    }
                    RepBound::Infinite => {
                        // …then a loop state.
                        let back = self.fresh();
                        self.eps_edge(cur, to);
                        self.emit(p, cur, back)?;
                        self.eps_edge(back, cur);
                    }
                }
                Ok(())
            }
        }
    }

    /// `Filter(Filter(atom, θ1), θ2)` → single atom with `θ1 ∧ θ2`.
    fn emit_conjoined_filter(
        &mut self,
        psi: &Pattern,
        from: usize,
        to: usize,
    ) -> Result<(), Unsupported> {
        let mut conds = Vec::new();
        let mut inner = psi;
        while let Pattern::Filter(p, c) = inner {
            conds.push(c.clone());
            inner = p;
        }
        let combined = conds
            .into_iter()
            .reduce(|a, b| a.and(b))
            .expect("at least one filter");
        let rebuilt = Pattern::Filter(Box::new(inner.clone()), combined);
        self.emit(&rebuilt, from, to)
    }
}

/// Extracts the single-atom local test for `Filter(inner, cond)`.
fn local_test(inner: &Pattern, cond: &Condition) -> Result<LocalTest, Unsupported> {
    let atom_var = match inner {
        Pattern::Node(v) | Pattern::Edge(v, _) => v.clone(),
        Pattern::Filter(..) => {
            // Handled by emit_conjoined_filter before reaching here.
            return Err(Unsupported::FilterOverNonAtom);
        }
        _ => return Err(Unsupported::FilterOverNonAtom),
    };
    let cvars = cond.vars();
    match atom_var {
        None if cvars.is_empty() => Ok(LocalTest {
            var: Var::new("\u{2022}anon"),
            cond: cond.clone(),
        }),
        None => Err(Unsupported::ConditionOnAnonymousAtom),
        Some(v) => {
            if let Some(foreign) = cvars.iter().find(|&cv| cv != &v) {
                return Err(Unsupported::NonLocalCondition(foreign.clone()));
            }
            Ok(LocalTest {
                var: v,
                cond: cond.clone(),
            })
        }
    }
}

/// Rejects patterns where a variable occurs in two atoms.
fn check_distinct_vars(psi: &Pattern, seen: &mut BTreeSet<Var>) -> Result<(), Unsupported> {
    match psi {
        Pattern::Node(Some(v)) | Pattern::Edge(Some(v), _) => {
            if !seen.insert(v.clone()) {
                return Err(Unsupported::RepeatedVariable(v.clone()));
            }
            Ok(())
        }
        Pattern::Node(None) | Pattern::Edge(None, _) => Ok(()),
        Pattern::Concat(a, b) => {
            check_distinct_vars(a, seen)?;
            check_distinct_vars(b, seen)
        }
        Pattern::Union(a, b) => {
            // Union branches may legitimately reuse variables (fv must be
            // equal!); they are alternatives, not joins. Track each branch
            // against the outer context separately.
            let mut left = seen.clone();
            check_distinct_vars(a, &mut left)?;
            check_distinct_vars(b, seen)?;
            seen.extend(left);
            Ok(())
        }
        Pattern::Repeat(p, _, _) | Pattern::Filter(p, _) => check_distinct_vars(p, seen),
    }
}

/// Convenience: compile and evaluate in one call.
pub fn try_eval_pairs(psi: &Pattern, g: &PropertyGraph) -> Result<PairSet, Unsupported> {
    Ok(Nfa::compile(psi)?.eval_pairs(g))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval_endpoint::{endpoint_pairs, eval_pattern};
    use pgq_graph::PropertyGraphBuilder;
    use pgq_value::Tuple;

    fn chain_with_labels() -> PropertyGraph {
        let mut b = PropertyGraphBuilder::unary();
        for n in ["a", "b", "c", "d"] {
            b.node1(n).unwrap();
        }
        b.edge1("e1", "a", "b").unwrap();
        b.edge1("e2", "b", "c").unwrap();
        b.edge1("e3", "c", "d").unwrap();
        b.label(Tuple::unary("e1"), "T").unwrap();
        b.label(Tuple::unary("e2"), "T").unwrap();
        b.label(Tuple::unary("a"), "Start").unwrap();
        b.finish()
    }

    fn assert_agrees(psi: &Pattern, g: &PropertyGraph) {
        let reference = endpoint_pairs(&eval_pattern(psi, g).unwrap());
        let fast = try_eval_pairs(psi, g).unwrap();
        assert_eq!(reference, fast, "pattern {psi}");
    }

    #[test]
    fn agrees_on_atoms() {
        let g = chain_with_labels();
        assert_agrees(&Pattern::any_node(), &g);
        assert_agrees(&Pattern::any_edge(), &g);
        assert_agrees(&Pattern::any_edge_back(), &g);
        assert_agrees(&Pattern::node("x"), &g);
    }

    #[test]
    fn agrees_on_concat_union_star() {
        let g = chain_with_labels();
        assert_agrees(&Pattern::any_edge().then(Pattern::any_edge()), &g);
        assert_agrees(&Pattern::any_edge().or(Pattern::any_edge_back()), &g);
        assert_agrees(&Pattern::any_edge().star(), &g);
        assert_agrees(&Pattern::any_edge().plus(), &g);
        assert_agrees(&Pattern::any_edge().repeat(1, 2), &g);
        assert_agrees(&Pattern::any_edge().repeat(2, 3), &g);
        assert_agrees(&Pattern::any_edge().repeat(0, 0), &g);
        assert_agrees(
            &Pattern::node("x")
                .then(Pattern::any_edge().star())
                .then(Pattern::node("y")),
            &g,
        );
    }

    #[test]
    fn agrees_on_local_filters() {
        let g = chain_with_labels();
        let labeled_edge = Pattern::edge("t").filter(Condition::has_label("t", "T"));
        assert_agrees(&labeled_edge, &g);
        assert_agrees(&labeled_edge.clone().plus(), &g);
        let labeled_node = Pattern::node("s").filter(Condition::has_label("s", "Start"));
        assert_agrees(
            &labeled_node
                .then(Pattern::any_edge().star())
                .then(Pattern::any_node()),
            &g,
        );
    }

    #[test]
    fn agrees_on_nested_filters() {
        let g = chain_with_labels();
        let double = Pattern::edge("t")
            .filter(Condition::has_label("t", "T"))
            .filter(Condition::has_label("t", "T"));
        assert_agrees(&double, &g);
    }

    #[test]
    fn rejects_non_local_condition() {
        let p = Pattern::node("x")
            .then(Pattern::edge("t"))
            .filter(Condition::prop_eq("x", "k", "t", "k"));
        assert!(matches!(
            Nfa::compile(&p),
            Err(Unsupported::FilterOverNonAtom)
        ));
        let p = Pattern::edge("t").filter(Condition::has_label("x", "T"));
        assert!(matches!(
            Nfa::compile(&p),
            Err(Unsupported::NonLocalCondition(_))
        ));
    }

    #[test]
    fn rejects_repeated_variable() {
        let p = Pattern::node("x")
            .then(Pattern::any_edge())
            .then(Pattern::node("x"));
        assert!(matches!(
            Nfa::compile(&p),
            Err(Unsupported::RepeatedVariable(_))
        ));
        // But reuse across union branches is fine.
        let p = Pattern::node("x").or(Pattern::node("x"));
        assert!(Nfa::compile(&p).is_ok());
    }

    #[test]
    fn rejects_condition_on_anonymous_atom() {
        let p = Pattern::any_edge().filter(Condition::has_label("t", "T"));
        assert!(matches!(
            Nfa::compile(&p),
            Err(Unsupported::NonLocalCondition(_)) | Err(Unsupported::ConditionOnAnonymousAtom)
        ));
    }

    #[test]
    fn cycle_reachability() {
        let mut b = PropertyGraphBuilder::unary();
        for i in 0..5i64 {
            b.node1(i).unwrap();
        }
        for i in 0..5i64 {
            b.edge1(100 + i, i, (i + 1) % 5).unwrap();
        }
        let g = b.finish();
        assert_agrees(&Pattern::any_edge().star(), &g);
        assert_agrees(&Pattern::any_edge().repeat(3, 7), &g);
        let pairs = try_eval_pairs(&Pattern::any_edge().plus(), &g).unwrap();
        assert_eq!(pairs.len(), 25); // complete reachability on a cycle
    }
}
