//! Pattern syntax (Figure 1).
//!
//! ```text
//! ψ := (x) | -x-> | <-x- | ψ1 ψ2 | ψ^{n..m} | ψ⟨θ⟩ | ψ1 + ψ2  (fv equal)
//! ```
//! where the variable `x` is optional and `0 ≤ n ≤ m ≤ ∞`.

use crate::condition::Condition;
use pgq_value::Var;
use std::collections::BTreeSet;
use std::fmt;

/// Direction of an edge atom: `-x->` traverses source→target, `<-x-`
/// target→source (Figure 2's two edge clauses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Direction {
    /// `-x->`
    Forward,
    /// `<-x-`
    Backward,
}

/// The upper bound of a repetition `ψ^{n..m}`: a finite `m` or `∞`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RepBound {
    /// A finite upper bound.
    Finite(usize),
    /// Unbounded (`m = ∞`).
    Infinite,
}

impl RepBound {
    /// Whether `n ≤ self` holds, i.e. the bound pair is well formed.
    pub fn at_least(&self, n: usize) -> bool {
        match self {
            RepBound::Finite(m) => *m >= n,
            RepBound::Infinite => true,
        }
    }
}

impl fmt::Display for RepBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepBound::Finite(m) => write!(f, "{m}"),
            RepBound::Infinite => write!(f, "∞"),
        }
    }
}

/// A path pattern `ψ` (Figure 1).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Pattern {
    /// `(x)` — a node atom with an optional variable.
    Node(Option<Var>),
    /// An edge atom with an optional variable and a direction.
    Edge(Option<Var>, Direction),
    /// `ψ1 ψ2` — concatenation.
    Concat(Box<Pattern>, Box<Pattern>),
    /// `ψ^{n..m}` — repetition; `fv(ψ^{n..m}) = ∅` (bindings discarded).
    Repeat(Box<Pattern>, usize, RepBound),
    /// `ψ⟨θ⟩` — filtering by a condition.
    Filter(Box<Pattern>, Condition),
    /// `ψ1 + ψ2` — disjunction, subject to `fv(ψ1) = fv(ψ2)`.
    Union(Box<Pattern>, Box<Pattern>),
}

/// Static well-formedness violations (the side conditions of Figure 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternError {
    /// `ψ1 + ψ2` with `fv(ψ1) ≠ fv(ψ2)`.
    UnionFreeVarMismatch {
        /// `fv(ψ1)`.
        left: BTreeSet<Var>,
        /// `fv(ψ2)`.
        right: BTreeSet<Var>,
    },
    /// `ψ^{n..m}` with `n > m`.
    EmptyRepetitionRange {
        /// Lower bound.
        lo: usize,
        /// Upper bound.
        hi: usize,
    },
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternError::UnionFreeVarMismatch { left, right } => {
                write!(f, "union operands have different free variables: {{")?;
                for v in left {
                    write!(f, "{v} ")?;
                }
                write!(f, "}} vs {{")?;
                for v in right {
                    write!(f, "{v} ")?;
                }
                write!(f, "}}")
            }
            PatternError::EmptyRepetitionRange { lo, hi } => {
                write!(f, "repetition range {lo}..{hi} is empty")
            }
        }
    }
}

impl std::error::Error for PatternError {}

impl Pattern {
    /// `(x)`
    pub fn node(x: impl Into<Var>) -> Self {
        Pattern::Node(Some(x.into()))
    }

    /// `()` — an anonymous node atom.
    pub fn any_node() -> Self {
        Pattern::Node(None)
    }

    /// `-x->`
    pub fn edge(x: impl Into<Var>) -> Self {
        Pattern::Edge(Some(x.into()), Direction::Forward)
    }

    /// `->` — an anonymous forward edge.
    pub fn any_edge() -> Self {
        Pattern::Edge(None, Direction::Forward)
    }

    /// `<-x-`
    pub fn edge_back(x: impl Into<Var>) -> Self {
        Pattern::Edge(Some(x.into()), Direction::Backward)
    }

    /// `<-` — an anonymous backward edge.
    pub fn any_edge_back() -> Self {
        Pattern::Edge(None, Direction::Backward)
    }

    /// Concatenation `self ψ`.
    pub fn then(self, next: Pattern) -> Self {
        Pattern::Concat(Box::new(self), Box::new(next))
    }

    /// Concatenates a sequence of patterns left-to-right.
    ///
    /// # Panics
    /// Panics on an empty sequence (there is no empty pattern in Fig 1).
    pub fn seq<I: IntoIterator<Item = Pattern>>(parts: I) -> Self {
        let mut iter = parts.into_iter();
        let first = iter.next().expect("Pattern::seq needs at least one part");
        iter.fold(first, |acc, p| acc.then(p))
    }

    /// Repetition `self^{n..m}` with finite `m`.
    pub fn repeat(self, n: usize, m: usize) -> Self {
        Pattern::Repeat(Box::new(self), n, RepBound::Finite(m))
    }

    /// Repetition `self^{n..∞}`.
    pub fn repeat_at_least(self, n: usize) -> Self {
        Pattern::Repeat(Box::new(self), n, RepBound::Infinite)
    }

    /// Kleene star `self* = self^{0..∞}` (T8 of Lemma 9.3).
    pub fn star(self) -> Self {
        self.repeat_at_least(0)
    }

    /// Kleene plus `self^{1..∞}` (the `+` of Example 2.1's SQL listing).
    pub fn plus(self) -> Self {
        self.repeat_at_least(1)
    }

    /// Filter `self⟨θ⟩`.
    pub fn filter(self, cond: Condition) -> Self {
        Pattern::Filter(Box::new(self), cond)
    }

    /// Disjunction `self + other` (checked at [`Pattern::validate`]).
    pub fn or(self, other: Pattern) -> Self {
        Pattern::Union(Box::new(self), Box::new(other))
    }

    /// Free variables per Figure 1. Repetition has none; union takes the
    /// left operand's set (which must equal the right's, see
    /// [`Pattern::validate`]).
    pub fn free_vars(&self) -> BTreeSet<Var> {
        match self {
            Pattern::Node(v) | Pattern::Edge(v, _) => v.iter().cloned().collect(),
            Pattern::Concat(a, b) => {
                let mut s = a.free_vars();
                s.extend(b.free_vars());
                s
            }
            Pattern::Repeat(..) => BTreeSet::new(),
            Pattern::Filter(p, _) => p.free_vars(),
            Pattern::Union(a, _) => a.free_vars(),
        }
    }

    /// Checks the side conditions of Figure 1 throughout the pattern:
    /// union operands must have equal free-variable sets, and repetition
    /// ranges must satisfy `n ≤ m`.
    pub fn validate(&self) -> Result<(), PatternError> {
        match self {
            Pattern::Node(_) | Pattern::Edge(..) => Ok(()),
            Pattern::Concat(a, b) => {
                a.validate()?;
                b.validate()
            }
            Pattern::Repeat(p, n, m) => {
                if !m.at_least(*n) {
                    if let RepBound::Finite(hi) = m {
                        return Err(PatternError::EmptyRepetitionRange { lo: *n, hi: *hi });
                    }
                }
                p.validate()
            }
            Pattern::Filter(p, _) => p.validate(),
            Pattern::Union(a, b) => {
                a.validate()?;
                b.validate()?;
                let (fa, fb) = (a.free_vars(), b.free_vars());
                if fa != fb {
                    return Err(PatternError::UnionFreeVarMismatch {
                        left: fa,
                        right: fb,
                    });
                }
                Ok(())
            }
        }
    }

    /// Number of AST nodes (used by generators and size-bounded search).
    pub fn size(&self) -> usize {
        match self {
            Pattern::Node(_) | Pattern::Edge(..) => 1,
            Pattern::Concat(a, b) | Pattern::Union(a, b) => 1 + a.size() + b.size(),
            Pattern::Repeat(p, _, _) | Pattern::Filter(p, _) => 1 + p.size(),
        }
    }

    /// Whether the pattern contains an unbounded repetition — the source
    /// of transitive closure in the FO\[TC\] translation (Lemma 9.3 T8).
    pub fn has_unbounded_repetition(&self) -> bool {
        match self {
            Pattern::Node(_) | Pattern::Edge(..) => false,
            Pattern::Concat(a, b) | Pattern::Union(a, b) => {
                a.has_unbounded_repetition() || b.has_unbounded_repetition()
            }
            Pattern::Repeat(p, _, m) => *m == RepBound::Infinite || p.has_unbounded_repetition(),
            Pattern::Filter(p, _) => p.has_unbounded_repetition(),
        }
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pattern::Node(Some(x)) => write!(f, "({x})"),
            Pattern::Node(None) => write!(f, "()"),
            Pattern::Edge(Some(x), Direction::Forward) => write!(f, "-[{x}]->"),
            Pattern::Edge(None, Direction::Forward) => write!(f, "->"),
            Pattern::Edge(Some(x), Direction::Backward) => write!(f, "<-[{x}]-"),
            Pattern::Edge(None, Direction::Backward) => write!(f, "<-"),
            Pattern::Concat(a, b) => write!(f, "{a} {b}"),
            Pattern::Repeat(p, n, m) => write!(f, "({p}){{{n},{m}}}"),
            Pattern::Filter(p, c) => write!(f, "{p}⟨{c}⟩"),
            Pattern::Union(a, b) => write!(f, "({a} + {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::Condition;

    #[test]
    fn free_vars_follow_figure_1() {
        let p = Pattern::node("x")
            .then(Pattern::edge("t"))
            .then(Pattern::node("y"));
        let fv: Vec<String> = p.free_vars().iter().map(|v| v.to_string()).collect();
        assert_eq!(fv, vec!["t", "x", "y"]);

        // Repetition hides everything.
        let r = p.clone().repeat(1, 3);
        assert!(r.free_vars().is_empty());

        // Filter preserves.
        let f = p.filter(Condition::has_label("x", "Account"));
        assert_eq!(f.free_vars().len(), 3);

        // Anonymous atoms bind nothing.
        assert!(Pattern::any_node().free_vars().is_empty());
        assert!(Pattern::any_edge_back().free_vars().is_empty());
    }

    #[test]
    fn union_requires_equal_fv() {
        let ok = Pattern::node("x").or(Pattern::node("x"));
        assert!(ok.validate().is_ok());
        let bad = Pattern::node("x").or(Pattern::node("y"));
        assert!(matches!(
            bad.validate(),
            Err(PatternError::UnionFreeVarMismatch { .. })
        ));
        // Union fv = left operand's fv.
        assert_eq!(ok.free_vars().len(), 1);
    }

    #[test]
    fn repetition_range_validation() {
        let p = Pattern::any_edge().repeat(3, 1);
        assert!(matches!(
            p.validate(),
            Err(PatternError::EmptyRepetitionRange { lo: 3, hi: 1 })
        ));
        assert!(Pattern::any_edge().repeat(2, 2).validate().is_ok());
        assert!(Pattern::any_edge().star().validate().is_ok());
        // Validation recurses into nested structure.
        let nested = Pattern::any_node().then(Pattern::any_edge().repeat(5, 2));
        assert!(nested.validate().is_err());
    }

    #[test]
    fn unbounded_detection() {
        assert!(Pattern::any_edge().star().has_unbounded_repetition());
        assert!(Pattern::any_edge().plus().has_unbounded_repetition());
        assert!(!Pattern::any_edge().repeat(0, 9).has_unbounded_repetition());
        let nested = Pattern::any_node()
            .then(Pattern::any_edge().star())
            .or(Pattern::any_node().then(Pattern::any_node()));
        assert!(nested.has_unbounded_repetition());
    }

    #[test]
    fn size_counts_nodes() {
        let p = Pattern::node("x")
            .then(Pattern::edge("t"))
            .then(Pattern::node("y"));
        assert_eq!(p.size(), 5);
        assert_eq!(p.repeat(0, 1).size(), 6);
    }

    #[test]
    fn display_shapes() {
        let p = Pattern::node("x")
            .then(Pattern::edge("t").plus())
            .then(Pattern::node("y"));
        assert_eq!(p.to_string(), "(x) (-[t]->){1,∞} (y)");
    }

    #[test]
    fn seq_builder() {
        let p = Pattern::seq([Pattern::node("x"), Pattern::any_edge(), Pattern::node("y")]);
        assert_eq!(p.size(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn seq_rejects_empty() {
        Pattern::seq([]);
    }
}
