//! Path pattern-matching semantics — Figure 6 (Appendix 9.1).
//!
//! `⟦ψ⟧^path_G` is a set of pairs `(p, μ)` where `p` is an actual path.
//! Proposition 9.1 proves `π_end(⟦ψ⟧^path_G) = ⟦ψ⟧_G`; we verify this
//! mechanically against `eval_endpoint` (experiment E2).
//!
//! Two implementation notes, both recorded in DESIGN.md:
//!
//! * Figure 6's backward-edge clause is printed identically to the
//!   forward one (`src(e)=src(p), tgt(e)=tgt(p)`); we follow Figure 2's
//!   endpoint swap, which is what makes Proposition 9.1's base case (T3)
//!   go through.
//! * With unbounded repetition on a cyclic graph the *set of paths* is
//!   infinite. We materialize paths with at most `n + |N|` legs per
//!   `ψ^{n..∞}`: every endpoint pair of `R^n ∘ R*` has a witness whose
//!   star part is a simple reachability path (< |N| compositions), so the
//!   `π_end` projection — the only thing the relational layer consumes —
//!   is complete.

use crate::ast::{Direction, Pattern, PatternError, RepBound};
use crate::binding::Binding;
use pgq_graph::{ElementId, PropertyGraph};
use std::collections::BTreeSet;
use std::fmt;

/// A concrete path: a start node and a sequence of edge traversals.
/// `src(p)` is the start node; `tgt(p)` the node reached last.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Path {
    start: ElementId,
    /// Each step records the edge, the direction it was traversed in,
    /// and the node arrived at.
    steps: Vec<(ElementId, Direction, ElementId)>,
}

impl Path {
    /// The single-vertex path at `n`.
    pub fn trivial(n: ElementId) -> Self {
        Path {
            start: n,
            steps: Vec::new(),
        }
    }

    /// A one-edge path.
    pub fn single(edge: ElementId, dir: Direction, from: ElementId, to: ElementId) -> Self {
        Path {
            start: from,
            steps: vec![(edge, dir, to)],
        }
    }

    /// `src(p)`.
    pub fn src(&self) -> &ElementId {
        &self.start
    }

    /// `tgt(p)`.
    pub fn tgt(&self) -> &ElementId {
        self.steps.last().map_or(&self.start, |(_, _, n)| n)
    }

    /// Number of edge traversals.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the path is a single vertex.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The edges traversed, in order.
    pub fn edges(&self) -> impl Iterator<Item = &ElementId> + '_ {
        self.steps.iter().map(|(e, _, _)| e)
    }

    /// Concatenation `p1 · p2`; requires `tgt(p1) = src(p2)`.
    pub fn concat(&self, other: &Path) -> Option<Path> {
        if self.tgt() != other.src() {
            return None;
        }
        let mut steps = self.steps.clone();
        steps.extend(other.steps.iter().cloned());
        Some(Path {
            start: self.start.clone(),
            steps,
        })
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.start)?;
        for (e, dir, n) in &self.steps {
            match dir {
                Direction::Forward => write!(f, " -[{e}]-> {n}")?,
                Direction::Backward => write!(f, " <-[{e}]- {n}")?,
            }
        }
        Ok(())
    }
}

/// The path semantics result: a set of `(path, mapping)` pairs.
pub type PathMatchSet = BTreeSet<(Path, Binding)>;

/// Resource limits for the path evaluator, which can be exponential on
/// graphs with many parallel paths (it materializes every path).
#[derive(Debug, Clone, Copy)]
pub struct PathLimits {
    /// Hard cap on the number of materialized `(path, μ)` pairs per
    /// sub-pattern. Exceeding it is a typed error, not an OOM.
    pub max_paths: usize,
}

impl Default for PathLimits {
    fn default() -> Self {
        PathLimits { max_paths: 200_000 }
    }
}

/// Errors from the path evaluator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathEvalError {
    /// Ill-formed pattern.
    Pattern(PatternError),
    /// The materialized path set exceeded [`PathLimits::max_paths`].
    PathExplosion {
        /// The configured limit.
        limit: usize,
    },
}

impl fmt::Display for PathEvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathEvalError::Pattern(e) => write!(f, "{e}"),
            PathEvalError::PathExplosion { limit } => {
                write!(f, "path materialization exceeded {limit} paths")
            }
        }
    }
}

impl std::error::Error for PathEvalError {}

impl From<PatternError> for PathEvalError {
    fn from(e: PatternError) -> Self {
        PathEvalError::Pattern(e)
    }
}

/// Evaluates `⟦ψ⟧^path_G` (Figure 6) with default limits.
pub fn eval_pattern_paths(psi: &Pattern, g: &PropertyGraph) -> Result<PathMatchSet, PathEvalError> {
    eval_pattern_paths_limited(psi, g, PathLimits::default())
}

/// Evaluates `⟦ψ⟧^path_G` with explicit limits.
pub fn eval_pattern_paths_limited(
    psi: &Pattern,
    g: &PropertyGraph,
    limits: PathLimits,
) -> Result<PathMatchSet, PathEvalError> {
    psi.validate()?;
    eval(psi, g, &limits)
}

/// `π_end`: projects `(p, μ)` to `(src(p), tgt(p), μ)` — the statement of
/// Proposition 9.1.
pub fn project_endpoints(paths: &PathMatchSet) -> crate::eval_endpoint::MatchSet {
    paths
        .iter()
        .map(|(p, mu)| (p.src().clone(), p.tgt().clone(), mu.clone()))
        .collect()
}

fn guard(set: &PathMatchSet, limits: &PathLimits) -> Result<(), PathEvalError> {
    if set.len() > limits.max_paths {
        return Err(PathEvalError::PathExplosion {
            limit: limits.max_paths,
        });
    }
    Ok(())
}

fn eval(
    psi: &Pattern,
    g: &PropertyGraph,
    limits: &PathLimits,
) -> Result<PathMatchSet, PathEvalError> {
    let result = match psi {
        Pattern::Node(v) => g
            .nodes()
            .map(|n| {
                let mu = match v {
                    Some(x) => Binding::singleton(x.clone(), n.clone()),
                    None => Binding::empty(),
                };
                (Path::trivial(n.clone()), mu)
            })
            .collect(),
        Pattern::Edge(v, dir) => g
            .edges()
            .map(|e| {
                let s = g.src(e).expect("edge has src").clone();
                let t = g.tgt(e).expect("edge has tgt").clone();
                let (from, to) = match dir {
                    Direction::Forward => (s, t),
                    Direction::Backward => (t, s),
                };
                let mu = match v {
                    Some(x) => Binding::singleton(x.clone(), e.clone()),
                    None => Binding::empty(),
                };
                (Path::single(e.clone(), *dir, from, to), mu)
            })
            .collect(),
        Pattern::Union(a, b) => {
            let mut s = eval(a, g, limits)?;
            s.extend(eval(b, g, limits)?);
            s
        }
        Pattern::Concat(a, b) => {
            let left = eval(a, g, limits)?;
            let right = eval(b, g, limits)?;
            concat_sets(&left, &right, limits)?
        }
        Pattern::Filter(p, theta) => eval(p, g, limits)?
            .into_iter()
            .filter(|(_, mu)| theta.eval(mu, g))
            .collect(),
        Pattern::Repeat(p, n, m) => {
            let base = eval(p, g, limits)?;
            // Repetition discards mappings: μ∅ throughout.
            let base: PathMatchSet = base
                .into_iter()
                .map(|(p, _)| (p, Binding::empty()))
                .collect();
            let cap = match m {
                RepBound::Finite(m) => *m,
                // Witness-length bound for the π_end projection; see the
                // module docs.
                RepBound::Infinite => n + g.node_count().max(1),
            };
            let mut acc = PathMatchSet::new();
            // i = 0: all length-0 paths (src(p) = tgt(p)).
            let mut current: PathMatchSet = g
                .nodes()
                .map(|n| (Path::trivial(n.clone()), Binding::empty()))
                .collect();
            if *n == 0 {
                acc.extend(current.iter().cloned());
            }
            for i in 1..=cap {
                current = concat_sets(&current, &base, limits)?;
                if current.is_empty() {
                    break;
                }
                if i >= *n {
                    acc.extend(current.iter().cloned());
                    guard(&acc, limits)?;
                }
            }
            acc
        }
    };
    guard(&result, limits)?;
    Ok(result)
}

fn concat_sets(
    left: &PathMatchSet,
    right: &PathMatchSet,
    limits: &PathLimits,
) -> Result<PathMatchSet, PathEvalError> {
    use std::collections::BTreeMap;
    let mut by_src: BTreeMap<&ElementId, Vec<&(Path, Binding)>> = BTreeMap::new();
    for pm in right {
        by_src.entry(pm.0.src()).or_default().push(pm);
    }
    let mut out = PathMatchSet::new();
    for (p1, mu1) in left {
        if let Some(rs) = by_src.get(p1.tgt()) {
            for (p2, mu2) in rs.iter().map(|pm| (&pm.0, &pm.1)) {
                if let Some(mu) = mu1.join(mu2) {
                    let p = p1.concat(p2).expect("sources aligned by index");
                    out.insert((p, mu));
                    guard(&out, limits)?;
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval_endpoint::eval_pattern;
    use pgq_graph::PropertyGraphBuilder;
    use pgq_value::Tuple;

    fn id(s: &str) -> ElementId {
        Tuple::unary(s)
    }

    fn chain() -> PropertyGraph {
        let mut b = PropertyGraphBuilder::unary();
        for n in ["a", "b", "c"] {
            b.node1(n).unwrap();
        }
        b.edge1("e1", "a", "b").unwrap();
        b.edge1("e2", "b", "c").unwrap();
        b.finish()
    }

    #[test]
    fn path_concat_and_endpoints() {
        let p1 = Path::single(id("e1"), Direction::Forward, id("a"), id("b"));
        let p2 = Path::single(id("e2"), Direction::Forward, id("b"), id("c"));
        let p = p1.concat(&p2).unwrap();
        assert_eq!(p.src(), &id("a"));
        assert_eq!(p.tgt(), &id("c"));
        assert_eq!(p.len(), 2);
        assert!(p2.concat(&p1).is_none()); // misaligned
        assert_eq!(p.edges().count(), 2);
    }

    #[test]
    fn trivial_path_endpoints_coincide() {
        let p = Path::trivial(id("a"));
        assert_eq!(p.src(), p.tgt());
        assert!(p.is_empty());
    }

    #[test]
    fn atoms_match_endpoint_semantics() {
        let g = chain();
        for pat in [
            Pattern::node("x"),
            Pattern::edge("t"),
            Pattern::edge_back("t"),
            Pattern::any_node(),
        ] {
            let paths = eval_pattern_paths(&pat, &g).unwrap();
            let endpoints = project_endpoints(&paths);
            assert_eq!(endpoints, eval_pattern(&pat, &g).unwrap(), "{pat}");
        }
    }

    #[test]
    fn backward_edge_path_traverses_reverse() {
        let g = chain();
        let paths = eval_pattern_paths(&Pattern::edge_back("t"), &g).unwrap();
        let (p, _) = paths.iter().next().unwrap();
        assert_eq!(p.src(), &id("b"));
        assert_eq!(p.tgt(), &id("a"));
    }

    #[test]
    fn star_on_cycle_is_finite_with_cap() {
        let mut b = PropertyGraphBuilder::unary();
        b.node1("a").unwrap();
        b.edge1("loop", "a", "a").unwrap();
        let g = b.finish();
        let paths = eval_pattern_paths(&Pattern::any_edge().star(), &g).unwrap();
        // Paths of length 0..=1+... capped; endpoints always {(a,a)}.
        let endpoints = project_endpoints(&paths);
        assert_eq!(endpoints.len(), 1);
        assert!(paths.len() >= 2); // at least the trivial and the 1-loop
    }

    #[test]
    fn explosion_guard_fires() {
        // Dense complete digraph; tiny budget.
        let mut b = PropertyGraphBuilder::unary();
        for i in 0..6i64 {
            b.node1(i).unwrap();
        }
        let mut eid = 100i64;
        for i in 0..6i64 {
            for j in 0..6i64 {
                b.edge1(eid, i, j).unwrap();
                eid += 1;
            }
        }
        let g = b.finish();
        let limits = PathLimits { max_paths: 50 };
        let err = eval_pattern_paths_limited(&Pattern::any_edge().star(), &g, limits);
        assert!(matches!(
            err,
            Err(PathEvalError::PathExplosion { limit: 50 })
        ));
    }

    #[test]
    fn display_path() {
        let p = Path::single(id("e1"), Direction::Forward, id("a"), id("b"));
        assert_eq!(p.to_string(), "(\"a\") -[(\"e1\")]-> (\"b\")");
    }
}
