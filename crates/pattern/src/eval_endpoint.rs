//! Endpoint pattern-matching semantics — a literal implementation of
//! Figure 2.
//!
//! `⟦ψ⟧_G` is a set of triples `(s, t, μ)`: source and target of a path
//! matching `ψ`, plus the variable mapping. The simplification (footnote 1
//! of the paper) is that full paths are *not* stored; Proposition 9.1
//! shows this loses nothing for the relational layer, which we verify
//! against the path semantics in `eval_path` by property testing.

use crate::ast::{Direction, Pattern, PatternError, RepBound};
use crate::binding::Binding;
use pgq_graph::{ElementId, PropertyGraph};
use std::collections::{BTreeMap, BTreeSet};

/// One semantic triple `(s, t, μ)`.
pub type MatchTriple = (ElementId, ElementId, Binding);

/// The semantics `⟦ψ⟧_G`: a finite set of match triples, ordered for
/// determinism.
pub type MatchSet = BTreeSet<MatchTriple>;

/// A set of endpoint pairs, the binding-free projection used by
/// repetition (whose semantics discards mappings, Figure 2).
pub type PairSet = BTreeSet<(ElementId, ElementId)>;

/// Evaluates `⟦ψ⟧_G` (Figure 2). Validates the pattern's side conditions
/// first.
pub fn eval_pattern(psi: &Pattern, g: &PropertyGraph) -> Result<MatchSet, PatternError> {
    psi.validate()?;
    Ok(eval(psi, g))
}

fn eval(psi: &Pattern, g: &PropertyGraph) -> MatchSet {
    match psi {
        // ⟦(x)⟧ := {(n, n, {x↦n}) | n ∈ N}
        Pattern::Node(v) => g
            .nodes()
            .map(|n| {
                let mu = match v {
                    Some(x) => Binding::singleton(x.clone(), n.clone()),
                    None => Binding::empty(),
                };
                (n.clone(), n.clone(), mu)
            })
            .collect(),
        // ⟦-x->⟧ := {(n1, n2, {x↦e}) | src(e)=n1, tgt(e)=n2}
        // ⟦<-x-⟧ := {(n2, n1, {x↦e})}
        Pattern::Edge(v, dir) => g
            .edges()
            .map(|e| {
                let s = g.src(e).expect("edge has src").clone();
                let t = g.tgt(e).expect("edge has tgt").clone();
                let (from, to) = match dir {
                    Direction::Forward => (s, t),
                    Direction::Backward => (t, s),
                };
                let mu = match v {
                    Some(x) => Binding::singleton(x.clone(), e.clone()),
                    None => Binding::empty(),
                };
                (from, to, mu)
            })
            .collect(),
        // ⟦ψ1 + ψ2⟧ := ⟦ψ1⟧ ∪ ⟦ψ2⟧
        Pattern::Union(a, b) => {
            let mut s = eval(a, g);
            s.extend(eval(b, g));
            s
        }
        // ⟦ψ1 ψ2⟧ := joins on the middle node with compatible mappings
        Pattern::Concat(a, b) => {
            let left = eval(a, g);
            let right = eval(b, g);
            // Index the right-hand side by its source endpoint.
            let mut by_src: BTreeMap<&ElementId, Vec<&MatchTriple>> = BTreeMap::new();
            for triple in &right {
                by_src.entry(&triple.0).or_default().push(triple);
            }
            let mut out = MatchSet::new();
            for (s1, mid, mu1) in &left {
                if let Some(rs) = by_src.get(mid) {
                    for (_, t2, mu2) in rs.iter().map(|t| (&t.0, &t.1, &t.2)) {
                        if let Some(mu) = mu1.join(mu2) {
                            out.insert((s1.clone(), t2.clone(), mu));
                        }
                    }
                }
            }
            out
        }
        // ⟦ψ⟨θ⟩⟧ := {(s,t,μ) ∈ ⟦ψ⟧ | μ ⊨ θ}
        Pattern::Filter(p, theta) => eval(p, g)
            .into_iter()
            .filter(|(_, _, mu)| theta.eval(mu, g))
            .collect(),
        // ⟦ψ^{n..m}⟧ := ⋃_{i=n..m} ⟦ψ⟧^i, all with μ∅
        Pattern::Repeat(p, n, m) => {
            let base = endpoint_pairs(&eval(p, g));
            let pairs = repeat_pairs(&base, *n, *m, g);
            pairs
                .into_iter()
                .map(|(s, t)| (s, t, Binding::empty()))
                .collect()
        }
    }
}

/// Projects a match set to its endpoint pairs (discarding mappings), the
/// `∃μ1…μn` step of the `⟦ψ⟧^n` clause.
pub fn endpoint_pairs(set: &MatchSet) -> PairSet {
    set.iter().map(|(s, t, _)| (s.clone(), t.clone())).collect()
}

/// `⋃_{i=n..m} R^i` where `R^0` is the identity on *all* nodes of `G`
/// (Figure 2: `⟦ψ⟧^0 := {(n, n, μ∅) | n ∈ N}`) and `R^{i+1} = R^i ∘ R`.
///
/// For `m = ∞` this is `R^n ∘ R*`, with `R*` computed as a reachability
/// fixpoint (BFS per source), so no iteration cap is involved.
pub fn repeat_pairs(base: &PairSet, n: usize, m: RepBound, g: &PropertyGraph) -> PairSet {
    match m {
        RepBound::Finite(m) => {
            debug_assert!(n <= m);
            let mut acc = PairSet::new();
            let mut current = power(base, n, g);
            acc.extend(current.iter().cloned());
            for _ in n..m {
                current = compose(&current, base);
                if current.is_empty() {
                    break;
                }
                acc.extend(current.iter().cloned());
            }
            acc
        }
        RepBound::Infinite => {
            let star = reflexive_transitive_closure(base, g);
            if n == 0 {
                star
            } else {
                compose(&power(base, n, g), &star)
            }
        }
    }
}

/// `R^n`: `n`-fold composition; `R^0` is the identity on all nodes.
fn power(base: &PairSet, n: usize, g: &PropertyGraph) -> PairSet {
    let mut current: PairSet = g.nodes().map(|v| (v.clone(), v.clone())).collect();
    for _ in 0..n {
        current = compose(&current, base);
        if current.is_empty() {
            break;
        }
    }
    current
}

/// Relational composition of endpoint-pair sets.
pub fn compose(left: &PairSet, right: &PairSet) -> PairSet {
    let mut by_src: BTreeMap<&ElementId, Vec<&ElementId>> = BTreeMap::new();
    for (s, t) in right {
        by_src.entry(s).or_default().push(t);
    }
    let mut out = PairSet::new();
    for (s, mid) in left {
        if let Some(ts) = by_src.get(mid) {
            for t in ts {
                out.insert((s.clone(), (*t).clone()));
            }
        }
    }
    out
}

/// `R* = ⋃_{i≥0} R^i` over the node set of `G`: identity pairs for every
/// node plus BFS-reachability along `R`.
pub fn reflexive_transitive_closure(base: &PairSet, g: &PropertyGraph) -> PairSet {
    let mut adj: BTreeMap<&ElementId, Vec<&ElementId>> = BTreeMap::new();
    for (s, t) in base {
        adj.entry(s).or_default().push(t);
    }
    let mut out = PairSet::new();
    // Reflexive part over all nodes (⟦ψ⟧^0 ranges over N).
    for v in g.nodes() {
        out.insert((v.clone(), v.clone()));
    }
    // BFS from every node that can take at least one step.
    let mut frontier: Vec<&ElementId> = Vec::new();
    let mut seen: BTreeSet<&ElementId> = BTreeSet::new();
    for start in adj.keys().copied() {
        frontier.clear();
        seen.clear();
        frontier.push(start);
        seen.insert(start);
        while let Some(u) = frontier.pop() {
            if let Some(nexts) = adj.get(u) {
                for &v in nexts {
                    if seen.insert(v) {
                        frontier.push(v);
                    }
                }
            }
        }
        for &v in &seen {
            out.insert((start.clone(), v.clone()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::Condition;
    use pgq_graph::PropertyGraphBuilder;
    use pgq_value::{Tuple, Var};

    fn id(s: &str) -> ElementId {
        Tuple::unary(s)
    }

    /// a -e1-> b -e2-> c, plus a self-contained node d.
    fn chain() -> PropertyGraph {
        let mut b = PropertyGraphBuilder::unary();
        for n in ["a", "b", "c", "d"] {
            b.node1(n).unwrap();
        }
        b.edge1("e1", "a", "b").unwrap();
        b.edge1("e2", "b", "c").unwrap();
        b.label(id("e1"), "T").unwrap();
        b.finish()
    }

    #[test]
    fn node_atom_semantics() {
        let g = chain();
        let m = eval_pattern(&Pattern::node("x"), &g).unwrap();
        assert_eq!(m.len(), 4);
        for (s, t, mu) in &m {
            assert_eq!(s, t);
            assert_eq!(mu.get(&Var::new("x")), Some(s));
        }
        // Anonymous node binds nothing.
        let m = eval_pattern(&Pattern::any_node(), &g).unwrap();
        assert!(m.iter().all(|(_, _, mu)| mu.is_empty()));
    }

    #[test]
    fn edge_atom_semantics_both_directions() {
        let g = chain();
        let fwd = eval_pattern(&Pattern::edge("t"), &g).unwrap();
        assert!(fwd.contains(&(
            id("a"),
            id("b"),
            Binding::singleton(Var::new("t"), id("e1"))
        )));
        let bwd = eval_pattern(&Pattern::edge_back("t"), &g).unwrap();
        assert!(bwd.contains(&(
            id("b"),
            id("a"),
            Binding::singleton(Var::new("t"), id("e1"))
        )));
        assert_eq!(fwd.len(), 2);
        assert_eq!(bwd.len(), 2);
    }

    #[test]
    fn concat_joins_on_middle_and_compatibility() {
        let g = chain();
        // (x) -t-> (y): 2 matches.
        let p = Pattern::node("x")
            .then(Pattern::edge("t"))
            .then(Pattern::node("y"));
        let m = eval_pattern(&p, &g).unwrap();
        assert_eq!(m.len(), 2);
        // Incompatible reuse of the same variable on different elements:
        // (x) -> (x) requires src = tgt, impossible in the chain.
        let p = Pattern::node("x")
            .then(Pattern::any_edge())
            .then(Pattern::node("x"));
        assert!(eval_pattern(&p, &g).unwrap().is_empty());
    }

    #[test]
    fn two_hop_concat() {
        let g = chain();
        let p = Pattern::any_edge().then(Pattern::any_edge());
        let m = eval_pattern(&p, &g).unwrap();
        assert_eq!(m.len(), 1);
        let (s, t, _) = m.iter().next().unwrap().clone();
        assert_eq!((s, t), (id("a"), id("c")));
    }

    #[test]
    fn filter_retains_satisfying() {
        let g = chain();
        let p = Pattern::edge("t").filter(Condition::has_label("t", "T"));
        let m = eval_pattern(&p, &g).unwrap();
        assert_eq!(m.len(), 1); // only e1 has label T
    }

    #[test]
    fn repeat_zero_is_identity_on_all_nodes() {
        let g = chain();
        let p = Pattern::any_edge().repeat(0, 0);
        let m = eval_pattern(&p, &g).unwrap();
        assert_eq!(m.len(), 4);
        for (s, t, mu) in &m {
            assert_eq!(s, t);
            assert!(mu.is_empty());
        }
    }

    #[test]
    fn repeat_discards_bindings() {
        let g = chain();
        let p = Pattern::edge("t").repeat(1, 2);
        let m = eval_pattern(&p, &g).unwrap();
        // pairs: (a,b), (b,c) at i=1; (a,c) at i=2.
        assert_eq!(m.len(), 3);
        assert!(m.iter().all(|(_, _, mu)| mu.is_empty()));
    }

    #[test]
    fn repeat_unbounded_is_reachability() {
        let g = chain();
        let star = eval_pattern(&Pattern::any_edge().star(), &g).unwrap();
        let pairs = endpoint_pairs(&star);
        // 4 reflexive + (a,b),(b,c),(a,c)
        assert_eq!(pairs.len(), 7);
        assert!(pairs.contains(&(id("a"), id("c"))));
        assert!(pairs.contains(&(id("d"), id("d"))));

        let plus = eval_pattern(&Pattern::any_edge().plus(), &g).unwrap();
        let pairs = endpoint_pairs(&plus);
        assert_eq!(pairs.len(), 3);
        assert!(!pairs.contains(&(id("d"), id("d"))));
    }

    #[test]
    fn repeat_on_cycle_saturates() {
        // 3-cycle: walks of length exactly 5 connect i to i+5 mod 3.
        let mut b = PropertyGraphBuilder::unary();
        for i in 0..3i64 {
            b.node1(i).unwrap();
        }
        b.edge1(10i64, 0i64, 1i64).unwrap();
        b.edge1(11i64, 1i64, 2i64).unwrap();
        b.edge1(12i64, 2i64, 0i64).unwrap();
        let g = b.finish();
        let p = Pattern::any_edge().repeat(5, 5);
        let m = eval_pattern(&p, &g).unwrap();
        assert_eq!(m.len(), 3);
        assert!(endpoint_pairs(&m).contains(&(Tuple::unary(0i64), Tuple::unary(2i64))));
        // Unbounded: everything reaches everything.
        let star = eval_pattern(&Pattern::any_edge().star(), &g).unwrap();
        assert_eq!(star.len(), 9);
    }

    #[test]
    fn union_merges() {
        let g = chain();
        let p = Pattern::edge("t").or(Pattern::edge_back("t"));
        let m = eval_pattern(&p, &g).unwrap();
        assert_eq!(m.len(), 4);
        // Invalid union is rejected by validation.
        let bad = Pattern::edge("t").or(Pattern::edge("u"));
        assert!(eval_pattern(&bad, &g).is_err());
    }

    #[test]
    fn backward_edge_in_concat() {
        let g = chain();
        // (x) <-t- (y): matches (b,a) and (c,b) as (x,y).
        let p = Pattern::node("x")
            .then(Pattern::edge_back("t"))
            .then(Pattern::node("y"));
        let m = eval_pattern(&p, &g).unwrap();
        let pairs = endpoint_pairs(&m);
        assert!(pairs.contains(&(id("b"), id("a"))));
        assert!(pairs.contains(&(id("c"), id("b"))));
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    fn repetition_inside_concat() {
        let g = chain();
        // (x) (->)* (y): all reachability pairs with x,y bound.
        let p = Pattern::node("x")
            .then(Pattern::any_edge().star())
            .then(Pattern::node("y"));
        let m = eval_pattern(&p, &g).unwrap();
        assert_eq!(m.len(), 7);
        // Bindings on x and y survive (they are outside the repetition).
        for (s, t, mu) in &m {
            assert_eq!(mu.get(&Var::new("x")), Some(s));
            assert_eq!(mu.get(&Var::new("y")), Some(t));
        }
    }
}
